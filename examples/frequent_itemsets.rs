//! Private top-`c` frequent items — the Lee & Clifton (KDD '14) use
//! case that motivated Algorithm 4.
//!
//! Builds a concrete (synthetic, BMS-POS-shaped) transaction dataset,
//! then selects the `c` most frequent items three ways:
//!
//! 1. the broken Algorithm 4 as published (good-looking accuracy, but
//!    only `((1+3c)/4)ε`-DP — we print the *real* privacy bill);
//! 2. the corrected standard SVT at the same *true* budget;
//! 3. the Exponential Mechanism, the paper's recommendation.
//!
//! The point of the exercise is the paper's: once you pay Alg. 4's real
//! privacy cost honestly, its accuracy advantage evaporates.
//!
//! Run with: `cargo run --release --example frequent_itemsets`

use sparse_vector::experiments::{false_negative_rate, score_error_rate};
use sparse_vector::prelude::*;
use sparse_vector::svt::noninteractive::select_with;

fn main() {
    let mut rng = DpRng::seed_from_u64(1404);

    // A scaled-down BMS-POS-like basket dataset: 400 items, 20,000
    // baskets, power-law supports.
    let target_supports: Vec<u64> = (1..=400u64)
        .map(|rank| (2400.0 / (rank as f64 + 8.0).powf(0.9)) as u64)
        .collect();
    let dataset = TransactionDataset::from_target_supports(&target_supports, 20_000, &mut rng);
    let scores = dataset.score_vector().expect("nonempty universe");

    let c = 25;
    let epsilon = 0.5;
    let true_top = scores.top_c(c);
    let threshold = scores.paper_threshold(c);

    println!(
        "synthetic basket data: {} baskets, {} items; finding top-{c} under ε = {epsilon}\n",
        dataset.n_records(),
        dataset.n_items()
    );

    // --- 1. Algorithm 4 exactly as published. ---
    let mut alg4 = Alg4::new(epsilon, 1.0, c, &mut rng).expect("valid parameters");
    let selected =
        select_with(&mut alg4, scores.as_slice(), threshold, &mut rng).expect("selection succeeds");
    println!("Alg. 4 (Lee-Clifton '14), nominal ε = {epsilon}:");
    report(&selected, &true_top, &scores);
    println!(
        "  …but its REAL guarantee is only {:.2}-DP (monotonic) / {:.2}-DP (general)!\n",
        alg4.actual_epsilon_monotonic(),
        alg4.actual_epsilon_general()
    );

    // --- 2. The corrected SVT at the true monotonic budget. ---
    let honest_epsilon = alg4.actual_epsilon_monotonic();
    let cfg = SvtSelectConfig::counting(honest_epsilon, c, BudgetRatio::OneToCTwoThirds);
    let corrected =
        svt_select(scores.as_slice(), threshold, &cfg, &mut rng).expect("selection succeeds");
    println!("SVT-S 1:c^(2/3) at the SAME true budget ε = {honest_epsilon:.2}:");
    report(&corrected, &true_top, &scores);

    // And what the honest budget ε = 0.5 buys with the corrected SVT:
    let cfg_tight = SvtSelectConfig::counting(epsilon, c, BudgetRatio::OneToCTwoThirds);
    let tight =
        svt_select(scores.as_slice(), threshold, &cfg_tight, &mut rng).expect("selection succeeds");
    println!("\nSVT-S 1:c^(2/3) at the honest budget ε = {epsilon}:");
    report(&tight, &true_top, &scores);

    // --- 3. EM at the honest budget — the paper's recommendation. ---
    let em = EmTopC::new(epsilon, c, 1.0, true).expect("valid parameters");
    let em_sel = em
        .select(scores.as_slice(), &mut rng)
        .expect("selection succeeds");
    println!("\nEM at the honest budget ε = {epsilon}:");
    report(&em_sel, &true_top, &scores);

    println!(
        "\nLesson (paper §1): Alg. 4's apparent accuracy was purchased with a\n\
         ~{}x larger privacy loss than claimed; at an honest budget, EM wins.",
        (alg4.actual_epsilon_monotonic() / epsilon).round()
    );
}

fn report(selected: &[usize], true_top: &[usize], scores: &ScoreVector) {
    let fnr = false_negative_rate(selected, true_top);
    let ser = score_error_rate(selected, true_top, scores.as_slice());
    println!(
        "  selected {:>3} items   FNR = {fnr:.3}   SER = {ser:.3}",
        selected.len()
    );
}
