//! Releasing integer counts: Laplace vs. two-sided geometric noise,
//! with FIMI file round-tripping.
//!
//! The paper's workloads are item supports — integers. This example
//! builds a transaction dataset, saves/loads it in the FIMI format the
//! real BMS-POS/Kosarak files ship in, and releases a handful of
//! supports under ε-DP with both the Laplace mechanism (the paper's
//! choice) and the discrete two-sided geometric mechanism (this
//! workspace's integer-native extension), comparing their error.
//!
//! Run with: `cargo run --release --example counting_release`

use sparse_vector::data::io;
use sparse_vector::mechanisms::laplace_mechanism;
use sparse_vector::prelude::*;

fn main() {
    let mut rng = DpRng::seed_from_u64(2718);

    // A small market-basket dataset realizing a power-law head.
    let targets: Vec<u64> = (1..=200u64).map(|rank| 5_000 / rank).collect();
    let data = TransactionDataset::from_target_supports(&targets, 5_000, &mut rng);
    println!(
        "dataset: {} records over {} items (top support {})",
        data.n_records(),
        data.n_items(),
        data.item_supports()[0]
    );

    // Round-trip through the FIMI format (what the real datasets use).
    let path = std::env::temp_dir().join("svt_example_baskets.dat");
    io::write_transactions_file(&data, &path).expect("writable temp dir");
    let reloaded =
        io::read_transactions_with_universe(std::fs::File::open(&path).expect("file exists"), 200)
            .expect("the file we just wrote parses");
    assert_eq!(reloaded.item_supports(), data.item_supports());
    println!("FIMI round trip through {} ok\n", path.display());
    std::fs::remove_file(&path).ok();

    // Release the first 8 supports under ε = 0.5 each, both ways.
    let epsilon = 0.5;
    let supports = data.item_supports();
    println!(
        "{:>5}  {:>8}  {:>16}  {:>16}",
        "item", "true", "Laplace release", "geometric release"
    );
    let (mut lap_abs, mut geo_abs) = (0.0f64, 0i64);
    for (item, &support) in supports.iter().enumerate().take(8) {
        let lap =
            laplace_mechanism(support as f64, 1.0, epsilon, &mut rng).expect("valid parameters");
        let geo =
            geometric_mechanism(support as i64, 1.0, epsilon, &mut rng).expect("valid parameters");
        lap_abs += (lap - support as f64).abs();
        geo_abs += (geo - support as i64).abs();
        println!("{item:>5}  {support:>8}  {lap:>16.2}  {geo:>16}");
    }
    println!(
        "\nmean |error| over 8 releases: Laplace {:.2}, geometric {:.2}",
        lap_abs / 8.0,
        geo_abs as f64 / 8.0
    );

    // Budget planning: how many such releases fit a (1.0, 1e-6) target?
    let target = ApproxDp::new(1.0, 1e-6).expect("valid target");
    println!("\nComposition planning for a (1.0, 1e-6)-DP session:");
    for k in [4usize, 16, 64, 256] {
        let per = sparse_vector::mechanisms::composition::per_instance_epsilon(target, k)
            .expect("valid parameters");
        println!(
            "  {k:>4} releases → ε = {per:.4} each ({}x the naive ε/k)",
            format_args!(
                "{:.1}",
                sparse_vector::mechanisms::composition::composition_advantage(target, k)
                    .expect("valid parameters")
            )
        );
    }
}
