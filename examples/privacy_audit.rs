//! Empirically refuting (and confirming) privacy claims.
//!
//! Runs the paper's counterexamples through the Monte-Carlo auditor:
//!
//! * Theorem 3  → Algorithm 5's `ε̂` diverges (an output that is
//!   *impossible* on the neighbor);
//! * Theorem 6  → Algorithm 3's ratio grows like `e^{(m−1)ε/2}`;
//! * Theorem 7  → Algorithm 6's ratio grows like `e^{mε/2}`;
//! * §3.3       → Algorithm 1 stays under its Lemma-1 bound on the very
//!   instance the flawed GPTT proof would use against it.
//!
//! Run with: `cargo run --release --example privacy_audit`

use sparse_vector::auditor::counterexamples as cx;
use sparse_vector::prelude::*;

fn main() {
    let mut rng = DpRng::seed_from_u64(101);
    let trials = 100_000;
    let confidence = 0.975; // joint 95% per audit

    println!("Monte-Carlo privacy audits ({trials} trials per side)\n");

    // Theorem 3: Algorithm 5.
    let eps = 1.0;
    let audit = cx::audit_alg5_theorem3(eps, trials, confidence, &mut rng);
    println!(
        "[Thm 3] Alg. 5, ε = {eps}: P[a|D] ≈ {:.4} (exact {:.4}), P[a|D′] = {} hits",
        audit.on_d.point(),
        cx::alg5_theorem3_exact_probability(eps),
        audit.on_d_prime.successes
    );
    println!(
        "        certified privacy loss ε̂ ≥ {:.2}  → {}\n",
        audit.epsilon_lower_bound(),
        if audit.refutes_epsilon_dp(eps) {
            "REFUTES the ε-DP claim"
        } else {
            "inconclusive"
        }
    );

    // Theorem 6: Algorithm 3 with growing m.
    let eps = 2.0;
    println!("[Thm 6] Alg. 3, ε = {eps} — measured vs theoretical ratio e^((m−1)ε/2):");
    for m in [2usize, 4, 6] {
        let audit = cx::audit_alg3_theorem6(eps, m, 0.25, trials, confidence, &mut rng);
        println!(
            "        m = {m}: measured {:.1}, theory {:.1}, certified ε̂ ≥ {:.2}",
            audit.point_epsilon().exp(),
            cx::alg3_theorem6_theoretical_ratio(eps, m),
            audit.epsilon_lower_bound()
        );
    }

    // Theorem 7: Algorithm 6 with growing m.
    println!("\n[Thm 7] Alg. 6, ε = {eps} — measured vs theoretical bound e^(mε/2):");
    for m in [2usize, 3, 4] {
        let audit = cx::audit_alg6_theorem7(eps, m, trials, confidence, &mut rng);
        println!(
            "        m = {m}: measured {:.1}, theory ≥ {:.1}, certified ε̂ ≥ {:.2}",
            audit.point_epsilon().exp(),
            cx::alg6_theorem7_theoretical_lower_bound(eps, m),
            audit.epsilon_lower_bound()
        );
    }

    // §3.3: the same attack shape cannot touch Algorithm 1.
    let eps = 1.0;
    println!(
        "\n[§3.3] Alg. 1, ε = {eps} — the GPTT proof's logic predicts divergence in t;\n\
         Lemma 1 caps the true ratio at e^(ε/2) = {:.3}:",
        cx::alg1_lemma1_bound(eps)
    );
    for t in [5usize, 20, 40] {
        let audit = cx::audit_alg1_gptt_logic(eps, t, trials * 2, confidence, &mut rng);
        println!(
            "        t = {t}: measured ratio {:.3} — bounded, as Lemma 1 demands",
            audit.point_epsilon().exp()
        );
    }
    // Alg. 4: not ∞-DP, but weaker than claimed — bracketed empirically.
    let (eps, m, c) = (2.0, 12usize, 1usize);
    let audit = cx::audit_alg4_exceeds_nominal(eps, m, c, trials * 4, confidence, &mut rng);
    let corrected = cx::alg4_corrected_bound_general(eps, c);
    println!(
        "\n[Fig. 2] Alg. 4, nominal ε = {eps}, c = {c}: measured loss {:.2} — \
         above the nominal {eps}, below the corrected (1+6c)/4·ε = {corrected}",
        audit.point_epsilon()
    );

    // The grid auditor needs no hand-picked event: feed it the Thm 3
    // witness inputs and let it find the worst output itself.
    use sparse_vector::auditor::sweep::answers_key;
    use sparse_vector::svt::alg::run_svt;
    let eps = 1.0;
    let run5 = |queries: [f64; 2]| {
        move |r: &mut DpRng| -> String {
            let mut alg = Alg5::new(eps, 1.0, r).unwrap();
            let run = run_svt(&mut alg, &queries, &Thresholds::Constant(0.0), r).unwrap();
            answers_key(&run.answers, 2)
        }
    };
    let mut rng2 = DpRng::seed_from_u64(202);
    let grid = audit_output_grid(run5([0.0, 1.0]), run5([1.0, 0.0]), trials, 0.95, &mut rng2);
    let worst = grid.worst().expect("outputs were observed");
    println!(
        "\n[grid] blind output-grid audit of Alg. 5 on the Thm 3 inputs:\n\
         worst output {:?} certifies ε̂ ≥ {:.2} (simultaneous 95%) → {}",
        worst.output,
        grid.epsilon_lower_bound(),
        if grid.refutes_epsilon_dp(eps) {
            "REFUTES the ε-DP claim"
        } else {
            "inconclusive"
        }
    );

    println!(
        "\nConclusion: the divergence argument works on Alg. 3/5/6 and fails on\n\
         Alg. 1 — which is why the proof in [Chen-Machanavajjhala 2015] that\n\
         \"applies\" to Alg. 1-like mechanisms had to be wrong (§3.3)."
    );
}
