//! Private feature selection — the Stoddard et al. (2014) use case
//! that motivated Algorithm 5.
//!
//! Setting: a binary-labelled dataset; each candidate feature gets a
//! relevance score (here: the count of records where feature presence
//! agrees with the label — a monotonic counting query with Δ = 1). We
//! want the features whose score clears a threshold, privately.
//!
//! The example contrasts:
//! * Algorithm 5 as published — noise-free comparisons, unbounded ⊤s:
//!   beautiful accuracy, **zero** privacy (Theorem 3);
//! * the corrected standard SVT (Alg. 7) — what Stoddard et al. should
//!   have used;
//! * EM top-`c` — the paper's non-interactive recommendation.
//!
//! Run with: `cargo run --release --example feature_selection`

use sparse_vector::experiments::{false_negative_rate, score_error_rate};
use sparse_vector::prelude::*;
use sparse_vector::svt::noninteractive::select_with;

fn main() {
    let mut rng = DpRng::seed_from_u64(1411);

    // 2,000 candidate features over 50,000 records: 40 genuinely
    // predictive (high agreement counts), the rest near chance.
    let n_records = 50_000f64;
    let scores: Vec<f64> = (0..2000)
        .map(|i| {
            if i < 40 {
                // Predictive: 62–70% agreement.
                n_records * (0.62 + 0.002 * i as f64)
            } else {
                // Noise features: ~50% agreement with small jitter.
                n_records * 0.5 + ((i * 37) % 100) as f64
            }
        })
        .collect();
    let scores = ScoreVector::new(scores).expect("finite scores");
    let c = 40;
    let epsilon = 0.5;
    let true_top = scores.top_c(c);
    let threshold = scores.paper_threshold(c);

    println!(
        "feature selection: 2000 candidates, 40 predictive, ε = {epsilon}, threshold {threshold:.0}\n"
    );

    // --- Algorithm 5 as published. ---
    let mut alg5 = Alg5::new(epsilon, 1.0, &mut rng).expect("valid parameters");
    let sel5 =
        select_with(&mut alg5, scores.as_slice(), threshold, &mut rng).expect("selection succeeds");
    println!("Alg. 5 (Stoddard+ '14) — no query noise, no cutoff:");
    report(&sel5, &true_top, &scores);
    println!("  looks perfect — and satisfies NO finite ε (Theorem 3).\n");

    // --- The corrected SVT. ---
    let cfg = SvtSelectConfig::counting(epsilon, c, BudgetRatio::OneToCTwoThirds);
    let sel7 =
        svt_select(scores.as_slice(), threshold, &cfg, &mut rng).expect("selection succeeds");
    println!("SVT-S 1:c^(2/3) (Alg. 7) — actually ε-DP:");
    report(&sel7, &true_top, &scores);

    // --- EM. ---
    let em = EmTopC::new(epsilon, c, 1.0, true).expect("valid parameters");
    let sel_em = em
        .select(scores.as_slice(), &mut rng)
        .expect("selection succeeds");
    println!("\nEM (ε/c per round) — the paper's non-interactive pick:");
    report(&sel_em, &true_top, &scores);

    // --- Why Alg. 5's accuracy is a mirage: the audit in one line. ---
    let audit = sparse_vector::auditor::counterexamples::audit_alg5_theorem3(
        epsilon, 50_000, 0.975, &mut rng,
    );
    println!(
        "\naudit of Alg. 5 (Theorem 3 witness): certified privacy loss ε̂ ≥ {:.2} \
         — and growing with trials;\nthe claimed ε = {epsilon} is refuted: {}",
        audit.epsilon_lower_bound(),
        audit.refutes_epsilon_dp(epsilon)
    );
}

fn report(selected: &[usize], true_top: &[usize], scores: &ScoreVector) {
    let fnr = false_negative_rate(selected, true_top);
    let ser = score_error_rate(selected, true_top, scores.as_slice());
    println!(
        "  selected {:>4} features   FNR = {fnr:.3}   SER = {ser:.3}",
        selected.len()
    );
}
