//! `(ε, δ)`-DP SVT via advanced composition (§3.4 regime).
//!
//! Pure SVT pays query noise proportional to `c`; composing `c`
//! cutoff-1 copies under the advanced composition theorem pays only
//! `≈ √c` — at the price of a `δ` failure probability. This example
//! prints the plan (per-copy budget, noise scales, advantage factor)
//! across cutoffs and then races the two constructions on the Zipf
//! workload.
//!
//! Run with: `cargo run --release --example approx_svt`

use sparse_vector::prelude::*;
use sparse_vector::svt::noninteractive::select_with;

fn main() {
    let epsilon = 0.5;
    let delta = 1e-6;
    let target = ApproxDp::new(epsilon, delta).expect("valid target");

    println!("Target guarantee: ({epsilon}, {delta:.0e})-DP\n");
    println!(
        "{:>6}  {:>12}  {:>14}  {:>14}  {:>10}",
        "c", "ε per copy", "approx ν scale", "pure ν scale", "advantage"
    );
    for c in [2usize, 8, 32, 128, 512] {
        let plan = ApproxSvtPlan::new(&ApproxSvtConfig {
            target,
            c,
            sensitivity: 1.0,
            ratio: 2f64.powf(2.0 / 3.0),
            monotonic: true,
        })
        .expect("valid plan");
        println!(
            "{c:>6}  {:>12.4}  {:>14.1}  {:>14.1}  {:>9.1}x",
            plan.per_instance_epsilon,
            plan.query_noise_scale,
            plan.pure_query_noise_scale,
            plan.noise_advantage()
        );
    }

    // Race the two on the Zipf workload at c = 100.
    let c = 100;
    let scores = DatasetSpec::zipf().scores();
    let true_top = scores.top_c(c);
    let threshold = scores.paper_threshold(c);
    let mut rng = DpRng::seed_from_u64(1603);

    let pure_cfg = SvtSelectConfig::counting(epsilon, c, BudgetRatio::OneToCTwoThirds);
    let pure_sel =
        svt_select(scores.as_slice(), threshold, &pure_cfg, &mut rng).expect("selection succeeds");

    let mut approx = ApproxSvt::new(
        ApproxSvtConfig {
            target,
            c,
            sensitivity: 1.0,
            ratio: 2f64.powf(2.0 / 3.0),
            monotonic: true,
        },
        &mut rng,
    )
    .expect("valid configuration");
    let approx_sel = select_with(&mut approx, scores.as_slice(), threshold, &mut rng)
        .expect("selection succeeds");

    println!("\nZipf workload, c = {c}, threshold = {threshold:.1}:");
    report(
        &format!("pure ε-DP SVT-S (ε = {epsilon})"),
        &pure_sel,
        &true_top,
        &scores,
    );
    report(
        &format!("(ε, δ)-DP approx SVT (δ = {delta:.0e})"),
        &approx_sel,
        &true_top,
        &scores,
    );
    println!(
        "\nEach approx comparison carries {:.1}x less noise; the price is δ = {delta:.0e}.",
        approx.plan().noise_advantage()
    );
}

fn report(name: &str, selected: &[usize], true_top: &[usize], scores: &ScoreVector) {
    let fnr = sparse_vector::experiments::false_negative_rate(selected, true_top);
    let ser = sparse_vector::experiments::score_error_rate(selected, true_top, scores.as_slice());
    println!(
        "{name:<36} selected {:>3} items   FNR = {fnr:.3}   SER = {ser:.3}",
        selected.len()
    );
}
