//! The interactive setting: a monitoring dashboard that keeps asking
//! questions and pays only for the interesting answers.
//!
//! Two layers from the paper:
//!
//! 1. [`InteractiveSvtSession`] — raw SVT: a stream of "is today's
//!    count above the alert threshold?" checks, where every quiet day
//!    is free and only `c` alerts are ever paid for.
//! 2. [`HistoryMediator`] — the §3.4-corrected iterative construction:
//!    numeric answers served from history while the cached value is
//!    still accurate, with SVT privately deciding *when* a fresh
//!    (paid) database access is needed.
//!
//! Run with: `cargo run --release --example interactive_monitoring`

use sparse_vector::prelude::*;

fn main() {
    let mut rng = DpRng::seed_from_u64(334);

    // --- Layer 1: alert stream over 365 "days". ---
    // A mostly-quiet signal with a handful of genuine spikes.
    let mut daily_counts: Vec<f64> = (0..365)
        .map(|d| 100.0 + 30.0 * ((d as f64 / 17.0).sin()))
        .collect();
    for &spike_day in &[80usize, 200, 310] {
        daily_counts[spike_day] = 900.0;
    }
    let alert_threshold = 600.0;

    let config = StandardSvtConfig {
        budget: SvtBudget::halves(1.0).expect("valid budget"),
        sensitivity: 1.0,
        c: 3, // pay for at most three alerts
        monotonic: true,
    };
    let mut session = InteractiveSvtSession::open(1.0, config, &mut rng).expect("budget fits");

    let mut alerts = Vec::new();
    for (day, &count) in daily_counts.iter().enumerate() {
        if session.is_exhausted() {
            break;
        }
        let answer = session
            .ask(count, alert_threshold, &mut rng)
            .expect("session active");
        if answer.is_positive() {
            alerts.push(day);
        }
    }
    println!(
        "alert stream: asked {} daily queries, raised alerts on days {:?}",
        session.queries_asked(),
        alerts
    );
    println!(
        "total privacy spent: ε = 1.0 (fixed!) — {} negative answers were free\n",
        session.queries_asked() - session.positives()
    );

    // --- Layer 2: answer-from-history mediation (§3.4, corrected). ---
    // An analyst polls 5 dashboards every hour; the underlying counts
    // drift slowly, so most polls can be served from history.
    let svt_config = StandardSvtConfig {
        budget: SvtBudget::halves(1.0).expect("valid budget"),
        sensitivity: 1.0,
        c: 8, // at most 8 database refreshes
        monotonic: false,
    };
    let mut mediator = HistoryMediator::new(
        3.0,        // total budget: 1.0 SVT + 8 × 0.25 refreshes
        svt_config, // error test
        0.25,       // Laplace budget per refresh
        25.0,       // tolerated staleness
        0.0,        // prior estimate for unseen dashboards
        &mut rng,
    )
    .expect("budget fits");

    let mut served = 0usize;
    for hour in 0..200u64 {
        for dashboard in 0..5u64 {
            if mediator.is_exhausted() {
                break;
            }
            // True count drifts upward slowly and jumps mid-stream.
            let drift = hour as f64 * 0.1;
            let jump = if hour > 120 && dashboard == 2 {
                400.0
            } else {
                0.0
            };
            let truth = 50.0 * (dashboard + 1) as f64 + drift + jump;
            let _answer = mediator
                .answer(dashboard, truth, &mut rng)
                .expect("mediator active");
            served += 1;
        }
    }
    let stats = mediator.stats();
    println!("mediated dashboard: served {served} answers");
    println!(
        "  answered from history (free): {}\n  database accesses (paid):     {}",
        stats.answered_from_history, stats.database_accesses
    );
    println!(
        "  committed budget: ε = {:.2} regardless of how many free answers were served",
        mediator.committed_budget()
    );
    println!(
        "\nThis is the power the broken variants tried to get for free —\n\
         and exactly what leaks when the noise goes inside |q̃ − q(D)| (§3.4)."
    );
}
