//! Quickstart: private top-`c` selection on the paper's Zipf workload.
//!
//! Demonstrates the two recommendations of the paper:
//! * non-interactive setting → Exponential Mechanism peeling;
//! * interactive setting → standard SVT with the optimized
//!   `1:c^(2/3)` budget allocation.
//!
//! Run with: `cargo run --release --example quickstart`

use sparse_vector::prelude::*;

fn main() {
    let epsilon = 0.1;
    let c = 50;

    // The §6 Zipf workload: 10,000 items, score_i ∝ 1/i.
    let scores = DatasetSpec::zipf().scores();
    let true_top = scores.top_c(c);
    let threshold = scores.paper_threshold(c);
    let mut rng = DpRng::seed_from_u64(2016);

    println!(
        "Zipf workload: {} items, top-{c} threshold = {threshold:.1}",
        scores.len()
    );
    println!(
        "true top-{c} average support = {:.1}\n",
        scores.top_c_average(c)
    );

    // --- Non-interactive: EM, the paper's recommendation (§5). ---
    let em = EmTopC::new(epsilon, c, 1.0, true).expect("valid parameters");
    let em_selection = em
        .select(scores.as_slice(), &mut rng)
        .expect("selection succeeds");
    report(
        "EM (ε/c per round, monotonic)",
        &em_selection,
        &true_top,
        &scores,
    );

    // --- Interactive-capable: SVT-S with the Eq. 12 allocation. ---
    let cfg = SvtSelectConfig::counting(epsilon, c, BudgetRatio::OneToCTwoThirds);
    let svt_selection =
        svt_select(scores.as_slice(), threshold, &cfg, &mut rng).expect("selection succeeds");
    report(
        "SVT-S 1:c^(2/3) (Alg. 7)",
        &svt_selection,
        &true_top,
        &scores,
    );

    // --- Baseline: the Dwork-Roth textbook SVT. ---
    let book_selection = dpbook_select(scores.as_slice(), threshold, epsilon, c, 1.0, &mut rng)
        .expect("selection succeeds");
    report("SVT-DPBook (Alg. 2)", &book_selection, &true_top, &scores);

    println!("Every method above spent exactly ε = {epsilon}; the difference is pure utility.");
}

fn report(name: &str, selected: &[usize], true_top: &[usize], scores: &ScoreVector) {
    let fnr = sparse_vector::experiments::false_negative_rate(selected, true_top);
    let ser = sparse_vector::experiments::score_error_rate(selected, true_top, scores.as_slice());
    println!(
        "{name:<32} selected {:>3} items   FNR = {fnr:.3}   SER = {ser:.3}",
        selected.len()
    );
}
