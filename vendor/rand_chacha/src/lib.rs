//! Offline stand-in for the `rand_chacha` crate.
//!
//! This workspace builds in an environment without access to crates.io,
//! so the handful of third-party crates it depends on are vendored as
//! minimal shims under `vendor/`. This one provides [`ChaCha12Rng`],
//! the ChaCha stream cipher with 12 rounds used as `rand`'s `StdRng`
//! backend. The block function is the standard ChaCha construction
//! (Bernstein 2008): a 4×4 state of 32-bit words — four constants,
//! eight key words, a 64-bit block counter and a 64-bit stream id —
//! mixed by quarter-rounds and added back to the input state.
//!
//! The shim intentionally implements only what the workspace uses:
//! seeding from a 256-bit key or a `u64` (SplitMix64-expanded),
//! `next_u32`/`next_u64`, and the block-wise bulk outputs
//! [`fill_u64s`](ChaCha12Rng::fill_u64s) / [`fill_bytes`](ChaCha12Rng::fill_bytes),
//! which drain whole 16-word ChaCha blocks with a single bounds check
//! per block and are bit-identical to the equivalent sequence of scalar
//! draws. Streams are *not* guaranteed to be bit-compatible with the
//! upstream crate; within this workspace they only need to be
//! deterministic, portable, and statistically strong, which ChaCha12
//! provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// "expand 32-byte k", the standard ChaCha constants.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Number of double-rounds (ChaCha12 ⇒ 6 double-rounds).
const DOUBLE_ROUNDS: usize = 6;

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// The ChaCha12 pseudo-random number generator.
///
/// Deterministic function of its 256-bit seed; cloning snapshots the
/// full stream position.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "exhausted, refill".
    idx: usize,
}

impl ChaCha12Rng {
    /// Creates a generator from a 256-bit seed (the ChaCha key).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            counter: 0,
            stream: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    /// Creates a generator from a 64-bit seed, expanded to a full key
    /// with SplitMix64 (the conventional `seed_from_u64` construction).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        Self::from_seed(bytes)
    }

    /// Runs the ChaCha12 block function for the current counter and
    /// advances the counter. This is the one place keystream words are
    /// produced; `refill` and the bulk fill paths both go through it.
    fn generate_block(&mut self) -> [u32; 16] {
        let mut s: [u32; 16] = [
            SIGMA[0],
            SIGMA[1],
            SIGMA[2],
            SIGMA[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let input = s;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (w, i) in s.iter_mut().zip(input) {
            *w = w.wrapping_add(i);
        }
        self.counter = self.counter.wrapping_add(1);
        s
    }

    fn refill(&mut self) {
        self.buf = self.generate_block();
        self.idx = 0;
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Next 64 random bits: two consecutive buffered words (lo, hi),
    /// consumed with a single index check on the fast path.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        if self.idx + 2 <= 16 {
            let lo = u64::from(self.buf[self.idx]);
            let hi = u64::from(self.buf[self.idx + 1]);
            self.idx += 2;
            return (hi << 32) | lo;
        }
        // Buffer exhausted (or a pair split across a refill after an odd
        // number of `next_u32` calls): fall back to the word-at-a-time
        // path, which is what the fast path is bit-compatible with.
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Fills `out` with the same `u64` sequence that repeated
    /// [`next_u64`](Self::next_u64) calls would produce, but drains
    /// whole 16-word blocks straight into the output — one bounds check
    /// and one block-function call per 8 values instead of per-draw
    /// index bookkeeping.
    pub fn fill_u64s(&mut self, out: &mut [u64]) {
        let mut i = 0;
        // Align first: drain complete buffered pairs through the scalar
        // fast path (at most 8 draws), stopping *before* a pair would
        // straddle a refill.
        while i < out.len() && self.idx + 2 <= 16 {
            out[i] = self.next_u64();
            i += 1;
        }
        if i >= out.len() {
            return;
        }
        // The buffer is now exhausted (idx == 16) or holds exactly one
        // word (idx == 15 — an odd alignment, reachable only via bare
        // `next_u32` calls).
        if self.idx >= 16 {
            // Word-aligned: whole blocks, bypassing the buffer entirely.
            while out.len() - i >= 8 {
                let block = self.generate_block();
                for (slot, pair) in out[i..i + 8].iter_mut().zip(block.chunks_exact(2)) {
                    *slot = (u64::from(pair[1]) << 32) | u64::from(pair[0]);
                }
                i += 8;
            }
        } else if out.len() - i >= 8 {
            // Odd alignment: every u64 pairs a carried word with the
            // next word, so pairs straddle each block boundary. Keep
            // the block path hot anyway: pair the carry with a fresh
            // block's leading word, drain the block's interior pairs,
            // and roll the block's last word into the next carry. The
            // final carry is reinstated as an (unconsumed) buffered
            // word, so the stream stays bit-identical to scalar draws.
            let mut carry = self.buf[15];
            self.idx = 16;
            let mut block = [0u32; 16];
            while out.len() - i >= 8 {
                block = self.generate_block();
                out[i] = (u64::from(block[0]) << 32) | u64::from(carry);
                for (slot, pair) in out[i + 1..i + 8]
                    .iter_mut()
                    .zip(block[1..15].chunks_exact(2))
                {
                    *slot = (u64::from(pair[1]) << 32) | u64::from(pair[0]);
                }
                carry = block[15];
                i += 8;
            }
            self.buf = block;
            self.idx = 15; // buf[15] == carry, not yet consumed
        }
        // Tail: at most 7 values through the scalar path.
        while i < out.len() {
            out[i] = self.next_u64();
            i += 1;
        }
    }

    /// Fills `out` with random bytes: the `next_u32` word stream
    /// serialized little-endian. Once the internal buffer is drained,
    /// whole 16-word blocks are written 64 bytes at a time with a single
    /// bounds check per block. Bit-identical to consuming words one by
    /// one (a trailing partial word consumes one full word, as a scalar
    /// draw would).
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut rest = out;
        // Drain buffered words first so the block path starts aligned.
        while !rest.is_empty() && self.idx < 16 {
            rest = Self::write_word(self.next_u32(), rest);
        }
        // Whole blocks, bypassing the buffer.
        while rest.len() >= 64 {
            let block = self.generate_block();
            let (chunk, tail) = rest.split_at_mut(64);
            for (dst, w) in chunk.chunks_exact_mut(4).zip(block) {
                dst.copy_from_slice(&w.to_le_bytes());
            }
            rest = tail;
        }
        // Tail: word at a time from one final buffered block.
        while !rest.is_empty() {
            rest = Self::write_word(self.next_u32(), rest);
        }
    }

    /// Writes one little-endian word (or its prefix) into `dst`,
    /// returning the unwritten remainder.
    fn write_word(word: u32, dst: &mut [u8]) -> &mut [u8] {
        let bytes = word.to_le_bytes();
        let n = dst.len().min(4);
        dst[..n].copy_from_slice(&bytes[..n]);
        &mut dst[n..]
    }
}

/// One SplitMix64 step (Steele, Lea, Flood 2014), used for key expansion.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity: bit balance over 64k words within 1%.
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut ones = 0u64;
        let n = 65_536u64;
        for _ in 0..n {
            ones += u64::from(rng.next_u32().count_ones());
        }
        let frac = ones as f64 / (n as f64 * 32.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }

    #[test]
    fn clone_snapshots_position() {
        let mut a = ChaCha12Rng::seed_from_u64(3);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_u64_matches_word_pairs() {
        // The one-check fast path must reproduce the (lo, hi) word
        // pairing of the original word-at-a-time implementation.
        let mut words = ChaCha12Rng::seed_from_u64(91);
        let mut pairs = ChaCha12Rng::seed_from_u64(91);
        for _ in 0..1000 {
            let lo = u64::from(words.next_u32());
            let hi = u64::from(words.next_u32());
            assert_eq!(pairs.next_u64(), (hi << 32) | lo);
        }
    }

    #[test]
    fn fill_u64s_matches_scalar_stream() {
        for len in [0usize, 1, 5, 7, 8, 9, 15, 16, 17, 64, 300] {
            let mut scalar = ChaCha12Rng::seed_from_u64(1234);
            let mut batched = scalar.clone();
            // Misalign the block boundary so draining + blocks + tail
            // all get exercised.
            scalar.next_u64();
            batched.next_u64();
            let want: Vec<u64> = (0..len).map(|_| scalar.next_u64()).collect();
            let mut got = vec![0u64; len];
            batched.fill_u64s(&mut got);
            assert_eq!(got, want, "len {len}");
            // And the generators stay in lockstep afterwards.
            assert_eq!(scalar.next_u64(), batched.next_u64(), "len {len} post");
        }
    }

    #[test]
    fn fill_u64s_is_exact_after_odd_alignment() {
        // A bare next_u32 leaves the buffer odd-aligned; the fill must
        // still be bit-identical to scalar draws (now via the carry
        // block path rather than a scalar fallback), at every length
        // that exercises drain/blocks/tail, from every odd offset.
        for drained in [1usize, 3, 9, 13, 15] {
            for len in [0usize, 1, 7, 8, 9, 16, 40, 129] {
                let mut scalar = ChaCha12Rng::seed_from_u64(77);
                let mut batched = scalar.clone();
                for _ in 0..drained {
                    scalar.next_u32();
                    batched.next_u32();
                }
                let want: Vec<u64> = (0..len).map(|_| scalar.next_u64()).collect();
                let mut got = vec![0u64; len];
                batched.fill_u64s(&mut got);
                assert_eq!(got, want, "drained {drained} len {len}");
                // And the generators stay in lockstep afterwards.
                assert_eq!(scalar.next_u32(), batched.next_u32(), "post state");
            }
        }
    }

    #[test]
    fn mixed_32_64_bit_stream_is_bit_identical() {
        // Interleave bare word draws, scalar u64 draws, and bulk fills
        // in a fixed pattern that repeatedly flips the alignment; the
        // combined stream must equal the pure word-at-a-time pairing.
        let mut mixed = ChaCha12Rng::seed_from_u64(4096);
        let mut words = ChaCha12Rng::seed_from_u64(4096);
        let next_ref_u64 = |w: &mut ChaCha12Rng| {
            let lo = u64::from(w.next_u32());
            let hi = u64::from(w.next_u32());
            (hi << 32) | lo
        };
        for round in 0..8 {
            // One bare word flips to odd alignment…
            assert_eq!(mixed.next_u32(), words.next_u32(), "round {round}");
            // …a bulk fill must ride the carry block path…
            let len = 11 + 8 * round;
            let mut got = vec![0u64; len];
            mixed.fill_u64s(&mut got);
            for (i, g) in got.iter().enumerate() {
                assert_eq!(*g, next_ref_u64(&mut words), "round {round} fill {i}");
            }
            // …then scalar u64 draws continue seamlessly…
            for i in 0..5 {
                assert_eq!(
                    mixed.next_u64(),
                    next_ref_u64(&mut words),
                    "round {round} u64 {i}"
                );
            }
            // …and a second bare word re-evens the alignment, so the
            // next round's fill takes the aligned block path.
            assert_eq!(mixed.next_u32(), words.next_u32(), "round {round} tail");
            let mut got = vec![0u64; 19];
            mixed.fill_u64s(&mut got);
            for (i, g) in got.iter().enumerate() {
                assert_eq!(*g, next_ref_u64(&mut words), "round {round} fill2 {i}");
            }
        }
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        for len in [0usize, 1, 3, 4, 5, 63, 64, 65, 130, 333] {
            let mut words = ChaCha12Rng::seed_from_u64(56);
            let mut bytes = ChaCha12Rng::seed_from_u64(56);
            let mut want = Vec::with_capacity(len + 4);
            while want.len() < len {
                want.extend_from_slice(&words.next_u32().to_le_bytes());
            }
            want.truncate(len);
            let mut got = vec![0u8; len];
            bytes.fill_bytes(&mut got);
            assert_eq!(got, want, "len {len}");
        }
    }
}
