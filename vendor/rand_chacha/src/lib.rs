//! Offline stand-in for the `rand_chacha` crate.
//!
//! This workspace builds in an environment without access to crates.io,
//! so the handful of third-party crates it depends on are vendored as
//! minimal shims under `vendor/`. This one provides [`ChaCha12Rng`],
//! the ChaCha stream cipher with 12 rounds used as `rand`'s `StdRng`
//! backend. The block function is the standard ChaCha construction
//! (Bernstein 2008): a 4×4 state of 32-bit words — four constants,
//! eight key words, a 64-bit block counter and a 64-bit stream id —
//! mixed by quarter-rounds and added back to the input state.
//!
//! The shim intentionally implements only what the workspace uses:
//! seeding from a 256-bit key or a `u64` (SplitMix64-expanded),
//! `next_u32`/`next_u64`, and the block-wise bulk outputs
//! [`fill_u64s`](ChaCha12Rng::fill_u64s) / [`fill_bytes`](ChaCha12Rng::fill_bytes),
//! which drain whole 16-word ChaCha blocks with a single bounds check
//! per block and are bit-identical to the equivalent sequence of scalar
//! draws. Streams are *not* guaranteed to be bit-compatible with the
//! upstream crate; within this workspace they only need to be
//! deterministic, portable, and statistically strong, which ChaCha12
//! provides.

#![deny(unsafe_code)]
#![warn(missing_docs)]

/// "expand 32-byte k", the standard ChaCha constants.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Number of double-rounds (ChaCha12 ⇒ 6 double-rounds).
const DOUBLE_ROUNDS: usize = 6;

/// Four ChaCha12 blocks at once on 128-bit vectors, one block per
/// lane. SSE2 is part of the x86-64 baseline ABI, so the intrinsics
/// are unconditionally available on this architecture — no runtime
/// feature detection, and the only `unsafe` is the intrinsic calls
/// themselves (they touch no memory; all loads/stores go through safe
/// transmutes of `[u32; 4]`). ChaCha is integer-exact, so the output
/// is bit-identical to the scalar block function on every input.
#[cfg(target_arch = "x86_64")]
mod wide {
    #![allow(unsafe_code)]
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_or_si128, _mm_set1_epi32, _mm_set_epi32, _mm_slli_epi32,
        _mm_srli_epi32, _mm_unpackhi_epi32, _mm_unpackhi_epi64, _mm_unpacklo_epi32,
        _mm_unpacklo_epi64, _mm_xor_si128,
    };

    use super::{DOUBLE_ROUNDS, SIGMA};

    #[inline(always)]
    fn add(a: __m128i, b: __m128i) -> __m128i {
        // SAFETY: SSE2 is statically available on every x86-64 target.
        unsafe { _mm_add_epi32(a, b) }
    }

    #[inline(always)]
    fn xrot<const L: i32, const R: i32>(a: __m128i, b: __m128i) -> __m128i {
        // SAFETY: as above; a 32-bit rotate-left by L is a shift pair
        // + or (R is passed separately because `32 - L` is not a legal
        // const-generic expression): callers keep L + R == 32.
        unsafe {
            let x = _mm_xor_si128(a, b);
            _mm_or_si128(_mm_slli_epi32(x, L), _mm_srli_epi32(x, R))
        }
    }

    #[inline(always)]
    fn splat(v: u32) -> __m128i {
        // SAFETY: SSE2 statically available.
        unsafe { _mm_set1_epi32(v as i32) }
    }

    /// Writes blocks `counter .. counter + 4` of the keystream,
    /// block-major (block `k` occupies `out[16k .. 16k + 16]`).
    pub(super) fn block4(key: &[u32; 8], counter: u64, stream: u64, out: &mut [u32; 64]) {
        let ctr = |i: u64| counter.wrapping_add(i);
        // SAFETY: SSE2 statically available; set_epi32 takes lanes
        // high-to-low, so lane 0 (= block `counter`) is the last arg.
        let mut x12 = unsafe {
            _mm_set_epi32(
                ctr(3) as u32 as i32,
                ctr(2) as u32 as i32,
                ctr(1) as u32 as i32,
                ctr(0) as u32 as i32,
            )
        };
        // SAFETY: as above.
        let mut x13 = unsafe {
            _mm_set_epi32(
                (ctr(3) >> 32) as u32 as i32,
                (ctr(2) >> 32) as u32 as i32,
                (ctr(1) >> 32) as u32 as i32,
                (ctr(0) >> 32) as u32 as i32,
            )
        };
        let (i12, i13) = (x12, x13);
        let mut x0 = splat(SIGMA[0]);
        let mut x1 = splat(SIGMA[1]);
        let mut x2 = splat(SIGMA[2]);
        let mut x3 = splat(SIGMA[3]);
        let mut x4 = splat(key[0]);
        let mut x5 = splat(key[1]);
        let mut x6 = splat(key[2]);
        let mut x7 = splat(key[3]);
        let mut x8 = splat(key[4]);
        let mut x9 = splat(key[5]);
        let mut x10 = splat(key[6]);
        let mut x11 = splat(key[7]);
        let mut x14 = splat(stream as u32);
        let mut x15 = splat((stream >> 32) as u32);
        macro_rules! qr {
            ($a:ident, $b:ident, $c:ident, $d:ident) => {
                $a = add($a, $b);
                $d = xrot::<16, 16>($d, $a);
                $c = add($c, $d);
                $b = xrot::<12, 20>($b, $c);
                $a = add($a, $b);
                $d = xrot::<8, 24>($d, $a);
                $c = add($c, $d);
                $b = xrot::<7, 25>($b, $c);
            };
        }
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            qr!(x0, x4, x8, x12);
            qr!(x1, x5, x9, x13);
            qr!(x2, x6, x10, x14);
            qr!(x3, x7, x11, x15);
            // Diagonal round.
            qr!(x0, x5, x10, x15);
            qr!(x1, x6, x11, x12);
            qr!(x2, x7, x8, x13);
            qr!(x3, x4, x9, x14);
        }
        // Feed-forward, then transpose each 4-row group from word-major
        // lanes to the block-major output layout.
        let rows = [
            add(x0, splat(SIGMA[0])),
            add(x1, splat(SIGMA[1])),
            add(x2, splat(SIGMA[2])),
            add(x3, splat(SIGMA[3])),
            add(x4, splat(key[0])),
            add(x5, splat(key[1])),
            add(x6, splat(key[2])),
            add(x7, splat(key[3])),
            add(x8, splat(key[4])),
            add(x9, splat(key[5])),
            add(x10, splat(key[6])),
            add(x11, splat(key[7])),
            add(x12, i12),
            add(x13, i13),
            add(x14, splat(stream as u32)),
            add(x15, splat((stream >> 32) as u32)),
        ];
        for (g, group) in rows.chunks_exact(4).enumerate() {
            // SAFETY: pure register shuffles; the stores are plain
            // `[u32; 4]` copies via to_lanes.
            let (r0, r1, r2, r3) = unsafe {
                let ab_lo = _mm_unpacklo_epi32(group[0], group[1]);
                let ab_hi = _mm_unpackhi_epi32(group[0], group[1]);
                let cd_lo = _mm_unpacklo_epi32(group[2], group[3]);
                let cd_hi = _mm_unpackhi_epi32(group[2], group[3]);
                (
                    _mm_unpacklo_epi64(ab_lo, cd_lo),
                    _mm_unpackhi_epi64(ab_lo, cd_lo),
                    _mm_unpacklo_epi64(ab_hi, cd_hi),
                    _mm_unpackhi_epi64(ab_hi, cd_hi),
                )
            };
            for (lane, row) in [r0, r1, r2, r3].into_iter().enumerate() {
                let base = 16 * lane + 4 * g;
                out[base..base + 4].copy_from_slice(&to_lanes(row));
            }
        }
    }

    #[inline(always)]
    fn to_lanes(v: __m128i) -> [u32; 4] {
        // SAFETY: __m128i and [u32; 4] have identical size and no
        // invalid bit patterns; lane order matches little-endian u32s.
        unsafe { core::mem::transmute(v) }
    }
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// The ChaCha12 pseudo-random number generator.
///
/// Deterministic function of its 256-bit seed; cloning snapshots the
/// full stream position.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "exhausted, refill".
    idx: usize,
}

impl ChaCha12Rng {
    /// Creates a generator from a 256-bit seed (the ChaCha key).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            counter: 0,
            stream: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    /// Creates a generator from a 64-bit seed, expanded to a full key
    /// with SplitMix64 (the conventional `seed_from_u64` construction).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        Self::from_seed(bytes)
    }

    /// Runs the ChaCha12 block function for the current counter and
    /// advances the counter. This is the one place keystream words are
    /// produced; `refill` and the bulk fill paths both go through it.
    fn generate_block(&mut self) -> [u32; 16] {
        let mut s: [u32; 16] = [
            SIGMA[0],
            SIGMA[1],
            SIGMA[2],
            SIGMA[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let input = s;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (w, i) in s.iter_mut().zip(input) {
            *w = w.wrapping_add(i);
        }
        self.counter = self.counter.wrapping_add(1);
        s
    }

    /// Four consecutive blocks (counters `counter .. counter + 4`) in
    /// one call, laid out block-major: `out[16·k ..][w]` is word `w` of
    /// block `k` — the exact concatenation [`generate_block`] would
    /// produce over four calls, so callers can swap freely between the
    /// two without changing the keystream.
    ///
    /// On x86_64 this dispatches to [`wide::block4`], an explicit SSE2
    /// implementation (baseline ABI, no runtime detection) holding the
    /// state word-major — one 128-bit register per state word, one lane
    /// per block — so the rounds need no shuffles at all. Everywhere
    /// else [`Self::generate_block4_portable`] computes the same layout
    /// in safe scalar code. All ops are integer-exact, so the two paths
    /// are bit-identical.
    fn generate_block4(&mut self, out: &mut [u32; 64]) {
        #[cfg(target_arch = "x86_64")]
        {
            wide::block4(&self.key, self.counter, self.stream, out);
            self.counter = self.counter.wrapping_add(4);
        }
        #[cfg(not(target_arch = "x86_64"))]
        self.generate_block4_portable(out)
    }

    /// Portable arm of [`generate_block4`](Self::generate_block4):
    /// the same four blocks from safe lanewise scalar code (which
    /// compilers may still auto-vectorize on targets with SIMD).
    #[cfg(not(target_arch = "x86_64"))]
    fn generate_block4_portable(&mut self, out: &mut [u32; 64]) {
        #[inline(always)]
        fn add4(a: [u32; 4], b: [u32; 4]) -> [u32; 4] {
            [
                a[0].wrapping_add(b[0]),
                a[1].wrapping_add(b[1]),
                a[2].wrapping_add(b[2]),
                a[3].wrapping_add(b[3]),
            ]
        }
        #[inline(always)]
        fn xrot4<const K: u32>(a: [u32; 4], b: [u32; 4]) -> [u32; 4] {
            // Rotate spelled as shift-or (not `rotate_left`): the
            // shift/or form vectorizes as three packed ops, while the
            // funnel-shift intrinsic `rotate_left` lowers to defeats
            // SLP vectorization entirely. Scalar builds still fold the
            // pattern back into a native rotate.
            #[inline(always)]
            fn r<const K: u32>(x: u32) -> u32 {
                (x << K) | (x >> (32 - K))
            }
            [
                r::<K>(a[0] ^ b[0]),
                r::<K>(a[1] ^ b[1]),
                r::<K>(a[2] ^ b[2]),
                r::<K>(a[3] ^ b[3]),
            ]
        }
        let k = &self.key;
        let ctr = self.counter;
        let (c0, c1, c2, c3) = (
            ctr,
            ctr.wrapping_add(1),
            ctr.wrapping_add(2),
            ctr.wrapping_add(3),
        );
        // Sixteen named row vectors (not an array) so every one lives
        // in SSA form; each helper call is four isomorphic lane ops,
        // which the SLP vectorizer collapses to one 128-bit op.
        let mut x0 = [SIGMA[0]; 4];
        let mut x1 = [SIGMA[1]; 4];
        let mut x2 = [SIGMA[2]; 4];
        let mut x3 = [SIGMA[3]; 4];
        let mut x4 = [k[0]; 4];
        let mut x5 = [k[1]; 4];
        let mut x6 = [k[2]; 4];
        let mut x7 = [k[3]; 4];
        let mut x8 = [k[4]; 4];
        let mut x9 = [k[5]; 4];
        let mut x10 = [k[6]; 4];
        let mut x11 = [k[7]; 4];
        let mut x12 = [c0 as u32, c1 as u32, c2 as u32, c3 as u32];
        let mut x13 = [
            (c0 >> 32) as u32,
            (c1 >> 32) as u32,
            (c2 >> 32) as u32,
            (c3 >> 32) as u32,
        ];
        let mut x14 = [self.stream as u32; 4];
        let mut x15 = [(self.stream >> 32) as u32; 4];
        let (i12, i13) = (x12, x13);
        macro_rules! qr4 {
            ($a:ident, $b:ident, $c:ident, $d:ident) => {
                $a = add4($a, $b);
                $d = xrot4::<16>($d, $a);
                $c = add4($c, $d);
                $b = xrot4::<12>($b, $c);
                $a = add4($a, $b);
                $d = xrot4::<8>($d, $a);
                $c = add4($c, $d);
                $b = xrot4::<7>($b, $c);
            };
        }
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            qr4!(x0, x4, x8, x12);
            qr4!(x1, x5, x9, x13);
            qr4!(x2, x6, x10, x14);
            qr4!(x3, x7, x11, x15);
            // Diagonal round.
            qr4!(x0, x5, x10, x15);
            qr4!(x1, x6, x11, x12);
            qr4!(x2, x7, x8, x13);
            qr4!(x3, x4, x9, x14);
        }
        // Feed-forward: add the input state back, then write block-major.
        let rows = [
            add4(x0, [SIGMA[0]; 4]),
            add4(x1, [SIGMA[1]; 4]),
            add4(x2, [SIGMA[2]; 4]),
            add4(x3, [SIGMA[3]; 4]),
            add4(x4, [k[0]; 4]),
            add4(x5, [k[1]; 4]),
            add4(x6, [k[2]; 4]),
            add4(x7, [k[3]; 4]),
            add4(x8, [k[4]; 4]),
            add4(x9, [k[5]; 4]),
            add4(x10, [k[6]; 4]),
            add4(x11, [k[7]; 4]),
            add4(x12, i12),
            add4(x13, i13),
            add4(x14, [self.stream as u32; 4]),
            add4(x15, [(self.stream >> 32) as u32; 4]),
        ];
        for (w, row) in rows.iter().enumerate() {
            for (lane, &v) in row.iter().enumerate() {
                out[16 * lane + w] = v;
            }
        }
        self.counter = self.counter.wrapping_add(4);
    }

    fn refill(&mut self) {
        self.buf = self.generate_block();
        self.idx = 0;
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Next 64 random bits: two consecutive buffered words (lo, hi),
    /// consumed with a single index check on the fast path.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        if self.idx + 2 <= 16 {
            let lo = u64::from(self.buf[self.idx]);
            let hi = u64::from(self.buf[self.idx + 1]);
            self.idx += 2;
            return (hi << 32) | lo;
        }
        // Buffer exhausted (or a pair split across a refill after an odd
        // number of `next_u32` calls): fall back to the word-at-a-time
        // path, which is what the fast path is bit-compatible with.
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Fills `out` with the same `u64` sequence that repeated
    /// [`next_u64`](Self::next_u64) calls would produce, but drains
    /// whole 16-word blocks straight into the output — one bounds check
    /// and one block-function call per 8 values instead of per-draw
    /// index bookkeeping.
    pub fn fill_u64s(&mut self, out: &mut [u64]) {
        let mut i = 0;
        // Align first: drain complete buffered pairs through the scalar
        // fast path (at most 8 draws), stopping *before* a pair would
        // straddle a refill.
        while i < out.len() && self.idx + 2 <= 16 {
            out[i] = self.next_u64();
            i += 1;
        }
        if i >= out.len() {
            return;
        }
        // The buffer is now exhausted (idx == 16) or holds exactly one
        // word (idx == 15 — an odd alignment, reachable only via bare
        // `next_u32` calls).
        if self.idx >= 16 {
            // Word-aligned: whole blocks, bypassing the buffer entirely.
            // Four at a time through the wide block function while the
            // remainder allows, then singles.
            let mut quad = [0u32; 64];
            while out.len() - i >= 32 {
                self.generate_block4(&mut quad);
                for (slot, pair) in out[i..i + 32].iter_mut().zip(quad.chunks_exact(2)) {
                    *slot = (u64::from(pair[1]) << 32) | u64::from(pair[0]);
                }
                i += 32;
            }
            while out.len() - i >= 8 {
                let block = self.generate_block();
                for (slot, pair) in out[i..i + 8].iter_mut().zip(block.chunks_exact(2)) {
                    *slot = (u64::from(pair[1]) << 32) | u64::from(pair[0]);
                }
                i += 8;
            }
        } else if out.len() - i >= 8 {
            // Odd alignment: every u64 pairs a carried word with the
            // next word, so pairs straddle each block boundary. Keep
            // the block path hot anyway: pair the carry with a fresh
            // block's leading word, drain the block's interior pairs,
            // and roll the block's last word into the next carry. The
            // final carry is reinstated as an (unconsumed) buffered
            // word, so the stream stays bit-identical to scalar draws.
            let mut carry = self.buf[15];
            self.idx = 16;
            let mut block = [0u32; 16];
            while out.len() - i >= 8 {
                block = self.generate_block();
                out[i] = (u64::from(block[0]) << 32) | u64::from(carry);
                for (slot, pair) in out[i + 1..i + 8]
                    .iter_mut()
                    .zip(block[1..15].chunks_exact(2))
                {
                    *slot = (u64::from(pair[1]) << 32) | u64::from(pair[0]);
                }
                carry = block[15];
                i += 8;
            }
            self.buf = block;
            self.idx = 15; // buf[15] == carry, not yet consumed
        }
        // Tail: at most 7 values through the scalar path.
        while i < out.len() {
            out[i] = self.next_u64();
            i += 1;
        }
    }

    /// Fills `out` with random bytes: the `next_u32` word stream
    /// serialized little-endian. Once the internal buffer is drained,
    /// whole 16-word blocks are written 64 bytes at a time with a single
    /// bounds check per block. Bit-identical to consuming words one by
    /// one (a trailing partial word consumes one full word, as a scalar
    /// draw would).
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut rest = out;
        // Drain buffered words first so the block path starts aligned.
        while !rest.is_empty() && self.idx < 16 {
            rest = Self::write_word(self.next_u32(), rest);
        }
        // Whole blocks, bypassing the buffer.
        while rest.len() >= 64 {
            let block = self.generate_block();
            let (chunk, tail) = rest.split_at_mut(64);
            for (dst, w) in chunk.chunks_exact_mut(4).zip(block) {
                dst.copy_from_slice(&w.to_le_bytes());
            }
            rest = tail;
        }
        // Tail: word at a time from one final buffered block.
        while !rest.is_empty() {
            rest = Self::write_word(self.next_u32(), rest);
        }
    }

    /// Writes one little-endian word (or its prefix) into `dst`,
    /// returning the unwritten remainder.
    fn write_word(word: u32, dst: &mut [u8]) -> &mut [u8] {
        let bytes = word.to_le_bytes();
        let n = dst.len().min(4);
        dst[..n].copy_from_slice(&bytes[..n]);
        &mut dst[n..]
    }
}

/// One SplitMix64 step (Steele, Lea, Flood 2014), used for key expansion.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity: bit balance over 64k words within 1%.
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut ones = 0u64;
        let n = 65_536u64;
        for _ in 0..n {
            ones += u64::from(rng.next_u32().count_ones());
        }
        let frac = ones as f64 / (n as f64 * 32.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }

    #[test]
    fn clone_snapshots_position() {
        let mut a = ChaCha12Rng::seed_from_u64(3);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_u64_matches_word_pairs() {
        // The one-check fast path must reproduce the (lo, hi) word
        // pairing of the original word-at-a-time implementation.
        let mut words = ChaCha12Rng::seed_from_u64(91);
        let mut pairs = ChaCha12Rng::seed_from_u64(91);
        for _ in 0..1000 {
            let lo = u64::from(words.next_u32());
            let hi = u64::from(words.next_u32());
            assert_eq!(pairs.next_u64(), (hi << 32) | lo);
        }
    }

    #[test]
    fn fill_u64s_matches_scalar_stream() {
        for len in [0usize, 1, 5, 7, 8, 9, 15, 16, 17, 64, 300] {
            let mut scalar = ChaCha12Rng::seed_from_u64(1234);
            let mut batched = scalar.clone();
            // Misalign the block boundary so draining + blocks + tail
            // all get exercised.
            scalar.next_u64();
            batched.next_u64();
            let want: Vec<u64> = (0..len).map(|_| scalar.next_u64()).collect();
            let mut got = vec![0u64; len];
            batched.fill_u64s(&mut got);
            assert_eq!(got, want, "len {len}");
            // And the generators stay in lockstep afterwards.
            assert_eq!(scalar.next_u64(), batched.next_u64(), "len {len} post");
        }
    }

    #[test]
    fn fill_u64s_is_exact_after_odd_alignment() {
        // A bare next_u32 leaves the buffer odd-aligned; the fill must
        // still be bit-identical to scalar draws (now via the carry
        // block path rather than a scalar fallback), at every length
        // that exercises drain/blocks/tail, from every odd offset.
        for drained in [1usize, 3, 9, 13, 15] {
            for len in [0usize, 1, 7, 8, 9, 16, 40, 129] {
                let mut scalar = ChaCha12Rng::seed_from_u64(77);
                let mut batched = scalar.clone();
                for _ in 0..drained {
                    scalar.next_u32();
                    batched.next_u32();
                }
                let want: Vec<u64> = (0..len).map(|_| scalar.next_u64()).collect();
                let mut got = vec![0u64; len];
                batched.fill_u64s(&mut got);
                assert_eq!(got, want, "drained {drained} len {len}");
                // And the generators stay in lockstep afterwards.
                assert_eq!(scalar.next_u32(), batched.next_u32(), "post state");
            }
        }
    }

    #[test]
    fn mixed_32_64_bit_stream_is_bit_identical() {
        // Interleave bare word draws, scalar u64 draws, and bulk fills
        // in a fixed pattern that repeatedly flips the alignment; the
        // combined stream must equal the pure word-at-a-time pairing.
        let mut mixed = ChaCha12Rng::seed_from_u64(4096);
        let mut words = ChaCha12Rng::seed_from_u64(4096);
        let next_ref_u64 = |w: &mut ChaCha12Rng| {
            let lo = u64::from(w.next_u32());
            let hi = u64::from(w.next_u32());
            (hi << 32) | lo
        };
        for round in 0..8 {
            // One bare word flips to odd alignment…
            assert_eq!(mixed.next_u32(), words.next_u32(), "round {round}");
            // …a bulk fill must ride the carry block path…
            let len = 11 + 8 * round;
            let mut got = vec![0u64; len];
            mixed.fill_u64s(&mut got);
            for (i, g) in got.iter().enumerate() {
                assert_eq!(*g, next_ref_u64(&mut words), "round {round} fill {i}");
            }
            // …then scalar u64 draws continue seamlessly…
            for i in 0..5 {
                assert_eq!(
                    mixed.next_u64(),
                    next_ref_u64(&mut words),
                    "round {round} u64 {i}"
                );
            }
            // …and a second bare word re-evens the alignment, so the
            // next round's fill takes the aligned block path.
            assert_eq!(mixed.next_u32(), words.next_u32(), "round {round} tail");
            let mut got = vec![0u64; 19];
            mixed.fill_u64s(&mut got);
            for (i, g) in got.iter().enumerate() {
                assert_eq!(*g, next_ref_u64(&mut words), "round {round} fill2 {i}");
            }
        }
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        for len in [0usize, 1, 3, 4, 5, 63, 64, 65, 130, 333] {
            let mut words = ChaCha12Rng::seed_from_u64(56);
            let mut bytes = ChaCha12Rng::seed_from_u64(56);
            let mut want = Vec::with_capacity(len + 4);
            while want.len() < len {
                want.extend_from_slice(&words.next_u32().to_le_bytes());
            }
            want.truncate(len);
            let mut got = vec![0u8; len];
            bytes.fill_bytes(&mut got);
            assert_eq!(got, want, "len {len}");
        }
    }
}
