//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The workspace builds without network access, so this shim vendors
//! exactly the subset of `rand` it consumes: [`rngs::StdRng`] backed by
//! ChaCha12 (as in upstream `rand` 0.9), the [`RngCore`] /
//! [`SeedableRng`] traits, and the [`Rng`] extension trait with
//! `random::<T>()` and `random_range(..)`.
//!
//! Integer ranges use Lemire's widening-multiply rejection method, so
//! draws are exactly uniform. `f64` draws use the 53-bit mantissa
//! convention (`[0, 1)` on a 2⁻⁵³ grid), matching upstream's
//! `StandardUniform` for `f64`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand_chacha::ChaCha12Rng;

/// A low-level source of 32/64-bit random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `out` with the same sequence repeated [`next_u64`]
    /// (RngCore::next_u64) calls would produce. Generators with a
    /// block-structured keystream (e.g. [`rngs::StdRng`]) override this
    /// to emit whole blocks with one bounds check.
    fn fill_u64s(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_u64();
        }
    }
    /// Fills `out` with random bytes: the `next_u32` word stream
    /// serialized little-endian (a trailing partial word consumes one
    /// full `u32`). Block-structured generators override this with a
    /// bulk path that produces the *same* bytes and leaves the
    /// generator in the *same* state, so mixing the default and an
    /// override can never desynchronize a stream.
    fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut chunks = out.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let word = self.next_u32().to_le_bytes();
            tail.copy_from_slice(&word[..tail.len()]);
        }
    }
}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed; identical seeds yield
    /// identical streams on every platform.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from operating-system-ish entropy.
    ///
    /// The shim has no `getrandom`; it mixes the wall clock and the
    /// process id with `RandomState`'s per-process keys, which is
    /// plenty for simulation seeding (and unused on any deterministic
    /// path).
    fn from_os_rng() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    if let Ok(d) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        h.write_u128(d.as_nanos());
    }
    h.write_u64(std::process::id() as u64);
    h.finish()
}

/// Types drawable uniformly "from all values" (the `StandardUniform`
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform draw in `0..n` by Lemire's method (unbiased, usually one
/// multiply; rejects with probability `< n / 2^64`).
///
/// The rejection threshold `(2^64 − n) mod n` is strictly less than
/// `n`, so a low half that is already `≥ n` is accepted without
/// computing the modulo at all — the hot path is one widening multiply
/// per draw, and the `%` (a ~30-cycle latency chain that would
/// otherwise sit on every shuffle step) runs only in the
/// astronomically rare `lo < n` case. Word consumption and results are
/// identical to the always-compute-threshold form.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let wide = u128::from(rng.next_u64()) * u128::from(n);
    if (wide as u64) >= n {
        return (wide >> 64) as u64;
    }
    uniform_below_rare(rng, n, wide)
}

/// Cold continuation of [`uniform_below`]: the first draw's low half
/// landed under `n`, so the exact threshold decides acceptance and the
/// rejection loop runs as usual.
#[cold]
fn uniform_below_rare<R: RngCore + ?Sized>(rng: &mut R, n: u64, first: u128) -> u64 {
    let threshold = n.wrapping_neg() % n; // (2^64 - n) mod n
    let mut wide = first;
    loop {
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
        wide = u128::from(rng.next_u64()) * u128::from(n);
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, width);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // `start + u*(end-start)` can round up to exactly `end` even for
        // u < 1; clamp to keep the half-open [start, end) contract.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// Convenience extension over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value drawn from the standard distribution of `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    /// The standard generator: ChaCha12, as in upstream `rand` 0.9.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        inner: ChaCha12Rng,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
        #[inline]
        fn fill_u64s(&mut self, out: &mut [u64]) {
            self.inner.fill_u64s(out);
        }
        #[inline]
        fn fill_bytes(&mut self, out: &mut [u8]) {
            self.inner.fill_bytes(out);
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self {
                inner: ChaCha12Rng::seed_from_u64(state),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn f64_draws_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_draws_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let k = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&k));
        }
    }

    #[test]
    fn range_draws_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn from_os_rng_streams_differ() {
        // Not a determinism test: two entropy-seeded generators should
        // essentially never agree on their first word.
        let mut a = StdRng::from_os_rng();
        let mut b = StdRng::from_os_rng();
        let agree = (0..8).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(agree < 8);
    }

    #[test]
    fn f64_range_excludes_end_even_on_max_draw() {
        // With u = (2^53 - 1)/2^53, `0.5 + u * 0.5` rounds (to even) up
        // to exactly 1.0; the clamp must keep the draw below `end`.
        struct MaxRng;
        impl RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let v = MaxRng.random_range(0.5f64..1.0);
        assert!(v < 1.0, "got {v}");
        let w = MaxRng.random_range(-1.0f64..-0.5);
        assert!(w < -0.5, "got {w}");
    }

    #[test]
    fn fill_u64s_matches_scalar_draws() {
        let mut scalar = StdRng::seed_from_u64(8);
        let mut batched = StdRng::seed_from_u64(8);
        let want: Vec<u64> = (0..100).map(|_| scalar.next_u64()).collect();
        let mut got = vec![0u64; 100];
        batched.fill_u64s(&mut got);
        assert_eq!(got, want);
        assert_eq!(scalar.next_u64(), batched.next_u64());
    }

    #[test]
    fn fill_bytes_is_deterministic_and_covers_tail() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut x = vec![0u8; 37];
        let mut y = vec![0u8; 37];
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        assert_eq!(x, y);
        assert!(x.iter().any(|&v| v != 0));
    }

    #[test]
    fn fill_bytes_default_agrees_with_stdrng_override() {
        // A wrapper that forwards the word stream but does NOT override
        // fill_bytes: the trait default must produce the same bytes AND
        // leave the generator at the same stream position as StdRng's
        // block-wise override, for every tail length.
        struct NoOverride(StdRng);
        impl RngCore for NoOverride {
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
        for len in [0usize, 1, 3, 4, 5, 63, 64, 65, 130] {
            let mut plain = NoOverride(StdRng::seed_from_u64(11));
            let mut fast = StdRng::seed_from_u64(11);
            let mut x = vec![0u8; len];
            let mut y = vec![0u8; len];
            plain.fill_bytes(&mut x);
            fast.fill_bytes(&mut y);
            assert_eq!(x, y, "len {len}");
            assert_eq!(plain.next_u64(), fast.next_u64(), "len {len} post");
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
