//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so this shim implements
//! the subset of proptest its test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * the [`Strategy`] trait with `prop_map`,
//! * range strategies for the primitive numeric types,
//! * [`any`] for `u64`/`u32`/`i64`/`bool`/`f64`/`usize`,
//! * `prop::collection::vec`.
//!
//! Differences from real proptest, deliberately accepted: cases are
//! drawn uniformly (no bias toward structural edge cases), there is no
//! shrinking (a failing case panics with the generated inputs left in
//! the assertion message), and `prop_assume!` skips the case rather
//! than replacing it. Each test's stream is deterministic: the RNG is
//! seeded from a hash of the test's name, so failures reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-test random source for strategy generation.
///
/// All sampling (range uniformity, the 53-bit `f64` grid) delegates to
/// the vendored `rand` shim so the two crates share one implementation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a hash), so every test
    /// has its own reproducible case sequence.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random::<u64>()
    }

    /// Uniform draw from `[0, 1)` (53-bit grid).
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Unbiased uniform draw from `0..n`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.inner.random_range(0..n)
    }
}

/// A generator of test-case values.
///
/// The real proptest `Strategy` produces shrinkable value *trees*; the
/// shim generates plain values.
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Generates one case value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.inner.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        rng.inner.random_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    /// Finite floats only (uniform exponent mix would produce NaN/∞,
    /// which none of the workspace invariants are meant to absorb).
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Produces the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().new_value(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate and run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                // The block runs inline so prop_assume! can `continue`.
                $body
            }
        }
    )*};
}

/// Asserts a property holds for the current case (panics otherwise).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts two expressions differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_are_inclusive_exclusive() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..10_000 {
            let v = (3usize..7).new_value(&mut rng);
            assert!((3..7).contains(&v));
            let f = (-2.0f64..2.0).new_value(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::TestRng::for_test("vec");
        let strat = prop::collection::vec(0.0f64..1.0, 2..12);
        for _ in 0..1_000 {
            let v = strat.new_value(&mut rng);
            assert!((2..12).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_runs(x in 1usize..50, b in any::<bool>(), s in (0.5f64..1.0).prop_map(|v| v * 2.0)) {
            prop_assume!(x > 1);
            prop_assert!((2..50).contains(&x));
            prop_assert!((1.0..2.0).contains(&s));
            prop_assert_ne!(u8::from(b), 2);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(v in prop::collection::vec(-1.0f64..1.0, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
