//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so this shim provides
//! the benchmarking surface its `benches/` use: [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], benchmark groups,
//! [`BenchmarkId`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up,
//! then timed over an adaptively chosen iteration count (targeting
//! ~50 ms of wall time, capped), and the mean time per iteration is
//! printed as a plain-text line. There are no statistics, baselines, or
//! HTML reports. Passing `--test` (as `cargo test` does for harnessed
//! benches) runs every closure exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Wall-time budget per benchmark when measuring adaptively.
const TARGET: Duration = Duration::from_millis(50);
/// Hard cap on timed iterations per benchmark.
const MAX_ITERS: u64 = 100_000;

/// How batches are sized in [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim runs one input per iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One fresh input per iteration.
    PerIteration,
}

/// Identifies a benchmark within a group, e.g. `from_parameter(n)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter, e.g. an input size.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    /// `true` when invoked under `--test`: run the body once, skip timing.
    test_mode: bool,
    /// Mean nanoseconds per iteration, filled in by `iter*`.
    report_ns: f64,
    iters_run: u64,
}

impl Bencher {
    fn run<F: FnMut()>(&mut self, mut one_iter: F) {
        if self.test_mode {
            one_iter();
            self.report_ns = 0.0;
            self.iters_run = 1;
            return;
        }
        // Warm-up and pilot measurement.
        let t0 = Instant::now();
        one_iter();
        let pilot = t0.elapsed().max(Duration::from_nanos(1));
        let n = (TARGET.as_nanos() / pilot.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let t1 = Instant::now();
        for _ in 0..n {
            one_iter();
        }
        let total = t1.elapsed();
        self.report_ns = total.as_nanos() as f64 / n as f64;
        self.iters_run = n;
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            std::hint::black_box(routine());
        });
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded in real criterion but included here (the shim reports
    /// indicative numbers only).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            std::hint::black_box(routine(input));
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Honors the harness contract: `--test` (passed by `cargo test` to
    /// `harness = false` targets) switches to run-once mode.
    fn default() -> Self {
        Self {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            test_mode: self.test_mode,
            report_ns: 0.0,
            iters_run: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok");
        } else {
            println!(
                "{id:<50} time: {:>12}/iter  (n = {})",
                format_ns(b.report_ns),
                b.iters_run
            );
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Runs `id` with a borrowed input value.
    pub fn bench_with_input<I, N, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        N: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runner the way criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this `criterion_group!`.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion { test_mode: true };
        let mut hits = 0u32;
        c.bench_function("shim/probe", |b| b.iter(|| hits += 1));
        assert!(hits >= 1);
    }

    #[test]
    fn groups_compose_ids() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| n * 2);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut b = Bencher {
            test_mode: true,
            report_ns: 0.0,
            iters_run: 0,
        };
        b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::LargeInput);
        assert_eq!(b.iters_run, 1);
    }

    #[test]
    fn formatting_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with('s'));
    }
}
