//! The incremental-vs-rebuild proptest matrix: after **any** sequence
//! of `set_score` / `increment` updates, a [`LiveScores`] snapshot must
//! be structurally identical to `GroupedSnapshot::from_scores` on the
//! final score vector — same sorted order, group offsets, item → group
//! table, rank table, and cumulative mass. The update generator leans
//! on heavy tie pressure (quantized score levels, including signed
//! zeros) so runs are constantly created, destroyed, split, and merged,
//! and on occasional large jumps so items cross many ranks at once.

use dp_data::{GroupedSnapshot, LiveScores};
use proptest::prelude::*;

/// SplitMix64: one deterministic stream per proptest case seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A score drawn from a tie-heavy palette: mostly a few quantized
    /// levels (including ±0), sometimes a fine-grained float so the
    /// item lands in a singleton group between runs.
    fn score(&mut self, levels: u64) -> f64 {
        match self.below(8) {
            0 => -0.0,
            1 => 0.0,
            2 => (self.below(levels) as f64) + 0.5, // between-level singleton
            _ => (self.below(levels) as f64) - (levels as f64) / 2.0,
        }
    }
}

fn assert_structurally_identical(live: &mut LiveScores, mirror: &[f64], step: usize) {
    let incremental = live.snapshot();
    let rebuilt = GroupedSnapshot::from_scores(mirror).expect("mirror scores are finite");
    // PartialEq on GroupedSnapshot compares every structural table:
    // order, positions (rank table), offsets, group scores, cumulative
    // mass, and the flat item → group table.
    assert_eq!(
        *incremental, rebuilt,
        "step {step}: incremental snapshot diverged from rebuild on {mirror:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_update_sequences_match_from_scores_rebuild(
        seed in any::<u64>(),
        n in 1usize..28,
        levels in 1u64..7,
        steps in 1usize..70,
    ) {
        let mut mix = Mix(seed);
        let initial: Vec<f64> = (0..n).map(|_| mix.score(levels)).collect();
        let mut live = LiveScores::from_scores(&initial).unwrap();
        let mut mirror = initial;
        assert_structurally_identical(&mut live, &mirror, 0);

        let mut last_epoch = live.snapshot().epoch();
        for step in 1..=steps {
            let item = mix.below(n as u64) as usize;
            match mix.below(4) {
                // Absolute rewrite, possibly creating/destroying ties.
                0 | 1 => {
                    let value = mix.score(levels);
                    live.set_score(item, value).unwrap();
                    mirror[item] = value;
                }
                // Small increment: local rank drift.
                2 => {
                    let delta = (mix.below(5) as f64) - 2.0;
                    let got = live.increment(item, delta).unwrap();
                    mirror[item] += delta;
                    prop_assert_eq!(got.to_bits(), mirror[item].to_bits());
                }
                // Large jump: rank-crossing move across many groups.
                _ => {
                    let delta = if mix.below(2) == 0 {
                        3.0 * levels as f64
                    } else {
                        -3.0 * (levels as f64)
                    };
                    live.increment(item, delta).unwrap();
                    mirror[item] += delta;
                }
            }
            assert_structurally_identical(&mut live, &mirror, step);

            // Epochs only move forward, and only when structure moved.
            let epoch = live.snapshot().epoch();
            prop_assert!(epoch >= last_epoch, "epoch went backwards at step {}", step);
            last_epoch = epoch;
        }
    }

    #[test]
    fn interleaved_snapshots_stay_pinned_while_updates_continue(
        seed in any::<u64>(),
        n in 2usize..20,
        steps in 1usize..40,
    ) {
        // Epoch-pinning: a snapshot taken mid-sequence must remain
        // bit-identical to the rebuild of the scores *at that moment*,
        // no matter what later updates do.
        let mut mix = Mix(seed);
        let initial: Vec<f64> = (0..n).map(|_| mix.score(5)).collect();
        let mut live = LiveScores::from_scores(&initial).unwrap();
        let mut mirror = initial;

        let mut pinned = Vec::new();
        for _ in 0..steps {
            let item = mix.below(n as u64) as usize;
            let value = mix.score(5);
            live.set_score(item, value).unwrap();
            mirror[item] = value;
            if mix.below(3) == 0 {
                pinned.push((live.snapshot(), mirror.clone()));
            }
        }
        for (snap, scores_then) in &pinned {
            let rebuilt = GroupedSnapshot::from_scores(scores_then).unwrap();
            prop_assert_eq!(&**snap, &rebuilt);
        }
    }
}
