//! Integration tests for the workload substrate: Table-1 calibration
//! invariants, FIMI round trips on generated data, and property tests
//! on the `ScoreVector` conventions every experiment depends on.

use dp_data::{io, DataError, DatasetSpec, ScoreVector, TransactionDataset};
use dp_mechanisms::DpRng;
use proptest::prelude::*;

#[test]
fn every_workload_decays_monotonically_by_rank() {
    // The algorithms' behavior is driven by the score distribution's
    // shape; at minimum every generator must be non-increasing in rank.
    for spec in DatasetSpec::all() {
        let s = spec.supports();
        for w in s.windows(2).take(5_000) {
            assert!(w[0] >= w[1], "{} is not rank-sorted", spec.name);
        }
    }
}

#[test]
fn workload_totals_approximate_calibration_targets() {
    // Total occurrences ≈ records × (items per record) for each
    // stand-in (DESIGN.md §4). Generous ±50% envelopes — this pins the
    // order of magnitude, which is what drives experiment behavior.
    let totals: Vec<(String, f64)> = DatasetSpec::all()
        .into_iter()
        .map(|spec| {
            let total: u64 = spec.supports().iter().sum();
            (spec.name.to_owned(), total as f64)
        })
        .collect();
    let expect = [
        ("BMS-POS", 3.7e6),
        ("Kosarak", 3.3e6), // Figure-3 slope calibration (s = 1.15)
        ("AOL", 2.8e6),     // ≈4.3 keyword occurrences per record
        ("Zipf", 1.0e6),
    ];
    for ((name, total), (want_name, want)) in totals.iter().zip(expect) {
        assert_eq!(name, want_name);
        assert!(
            *total > want * 0.5 && *total < want * 2.0,
            "{name}: total {total:.2e} vs calibration {want:.2e}"
        );
    }
}

#[test]
fn zipf_scores_follow_inverse_rank_exactly() {
    // §6: "the i'th query has a score proportional to 1/i".
    let s = DatasetSpec::zipf().supports();
    let head = s[0] as f64;
    for (i, &v) in s.iter().enumerate().skip(1).step_by(997) {
        let expected = head / (i + 1) as f64;
        assert!(
            (v as f64 - expected).abs() <= 1.0 + expected * 0.01,
            "rank {}: {v} vs {expected}",
            i + 1
        );
    }
}

#[test]
fn paper_thresholds_separate_head_from_tail() {
    // The §6 threshold (avg of c-th and (c+1)-th score) must sit
    // between those two order statistics for every workload and c.
    for spec in DatasetSpec::all() {
        let scores = spec.scores();
        for c in [25usize, 100, 300] {
            let t = scores.paper_threshold(c);
            let at_c = scores.score_at_rank(c).unwrap();
            let next = scores.score_at_rank(c + 1).unwrap();
            assert!(next <= t && t <= at_c, "{}: c={c}", spec.name);
        }
    }
}

#[test]
fn generated_dataset_survives_fimi_roundtrip() {
    // Build transactions realizing the BMS-POS head, write FIMI, read
    // back, verify supports — the full offline→real-data bridge.
    let mut rng = DpRng::seed_from_u64(3001);
    let head: Vec<u64> = DatasetSpec::bms_pos()
        .supports()
        .into_iter()
        .take(40)
        .map(|s| s.min(2_000))
        .collect();
    let data = TransactionDataset::from_target_supports(&head, 2_000, &mut rng);
    let mut buf = Vec::new();
    io::write_transactions(&data, &mut buf).unwrap();
    let reread = io::read_transactions_with_universe(buf.as_slice(), head.len()).unwrap();
    assert_eq!(reread.item_supports(), data.item_supports());
}

#[test]
fn neighbor_datasets_shift_supports_by_at_most_one() {
    // The Δ = 1 sensitivity assumption of every counting-query
    // experiment, exercised through the dataset API.
    let mut rng = DpRng::seed_from_u64(3011);
    let data = TransactionDataset::from_target_supports(&[30, 20, 10, 5], 50, &mut rng);
    let with_extra = data.with_record_added(vec![0, 2]).unwrap();
    let base = data.item_supports();
    let shifted = with_extra.item_supports();
    for (a, b) in base.iter().zip(&shifted) {
        assert!(b.abs_diff(*a) <= 1);
    }
    // And monotone: all changes in the same direction (§4.3).
    assert!(base.iter().zip(&shifted).all(|(a, b)| b >= a));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn top_c_returns_the_c_largest_scores(
        scores in prop::collection::vec(0.0f64..1e9, 1..200),
        c in 1usize..50,
    ) {
        let sv = ScoreVector::new(scores.clone()).unwrap();
        let top = sv.top_c(c);
        prop_assert_eq!(top.len(), c.min(scores.len()));
        // Every selected score >= every unselected score.
        let selected: std::collections::HashSet<usize> = top.iter().copied().collect();
        let min_sel = top
            .iter()
            .map(|&i| scores[i])
            .fold(f64::INFINITY, f64::min);
        for (i, &s) in scores.iter().enumerate() {
            if !selected.contains(&i) {
                prop_assert!(s <= min_sel);
            }
        }
    }

    #[test]
    fn top_c_is_sorted_descending_with_index_tiebreak(
        scores in prop::collection::vec(0.0f64..100.0, 1..100),
        c in 1usize..30,
    ) {
        let sv = ScoreVector::new(scores.clone()).unwrap();
        let top = sv.top_c(c);
        for w in top.windows(2) {
            let (a, b) = (scores[w[0]], scores[w[1]]);
            prop_assert!(a > b || (a == b && w[0] < w[1]));
        }
    }

    #[test]
    fn grouped_is_a_lossless_multiset_encoding(
        scores in prop::collection::vec(0.0f64..50.0, 1..300),
    ) {
        let sv = ScoreVector::new(scores.clone()).unwrap();
        let grouped = sv.grouped();
        // Counts sum to length; values strictly descend; every score
        // appears with its exact multiplicity.
        let total: u64 = grouped.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(total as usize, scores.len());
        for w in grouped.windows(2) {
            prop_assert!(w[0].0 > w[1].0);
        }
        for &(v, n) in &grouped {
            let count = scores.iter().filter(|&&s| s == v).count() as u64;
            prop_assert_eq!(count, n);
        }
    }

    #[test]
    fn paper_threshold_lies_between_boundary_ranks(
        scores in prop::collection::vec(0.0f64..1e6, 2..200),
        c in 1usize..60,
    ) {
        let sv = ScoreVector::new(scores).unwrap();
        let t = sv.paper_threshold(c);
        let c_eff = c.min(sv.len());
        let at_c = sv.score_at_rank(c_eff).unwrap();
        match sv.score_at_rank(c_eff + 1) {
            Some(next) => prop_assert!(next <= t && t <= at_c),
            None => prop_assert_eq!(t, at_c),
        }
    }

    #[test]
    fn score_at_rank_matches_sorted_order(
        scores in prop::collection::vec(-1e3f64..1e3, 1..150),
    ) {
        let sv = ScoreVector::new(scores.clone()).unwrap();
        let mut sorted = scores;
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (rank, want) in sorted.iter().enumerate() {
            prop_assert_eq!(sv.score_at_rank(rank + 1).unwrap(), *want);
        }
    }

    #[test]
    fn fimi_roundtrip_preserves_supports_for_arbitrary_datasets(
        records in prop::collection::vec(
            prop::collection::vec(0u32..40, 1..8),
            1..60,
        ),
    ) {
        let data = TransactionDataset::new(records, 40).unwrap();
        let mut buf = Vec::new();
        io::write_transactions(&data, &mut buf).unwrap();
        let reread = io::read_transactions_with_universe(buf.as_slice(), 40).unwrap();
        prop_assert_eq!(reread.item_supports(), data.item_supports());
    }

    #[test]
    fn from_target_supports_is_exact_when_feasible(
        targets in prop::collection::vec(0u64..80, 1..40),
    ) {
        let mut rng = DpRng::seed_from_u64(3021);
        let data = TransactionDataset::from_target_supports(&targets, 80, &mut rng);
        prop_assert_eq!(data.item_supports(), targets);
    }
}

#[test]
fn score_vector_rejects_bad_input_via_public_api() {
    assert!(matches!(
        ScoreVector::new(vec![]).unwrap_err(),
        DataError::Empty
    ));
    assert!(matches!(
        ScoreVector::new(vec![f64::NAN]).unwrap_err(),
        DataError::NonFiniteScore { .. }
    ));
}
