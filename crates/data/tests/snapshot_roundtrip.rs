//! Property tests for the persisted-snapshot codec, mirroring the
//! WAL's `wal_roundtrip.rs` discipline: round-trips are bit-identical,
//! every truncation is a clean attributable error, and every
//! single-byte flip is rejected (header bytes by the CRC, payload
//! bytes by the digest). Corrupt input must never panic.

use dp_data::persist::{scores_digest, SnapshotCodecError, SNAPSHOT_HEADER_LEN};
use dp_data::{GroupedSnapshot, LiveScores};
use proptest::prelude::*;

/// SplitMix64 stream for per-case score/update generation.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn score(&mut self) -> f64 {
        ((self.next() % 11) as f64) - 3.0
    }
}

/// Builds a snapshot at a nonzero epoch by walking a `LiveScores`
/// through `updates` publish cycles, so round-trips also cover the
/// epoch field.
fn snapshot_at_epoch(mix: &mut Mix, n: usize, updates: usize) -> GroupedSnapshot {
    let initial: Vec<f64> = (0..n).map(|_| mix.score()).collect();
    let mut live = LiveScores::from_scores(&initial).unwrap();
    for _ in 0..updates {
        let item = (mix.next() % n as u64) as usize;
        let value = mix.score() + 0.25; // off the lattice: guaranteed structure change
        let _ = live.set_score(item, value);
        let _ = live.snapshot(); // publish, advancing the epoch when dirty
    }
    (*live.snapshot()).clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_is_bit_identical(
        seed in any::<u64>(),
        n in 1usize..40,
        updates in 0usize..6,
    ) {
        let mut mix = Mix(seed);
        let snap = snapshot_at_epoch(&mut mix, n, updates);
        let bytes = snap.to_bytes();
        let back = GroupedSnapshot::from_bytes(&bytes).unwrap();
        // Structural tables bit-identical...
        prop_assert_eq!(&back, &snap);
        // ...and the version stamp survives too.
        prop_assert_eq!(back.epoch(), snap.epoch());
        // Re-encoding is byte-identical (canonical encoder).
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn truncation_at_every_byte_is_a_clean_error(
        seed in any::<u64>(),
        n in 1usize..24,
    ) {
        let mut mix = Mix(seed);
        let snap = snapshot_at_epoch(&mut mix, n, 1);
        let bytes = snap.to_bytes();
        for cut in 0..bytes.len() {
            match GroupedSnapshot::from_bytes(&bytes[..cut]) {
                Err(SnapshotCodecError::Truncated { needed, have }) => {
                    prop_assert_eq!(have, cut);
                    prop_assert!(needed > cut, "cut {} reported needed {}", cut, needed);
                }
                other => prop_assert!(
                    false,
                    "cut {} of {}: expected Truncated, got {:?}",
                    cut,
                    bytes.len(),
                    other.map(|s| s.len_items())
                ),
            }
        }
    }

    #[test]
    fn flipping_any_byte_is_rejected(
        seed in any::<u64>(),
        n in 1usize..24,
        bit in 0u32..8,
    ) {
        let mut mix = Mix(seed);
        let snap = snapshot_at_epoch(&mut mix, n, 1);
        let bytes = snap.to_bytes();
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << bit;
            let err = match GroupedSnapshot::from_bytes(&corrupt) {
                Err(e) => e,
                Ok(_) => {
                    prop_assert!(false, "flip at byte {} bit {} was accepted", pos, bit);
                    unreachable!()
                }
            };
            if pos < SNAPSHOT_HEADER_LEN {
                // Any header flip — magic, sizes, digests, the CRC
                // field itself — is attributed to the header CRC.
                prop_assert_eq!(
                    err,
                    SnapshotCodecError::BadHeaderCrc,
                    "header flip at byte {} bit {}",
                    pos,
                    bit
                );
            } else {
                // Any payload flip is attributed to the payload digest.
                prop_assert_eq!(
                    err,
                    SnapshotCodecError::PayloadDigestMismatch,
                    "payload flip at byte {} bit {}",
                    pos,
                    bit
                );
            }
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(
        junk in prop::collection::vec(any::<u32>().prop_map(|v| v as u8), 0..200),
    ) {
        // Decoding garbage must always return an error (or, absurdly
        // unlikely, a valid snapshot) — never panic.
        let _ = GroupedSnapshot::from_bytes(&junk);
    }

    #[test]
    fn scores_digest_tracks_score_identity(
        seed in any::<u64>(),
        n in 1usize..32,
    ) {
        let mut mix = Mix(seed);
        let scores: Vec<f64> = (0..n).map(|_| mix.score()).collect();
        let snap = GroupedSnapshot::from_scores(&scores).unwrap();
        let bytes = snap.to_bytes();
        // The persisted fingerprint matches the digest of the raw
        // scores the snapshot was built from (the warm loader's
        // staleness gate)...
        prop_assert_eq!(
            dp_data::persist::peek_scores_digest(&bytes).unwrap(),
            scores_digest(&scores)
        );
        // ...and moves when any score moves.
        let mut other = scores.clone();
        let item = (mix.next() % n as u64) as usize;
        other[item] += 1.0;
        prop_assert_ne!(scores_digest(&other), scores_digest(&scores));
    }
}
