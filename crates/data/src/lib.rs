//! # dp-data
//!
//! Workload substrate for the `sparse-vector` workspace: the datasets,
//! queries, and score vectors on which the paper's evaluation (Section 6)
//! runs.
//!
//! The paper evaluates on item frequencies from three real transaction
//! datasets (BMS-POS, Kosarak, AOL) plus a synthetic Zipf distribution
//! (Table 1). The real datasets are not redistributable in this offline
//! environment, so [`generators`] provides Zipf–Mandelbrot stand-ins
//! calibrated to Table 1's record/item counts and Figure 3's head
//! supports — see `DESIGN.md` §4 for why this preserves the behaviour
//! that drives the experiments (head separability and tail mass).
//!
//! Contents:
//!
//! - [`ScoreVector`] — a vector of query scores with the paper's
//!   threshold convention (average of the `c`-th and `(c+1)`-th highest
//!   scores) and deterministic top-`c`.
//! - [`GroupedScores`] — the index-preserving grouped form (runs of
//!   tied scores in decreasing order plus the inverse item → rank
//!   table), which grouped selection samplers consume to stay
//!   `O(#groups)` instead of `O(#items)`, and whose
//!   [`rank_cut`](GroupedScores::rank_cut) query resolves any cutoff
//!   `c` to its threshold / top-sum in `O(log #groups)` ([`RankCut`]).
//! - [`TransactionDataset`] — a concrete market-basket dataset with
//!   support counting and neighbor construction (add/remove one record),
//!   used by the examples and the privacy auditor.
//! - [`queries`] — the counting-query abstraction (`Δ = 1`, monotonic)
//!   that SVT consumes.
//! - [`generators`] — the four evaluation workloads plus the reusable
//!   Zipf and Zipf–Mandelbrot machinery behind them.
//! - [`io`] — FIMI-format transaction file reading/writing, so users
//!   with the original datasets can run the harness on the real data.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod error;
pub mod generators;
pub mod groups;
pub mod io;
pub mod queries;
pub mod scores;
pub mod topk;

pub use dataset::{ItemId, TransactionDataset};
pub use error::DataError;
pub use generators::catalog::DatasetSpec;
pub use groups::{GroupedScores, RankCut};
pub use scores::ScoreVector;

/// Result alias for the data substrate.
pub type Result<T> = std::result::Result<T, DataError>;
