//! # dp-data
//!
//! Workload substrate for the `sparse-vector` workspace: the datasets,
//! queries, and score vectors on which the paper's evaluation (Section 6)
//! runs.
//!
//! The paper evaluates on item frequencies from three real transaction
//! datasets (BMS-POS, Kosarak, AOL) plus a synthetic Zipf distribution
//! (Table 1). The real datasets are not redistributable in this offline
//! environment, so [`generators`] provides Zipf–Mandelbrot stand-ins
//! calibrated to Table 1's record/item counts and Figure 3's head
//! supports — see `DESIGN.md` §4 for why this preserves the behaviour
//! that drives the experiments (head separability and tail mass).
//!
//! Contents:
//!
//! - [`ScoreVector`] — a vector of query scores with the paper's
//!   threshold convention (average of the `c`-th and `(c+1)`-th highest
//!   scores) and deterministic top-`c`.
//! - [`GroupedSnapshot`] — the immutable, epoch-stamped
//!   index-preserving grouped form (runs of tied scores in decreasing
//!   order plus the inverse item → rank table), which grouped selection
//!   samplers consume to stay `O(#groups)` instead of `O(#items)`, and
//!   whose [`rank_cut`](GroupedSnapshot::rank_cut) query resolves any
//!   cutoff `c` to its threshold / top-sum in `O(1)` ([`RankCut`]).
//!   [`persist`] gives it a fixed-width on-disk form with a
//!   CRC-guarded header for warm-start context caches.
//! - [`LiveScores`] — the mutable owner of a score vector:
//!   `set_score` / `increment` maintain the sorted-order tables
//!   *incrementally* (no re-sort) and `snapshot()` publishes cheap
//!   `Arc`-shared [`GroupedSnapshot`]s with a monotonically increasing
//!   epoch, so serving layers can evolve a dataset under traffic while
//!   open sessions keep a pinned, consistent view.
//! - [`TransactionDataset`] — a concrete market-basket dataset with
//!   support counting and neighbor construction (add/remove one record),
//!   used by the examples and the privacy auditor.
//! - [`queries`] — the counting-query abstraction (`Δ = 1`, monotonic)
//!   that SVT consumes.
//! - [`generators`] — the four evaluation workloads plus the reusable
//!   Zipf and Zipf–Mandelbrot machinery behind them.
//! - [`io`] — FIMI-format transaction file reading/writing, so users
//!   with the original datasets can run the harness on the real data.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod error;
pub mod generators;
pub mod groups;
pub mod io;
pub mod live;
pub mod persist;
pub mod queries;
pub mod scores;
pub mod topk;

pub use dataset::{ItemId, TransactionDataset};
pub use error::DataError;
pub use generators::catalog::DatasetSpec;
pub use groups::{GroupedScores, GroupedSnapshot, RankCut};
pub use live::LiveScores;
pub use persist::{scores_digest, SnapshotCodecError};
pub use scores::ScoreVector;

/// Result alias for the data substrate.
pub type Result<T> = std::result::Result<T, DataError>;
