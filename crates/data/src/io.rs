//! Reading and writing transaction data in the FIMI text format.
//!
//! The paper's real datasets (BMS-POS, Kosarak; Table 1) are
//! conventionally distributed in the FIMI repository format: one
//! transaction per line, items as whitespace-separated non-negative
//! integers. This environment has no copy of those files, so the
//! evaluation harness runs on the calibrated generators of
//! [`crate::generators`] — but a downstream user who *does* have the
//! originals can load them here and reproduce the figures on the real
//! data, which is exactly the substitution contract in `DESIGN.md` §4.
//!
//! Parsing rules:
//!
//! * items are separated by any run of spaces or tabs;
//! * blank lines and lines starting with `#` or `%` are skipped
//!   (some mirrors prepend comment headers);
//! * the item universe is `0..=max_item` unless a larger universe is
//!   requested explicitly;
//! * malformed tokens are hard errors with a 1-based line number —
//!   silently dropping records would silently change every support.

use crate::dataset::{ItemId, TransactionDataset};
use crate::error::DataError;
use crate::Result;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Reads FIMI-format transactions from any reader.
///
/// The item universe is inferred as `max item + 1`. Use
/// [`read_transactions_with_universe`] to pin a larger universe (e.g.
/// to keep zero-support items addressable).
///
/// ```
/// let data = dp_data::io::read_transactions("0 1 2\n1 2\n2\n".as_bytes())?;
/// assert_eq!(data.n_records(), 3);
/// assert_eq!(data.item_supports(), vec![1, 2, 3]);
/// # Ok::<(), dp_data::DataError>(())
/// ```
///
/// # Errors
/// [`DataError::Io`] on read failures; [`DataError::Parse`] on
/// malformed tokens; [`DataError::Empty`] when no transactions are
/// present.
pub fn read_transactions<R: Read>(reader: R) -> Result<TransactionDataset> {
    read_impl(reader, None)
}

/// Reads FIMI-format transactions with an explicit item universe size.
///
/// # Errors
/// As [`read_transactions`], plus [`DataError::ItemOutOfRange`] if any
/// transaction mentions an item `≥ n_items`.
pub fn read_transactions_with_universe<R: Read>(
    reader: R,
    n_items: usize,
) -> Result<TransactionDataset> {
    read_impl(reader, Some(n_items))
}

/// Reads FIMI-format transactions from a file path.
///
/// # Errors
/// As [`read_transactions`].
pub fn read_transactions_file<P: AsRef<Path>>(path: P) -> Result<TransactionDataset> {
    let file = std::fs::File::open(path)?;
    read_transactions(BufReader::new(file))
}

fn read_impl<R: Read>(reader: R, n_items: Option<usize>) -> Result<TransactionDataset> {
    let reader = BufReader::new(reader);
    let mut transactions: Vec<Vec<ItemId>> = Vec::new();
    let mut max_item: Option<ItemId> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut record: Vec<ItemId> = Vec::new();
        for token in trimmed.split_ascii_whitespace() {
            let item: ItemId = token.parse().map_err(|_| DataError::Parse {
                line: idx + 1,
                reason: format!("`{token}` is not a non-negative integer item id"),
            })?;
            max_item = Some(max_item.map_or(item, |m: ItemId| m.max(item)));
            record.push(item);
        }
        transactions.push(record);
    }
    if transactions.is_empty() {
        return Err(DataError::Empty);
    }
    let inferred = max_item.map_or(0, |m| m as usize + 1);
    let universe = match n_items {
        Some(n) => n,
        None => inferred,
    };
    TransactionDataset::new(transactions, universe)
}

/// Writes a dataset in FIMI format (one line per transaction, items
/// space-separated, in sorted order as stored).
///
/// Empty transactions are skipped: the FIMI line format cannot
/// represent them (an empty line is indistinguishable from formatting),
/// and they carry no support information. A write→read round trip
/// therefore preserves every item support but may shrink the record
/// count.
///
/// # Errors
/// [`DataError::Io`] on write failures.
pub fn write_transactions<W: Write>(dataset: &TransactionDataset, mut writer: W) -> Result<()> {
    let mut line = String::new();
    for t in dataset.transactions() {
        if t.is_empty() {
            continue;
        }
        line.clear();
        for (i, item) in t.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&item.to_string());
        }
        line.push('\n');
        writer.write_all(line.as_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

/// Writes a dataset to a file in FIMI format.
///
/// # Errors
/// [`DataError::Io`] on create/write failures.
pub fn write_transactions_file<P: AsRef<Path>>(
    dataset: &TransactionDataset,
    path: P,
) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_transactions(dataset, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_mechanisms::DpRng;

    const SAMPLE: &str = "# header comment\n0 1 2\n\n1 2\n% another comment\n2\n";

    #[test]
    fn parses_comments_blanks_and_records() {
        let d = read_transactions(SAMPLE.as_bytes()).unwrap();
        assert_eq!(d.n_records(), 3);
        assert_eq!(d.n_items(), 3);
        assert_eq!(d.item_supports(), vec![1, 2, 3]);
    }

    #[test]
    fn explicit_universe_keeps_zero_support_items() {
        let d = read_transactions_with_universe(SAMPLE.as_bytes(), 10).unwrap();
        assert_eq!(d.n_items(), 10);
        assert_eq!(d.item_supports()[3..], [0; 7]);
    }

    #[test]
    fn explicit_universe_too_small_is_an_error() {
        let err = read_transactions_with_universe(SAMPLE.as_bytes(), 2).unwrap_err();
        assert!(matches!(err, DataError::ItemOutOfRange { item: 2, .. }));
    }

    #[test]
    fn malformed_token_reports_line_number() {
        let err = read_transactions("0 1\n2 x 3\n".as_bytes()).unwrap_err();
        match err {
            DataError::Parse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains('x'), "{reason}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn negative_item_is_a_parse_error() {
        assert!(matches!(
            read_transactions("0 -1\n".as_bytes()),
            Err(DataError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(matches!(
            read_transactions("".as_bytes()),
            Err(DataError::Empty)
        ));
        assert!(matches!(
            read_transactions("# only comments\n\n".as_bytes()),
            Err(DataError::Empty)
        ));
    }

    #[test]
    fn roundtrip_preserves_supports() {
        let mut rng = DpRng::seed_from_u64(277);
        let original = TransactionDataset::from_target_supports(&[40, 25, 10, 0, 3], 50, &mut rng);
        let mut buf = Vec::new();
        write_transactions(&original, &mut buf).unwrap();
        // Universe must be pinned: item 3 has zero support and item 4
        // may otherwise define the inferred max.
        let reread = read_transactions_with_universe(buf.as_slice(), 5).unwrap();
        assert_eq!(reread.item_supports(), original.item_supports());
        // Empty transactions are unrepresentable in FIMI and dropped on
        // write; only non-empty records survive the round trip.
        let non_empty = original
            .transactions()
            .iter()
            .filter(|t| !t.is_empty())
            .count();
        assert_eq!(reread.n_records(), non_empty);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("svt-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.dat");
        let d = TransactionDataset::new(vec![vec![0, 2], vec![1]], 3).unwrap();
        write_transactions_file(&d, &path).unwrap();
        let reread = read_transactions_file(&path).unwrap();
        assert_eq!(reread.item_supports(), d.item_supports());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_transactions_file("/nonexistent/definitely/missing.dat").unwrap_err();
        assert!(matches!(err, DataError::Io(_)));
    }

    #[test]
    fn duplicate_items_within_a_line_are_deduplicated() {
        let d = read_transactions("5 5 5\n".as_bytes()).unwrap();
        assert_eq!(d.item_supports()[5], 1);
    }
}
