//! Index-preserving score runs: the immutable grouped *snapshot* of a
//! score vector that still knows *which items* share each score — the
//! per-dataset source of truth every simulation engine reads from.
//!
//! [`ScoreVector::grouped`](crate::ScoreVector::grouped) collapses a
//! score vector to `(score, count)` pairs — enough for engines that only
//! measure aggregate metrics, but not for samplers that must return
//! actual item indices. [`GroupedSnapshot`] keeps the full mapping, in
//! both directions:
//!
//! * the item indices sorted by decreasing score, partitioned into runs
//!   of tied scores (`order` / `offsets`), which grouped selection
//!   samplers (the Exponential-Mechanism top-`c` in `svt-core`) consume
//!   to draw *per group* instead of per item;
//! * the inverse tables ([`position_of`](GroupedSnapshot::position_of)
//!   and the flat item → group table behind
//!   [`group_of_item`](GroupedSnapshot::group_of_item)), which resolve
//!   any item to its global rank, its group, and its score
//!   ([`score_of_item`](GroupedSnapshot::score_of_item)) in `O(1)` —
//!   which is what lets the grouped SVT mirror examine concrete items
//!   without ever touching the raw score slice, at slice-read cost.
//!
//! On top of the runs sit cumulative member counts (the `offsets`
//! prefix) and cumulative score mass (`prefix_sums`), so any cutoff `c`
//! resolves its §6 threshold, effective size, and top-`c` score sum in
//! `O(1)` via [`rank_cut`](GroupedSnapshot::rank_cut) — no per-`c`
//! re-sort anywhere.
//!
//! A snapshot is **immutable** and stamped with an [`epoch`]
//! (`epoch`): version 0 for a snapshot sorted directly from a raw
//! slice, and the publishing [`LiveScores`](crate::LiveScores) owner's
//! counter for snapshots produced by incremental maintenance. Consumers
//! that hold a snapshot (engines, open server sessions) are pinned to
//! that epoch: later score updates build *new* snapshots and never
//! mutate one already shared.
//!
//! [`epoch`]: GroupedSnapshot::epoch

use crate::error::DataError;
use crate::Result;

/// Everything about one cutoff rank `c` that a per-`(engine, c)`
/// context needs, resolved against a [`GroupedSnapshot`] in `O(1)`
/// by [`GroupedSnapshot::rank_cut`] — no re-sort, no `O(n)` pass.
///
/// `threshold` reproduces
/// [`ScoreVector::paper_threshold`](crate::ScoreVector::paper_threshold)
/// bit for bit (same ranks, same arithmetic); `top_sum` is the §6 SER
/// denominator `ΣTopc`, accumulated group-wise (count × score per full
/// group plus the boundary group's partial run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankCut {
    /// Effective cutoff: `min(c, number of items)`.
    pub c_eff: usize,
    /// The paper's §6 threshold: the average of the `c`-th and
    /// `(c+1)`-th highest scores (falling back to the `c`-th when there
    /// is no `(c+1)`-th).
    pub threshold: f64,
    /// Sum of the `c_eff` highest scores.
    pub top_sum: f64,
}

/// The historical name of [`GroupedSnapshot`], kept as an alias for
/// call sites that predate the snapshot/live split.
pub type GroupedScores = GroupedSnapshot;

/// An immutable, epoch-stamped view of scores grouped by exact value,
/// in decreasing score order, with the member item indices of every
/// group and the inverse item → rank table.
///
/// Invariants (upheld by construction):
/// * groups are ordered by strictly decreasing score;
/// * within a group, member indices are in increasing item order;
/// * every item index in `0..len_items()` appears in exactly one group;
/// * [`position_of`](Self::position_of) is the inverse permutation of
///   [`item`](Self::item).
///
/// Equality ([`PartialEq`]) compares the structural tables only — two
/// snapshots of the same grouping are equal even if one was rebuilt
/// from scratch (epoch 0) and the other published incrementally by a
/// [`LiveScores`](crate::LiveScores) at a later [`epoch`](Self::epoch).
///
/// ```
/// use dp_data::GroupedSnapshot;
///
/// let g = GroupedSnapshot::from_scores(&[2.0, 7.0, 2.0, 2.0, 7.0, 1.0])?;
/// assert_eq!(g.num_groups(), 3);
/// assert_eq!(g.score(0), 7.0);
/// assert_eq!(g.members(0), &[1, 4]);
/// assert_eq!(g.members(1), &[0, 2, 3]);
/// assert_eq!(g.len(2), 1);
/// assert_eq!(g.score_of_item(3), 2.0);
/// assert_eq!(g.top_c(2), &[1, 4]);
/// assert_eq!(g.epoch(), 0);
/// # Ok::<(), dp_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GroupedSnapshot {
    /// Item indices sorted by (score desc, index asc).
    pub(crate) order: Vec<u32>,
    /// Inverse of `order`: `positions[item]` is the item's global
    /// sorted position (its 0-based rank).
    pub(crate) positions: Vec<u32>,
    /// Group `g` spans `order[offsets[g] .. offsets[g + 1]]`; length is
    /// `num_groups() + 1` with `offsets[0] == 0` and
    /// `offsets[num_groups()] == order.len()`. Doubles as the
    /// cumulative member count: `offsets[g]` items precede group `g`.
    pub(crate) offsets: Vec<u32>,
    /// The shared score of each group, strictly decreasing.
    pub(crate) scores: Vec<f64>,
    /// Cumulative score mass: `prefix_sums[g]` is
    /// `Σ_{h ≤ g} len(h) · score(h)`.
    pub(crate) prefix_sums: Vec<f64>,
    /// Flat item → group table: `group_of[item]` is the group whose run
    /// contains `item`. One u32 per item buys `O(1)` group and score
    /// resolution on the grouped engine's hot path (ROADMAP item 5a),
    /// where the binary search over `offsets` was the remaining
    /// per-examined-item log factor.
    pub(crate) group_of: Vec<u32>,
    /// Version stamp: 0 for a direct sort, the publisher's counter for
    /// incrementally maintained snapshots. Excluded from equality.
    pub(crate) epoch: u64,
}

/// Structural equality over the grouping tables; the [`epoch`]
/// version stamp is deliberately excluded (it identifies *when* the
/// snapshot was published, not *what* it contains).
///
/// [`epoch`]: GroupedSnapshot::epoch
impl PartialEq for GroupedSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.order == other.order
            && self.positions == other.positions
            && self.offsets == other.offsets
            && self.scores == other.scores
            && self.prefix_sums == other.prefix_sums
            && self.group_of == other.group_of
    }
}

impl GroupedSnapshot {
    /// Groups a raw score slice into an epoch-0 snapshot.
    ///
    /// # Errors
    /// [`DataError::Empty`] on an empty slice and
    /// [`DataError::NonFiniteScore`] if any entry is NaN or infinite
    /// (matching [`ScoreVector::new`](crate::ScoreVector::new)).
    pub fn from_scores(scores: &[f64]) -> Result<Self> {
        if scores.is_empty() {
            return Err(DataError::Empty);
        }
        for (index, &value) in scores.iter().enumerate() {
            if !value.is_finite() {
                return Err(DataError::NonFiniteScore { index, value });
            }
        }
        let mut order: Vec<u32> = (0..scores.len() as u32).collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("scores are finite")
                .then(a.cmp(&b))
        });
        Ok(Self::from_sorted_order(scores, order))
    }

    /// Builds the runs from an already-sorted index order (score desc,
    /// index asc). `order` must be a permutation of `0..scores.len()`.
    pub(crate) fn from_sorted_order(scores: &[f64], order: Vec<u32>) -> Self {
        debug_assert_eq!(order.len(), scores.len());
        let mut positions = vec![0u32; order.len()];
        let mut group_of = vec![0u32; order.len()];
        let mut offsets = Vec::new();
        let mut group_scores = Vec::new();
        let mut prefix_sums = Vec::new();
        let mut prev = f64::INFINITY;
        for (pos, &i) in order.iter().enumerate() {
            positions[i as usize] = pos as u32;
            let s = scores[i as usize];
            if group_scores.is_empty() || s != prev {
                offsets.push(pos as u32);
                group_scores.push(s);
                prev = s;
            }
            group_of[i as usize] = (group_scores.len() - 1) as u32;
        }
        offsets.push(order.len() as u32);
        let mut running = 0.0;
        for (g, &s) in group_scores.iter().enumerate() {
            running += f64::from(offsets[g + 1] - offsets[g]) * s;
            prefix_sums.push(running);
        }
        Self {
            order,
            positions,
            offsets,
            scores: group_scores,
            prefix_sums,
            group_of,
            epoch: 0,
        }
    }

    /// Assembles a snapshot from already-validated tables (the
    /// incremental publisher and the persisted-context decoder). The
    /// caller vouches for the structural invariants.
    pub(crate) fn from_parts(
        order: Vec<u32>,
        positions: Vec<u32>,
        offsets: Vec<u32>,
        scores: Vec<f64>,
        prefix_sums: Vec<f64>,
        group_of: Vec<u32>,
        epoch: u64,
    ) -> Self {
        debug_assert_eq!(order.len(), positions.len());
        debug_assert_eq!(order.len(), group_of.len());
        debug_assert_eq!(offsets.len(), scores.len() + 1);
        debug_assert_eq!(scores.len(), prefix_sums.len());
        debug_assert_eq!(offsets.first().copied(), Some(0));
        debug_assert_eq!(offsets.last().copied(), Some(order.len() as u32));
        Self {
            order,
            positions,
            offsets,
            scores,
            prefix_sums,
            group_of,
            epoch,
        }
    }

    /// The snapshot's version stamp: 0 when sorted directly from a raw
    /// slice, the publisher's monotonically increasing counter when
    /// produced by [`LiveScores::snapshot`](crate::LiveScores::snapshot).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total number of items.
    #[inline]
    pub fn len_items(&self) -> usize {
        self.order.len()
    }

    /// Number of score groups (distinct score values).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.scores.len()
    }

    /// The shared score of group `g`.
    #[inline]
    pub fn score(&self, g: usize) -> f64 {
        self.scores[g]
    }

    /// Number of items in group `g`.
    #[inline]
    pub fn len(&self, g: usize) -> u64 {
        u64::from(self.offsets[g + 1] - self.offsets[g])
    }

    /// Start of group `g`'s run in the global sorted order (the
    /// position-space handle samplers use with [`item`](Self::item)).
    /// Equivalently: how many items outscore group `g` (the cumulative
    /// member count of groups `0..g`).
    #[inline]
    pub fn offset(&self, g: usize) -> u32 {
        self.offsets[g]
    }

    /// The item indices of group `g`, in increasing item order.
    #[inline]
    pub fn members(&self, g: usize) -> &[u32] {
        let lo = self.offsets[g] as usize;
        let hi = self.offsets[g + 1] as usize;
        &self.order[lo..hi]
    }

    /// The item index stored at global sorted position `pos`
    /// (`0..len_items()`).
    #[inline]
    pub fn item(&self, pos: u32) -> u32 {
        self.order[pos as usize]
    }

    /// The global sorted position (0-based rank, score desc / index
    /// asc) of `item` — the inverse of [`item`](Self::item).
    #[inline]
    pub fn position_of(&self, item: usize) -> u32 {
        self.positions[item]
    }

    /// The group containing global sorted position `pos`, resolved in
    /// `O(1)` through the flat item → group table.
    #[inline]
    pub fn group_of_pos(&self, pos: u32) -> usize {
        debug_assert!((pos as usize) < self.len_items());
        self.group_of[self.order[pos as usize] as usize] as usize
    }

    /// The group containing `item`, in `O(1)`.
    #[inline]
    pub fn group_of_item(&self, item: usize) -> usize {
        self.group_of[item] as usize
    }

    /// The score of `item`, resolved through its group in `O(1)`.
    ///
    /// Numerically equal to the raw score the group was built from
    /// (`==`-equal; a group mixing `+0.0` and `-0.0` reports the run
    /// leader's sign).
    #[inline]
    pub fn score_of_item(&self, item: usize) -> f64 {
        self.scores[self.group_of[item] as usize]
    }

    /// Whether `item` is in the exact top-`c` under the deterministic
    /// tie-break (score desc, then smaller index) — equivalent to
    /// membership in [`top_c`](Self::top_c) without materializing it.
    #[inline]
    pub fn is_top(&self, item: usize, c: usize) -> bool {
        (self.positions[item] as usize) < c.min(self.len_items())
    }

    /// The exact top-`c` item indices as a zero-copy prefix of the
    /// shared sorted order: decreasing score, ties broken by smaller
    /// index — identical contents and order to
    /// [`ScoreVector::top_c`](crate::ScoreVector::top_c). Growing `c`
    /// extends the slice; it never reshuffles it (prefix stability).
    #[inline]
    pub fn top_c(&self, c: usize) -> &[u32] {
        &self.order[..c.min(self.order.len())]
    }

    /// Resolves cutoff `c` to its [`RankCut`] — effective size, §6
    /// threshold, and top-`c` score sum — in `O(1)` from the
    /// cumulative tables. See [`RankCut`] for the conventions.
    pub fn rank_cut(&self, c: usize) -> RankCut {
        let n = self.len_items();
        let c_eff = c.min(n);
        // Threshold ranks mirror `ScoreVector::paper_threshold`:
        // rank c.max(1) clamped to n, and rank c.max(1) + 1 when it
        // exists.
        let rank = c.max(1);
        let at_c = self.score(self.group_of_pos(rank.min(n) as u32 - 1));
        let threshold = if rank < n {
            let next = self.score(self.group_of_pos(rank as u32));
            0.5 * (at_c + next)
        } else {
            at_c
        };
        let top_sum = if c_eff == 0 {
            0.0
        } else {
            let g = self.group_of_pos(c_eff as u32 - 1);
            let before = if g == 0 { 0.0 } else { self.prefix_sums[g - 1] };
            before + f64::from(c_eff as u32 - self.offsets[g]) * self.score(g)
        };
        RankCut {
            c_eff,
            threshold,
            top_sum,
        }
    }

    /// The compact `(score, count)` pairs, decreasing score order — the
    /// form aggregate consumers use (identical to
    /// [`ScoreVector::grouped`](crate::ScoreVector::grouped)).
    pub fn pairs(&self) -> Vec<(f64, u64)> {
        (0..self.num_groups())
            .map(|g| (self.score(g), self.len(g)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScoreVector;

    #[test]
    fn construction_validates() {
        assert_eq!(
            GroupedSnapshot::from_scores(&[]).unwrap_err(),
            DataError::Empty
        );
        let err = GroupedSnapshot::from_scores(&[1.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, DataError::NonFiniteScore { index: 1, .. }));
    }

    #[test]
    fn groups_preserve_member_indices() {
        let g = GroupedSnapshot::from_scores(&[2.0, 7.0, 2.0, 2.0, 7.0, 1.0]).unwrap();
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.len_items(), 6);
        assert_eq!(g.members(0), &[1, 4]);
        assert_eq!(g.members(1), &[0, 2, 3]);
        assert_eq!(g.members(2), &[5]);
        assert_eq!(g.score(0), 7.0);
        assert_eq!(g.score(2), 1.0);
        assert_eq!(g.len(1), 3);
        assert_eq!(g.item(g.offset(1)), 0);
    }

    #[test]
    fn all_distinct_scores_give_singleton_groups() {
        let g = GroupedSnapshot::from_scores(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(g.num_groups(), 3);
        for i in 0..3 {
            assert_eq!(g.len(i), 1);
        }
        assert_eq!(g.members(0), &[0]);
        assert_eq!(g.members(1), &[2]);
        assert_eq!(g.members(2), &[1]);
    }

    #[test]
    fn pairs_match_score_vector_grouped() {
        let v = vec![2.0, 7.0, 2.0, 2.0, 7.0, 1.0, 7.0];
        let sv = ScoreVector::new(v.clone()).unwrap();
        let g = GroupedSnapshot::from_scores(&v).unwrap();
        assert_eq!(g.pairs(), sv.grouped());
        assert_eq!(*sv.grouped_scores(), g);
    }

    #[test]
    fn epoch_is_stamped_but_excluded_from_equality() {
        let v = vec![2.0, 7.0, 2.0, 1.0];
        let a = GroupedSnapshot::from_scores(&v).unwrap();
        assert_eq!(a.epoch(), 0);
        let mut b = a.clone();
        b.epoch = 17;
        assert_eq!(b.epoch(), 17);
        // Same tables, different version stamp: still equal.
        assert_eq!(a, b);
        // Different tables: unequal regardless of epoch.
        let c = GroupedSnapshot::from_scores(&[9.0, 7.0, 2.0, 1.0]).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn every_item_appears_exactly_once() {
        let v: Vec<f64> = (0..500).map(|i| f64::from(i % 13)).collect();
        let g = GroupedSnapshot::from_scores(&v).unwrap();
        let mut seen: Vec<u32> = (0..g.num_groups())
            .flat_map(|i| g.members(i).iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<u32>>());
        // Scores strictly decrease across groups.
        for i in 1..g.num_groups() {
            assert!(g.score(i) < g.score(i - 1));
        }
    }

    #[test]
    fn positions_invert_the_sorted_order() {
        let v: Vec<f64> = (0..300).map(|i| f64::from((i * 31) % 17)).collect();
        let g = GroupedSnapshot::from_scores(&v).unwrap();
        for pos in 0..g.len_items() as u32 {
            assert_eq!(g.position_of(g.item(pos) as usize), pos);
        }
        for item in 0..g.len_items() {
            assert_eq!(g.item(g.position_of(item)) as usize, item);
        }
    }

    #[test]
    fn group_of_pos_and_score_of_item_agree_with_raw_scores() {
        let v: Vec<f64> = (0..400).map(|i| f64::from((i * 7) % 23)).collect();
        let g = GroupedSnapshot::from_scores(&v).unwrap();
        for (item, &raw) in v.iter().enumerate() {
            assert_eq!(g.score_of_item(item), raw, "item {item}");
        }
        for pos in 0..g.len_items() as u32 {
            let grp = g.group_of_pos(pos);
            assert!(g.offset(grp) <= pos);
            assert!(pos < g.offset(grp) + g.len(grp) as u32);
        }
    }

    #[test]
    fn flat_group_table_matches_offset_binary_search() {
        // The O(1) table must agree with the reference resolution it
        // replaced (binary search over cumulative member counts), for
        // every item and every sorted position.
        for v in [
            vec![2.0, 7.0, 2.0, 2.0, 7.0, 1.0, 7.0],
            vec![4.0; 9],
            vec![0.5],
            (0..600).map(|i| f64::from((i * 31) % 13)).collect(),
        ] {
            let g = GroupedSnapshot::from_scores(&v).unwrap();
            for item in 0..g.len_items() {
                let pos = g.position_of(item);
                let by_search = g
                    .offsets
                    .partition_point(|&o| o <= pos)
                    .checked_sub(1)
                    .unwrap();
                assert_eq!(g.group_of_item(item), by_search, "item {item}");
                assert_eq!(g.group_of_pos(pos), by_search, "pos {pos}");
            }
        }
    }

    #[test]
    fn top_c_matches_score_vector_top_c_including_ties() {
        let v = vec![3.0, 5.0, 5.0, 1.0, 4.0, 5.0, 4.0];
        let sv = ScoreVector::new(v.clone()).unwrap();
        let g = GroupedSnapshot::from_scores(&v).unwrap();
        for c in 0..=v.len() + 2 {
            let want: Vec<u32> = sv.top_c(c).into_iter().map(|i| i as u32).collect();
            assert_eq!(g.top_c(c), &want[..], "c={c}");
            for item in 0..v.len() {
                assert_eq!(
                    g.is_top(item, c),
                    want.contains(&(item as u32)),
                    "c={c} item={item}"
                );
            }
        }
    }

    #[test]
    fn top_c_is_prefix_stable_as_c_grows() {
        let v: Vec<f64> = (0..200).map(|i| f64::from((i * 13) % 37)).collect();
        let g = GroupedSnapshot::from_scores(&v).unwrap();
        let full = g.top_c(usize::MAX).to_vec();
        for c in 0..=v.len() {
            assert_eq!(g.top_c(c), &full[..c], "c={c}");
        }
    }

    #[test]
    fn rank_cut_matches_score_vector_reference_bit_for_bit() {
        // The load-bearing query of the shared sweep context: the
        // threshold must equal `ScoreVector::paper_threshold` bitwise
        // and c_eff/top membership must match `top_c` for every c,
        // including the tie-straddling and beyond-length edges.
        for v in [
            vec![10.0, 30.0, 20.0, 5.0],
            vec![2.0, 7.0, 2.0, 2.0, 7.0, 1.0, 7.0],
            (0..250).map(|i| f64::from((i * 31) % 13)).collect(),
            vec![4.0; 9],
            vec![0.5],
        ] {
            let sv = ScoreVector::new(v.clone()).unwrap();
            let g = GroupedSnapshot::from_scores(&v).unwrap();
            for c in 1..=v.len() + 3 {
                let cut = g.rank_cut(c);
                assert_eq!(cut.c_eff, c.min(v.len()), "c={c}");
                assert_eq!(
                    cut.threshold.to_bits(),
                    sv.paper_threshold(c).to_bits(),
                    "c={c} threshold {} vs {}",
                    cut.threshold,
                    sv.paper_threshold(c)
                );
                let want_sum: f64 = sv.top_c(c).iter().map(|&i| v[i]).sum();
                assert!(
                    (cut.top_sum - want_sum).abs() < 1e-9 * want_sum.abs().max(1.0),
                    "c={c}: top_sum {} vs {}",
                    cut.top_sum,
                    want_sum
                );
            }
        }
    }

    #[test]
    fn rank_cut_handles_c_zero() {
        let g = GroupedSnapshot::from_scores(&[5.0, 3.0, 1.0]).unwrap();
        let cut = g.rank_cut(0);
        assert_eq!(cut.c_eff, 0);
        assert_eq!(cut.top_sum, 0.0);
        // Threshold clamps c to 1, like `paper_threshold`.
        let sv = ScoreVector::new(vec![5.0, 3.0, 1.0]).unwrap();
        assert_eq!(cut.threshold.to_bits(), sv.paper_threshold(0).to_bits());
    }
}
