//! Index-preserving score runs: the grouped form of a score vector that
//! still knows *which items* share each score.
//!
//! [`ScoreVector::grouped`](crate::ScoreVector::grouped) collapses a
//! score vector to `(score, count)` pairs — enough for engines that only
//! measure aggregate metrics, but not for samplers that must return
//! actual item indices. [`GroupedScores`] keeps the full mapping: the
//! item indices sorted by decreasing score, partitioned into runs of
//! tied scores. Selection samplers (the exact engine's grouped
//! Exponential-Mechanism top-`c` in `svt-core`) draw *per group* instead
//! of per item, then expand a winning group's member uniformly via
//! [`GroupedScores::item`] — which is what turns an `O(#items)` key pass
//! into `O(#groups + c)`.

use crate::error::DataError;
use crate::Result;

/// Scores grouped by exact value, in decreasing score order, with the
/// member item indices of every group.
///
/// Invariants (upheld by construction):
/// * groups are ordered by strictly decreasing score;
/// * within a group, member indices are in increasing item order;
/// * every item index in `0..len_items()` appears in exactly one group.
///
/// ```
/// use dp_data::GroupedScores;
///
/// let g = GroupedScores::from_scores(&[2.0, 7.0, 2.0, 2.0, 7.0, 1.0])?;
/// assert_eq!(g.num_groups(), 3);
/// assert_eq!(g.score(0), 7.0);
/// assert_eq!(g.members(0), &[1, 4]);
/// assert_eq!(g.members(1), &[0, 2, 3]);
/// assert_eq!(g.len(2), 1);
/// # Ok::<(), dp_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedScores {
    /// Item indices sorted by (score desc, index asc).
    order: Vec<u32>,
    /// Group `g` spans `order[offsets[g] .. offsets[g + 1]]`; length is
    /// `num_groups() + 1` with `offsets[0] == 0` and
    /// `offsets[num_groups()] == order.len()`.
    offsets: Vec<u32>,
    /// The shared score of each group, strictly decreasing.
    scores: Vec<f64>,
}

impl GroupedScores {
    /// Groups a raw score slice.
    ///
    /// # Errors
    /// [`DataError::Empty`] on an empty slice and
    /// [`DataError::NonFiniteScore`] if any entry is NaN or infinite
    /// (matching [`ScoreVector::new`](crate::ScoreVector::new)).
    pub fn from_scores(scores: &[f64]) -> Result<Self> {
        if scores.is_empty() {
            return Err(DataError::Empty);
        }
        for (index, &value) in scores.iter().enumerate() {
            if !value.is_finite() {
                return Err(DataError::NonFiniteScore { index, value });
            }
        }
        let mut order: Vec<u32> = (0..scores.len() as u32).collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("scores are finite")
                .then(a.cmp(&b))
        });
        Ok(Self::from_sorted_order(scores, order))
    }

    /// Builds the runs from an already-sorted index order (score desc,
    /// index asc). `order` must be a permutation of `0..scores.len()`.
    pub(crate) fn from_sorted_order(scores: &[f64], order: Vec<u32>) -> Self {
        debug_assert_eq!(order.len(), scores.len());
        let mut offsets = Vec::new();
        let mut group_scores = Vec::new();
        let mut prev = f64::INFINITY;
        for (pos, &i) in order.iter().enumerate() {
            let s = scores[i as usize];
            if group_scores.is_empty() || s != prev {
                offsets.push(pos as u32);
                group_scores.push(s);
                prev = s;
            }
        }
        offsets.push(order.len() as u32);
        Self {
            order,
            offsets,
            scores: group_scores,
        }
    }

    /// Total number of items.
    #[inline]
    pub fn len_items(&self) -> usize {
        self.order.len()
    }

    /// Number of score groups (distinct score values).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.scores.len()
    }

    /// The shared score of group `g`.
    #[inline]
    pub fn score(&self, g: usize) -> f64 {
        self.scores[g]
    }

    /// Number of items in group `g`.
    #[inline]
    pub fn len(&self, g: usize) -> u64 {
        u64::from(self.offsets[g + 1] - self.offsets[g])
    }

    /// Start of group `g`'s run in the global sorted order (the
    /// position-space handle samplers use with [`item`](Self::item)).
    #[inline]
    pub fn offset(&self, g: usize) -> u32 {
        self.offsets[g]
    }

    /// The item indices of group `g`, in increasing item order.
    #[inline]
    pub fn members(&self, g: usize) -> &[u32] {
        let lo = self.offsets[g] as usize;
        let hi = self.offsets[g + 1] as usize;
        &self.order[lo..hi]
    }

    /// The item index stored at global sorted position `pos`
    /// (`0..len_items()`).
    #[inline]
    pub fn item(&self, pos: u32) -> u32 {
        self.order[pos as usize]
    }

    /// The compact `(score, count)` pairs, decreasing score order — the
    /// form the aggregate grouped engine consumes (identical to
    /// [`ScoreVector::grouped`](crate::ScoreVector::grouped)).
    pub fn pairs(&self) -> Vec<(f64, u64)> {
        (0..self.num_groups())
            .map(|g| (self.score(g), self.len(g)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScoreVector;

    #[test]
    fn construction_validates() {
        assert_eq!(
            GroupedScores::from_scores(&[]).unwrap_err(),
            DataError::Empty
        );
        let err = GroupedScores::from_scores(&[1.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, DataError::NonFiniteScore { index: 1, .. }));
    }

    #[test]
    fn groups_preserve_member_indices() {
        let g = GroupedScores::from_scores(&[2.0, 7.0, 2.0, 2.0, 7.0, 1.0]).unwrap();
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.len_items(), 6);
        assert_eq!(g.members(0), &[1, 4]);
        assert_eq!(g.members(1), &[0, 2, 3]);
        assert_eq!(g.members(2), &[5]);
        assert_eq!(g.score(0), 7.0);
        assert_eq!(g.score(2), 1.0);
        assert_eq!(g.len(1), 3);
        assert_eq!(g.item(g.offset(1)), 0);
    }

    #[test]
    fn all_distinct_scores_give_singleton_groups() {
        let g = GroupedScores::from_scores(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(g.num_groups(), 3);
        for i in 0..3 {
            assert_eq!(g.len(i), 1);
        }
        assert_eq!(g.members(0), &[0]);
        assert_eq!(g.members(1), &[2]);
        assert_eq!(g.members(2), &[1]);
    }

    #[test]
    fn pairs_match_score_vector_grouped() {
        let v = vec![2.0, 7.0, 2.0, 2.0, 7.0, 1.0, 7.0];
        let sv = ScoreVector::new(v.clone()).unwrap();
        let g = GroupedScores::from_scores(&v).unwrap();
        assert_eq!(g.pairs(), sv.grouped());
        assert_eq!(sv.grouped_scores(), g);
    }

    #[test]
    fn every_item_appears_exactly_once() {
        let v: Vec<f64> = (0..500).map(|i| f64::from(i % 13)).collect();
        let g = GroupedScores::from_scores(&v).unwrap();
        let mut seen: Vec<u32> = (0..g.num_groups())
            .flat_map(|i| g.members(i).iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<u32>>());
        // Scores strictly decrease across groups.
        for i in 1..g.num_groups() {
            assert!(g.score(i) < g.score(i - 1));
        }
    }
}
