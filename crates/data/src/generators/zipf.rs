//! The paper's synthetic Zipf workload.
//!
//! §6: "the i'th query has a score proportional to 1/i", with Table 1
//! fixing 1,000,000 records over 10,000 items. We realize this as
//!
//! ```text
//! score_i = round(C / i),   C = n_records / H(n_items)
//! ```
//!
//! where `H` is the harmonic number, so the scores of all items sum to
//! (approximately) the number of records — as if every record
//! contributed a single item draw from the Zipf distribution. This puts
//! the head score at `C ≈ 102,170`, matching the ≈10⁵ head visible in
//! the paper's Figure 3.

use crate::error::DataError;
use crate::Result;

/// The `n`-th harmonic number `H(n) = Σ_{i=1..n} 1/i`.
///
/// Computed by direct summation from the small end for accuracy; `n` in
/// this workspace never exceeds a few million so this is exact enough
/// (error < 1e-12 relative) and fast.
pub fn harmonic(n: u64) -> f64 {
    let mut h = 0.0;
    // Summing ascending magnitudes (1/n upward) reduces rounding error.
    for i in (1..=n).rev() {
        h += 1.0 / i as f64;
    }
    h
}

/// Generator for exact-Zipf integer scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfScores {
    /// Number of items (queries).
    pub n_items: usize,
    /// Total mass to distribute (the number of records).
    pub total_mass: f64,
}

impl ZipfScores {
    /// Creates the generator.
    ///
    /// # Errors
    /// [`DataError::InvalidGenerator`] on a zero item count or
    /// non-positive mass.
    pub fn new(n_items: usize, total_mass: f64) -> Result<Self> {
        if n_items == 0 {
            return Err(DataError::InvalidGenerator("n_items must be positive"));
        }
        if !(total_mass.is_finite() && total_mass > 0.0) {
            return Err(DataError::InvalidGenerator("total_mass must be positive"));
        }
        Ok(Self {
            n_items,
            total_mass,
        })
    }

    /// The proportionality constant `C = total_mass / H(n_items)`.
    pub fn constant(&self) -> f64 {
        self.total_mass / harmonic(self.n_items as u64)
    }

    /// Generates the integer supports `round(C / i)` for `i = 1..=n`.
    pub fn generate(&self) -> Vec<u64> {
        let c = self.constant();
        (1..=self.n_items as u64)
            .map(|i| (c / i as f64).round() as u64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_known_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-15);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // H(n) ≈ ln n + γ for large n.
        let approx = (1_000_000f64).ln() + 0.577_215_664_901_532_9;
        assert!((harmonic(1_000_000) - approx).abs() < 1e-6);
    }

    #[test]
    fn construction_validates() {
        assert!(ZipfScores::new(0, 10.0).is_err());
        assert!(ZipfScores::new(10, 0.0).is_err());
        assert!(ZipfScores::new(10, f64::NAN).is_err());
    }

    #[test]
    fn scores_follow_one_over_i() {
        let g = ZipfScores::new(100, 10_000.0).unwrap();
        let s = g.generate();
        assert_eq!(s.len(), 100);
        let c = g.constant();
        for (i, &v) in s.iter().enumerate() {
            let expected = (c / (i + 1) as f64).round() as u64;
            assert_eq!(v, expected, "rank {}", i + 1);
        }
        // Strictly non-increasing.
        assert!(s.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn total_mass_is_approximately_preserved() {
        let g = ZipfScores::new(10_000, 1_000_000.0).unwrap();
        let total: u64 = g.generate().iter().sum();
        let rel = (total as f64 - 1_000_000.0).abs() / 1_000_000.0;
        assert!(rel < 0.01, "total {total}");
    }

    #[test]
    fn paper_configuration_head_score() {
        // Table 1's Zipf dataset: head score C ≈ 102,170.
        let g = ZipfScores::new(10_000, 1_000_000.0).unwrap();
        let head = g.generate()[0];
        assert!((100_000..=105_000).contains(&head), "head {head}");
    }
}
