//! The four evaluation workloads of Table 1, with their calibrations.
//!
//! | Dataset | Records | Items | Source |
//! |---|---|---|---|
//! | BMS-POS | 515,597 | 1,657 | Zipf–Mandelbrot stand-in |
//! | Kosarak | 990,002 | 41,270 | Zipf–Mandelbrot stand-in |
//! | AOL | 647,377 | 2,290,685 | Zipf–Mandelbrot stand-in |
//! | Zipf | 1,000,000 | 10,000 | exact construction from §6 |
//!
//! Calibration targets for the stand-ins (see `DESIGN.md` §4):
//!
//! * **BMS-POS** — point-of-sale baskets: moderately flat head
//!   (`shift = 8`), gentle decay (`s = 0.9`), head support ≈ 6×10⁴
//!   (≈12% of records), total occurrences ≈ 3.7M (≈7 items/basket).
//! * **Kosarak** — click-stream with one dominating item: steep
//!   straight-line log-log decay (`s = 1.15`, no Mandelbrot shift),
//!   head support ≈ 6×10⁵ (≈60% of records, as in the real Kosarak),
//!   rank-50 support ≈ 6.7k and rank-300 ≈ 850 — matching Figure 3's
//!   Kosarak slope (6×10⁵ → ≈10³ over 300 ranks). This steepness is
//!   load-bearing: it is what makes SVT-DPBook collapse on Kosarak at
//!   `c = 50` (paper: SER 0.705) while SVT-S stays below 0.05 — the
//!   noisy-threshold scale `cΔ/ε₁ = 1000` dwarfs the mid-rank support
//!   gaps and lets tens of thousands of tail items cross spuriously.
//! * **AOL** — search keywords: huge sparse universe, head ≈ 2×10⁴,
//!   `s = 0.95`; the deep tail (≈90% of the 2.29M keywords at support 1)
//!   is what makes SVT bleed its `c` positives on noise — the effect
//!   behind the paper's worst-case AOL curves.

use crate::error::DataError;
use crate::generators::powerlaw::ZipfMandelbrot;
use crate::generators::zipf::ZipfScores;
use crate::scores::ScoreVector;
use crate::Result;

/// How a workload's scores are produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeneratorKind {
    /// A Zipf–Mandelbrot stand-in for a real dataset.
    PowerLaw(ZipfMandelbrot),
    /// The exact Zipf construction from §6.
    ExactZipf(ZipfScores),
}

/// One of the paper's evaluation workloads (a Table 1 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Display name (as in Table 1).
    pub name: &'static str,
    /// Number of records (Table 1).
    pub n_records: u64,
    /// Number of items = number of candidate queries (Table 1).
    pub n_items: usize,
    /// The generator realizing the workload.
    pub kind: GeneratorKind,
}

impl DatasetSpec {
    /// The BMS-POS stand-in.
    pub fn bms_pos() -> Self {
        Self {
            name: "BMS-POS",
            n_records: 515_597,
            n_items: 1_657,
            kind: GeneratorKind::PowerLaw(
                ZipfMandelbrot::new(1_657, 60_000.0, 0.9, 8.0, 1)
                    .expect("static calibration is valid"),
            ),
        }
    }

    /// The Kosarak stand-in.
    pub fn kosarak() -> Self {
        Self {
            name: "Kosarak",
            n_records: 990_002,
            n_items: 41_270,
            kind: GeneratorKind::PowerLaw(
                ZipfMandelbrot::new(41_270, 600_000.0, 1.15, 0.0, 1)
                    .expect("static calibration is valid"),
            ),
        }
    }

    /// The AOL stand-in.
    pub fn aol() -> Self {
        Self {
            name: "AOL",
            n_records: 647_377,
            n_items: 2_290_685,
            kind: GeneratorKind::PowerLaw(
                ZipfMandelbrot::new(2_290_685, 20_000.0, 0.95, 1.0, 1)
                    .expect("static calibration is valid"),
            ),
        }
    }

    /// The exact synthetic Zipf workload.
    pub fn zipf() -> Self {
        Self {
            name: "Zipf",
            n_records: 1_000_000,
            n_items: 10_000,
            kind: GeneratorKind::ExactZipf(
                ZipfScores::new(10_000, 1_000_000.0).expect("static calibration is valid"),
            ),
        }
    }

    /// All four workloads in the paper's order.
    pub fn all() -> Vec<Self> {
        vec![Self::bms_pos(), Self::kosarak(), Self::aol(), Self::zipf()]
    }

    /// Looks a workload up by (case-insensitive) name.
    ///
    /// # Errors
    /// [`DataError::InvalidGenerator`] for unknown names.
    pub fn by_name(name: &str) -> Result<Self> {
        Self::all()
            .into_iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
            .ok_or(DataError::InvalidGenerator("unknown dataset name"))
    }

    /// Generates the integer supports (deterministic; no randomness).
    pub fn supports(&self) -> Vec<u64> {
        match &self.kind {
            GeneratorKind::PowerLaw(g) => g.generate(),
            GeneratorKind::ExactZipf(g) => g.generate(),
        }
    }

    /// Generates the supports as a [`ScoreVector`].
    pub fn scores(&self) -> ScoreVector {
        ScoreVector::from_supports(&self.supports())
            .expect("generators produce nonempty finite supports")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_counts_are_reproduced() {
        let rows = DatasetSpec::all();
        let expected: [(&str, u64, usize); 4] = [
            ("BMS-POS", 515_597, 1_657),
            ("Kosarak", 990_002, 41_270),
            ("AOL", 647_377, 2_290_685),
            ("Zipf", 1_000_000, 10_000),
        ];
        assert_eq!(rows.len(), 4);
        for (row, (name, records, items)) in rows.iter().zip(expected) {
            assert_eq!(row.name, name);
            assert_eq!(row.n_records, records);
            assert_eq!(row.n_items, items);
        }
    }

    #[test]
    fn item_counts_match_generated_lengths() {
        for spec in [
            DatasetSpec::bms_pos(),
            DatasetSpec::kosarak(),
            DatasetSpec::zipf(),
        ] {
            assert_eq!(spec.supports().len(), spec.n_items, "{}", spec.name);
        }
    }

    #[test]
    fn aol_length_and_tail() {
        let spec = DatasetSpec::aol();
        let s = spec.supports();
        assert_eq!(s.len(), 2_290_685);
        // The deep tail sits at the min-support clamp.
        assert_eq!(*s.last().unwrap(), 1);
        // Most of the universe is support-1 keywords.
        let ones = s.iter().filter(|&&v| v == 1).count();
        assert!(ones > s.len() / 2, "support-1 items: {ones}");
    }

    #[test]
    fn heads_match_figure_3_calibration() {
        assert_eq!(DatasetSpec::bms_pos().supports()[0], 60_000);
        assert_eq!(DatasetSpec::kosarak().supports()[0], 600_000);
        assert_eq!(DatasetSpec::aol().supports()[0], 20_000);
        let zipf_head = DatasetSpec::zipf().supports()[0];
        assert!((100_000..=105_000).contains(&zipf_head), "{zipf_head}");
    }

    #[test]
    fn supports_never_exceed_record_counts() {
        for spec in DatasetSpec::all() {
            let head = spec.supports()[0];
            assert!(head <= spec.n_records, "{}: head {head}", spec.name);
        }
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(DatasetSpec::by_name("kosarak").unwrap().name, "Kosarak");
        assert_eq!(DatasetSpec::by_name("AOL").unwrap().name, "AOL");
        assert!(DatasetSpec::by_name("mnist").is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetSpec::kosarak().supports();
        let b = DatasetSpec::kosarak().supports();
        assert_eq!(a, b);
    }
}
