//! Zipf–Mandelbrot supports: calibrated stand-ins for the real datasets.
//!
//! The rank-`r` support is
//!
//! ```text
//! support(r) = head · ((1 + shift) / (r + shift))^exponent
//! ```
//!
//! so `support(1) = head`, the decay steepens with `exponent`, and
//! `shift` flattens the head (retail baskets like BMS-POS have several
//! near-equally-popular items; search keywords like AOL do not). Values
//! are rounded to integers and clamped to `[min_support, head]`; a
//! `min_support` of 1 models the fact that every item *observed* in a
//! real dataset occurs at least once.
//!
//! The three calibrations used by [`super::catalog`] match Table 1's
//! item/record counts and the head supports visible in Figure 3; see
//! `DESIGN.md` §4 for the preservation argument.

use crate::error::DataError;
use crate::Result;

/// Generator for Zipf–Mandelbrot integer supports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfMandelbrot {
    /// Number of items; supports are produced for ranks `1..=n_items`.
    pub n_items: usize,
    /// Support of the rank-1 item.
    pub head: f64,
    /// Power-law exponent `s > 0`; larger means steeper decay.
    pub exponent: f64,
    /// Mandelbrot shift `q ≥ 0`; larger means a flatter head.
    pub shift: f64,
    /// Lower clamp applied after rounding (0 allows empty items).
    pub min_support: u64,
}

impl ZipfMandelbrot {
    /// Creates the generator.
    ///
    /// # Errors
    /// [`DataError::InvalidGenerator`] on a zero item count,
    /// non-positive head or exponent, or negative shift.
    pub fn new(
        n_items: usize,
        head: f64,
        exponent: f64,
        shift: f64,
        min_support: u64,
    ) -> Result<Self> {
        if n_items == 0 {
            return Err(DataError::InvalidGenerator("n_items must be positive"));
        }
        if !(head.is_finite() && head > 0.0) {
            return Err(DataError::InvalidGenerator("head must be positive"));
        }
        if !(exponent.is_finite() && exponent > 0.0) {
            return Err(DataError::InvalidGenerator("exponent must be positive"));
        }
        if !(shift.is_finite() && shift >= 0.0) {
            return Err(DataError::InvalidGenerator("shift must be non-negative"));
        }
        Ok(Self {
            n_items,
            head,
            exponent,
            shift,
            min_support,
        })
    }

    /// The (continuous) support of rank `r` (1-based).
    pub fn support_at(&self, rank: u64) -> f64 {
        debug_assert!(rank >= 1);
        self.head * ((1.0 + self.shift) / (rank as f64 + self.shift)).powf(self.exponent)
    }

    /// Generates all `n_items` integer supports in rank order.
    pub fn generate(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.n_items);
        for rank in 1..=self.n_items as u64 {
            let s = self.support_at(rank).round() as u64;
            out.push(s.max(self.min_support));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(ZipfMandelbrot::new(0, 1.0, 1.0, 0.0, 0).is_err());
        assert!(ZipfMandelbrot::new(10, 0.0, 1.0, 0.0, 0).is_err());
        assert!(ZipfMandelbrot::new(10, 1.0, 0.0, 0.0, 0).is_err());
        assert!(ZipfMandelbrot::new(10, 1.0, 1.0, -1.0, 0).is_err());
        assert!(ZipfMandelbrot::new(10, 1.0, 1.0, 0.0, 0).is_ok());
    }

    #[test]
    fn head_is_exact_and_decay_is_monotone() {
        let g = ZipfMandelbrot::new(1000, 5000.0, 1.1, 2.0, 1).unwrap();
        let s = g.generate();
        assert_eq!(s[0], 5000);
        assert!(s.windows(2).all(|w| w[0] >= w[1]), "supports must decay");
    }

    #[test]
    fn min_support_clamps_the_tail() {
        let g = ZipfMandelbrot::new(100_000, 1000.0, 1.5, 0.0, 1).unwrap();
        let s = g.generate();
        assert!(s.iter().all(|&v| v >= 1));
        assert_eq!(*s.last().unwrap(), 1);
        // Without the clamp the deep tail would round to zero.
        let unclamped = ZipfMandelbrot::new(100_000, 1000.0, 1.5, 0.0, 0)
            .unwrap()
            .generate();
        assert_eq!(*unclamped.last().unwrap(), 0);
    }

    #[test]
    fn shift_flattens_the_head() {
        let steep = ZipfMandelbrot::new(10, 1000.0, 1.0, 0.0, 0).unwrap();
        let flat = ZipfMandelbrot::new(10, 1000.0, 1.0, 20.0, 0).unwrap();
        // Ratio of rank-2 to rank-1 is closer to 1 with a larger shift.
        let steep_ratio = steep.support_at(2) / steep.support_at(1);
        let flat_ratio = flat.support_at(2) / flat.support_at(1);
        assert!(flat_ratio > steep_ratio);
    }

    #[test]
    fn exponent_controls_decay_speed() {
        let slow = ZipfMandelbrot::new(1000, 1000.0, 0.5, 0.0, 0).unwrap();
        let fast = ZipfMandelbrot::new(1000, 1000.0, 2.0, 0.0, 0).unwrap();
        assert!(fast.support_at(100) < slow.support_at(100));
    }

    #[test]
    fn support_formula_matches_definition() {
        let g = ZipfMandelbrot::new(10, 100.0, 2.0, 3.0, 0).unwrap();
        // support(5) = 100 * (4/8)^2 = 25.
        assert!((g.support_at(5) - 25.0).abs() < 1e-9);
    }
}
