//! Synthetic workload generators.
//!
//! Two families:
//!
//! * [`zipf`] — the paper's synthetic Zipf dataset, built exactly as
//!   described in §6 ("the i'th query has a score proportional to 1/i"),
//! * [`powerlaw`] — Zipf–Mandelbrot supports used as calibrated
//!   stand-ins for the three real datasets (BMS-POS, Kosarak, AOL),
//!
//! and [`catalog`], which instantiates the four Table-1 workloads with
//! their calibration constants.

pub mod catalog;
pub mod powerlaw;
pub mod zipf;
