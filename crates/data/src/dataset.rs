//! Transaction (market-basket) datasets.
//!
//! The paper's workloads are item frequencies in transaction data: each
//! record is a set of items, the score of item `i` is its *support*
//! (the number of records containing it), and two datasets are neighbors
//! when one results from adding or deleting a record (the add/remove
//! convention under which counting queries are monotonic — §4.3).
//!
//! [`TransactionDataset`] is the concrete substrate used by the examples
//! and by the privacy auditor, which needs explicit neighbor pairs. The
//! large figure sweeps bypass it and work on [`crate::ScoreVector`]s
//! directly, exactly as the algorithms only ever observe scores.

use crate::error::DataError;
use crate::scores::ScoreVector;
use crate::Result;
use dp_mechanisms::DpRng;

/// Identifier of an item; the universe is `0..n_items`.
pub type ItemId = u32;

/// A dataset of transactions over a fixed item universe.
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionDataset {
    transactions: Vec<Vec<ItemId>>,
    n_items: usize,
}

impl TransactionDataset {
    /// Creates a dataset, validating every item against the universe and
    /// deduplicating items within each transaction (a record either
    /// contains an item or it does not).
    ///
    /// # Errors
    /// [`DataError::ItemOutOfRange`] if any transaction mentions an item
    /// `≥ n_items`.
    pub fn new(mut transactions: Vec<Vec<ItemId>>, n_items: usize) -> Result<Self> {
        for t in &mut transactions {
            for &item in t.iter() {
                if item as usize >= n_items {
                    return Err(DataError::ItemOutOfRange { item, n_items });
                }
            }
            t.sort_unstable();
            t.dedup();
        }
        Ok(Self {
            transactions,
            n_items,
        })
    }

    /// An empty dataset over the given universe.
    pub fn empty(n_items: usize) -> Self {
        Self {
            transactions: Vec::new(),
            n_items,
        }
    }

    /// Number of records.
    #[inline]
    pub fn n_records(&self) -> usize {
        self.transactions.len()
    }

    /// Size of the item universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The records themselves (each sorted and deduplicated).
    pub fn transactions(&self) -> &[Vec<ItemId>] {
        &self.transactions
    }

    /// Support (number of containing records) of every item.
    pub fn item_supports(&self) -> Vec<u64> {
        let mut supports = vec![0u64; self.n_items];
        for t in &self.transactions {
            for &item in t {
                supports[item as usize] += 1;
            }
        }
        supports
    }

    /// Support of a single item.
    ///
    /// # Errors
    /// [`DataError::ItemOutOfRange`] for unknown items.
    pub fn support_of(&self, item: ItemId) -> Result<u64> {
        if item as usize >= self.n_items {
            return Err(DataError::ItemOutOfRange {
                item,
                n_items: self.n_items,
            });
        }
        Ok(self
            .transactions
            .iter()
            .filter(|t| t.binary_search(&item).is_ok())
            .count() as u64)
    }

    /// The supports as a [`ScoreVector`] (the object the selection
    /// algorithms consume).
    ///
    /// # Errors
    /// [`DataError::Empty`] when the item universe is empty.
    pub fn score_vector(&self) -> Result<ScoreVector> {
        ScoreVector::from_supports(&self.item_supports())
    }

    /// A neighbor with one record appended (the `D → D ∪ {t}`
    /// direction). Item validation as in [`TransactionDataset::new`].
    ///
    /// # Errors
    /// [`DataError::ItemOutOfRange`] if the record mentions unknown items.
    pub fn with_record_added(&self, mut record: Vec<ItemId>) -> Result<Self> {
        for &item in &record {
            if item as usize >= self.n_items {
                return Err(DataError::ItemOutOfRange {
                    item,
                    n_items: self.n_items,
                });
            }
        }
        record.sort_unstable();
        record.dedup();
        let mut clone = self.clone();
        clone.transactions.push(record);
        Ok(clone)
    }

    /// A neighbor with record `index` removed.
    ///
    /// # Errors
    /// [`DataError::RecordOutOfRange`] on a bad index.
    pub fn with_record_removed(&self, index: usize) -> Result<Self> {
        if index >= self.transactions.len() {
            return Err(DataError::RecordOutOfRange {
                index,
                n_records: self.transactions.len(),
            });
        }
        let mut clone = self.clone();
        clone.transactions.remove(index);
        Ok(clone)
    }

    /// Synthesizes a dataset whose item supports match `supports` as
    /// closely as possible with `n_records` records: item `i` is placed
    /// into `min(supports[i], n_records)` distinct records chosen
    /// uniformly at random. Used by the examples to turn a generated
    /// score distribution back into concrete transactions.
    pub fn from_target_supports(supports: &[u64], n_records: usize, rng: &mut DpRng) -> Self {
        let mut transactions: Vec<Vec<ItemId>> = vec![Vec::new(); n_records];
        let mut record_ids: Vec<usize> = (0..n_records).collect();
        for (item, &support) in supports.iter().enumerate() {
            let k = (support as usize).min(n_records);
            if k == 0 {
                continue;
            }
            // Partial Fisher–Yates: the first k entries of record_ids
            // become a uniform k-subset.
            for j in 0..k {
                let swap_with = j + rng.index(n_records - j);
                record_ids.swap(j, swap_with);
                transactions[record_ids[j]].push(item as ItemId);
            }
        }
        for t in &mut transactions {
            t.sort_unstable();
        }
        Self {
            transactions,
            n_items: supports.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TransactionDataset {
        TransactionDataset::new(vec![vec![0, 1], vec![1, 2], vec![1], vec![0, 2, 2]], 3).unwrap()
    }

    #[test]
    fn construction_validates_items() {
        let err = TransactionDataset::new(vec![vec![0, 5]], 3).unwrap_err();
        assert!(matches!(err, DataError::ItemOutOfRange { item: 5, .. }));
    }

    #[test]
    fn duplicate_items_in_a_record_count_once() {
        let d = small();
        // Record 3 was [0, 2, 2]; support of 2 must count it once.
        assert_eq!(d.support_of(2).unwrap(), 2);
    }

    #[test]
    fn supports_match_per_item_queries() {
        let d = small();
        let supports = d.item_supports();
        assert_eq!(supports, vec![2, 3, 2]);
        for item in 0..3 {
            assert_eq!(supports[item as usize], d.support_of(item).unwrap());
        }
        assert!(d.support_of(7).is_err());
    }

    #[test]
    fn score_vector_mirrors_supports() {
        let d = small();
        let sv = d.score_vector().unwrap();
        assert_eq!(sv.as_slice(), &[2.0, 3.0, 2.0]);
    }

    #[test]
    fn add_remove_neighbors() {
        let d = small();
        let bigger = d.with_record_added(vec![2, 2, 0]).unwrap();
        assert_eq!(bigger.n_records(), 5);
        assert_eq!(bigger.support_of(2).unwrap(), 3);
        // Adding a record changes each support by at most 1 (Δ = 1).
        let (a, b) = (d.item_supports(), bigger.item_supports());
        for i in 0..3 {
            assert!(b[i] - a[i] <= 1);
        }
        let smaller = d.with_record_removed(1).unwrap();
        assert_eq!(smaller.n_records(), 3);
        assert_eq!(smaller.support_of(2).unwrap(), 1);
        assert!(d.with_record_removed(10).is_err());
        assert!(d.with_record_added(vec![9]).is_err());
    }

    #[test]
    fn monotonicity_of_counting_queries_under_add() {
        // §4.3: adding one record moves every support in the same
        // (non-decreasing) direction.
        let d = small();
        let bigger = d.with_record_added(vec![0, 1, 2]).unwrap();
        for (a, b) in d.item_supports().iter().zip(bigger.item_supports()) {
            assert!(b >= *a);
        }
    }

    #[test]
    fn from_target_supports_hits_targets() {
        let mut rng = DpRng::seed_from_u64(163);
        let targets = [50u64, 10, 0, 100];
        let d = TransactionDataset::from_target_supports(&targets, 100, &mut rng);
        assert_eq!(d.n_records(), 100);
        assert_eq!(d.item_supports(), vec![50, 10, 0, 100]);
    }

    #[test]
    fn from_target_supports_clamps_to_record_count() {
        let mut rng = DpRng::seed_from_u64(167);
        let d = TransactionDataset::from_target_supports(&[500], 20, &mut rng);
        assert_eq!(d.item_supports(), vec![20]);
    }

    #[test]
    fn empty_dataset_has_zero_supports() {
        let d = TransactionDataset::empty(4);
        assert_eq!(d.n_records(), 0);
        assert_eq!(d.item_supports(), vec![0, 0, 0, 0]);
    }
}
