//! Score vectors: the object every selection algorithm in the paper
//! actually consumes.
//!
//! In the non-interactive setting the whole experiment reduces to a
//! vector of query scores (item supports): SVT compares them against a
//! threshold, EM samples from them, and the metrics compare selections
//! against the exact top-`c`. [`ScoreVector`] owns that vector and fixes
//! the two conventions the paper's evaluation needs:
//!
//! * **threshold**: "each time uses the average score for the c'th query
//!   and the c+1'th query as the threshold" (§6) —
//!   [`ScoreVector::paper_threshold`];
//! * **top-`c`**: deterministic, ties broken by item index —
//!   [`ScoreVector::top_c`].

use std::sync::{Arc, OnceLock};

use crate::error::DataError;
use crate::groups::GroupedSnapshot;
use crate::Result;

/// An immutable vector of query scores indexed by item/query id.
///
/// ```
/// use dp_data::ScoreVector;
///
/// let sv = ScoreVector::from_supports(&[40, 10, 90, 25])?;
/// assert_eq!(sv.top_c(2), vec![2, 0]);            // 90, 40
/// assert_eq!(sv.paper_threshold(2), 32.5);        // (40 + 25) / 2
/// assert_eq!(sv.score_at_rank(1), Some(90.0));
/// # Ok::<(), dp_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScoreVector {
    scores: Vec<f64>,
    /// Lazily built grouped snapshot, shared with every
    /// [`grouped_scores`](Self::grouped_scores) caller. `OnceLock`
    /// (not `OnceCell`) so a `ScoreVector` shared across the runner's
    /// scoped threads stays `Sync`.
    snapshot: OnceLock<Arc<GroupedSnapshot>>,
}

/// Equality is over the raw scores alone; whether the sorted snapshot
/// cache happens to be populated is an evaluation detail.
impl PartialEq for ScoreVector {
    fn eq(&self, other: &Self) -> bool {
        self.scores == other.scores
    }
}

impl ScoreVector {
    /// Wraps a vector of scores.
    ///
    /// # Errors
    /// [`DataError::Empty`] on an empty vector and
    /// [`DataError::NonFiniteScore`] if any entry is NaN or infinite.
    pub fn new(scores: Vec<f64>) -> Result<Self> {
        if scores.is_empty() {
            return Err(DataError::Empty);
        }
        for (index, &value) in scores.iter().enumerate() {
            if !value.is_finite() {
                return Err(DataError::NonFiniteScore { index, value });
            }
        }
        Ok(Self {
            scores,
            snapshot: OnceLock::new(),
        })
    }

    /// Builds a score vector from integer supports.
    ///
    /// # Errors
    /// [`DataError::Empty`] on an empty slice.
    pub fn from_supports(supports: &[u64]) -> Result<Self> {
        Self::new(supports.iter().map(|&s| s as f64).collect())
    }

    /// Number of scores.
    #[inline]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the vector is empty (never true for a constructed value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// The raw scores.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.scores
    }

    /// The score of item `i`, if in range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<f64> {
        self.scores.get(i).copied()
    }

    /// The maximum score.
    pub fn max(&self) -> f64 {
        self.scores
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The lazily built shared snapshot (sorts exactly once).
    fn snapshot_ref(&self) -> &Arc<GroupedSnapshot> {
        self.snapshot.get_or_init(|| {
            Arc::new(
                GroupedSnapshot::from_scores(&self.scores)
                    .expect("scores validated at construction"),
            )
        })
    }

    fn sorted_indices(&self) -> &[u32] {
        self.snapshot_ref().top_c(usize::MAX)
    }

    /// The indices of the `c` highest scores, ties broken by smaller
    /// index, in decreasing score order. Returns all indices when
    /// `c ≥ len()`.
    pub fn top_c(&self, c: usize) -> Vec<usize> {
        self.snapshot_ref()
            .top_c(c)
            .iter()
            .map(|&i| i as usize)
            .collect()
    }

    /// The `i`-th highest score (`i` is 1-based rank). `None` when the
    /// rank exceeds the vector length.
    pub fn score_at_rank(&self, rank: usize) -> Option<f64> {
        if rank == 0 || rank > self.len() {
            return None;
        }
        Some(self.scores[self.sorted_indices()[rank - 1] as usize])
    }

    /// Mean score of the exact top-`c` (divides by `c`, clamped to the
    /// vector length).
    pub fn top_c_average(&self, c: usize) -> f64 {
        let c = c.min(self.len()).max(1);
        let total: f64 = self
            .sorted_indices()
            .iter()
            .take(c)
            .map(|&i| self.scores[i as usize])
            .sum();
        total / c as f64
    }

    /// The paper's §6 threshold: the average of the `c`-th and
    /// `(c+1)`-th highest scores. Falls back to the `c`-th score when
    /// there is no `(c+1)`-th.
    pub fn paper_threshold(&self, c: usize) -> f64 {
        let c = c.max(1);
        let at_c = self
            .score_at_rank(c.min(self.len()))
            .expect("nonempty score vector");
        match self.score_at_rank(c + 1) {
            Some(next) => 0.5 * (at_c + next),
            None => at_c,
        }
    }

    /// Groups scores by exact value: returns `(score, count)` pairs in
    /// decreasing score order. The grouped traversal simulator operates
    /// on this compact form (AOL's 2.29M items collapse to a few
    /// thousand distinct integer supports).
    pub fn grouped(&self) -> Vec<(f64, u64)> {
        let sorted = self.sorted_indices();
        let mut out: Vec<(f64, u64)> = Vec::new();
        for &i in sorted {
            let s = self.scores[i as usize];
            match out.last_mut() {
                Some((v, n)) if *v == s => *n += 1,
                _ => out.push((s, 1)),
            }
        }
        out
    }

    /// The index-preserving grouped form: runs of tied scores in
    /// decreasing score order, each run knowing its member item indices
    /// ([`GroupedSnapshot`]). The snapshot is built once (sorting once)
    /// and shared: every call returns a clone of the same cached
    /// [`Arc`], so callers stop paying for per-call table clones.
    pub fn grouped_scores(&self) -> Arc<GroupedSnapshot> {
        Arc::clone(self.snapshot_ref())
    }

    /// Sum of all scores.
    pub fn total(&self) -> f64 {
        self.scores.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[f64]) -> ScoreVector {
        ScoreVector::new(v.to_vec()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(ScoreVector::new(vec![]).unwrap_err(), DataError::Empty);
        let err = ScoreVector::new(vec![1.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, DataError::NonFiniteScore { index: 1, .. }));
        assert!(ScoreVector::new(vec![0.0]).is_ok());
    }

    #[test]
    fn from_supports_converts() {
        let s = ScoreVector::from_supports(&[3, 1, 4]).unwrap();
        assert_eq!(s.as_slice(), &[3.0, 1.0, 4.0]);
    }

    #[test]
    fn top_c_orders_by_score_then_index() {
        let s = sv(&[5.0, 9.0, 5.0, 1.0, 9.0]);
        assert_eq!(s.top_c(3), vec![1, 4, 0]);
        assert_eq!(s.top_c(0), Vec::<usize>::new());
        assert_eq!(s.top_c(99), vec![1, 4, 0, 2, 3]);
    }

    #[test]
    fn score_at_rank_walks_sorted_order() {
        let s = sv(&[10.0, 30.0, 20.0]);
        assert_eq!(s.score_at_rank(1), Some(30.0));
        assert_eq!(s.score_at_rank(2), Some(20.0));
        assert_eq!(s.score_at_rank(3), Some(10.0));
        assert_eq!(s.score_at_rank(0), None);
        assert_eq!(s.score_at_rank(4), None);
    }

    #[test]
    fn paper_threshold_averages_boundary_scores() {
        let s = sv(&[10.0, 30.0, 20.0, 5.0]);
        // c = 2: avg of 2nd (20) and 3rd (10) highest = 15.
        assert!((s.paper_threshold(2) - 15.0).abs() < 1e-12);
        // c = len: only the c-th exists.
        assert!((s.paper_threshold(4) - 5.0).abs() < 1e-12);
        // c beyond len behaves like c = len.
        assert!((s.paper_threshold(10) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn top_c_average_divides_by_c() {
        let s = sv(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.top_c_average(2) - 3.5).abs() < 1e-12);
        assert!((s.top_c_average(4) - 2.5).abs() < 1e-12);
        // Clamped beyond length.
        assert!((s.top_c_average(10) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn grouped_collapses_ties_in_descending_order() {
        let s = sv(&[2.0, 7.0, 2.0, 2.0, 7.0, 1.0]);
        assert_eq!(s.grouped(), vec![(7.0, 2), (2.0, 3), (1.0, 1)]);
    }

    #[test]
    fn grouped_counts_sum_to_len() {
        let s = sv(&[1.0, 1.0, 2.0, 3.0, 3.0, 3.0]);
        let total: u64 = s.grouped().iter().map(|&(_, n)| n).sum();
        assert_eq!(total as usize, s.len());
    }

    #[test]
    fn grouped_scores_returns_the_shared_cached_snapshot() {
        let s = sv(&[2.0, 7.0, 2.0, 1.0]);
        let a = s.grouped_scores();
        let b = s.grouped_scores();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.epoch(), 0);
        // Equality ignores the cache: a fresh vector with the same
        // scores compares equal whether or not it has sorted yet.
        let t = sv(&[2.0, 7.0, 2.0, 1.0]);
        assert_eq!(s, t);
    }

    #[test]
    fn max_and_total() {
        let s = sv(&[1.5, -2.0, 4.0]);
        assert_eq!(s.max(), 4.0);
        assert!((s.total() - 3.5).abs() < 1e-12);
    }
}
