//! The mutable owner of a score vector: incremental rank/group
//! maintenance plus cheap epoch-stamped snapshots.
//!
//! [`LiveScores`] is the *writer* half of the snapshot/live split. It
//! keeps the same sorted-order tables as [`GroupedSnapshot`] (order,
//! positions, group offsets, group scores) and maintains them
//! **incrementally** under [`set_score`](LiveScores::set_score) /
//! [`increment`](LiveScores::increment): the updated item is rotated
//! from its old global rank to its new one, and only the tie-groups
//! whose runs the move touched are re-derived — amortized
//! `O(log G + distance moved + sizes of the touched groups)` instead of
//! the full `O(n log n)` re-sort `GroupedSnapshot::from_scores` pays.
//!
//! [`snapshot`](LiveScores::snapshot) publishes the current state as an
//! immutable [`GroupedSnapshot`] stamped with a monotonically
//! increasing epoch. The snapshot is cached behind an [`Arc`], so
//! repeated calls between mutations are a reference-count bump; the
//! first mutation after a publish invalidates the cache and reserves
//! the next epoch. The derived tables a snapshot needs but the live
//! side does not (the flat item → group table and the cumulative score
//! mass) are assembled at publish time — they cannot be patched locally
//! (a group split renumbers every later group), and `snapshot()`
//! already pays `O(n)` for the table clones.
//!
//! The correctness contract — pinned by the incremental-vs-rebuild
//! proptest matrix in `tests/live_scores.rs` — is that after **any**
//! sequence of updates, `snapshot()` is structurally equal
//! ([`PartialEq`]) to `GroupedSnapshot::from_scores` on the final
//! score vector: same order, offsets, rank table, group table, and
//! cumulative mass.

use std::sync::Arc;

use crate::error::DataError;
use crate::groups::GroupedSnapshot;
use crate::Result;

/// A mutable score vector with incrementally maintained sorted-order
/// and tie-group tables, publishing immutable epoch-stamped
/// [`GroupedSnapshot`]s.
///
/// ```
/// use dp_data::LiveScores;
///
/// let mut live = LiveScores::from_scores(&[2.0, 7.0, 2.0, 1.0])?;
/// let before = live.snapshot();
/// assert_eq!(before.epoch(), 0);
/// assert_eq!(before.top_c(2), &[1, 0]);
///
/// live.increment(3, 10.0)?; // item 3: 1.0 → 11.0, rank 3 → 0
/// let after = live.snapshot();
/// assert_eq!(after.epoch(), 1);
/// assert_eq!(after.top_c(2), &[3, 1]);
/// // The earlier snapshot is immutable: still the old view.
/// assert_eq!(before.top_c(2), &[1, 0]);
/// # Ok::<(), dp_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LiveScores {
    /// Raw per-item scores, always finite.
    scores: Vec<f64>,
    /// Item indices sorted by (score desc, index asc).
    order: Vec<u32>,
    /// Inverse of `order`.
    positions: Vec<u32>,
    /// Group `g` spans `order[offsets[g] .. offsets[g + 1]]`.
    offsets: Vec<u32>,
    /// Per-group score, strictly decreasing.
    group_scores: Vec<f64>,
    /// Epoch the next published snapshot will carry.
    next_epoch: u64,
    /// The last published snapshot, until a mutation invalidates it.
    cached: Option<Arc<GroupedSnapshot>>,
}

impl LiveScores {
    /// Builds a live owner from a raw score slice; the first
    /// [`snapshot`](Self::snapshot) carries epoch 0.
    ///
    /// # Errors
    /// [`DataError::Empty`] / [`DataError::NonFiniteScore`] exactly as
    /// [`GroupedSnapshot::from_scores`].
    pub fn from_scores(scores: &[f64]) -> Result<Self> {
        let snap = GroupedSnapshot::from_scores(scores)?;
        Ok(Self {
            scores: scores.to_vec(),
            order: snap.order.clone(),
            positions: snap.positions.clone(),
            offsets: snap.offsets.clone(),
            group_scores: snap.scores.clone(),
            next_epoch: 0,
            cached: Some(Arc::new(snap)),
        })
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// A live owner is never empty (construction rejects empty slices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current raw score of `item`.
    ///
    /// # Errors
    /// [`DataError::ItemOutOfRange`] when `item >= len()`.
    pub fn score(&self, item: usize) -> Result<f64> {
        self.scores
            .get(item)
            .copied()
            .ok_or(DataError::ItemOutOfRange {
                item: item as u32,
                n_items: self.scores.len(),
            })
    }

    /// The epoch [`snapshot`](Self::snapshot) will report: the cached
    /// snapshot's epoch while clean, the reserved next epoch once a
    /// mutation has landed.
    #[inline]
    pub fn current_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Sets `item`'s score to `new`, incrementally repairing the
    /// sorted-order and tie-group tables.
    ///
    /// # Errors
    /// [`DataError::ItemOutOfRange`] for an unknown item,
    /// [`DataError::NonFiniteScore`] for a NaN/infinite score; the
    /// tables are untouched on error.
    pub fn set_score(&mut self, item: usize, new: f64) -> Result<()> {
        let n = self.scores.len();
        if item >= n {
            return Err(DataError::ItemOutOfRange {
                item: item as u32,
                n_items: n,
            });
        }
        if !new.is_finite() {
            return Err(DataError::NonFiniteScore {
                index: item,
                value: new,
            });
        }
        let old = self.scores[item];
        self.scores[item] = new;
        if new == old {
            // Grouping is by `==`, so the structure is unchanged (this
            // also absorbs `+0.0` ↔ `-0.0` flips). No epoch bump: the
            // published view is still exact.
            return Ok(());
        }
        self.invalidate();
        self.relocate(item, new);
        Ok(())
    }

    /// Adds `delta` to `item`'s score and returns the new value.
    ///
    /// # Errors
    /// As [`set_score`](Self::set_score); the resulting score must be
    /// finite.
    pub fn increment(&mut self, item: usize, delta: f64) -> Result<f64> {
        let current = self.score(item)?;
        let new = current + delta;
        self.set_score(item, new)?;
        Ok(new)
    }

    /// Publishes the current state as an immutable epoch-stamped
    /// snapshot. Clean calls return the cached [`Arc`]; after a
    /// mutation the derived tables (item → group, cumulative mass) are
    /// assembled once and the epoch advances.
    pub fn snapshot(&mut self) -> Arc<GroupedSnapshot> {
        if let Some(cached) = &self.cached {
            return Arc::clone(cached);
        }
        let num_groups = self.group_scores.len();
        let mut group_of = vec![0u32; self.order.len()];
        for g in 0..num_groups {
            let lo = self.offsets[g] as usize;
            let hi = self.offsets[g + 1] as usize;
            for &member in &self.order[lo..hi] {
                group_of[member as usize] = g as u32;
            }
        }
        // Same left-to-right accumulation as `from_sorted_order`, so a
        // published snapshot is bit-identical in mass to a rebuild.
        let mut prefix_sums = Vec::with_capacity(num_groups);
        let mut running = 0.0;
        for (g, &s) in self.group_scores.iter().enumerate() {
            running += f64::from(self.offsets[g + 1] - self.offsets[g]) * s;
            prefix_sums.push(running);
        }
        let snap = Arc::new(GroupedSnapshot::from_parts(
            self.order.clone(),
            self.positions.clone(),
            self.offsets.clone(),
            self.group_scores.clone(),
            prefix_sums,
            group_of,
            self.next_epoch,
        ));
        self.cached = Some(Arc::clone(&snap));
        snap
    }

    /// Drops the cached snapshot and reserves the next epoch (once per
    /// dirty period, not per mutation).
    fn invalidate(&mut self) {
        if self.cached.take().is_some() {
            self.next_epoch += 1;
        }
    }

    /// The group currently containing global sorted position `pos`.
    #[inline]
    fn group_of_pos(&self, pos: usize) -> usize {
        self.offsets.partition_point(|&o| o as usize <= pos) - 1
    }

    /// Moves `item` (whose raw score was just rewritten to `new`, a
    /// value `!=` its previous one) to its correct global rank and
    /// re-derives the tie-group runs the move touched.
    fn relocate(&mut self, item: usize, new: f64) {
        let num_groups = self.group_scores.len();
        let p_old = self.positions[item] as usize;

        // Final global rank `f` of the item among the n-1 others:
        // first locate the run of strictly-greater scores, then join an
        // exact tie run (by ascending item index) if one exists. The
        // `p_old < …` adjustments account for the item vacating a slot
        // above the insertion point.
        let hg = self.group_scores.partition_point(|&s| s > new);
        let mut f;
        if hg < num_groups && self.group_scores[hg] == new {
            // Joining an existing tie run (`new != old`, so the item's
            // old run is a different one).
            let lo = self.offsets[hg] as usize;
            let hi = self.offsets[hg + 1] as usize;
            let t = self.order[lo..hi].partition_point(|&m| (m as usize) < item);
            f = lo + t;
            if p_old < lo {
                f -= 1;
            }
        } else {
            f = self.offsets[hg] as usize;
            if p_old < f {
                f -= 1;
            }
        }

        // Rotate the item into place and repair the inverse table over
        // the moved window.
        if f < p_old {
            self.order[f..=p_old].rotate_right(1);
        } else if f > p_old {
            self.order[p_old..=f].rotate_left(1);
        }
        let lo_w = f.min(p_old);
        let hi_w = f.max(p_old);
        for pos in lo_w..=hi_w {
            self.positions[self.order[pos] as usize] = pos as u32;
        }

        // Groups whose runs the window may have restructured. The edge
        // guards widen by one group where a boundary that coincides
        // with the window edge could dissolve (the score sitting at the
        // edge position changed and may now tie its neighbor's run).
        let mut ga = self.group_of_pos(lo_w);
        if ga > 0 && self.offsets[ga] as usize == lo_w {
            ga -= 1;
        }
        let mut gb = self.group_of_pos(hi_w);
        if gb + 1 < num_groups && self.offsets[gb + 1] as usize == hi_w + 1 {
            gb += 1;
        }

        // Re-derive the runs over the touched span and splice them in
        // place of the stale ones. Run leaders keep `from_sorted_order`
        // semantics: the group score is the first member's raw value.
        let start = self.offsets[ga] as usize;
        let end = self.offsets[gb + 1] as usize;
        let mut new_bounds: Vec<u32> = Vec::new();
        let mut new_scores: Vec<f64> = Vec::new();
        let mut prev = f64::INFINITY;
        for pos in start..end {
            let s = self.scores[self.order[pos] as usize];
            if new_scores.is_empty() || s != prev {
                if !new_scores.is_empty() {
                    new_bounds.push(pos as u32);
                }
                new_scores.push(s);
                prev = s;
            }
        }
        self.offsets.splice(ga + 1..gb + 1, new_bounds);
        self.group_scores.splice(ga..gb + 1, new_scores);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rebuilt(live: &LiveScores) -> GroupedSnapshot {
        GroupedSnapshot::from_scores(&live.scores).unwrap()
    }

    #[test]
    fn construction_matches_direct_snapshot() {
        let v = vec![2.0, 7.0, 2.0, 2.0, 7.0, 1.0];
        let mut live = LiveScores::from_scores(&v).unwrap();
        let snap = live.snapshot();
        assert_eq!(*snap, GroupedSnapshot::from_scores(&v).unwrap());
        assert_eq!(snap.epoch(), 0);
        assert_eq!(live.len(), 6);
        assert!(!live.is_empty());
    }

    #[test]
    fn construction_validates_like_snapshot() {
        assert_eq!(LiveScores::from_scores(&[]).unwrap_err(), DataError::Empty);
        assert!(matches!(
            LiveScores::from_scores(&[1.0, f64::INFINITY]).unwrap_err(),
            DataError::NonFiniteScore { index: 1, .. }
        ));
    }

    #[test]
    fn set_score_rejects_bad_inputs_without_mutating() {
        let mut live = LiveScores::from_scores(&[3.0, 1.0]).unwrap();
        let before = live.snapshot();
        assert!(matches!(
            live.set_score(2, 1.0).unwrap_err(),
            DataError::ItemOutOfRange {
                item: 2,
                n_items: 2
            }
        ));
        assert!(matches!(
            live.set_score(0, f64::NAN).unwrap_err(),
            DataError::NonFiniteScore { index: 0, .. }
        ));
        assert!(matches!(
            live.increment(0, f64::INFINITY).unwrap_err(),
            DataError::NonFiniteScore { index: 0, .. }
        ));
        let after = live.snapshot();
        assert_eq!(*before, *after);
        assert_eq!(after.epoch(), 0);
    }

    #[test]
    fn rank_crossing_move_matches_rebuild() {
        let mut live = LiveScores::from_scores(&[10.0, 5.0, 8.0, 1.0]).unwrap();
        live.set_score(3, 9.0).unwrap(); // bottom → second place
        assert_eq!(*live.snapshot(), rebuilt(&live));
        live.set_score(0, 0.0).unwrap(); // top → bottom
        assert_eq!(*live.snapshot(), rebuilt(&live));
    }

    #[test]
    fn tie_creation_and_destruction_match_rebuild() {
        let mut live = LiveScores::from_scores(&[10.0, 5.0, 8.0, 5.0]).unwrap();
        // Join the 5.0 run from above.
        live.set_score(0, 5.0).unwrap();
        assert_eq!(*live.snapshot(), rebuilt(&live));
        // Split it again.
        live.set_score(3, 6.0).unwrap();
        assert_eq!(*live.snapshot(), rebuilt(&live));
        // Collapse everything into one run.
        for item in 0..4 {
            live.set_score(item, 2.0).unwrap();
            assert_eq!(*live.snapshot(), rebuilt(&live));
        }
        // And shatter the single run.
        for item in 0..4 {
            live.set_score(item, f64::from(item as u32)).unwrap();
            assert_eq!(*live.snapshot(), rebuilt(&live));
        }
    }

    #[test]
    fn adjacent_boundary_merge_matches_rebuild() {
        // Regression shape: the updated item stays at its position but
        // its new score ties the *next* group's run, so the boundary on
        // the right edge of the (empty-width) move window dissolves.
        let mut live = LiveScores::from_scores(&[10.0, 5.0]).unwrap();
        live.set_score(0, 5.0).unwrap();
        assert_eq!(*live.snapshot(), rebuilt(&live));
        assert_eq!(live.snapshot().num_groups(), 1);
    }

    #[test]
    fn epoch_advances_once_per_dirty_period() {
        let mut live = LiveScores::from_scores(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(live.snapshot().epoch(), 0);
        live.set_score(1, 9.0).unwrap();
        live.increment(2, 4.0).unwrap();
        assert_eq!(live.current_epoch(), 1);
        let snap = live.snapshot();
        assert_eq!(snap.epoch(), 1);
        // Clean republish: same Arc, same epoch.
        assert!(Arc::ptr_eq(&snap, &live.snapshot()));
        live.set_score(0, 0.5).unwrap();
        assert_eq!(live.snapshot().epoch(), 2);
    }

    #[test]
    fn published_snapshots_are_immutable_under_later_updates() {
        let mut live = LiveScores::from_scores(&[4.0, 2.0, 6.0]).unwrap();
        let pinned = live.snapshot();
        let pinned_copy = (*pinned).clone();
        live.set_score(1, 100.0).unwrap();
        live.increment(0, -3.0).unwrap();
        assert_eq!(*pinned, pinned_copy);
        assert_ne!(*live.snapshot(), pinned_copy);
    }

    #[test]
    fn equal_value_rewrite_is_a_no_op() {
        let mut live = LiveScores::from_scores(&[4.0, 2.0, 4.0]).unwrap();
        let before = live.snapshot();
        live.set_score(2, 4.0).unwrap();
        live.increment(1, 0.0).unwrap();
        let after = live.snapshot();
        assert!(Arc::ptr_eq(&before, &after));
        assert_eq!(after.epoch(), 0);
    }

    #[test]
    fn long_random_walk_matches_rebuild_at_every_step() {
        // Deterministic LCG walk over a small universe with heavy tie
        // pressure (scores quantized to few distinct values).
        let mut live =
            LiveScores::from_scores(&(0..24).map(|i| f64::from(i % 5)).collect::<Vec<_>>())
                .unwrap();
        let mut state = 0x243f_6a88_85a3_08d3_u64;
        for step in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let item = (state >> 33) as usize % live.len();
            let value = f64::from(((state >> 17) % 7) as u32) - 3.0;
            if step % 3 == 0 {
                live.increment(item, value).unwrap();
            } else {
                live.set_score(item, value).unwrap();
            }
            assert_eq!(*live.snapshot(), rebuilt(&live), "step {step}");
        }
    }
}
