//! The counting-query abstraction SVT consumes.
//!
//! An SVT input is "a stream of queries, each with sensitivity no more
//! than Δ" (Fig. 1). For the paper's workloads these are item-support
//! counting queries: sensitivity 1 under add/remove-one-record
//! neighbors, and *monotonic* — changing `D` to a neighbor moves every
//! answer in the same direction (§4.3), which is what licenses the
//! halved query noise and the `1 : c^{2/3}` allocation used throughout
//! the evaluation.

use crate::dataset::{ItemId, TransactionDataset};
use crate::error::DataError;
use crate::Result;

/// A real-valued query over a transaction dataset.
pub trait Query {
    /// Evaluates the query on a dataset.
    fn evaluate(&self, data: &TransactionDataset) -> f64;

    /// The query's global sensitivity `Δ`.
    fn sensitivity(&self) -> f64;

    /// Whether the query belongs to a *monotonic* family: between any
    /// pair of neighbors, all queries of the family move in the same
    /// direction. (A property of the family and the neighbor relation,
    /// not of a single query; implementations promise it for the family
    /// they are drawn from.)
    fn is_monotonic(&self) -> bool;
}

/// The support of a single item: `|{t ∈ D : item ∈ t}|`.
///
/// Sensitivity 1; monotonic under add/remove-one neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupportQuery {
    /// The item whose support is counted.
    pub item: ItemId,
}

impl Query for SupportQuery {
    fn evaluate(&self, data: &TransactionDataset) -> f64 {
        data.support_of(self.item).map(|s| s as f64).unwrap_or(0.0)
    }

    fn sensitivity(&self) -> f64 {
        1.0
    }

    fn is_monotonic(&self) -> bool {
        true
    }
}

/// A batch of queries sharing one sensitivity bound, evaluated together.
#[derive(Debug, Clone)]
pub struct QueryBatch<Q: Query> {
    queries: Vec<Q>,
}

impl<Q: Query> QueryBatch<Q> {
    /// Wraps a nonempty list of queries.
    ///
    /// # Errors
    /// [`DataError::Empty`] on an empty batch.
    pub fn new(queries: Vec<Q>) -> Result<Self> {
        if queries.is_empty() {
            return Err(DataError::Empty);
        }
        Ok(Self { queries })
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries.
    pub fn queries(&self) -> &[Q] {
        &self.queries
    }

    /// The maximum sensitivity over the batch — the `Δ` handed to SVT.
    pub fn max_sensitivity(&self) -> f64 {
        self.queries
            .iter()
            .map(Query::sensitivity)
            .fold(0.0, f64::max)
    }

    /// Whether every query in the batch is monotonic.
    pub fn all_monotonic(&self) -> bool {
        self.queries.iter().all(Query::is_monotonic)
    }

    /// Evaluates every query against the dataset.
    pub fn evaluate_all(&self, data: &TransactionDataset) -> Vec<f64> {
        self.queries.iter().map(|q| q.evaluate(data)).collect()
    }
}

/// Convenience: the batch of all item-support queries over a dataset's
/// universe, in item order.
pub fn all_support_queries(n_items: usize) -> QueryBatch<SupportQuery> {
    QueryBatch::new(
        (0..n_items as ItemId)
            .map(|item| SupportQuery { item })
            .collect(),
    )
    .expect("n_items > 0 yields a nonempty batch")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> TransactionDataset {
        TransactionDataset::new(vec![vec![0, 1], vec![1], vec![1, 2]], 3).unwrap()
    }

    #[test]
    fn support_query_evaluates_counts() {
        let d = data();
        assert_eq!(SupportQuery { item: 1 }.evaluate(&d), 3.0);
        assert_eq!(SupportQuery { item: 0 }.evaluate(&d), 1.0);
        assert_eq!(SupportQuery { item: 1 }.sensitivity(), 1.0);
        assert!(SupportQuery { item: 1 }.is_monotonic());
    }

    #[test]
    fn batch_evaluates_in_order() {
        let d = data();
        let batch = all_support_queries(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.evaluate_all(&d), vec![1.0, 3.0, 1.0]);
        assert_eq!(batch.max_sensitivity(), 1.0);
        assert!(batch.all_monotonic());
    }

    #[test]
    fn empty_batch_rejected() {
        assert!(QueryBatch::<SupportQuery>::new(vec![]).is_err());
    }

    #[test]
    fn support_sensitivity_bound_holds_on_neighbors() {
        // |q(D) - q(D')| <= Δ = 1 for every support query, for both
        // add and remove neighbors.
        let d = data();
        let batch = all_support_queries(3);
        let base = batch.evaluate_all(&d);
        let added = batch.evaluate_all(&d.with_record_added(vec![0, 2]).unwrap());
        let removed = batch.evaluate_all(&d.with_record_removed(0).unwrap());
        for i in 0..3 {
            assert!((base[i] - added[i]).abs() <= 1.0);
            assert!((base[i] - removed[i]).abs() <= 1.0);
        }
    }

    #[test]
    fn monotonic_direction_is_uniform_across_queries() {
        let d = data();
        let batch = all_support_queries(3);
        let base = batch.evaluate_all(&d);
        let added = batch.evaluate_all(&d.with_record_added(vec![0, 1, 2]).unwrap());
        assert!(base.iter().zip(&added).all(|(a, b)| b >= a));
        let removed = batch.evaluate_all(&d.with_record_removed(2).unwrap());
        assert!(base.iter().zip(&removed).all(|(a, b)| b <= a));
    }
}
