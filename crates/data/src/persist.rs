//! Fixed-width little-endian (de)serialization of a
//! [`GroupedSnapshot`] with a CRC-guarded header — the WAL's record
//! discipline (`dp_mechanisms::wal`) applied to the persisted context
//! cache, so a warm start can skip the `O(n log n)` sort.
//!
//! ## Format (version 1)
//!
//! ```text
//! header (64 bytes, fixed width, little endian)
//!   0..8    magic          b"SVTSNAP1"
//!   8..12   version        u32 = 1
//!   12..16  reserved       u32 = 0 (canonical)
//!   16..24  n_items        u64
//!   24..32  n_groups       u64
//!   32..40  epoch          u64
//!   40..48  scores_digest  u64   (canonical per-item score bits)
//!   48..56  payload_digest u64   (over the payload bytes)
//!   56..60  reserved       u32 = 0 (canonical)
//!   60..64  header_crc     u32   CRC-32 (IEEE) of bytes 0..60
//! payload
//!   order     n_items  × u32     sorted item indices
//!   offsets  (n_groups + 1) × u32 group starts
//!   scores    n_groups × f64 bits  per-group score, strictly decreasing
//! ```
//!
//! Only the irreducible tables are stored. The inverse rank table, the
//! flat item → group table, and the cumulative mass are *derived* on
//! load with exactly the arithmetic `from_sorted_order` uses, so a
//! decoded snapshot is bit-identical to a cold rebuild from the same
//! scores — and a crafted file cannot smuggle in inconsistent derived
//! tables.
//!
//! The header CRC attributes any header corruption
//! ([`SnapshotCodecError::BadHeaderCrc`]); the payload is guarded by a
//! multiply-chain digest whose per-word step is injective, so *every*
//! single-byte flip in the payload is rejected
//! ([`SnapshotCodecError::PayloadDigestMismatch`]) — pinned by the
//! flip-every-byte proptest in `tests/snapshot_roundtrip.rs`.
//! Truncations fail with a clean, attributable
//! [`SnapshotCodecError::Truncated`], mirroring the WAL's torn-tail
//! handling.

use std::fmt;

use dp_mechanisms::wal::crc32;

use crate::groups::GroupedSnapshot;

/// Magic prefix of a persisted snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SVTSNAP1";
/// Fixed header length in bytes.
pub const SNAPSHOT_HEADER_LEN: usize = 64;
const SNAPSHOT_VERSION: u32 = 1;

/// Why a persisted snapshot failed to decode. Every variant is a clean
/// rejection — corrupt or truncated input never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotCodecError {
    /// The input ends before the advertised structure does.
    Truncated {
        /// Bytes required for the structure the header promises (or
        /// for the header itself).
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The header bytes fail their CRC — the header cannot be trusted.
    BadHeaderCrc,
    /// The magic prefix is not a snapshot file's.
    BadMagic,
    /// A CRC-valid header advertises an unknown format version.
    UnsupportedVersion(u32),
    /// A reserved field holds a non-canonical (nonzero) value.
    NonCanonical,
    /// The input continues past the advertised structure.
    TrailingBytes {
        /// Expected total length.
        expected: usize,
        /// Actual length.
        have: usize,
    },
    /// The payload bytes do not match the header's payload digest.
    PayloadDigestMismatch,
    /// The tables decoded but violate a structural invariant.
    Malformed(&'static str),
}

impl fmt::Display for SnapshotCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { needed, have } => {
                write!(f, "snapshot truncated: need {needed} bytes, have {have}")
            }
            Self::BadHeaderCrc => write!(f, "snapshot header fails its CRC"),
            Self::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            Self::NonCanonical => write!(f, "snapshot header has non-canonical reserved bytes"),
            Self::TrailingBytes { expected, have } => {
                write!(
                    f,
                    "snapshot has trailing bytes: expected {expected}, have {have}"
                )
            }
            Self::PayloadDigestMismatch => {
                write!(f, "snapshot payload does not match its digest")
            }
            Self::Malformed(what) => write!(f, "snapshot tables are malformed: {what}"),
        }
    }
}

impl std::error::Error for SnapshotCodecError {}

/// 64-bit multiply-chain digest. Each step `h ← (h ⊕ wordᵢ) · K` (K
/// odd) is injective in `h` and in `wordᵢ`, so changing any single
/// word — hence any single byte — always changes the final digest; the
/// length is absorbed up front so distinct-length inputs with a common
/// prefix also differ.
fn digest64(bytes: &[u8]) -> u64 {
    const K: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h: u64 = 0x243f_6a88_85a3_08d3 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        h = (h ^ word).wrapping_mul(K);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(last)).wrapping_mul(K);
    }
    h ^ (h >> 29)
}

/// Canonical digest of a raw score slice, for the staleness check a
/// warm loader runs before trusting a cached file: the persisted
/// header's `scores_digest` matches iff the file was built from
/// `==`-equal scores. Signed zeros are canonicalized (`-0.0 == 0.0`),
/// matching the `==`-based grouping.
pub fn scores_digest(scores: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(scores.len() * 8);
    for &s in scores {
        let canonical = if s == 0.0 { 0.0_f64 } else { s };
        bytes.extend_from_slice(&canonical.to_bits().to_le_bytes());
    }
    digest64(&bytes)
}

/// Reads the `scores_digest` field out of a CRC-valid header without
/// decoding the payload — the cheap first gate of a warm start.
///
/// # Errors
/// Any header-level [`SnapshotCodecError`]; the payload is not
/// examined.
pub fn peek_scores_digest(bytes: &[u8]) -> Result<u64, SnapshotCodecError> {
    let header = parse_header(bytes)?;
    Ok(header.scores_digest)
}

struct Header {
    n_items: usize,
    n_groups: usize,
    epoch: u64,
    scores_digest: u64,
    payload_digest: u64,
}

fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn le_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

fn parse_header(bytes: &[u8]) -> Result<Header, SnapshotCodecError> {
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(SnapshotCodecError::Truncated {
            needed: SNAPSHOT_HEADER_LEN,
            have: bytes.len(),
        });
    }
    // CRC first: every flipped header byte is attributed here, before
    // any field is interpreted.
    let stored_crc = le_u32(bytes, 60);
    if crc32(&bytes[..60]) != stored_crc {
        return Err(SnapshotCodecError::BadHeaderCrc);
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotCodecError::BadMagic);
    }
    let version = le_u32(bytes, 8);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotCodecError::UnsupportedVersion(version));
    }
    if le_u32(bytes, 12) != 0 || le_u32(bytes, 56) != 0 {
        return Err(SnapshotCodecError::NonCanonical);
    }
    let n_items = le_u64(bytes, 16);
    let n_groups = le_u64(bytes, 24);
    if n_items == 0 || n_groups == 0 || n_groups > n_items || n_items > u64::from(u32::MAX) {
        return Err(SnapshotCodecError::Malformed("impossible table sizes"));
    }
    Ok(Header {
        n_items: n_items as usize,
        n_groups: n_groups as usize,
        epoch: le_u64(bytes, 32),
        scores_digest: le_u64(bytes, 40),
        payload_digest: le_u64(bytes, 48),
    })
}

impl GroupedSnapshot {
    /// Serializes the snapshot into the fixed-width format above.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.len_items();
        let g = self.num_groups();
        let payload_len = n * 4 + (g + 1) * 4 + g * 8;
        let mut payload = Vec::with_capacity(payload_len);
        for &item in &self.order {
            payload.extend_from_slice(&item.to_le_bytes());
        }
        for &off in &self.offsets {
            payload.extend_from_slice(&off.to_le_bytes());
        }
        for &s in &self.scores {
            payload.extend_from_slice(&s.to_bits().to_le_bytes());
        }
        debug_assert_eq!(payload.len(), payload_len);

        let scores_digest = {
            let mut bytes = Vec::with_capacity(n * 8);
            for item in 0..n {
                let s = self.score_of_item(item);
                let canonical = if s == 0.0 { 0.0_f64 } else { s };
                bytes.extend_from_slice(&canonical.to_bits().to_le_bytes());
            }
            digest64(&bytes)
        };

        let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload_len);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&(g as u64).to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&scores_digest.to_le_bytes());
        out.extend_from_slice(&digest64(&payload).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(out.len(), SNAPSHOT_HEADER_LEN);
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a snapshot, deriving the rank, item → group, and
    /// cumulative-mass tables with `from_sorted_order`'s arithmetic so
    /// the result is bit-identical to a cold rebuild.
    ///
    /// # Errors
    /// A [`SnapshotCodecError`] attributing the failure; corrupt input
    /// never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotCodecError> {
        let header = parse_header(bytes)?;
        let n = header.n_items;
        let g = header.n_groups;
        let payload_len = n * 4 + (g + 1) * 4 + g * 8;
        let expected = SNAPSHOT_HEADER_LEN + payload_len;
        if bytes.len() < expected {
            return Err(SnapshotCodecError::Truncated {
                needed: expected,
                have: bytes.len(),
            });
        }
        if bytes.len() > expected {
            return Err(SnapshotCodecError::TrailingBytes {
                expected,
                have: bytes.len(),
            });
        }
        let payload = &bytes[SNAPSHOT_HEADER_LEN..];
        if digest64(payload) != header.payload_digest {
            return Err(SnapshotCodecError::PayloadDigestMismatch);
        }

        let mut at = 0usize;
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            order.push(le_u32(payload, at));
            at += 4;
        }
        let mut offsets = Vec::with_capacity(g + 1);
        for _ in 0..=g {
            offsets.push(le_u32(payload, at));
            at += 4;
        }
        let mut group_scores = Vec::with_capacity(g);
        for _ in 0..g {
            group_scores.push(f64::from_bits(le_u64(payload, at)));
            at += 8;
        }

        // Structural invariants the digest cannot vouch for (a crafted
        // file digests cleanly): offsets bracket and strictly grow,
        // group scores strictly decrease and are finite, order is a
        // permutation.
        if offsets[0] != 0 || offsets[g] as usize != n {
            return Err(SnapshotCodecError::Malformed(
                "offsets do not bracket items",
            ));
        }
        if offsets.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SnapshotCodecError::Malformed(
                "offsets not strictly increasing",
            ));
        }
        if group_scores.iter().any(|s| !s.is_finite()) {
            return Err(SnapshotCodecError::Malformed("non-finite group score"));
        }
        if group_scores.windows(2).any(|w| w[0] <= w[1]) {
            return Err(SnapshotCodecError::Malformed(
                "group scores not strictly decreasing",
            ));
        }
        let mut positions = vec![u32::MAX; n];
        for (pos, &item) in order.iter().enumerate() {
            let Some(slot) = positions.get_mut(item as usize) else {
                return Err(SnapshotCodecError::Malformed("order index out of range"));
            };
            if *slot != u32::MAX {
                return Err(SnapshotCodecError::Malformed("order is not a permutation"));
            }
            *slot = pos as u32;
        }

        // Derived tables, `from_sorted_order`-style.
        let mut group_of = vec![0u32; n];
        let mut prefix_sums = Vec::with_capacity(g);
        let mut running = 0.0;
        for (grp, &s) in group_scores.iter().enumerate() {
            let lo = offsets[grp] as usize;
            let hi = offsets[grp + 1] as usize;
            for &member in &order[lo..hi] {
                group_of[member as usize] = grp as u32;
            }
            running += f64::from(offsets[grp + 1] - offsets[grp]) * s;
            prefix_sums.push(running);
        }

        Ok(Self::from_parts(
            order,
            positions,
            offsets,
            group_scores,
            prefix_sums,
            group_of,
            header.epoch,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_bit_identical_including_epoch() {
        let v = vec![2.0, 7.0, 2.0, 2.0, 7.0, 1.0, 7.0];
        let mut snap = GroupedSnapshot::from_scores(&v).unwrap();
        snap.epoch = 42;
        let bytes = snap.to_bytes();
        let back = GroupedSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.epoch(), 42);
        // Derived tables match a cold rebuild bit for bit.
        let cold = GroupedSnapshot::from_scores(&v).unwrap();
        assert_eq!(back.prefix_sums, cold.prefix_sums);
        assert_eq!(back.positions, cold.positions);
        assert_eq!(back.group_of, cold.group_of);
    }

    #[test]
    fn scores_digest_matches_snapshot_side_digest() {
        let v = vec![3.0, 1.0, 3.0, -0.0, 0.0, 2.5];
        let snap = GroupedSnapshot::from_scores(&v).unwrap();
        let bytes = snap.to_bytes();
        assert_eq!(peek_scores_digest(&bytes).unwrap(), scores_digest(&v));
        // A different vector does not match.
        assert_ne!(
            peek_scores_digest(&bytes).unwrap(),
            scores_digest(&[3.0, 1.0, 3.0, 0.0, 0.0, 2.4])
        );
    }

    #[test]
    fn header_corruption_is_attributed_to_the_crc() {
        let snap = GroupedSnapshot::from_scores(&[5.0, 1.0, 5.0]).unwrap();
        let mut bytes = snap.to_bytes();
        bytes[3] ^= 0x40; // inside the magic
        assert_eq!(
            GroupedSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotCodecError::BadHeaderCrc
        );
    }

    #[test]
    fn payload_corruption_is_attributed_to_the_digest() {
        let snap = GroupedSnapshot::from_scores(&[5.0, 1.0, 5.0]).unwrap();
        let mut bytes = snap.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(
            GroupedSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotCodecError::PayloadDigestMismatch
        );
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let snap = GroupedSnapshot::from_scores(&[5.0, 1.0, 5.0]).unwrap();
        let bytes = snap.to_bytes();
        for cut in [
            0,
            1,
            SNAPSHOT_HEADER_LEN - 1,
            SNAPSHOT_HEADER_LEN,
            bytes.len() - 1,
        ] {
            assert!(matches!(
                GroupedSnapshot::from_bytes(&bytes[..cut]).unwrap_err(),
                SnapshotCodecError::Truncated { .. }
            ));
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let snap = GroupedSnapshot::from_scores(&[5.0, 1.0]).unwrap();
        let mut bytes = snap.to_bytes();
        bytes.push(0);
        assert!(matches!(
            GroupedSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotCodecError::TrailingBytes { .. }
        ));
    }

    #[test]
    fn crafted_tables_with_valid_digest_are_structurally_rejected() {
        // Rebuild a file whose payload digests cleanly but whose order
        // repeats an item: re-digest after tampering, then re-CRC.
        let snap = GroupedSnapshot::from_scores(&[5.0, 1.0, 3.0]).unwrap();
        let mut bytes = snap.to_bytes();
        // order[1] := order[0] (duplicate item).
        let first = bytes[SNAPSHOT_HEADER_LEN..SNAPSHOT_HEADER_LEN + 4].to_vec();
        bytes[SNAPSHOT_HEADER_LEN + 4..SNAPSHOT_HEADER_LEN + 8].copy_from_slice(&first);
        let fresh_digest = digest64(&bytes[SNAPSHOT_HEADER_LEN..]);
        bytes[48..56].copy_from_slice(&fresh_digest.to_le_bytes());
        let fresh_crc = crc32(&bytes[..60]);
        bytes[60..64].copy_from_slice(&fresh_crc.to_le_bytes());
        assert_eq!(
            GroupedSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotCodecError::Malformed("order is not a permutation")
        );
    }
}
