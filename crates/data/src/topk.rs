//! Exact top-`c` selection with deterministic tie-breaking.
//!
//! The utility metrics (FNR, SER) are defined against the *true* top-`c`
//! queries; to make every experiment reproducible the true top-`c` must
//! be a deterministic function of the score vector, so ties are broken
//! by smaller index. Both helpers are thin views over
//! [`GroupedSnapshot`]: the sorted order is built once and the answers
//! are read off [`top_c`](GroupedSnapshot::top_c) /
//! [`rank_cut`](GroupedSnapshot::rank_cut), so this module no longer
//! duplicates the sort/tie-break logic it used to reimplement.
//! (Callers holding a [`ScoreVector`](crate::ScoreVector) should use
//! its ranked accessors instead — those reuse the vector's *cached*
//! snapshot; the free functions here rebuild from the raw slice.)

use crate::groups::GroupedSnapshot;

/// Returns the indices of the `c` highest scores in decreasing score
/// order, ties broken by smaller index. Panics on non-finite scores
/// (callers construct scores through `ScoreVector`, which validates).
pub fn exact_top_c(scores: &[f64], c: usize) -> Vec<usize> {
    if c == 0 || scores.is_empty() {
        return Vec::new();
    }
    let snap = GroupedSnapshot::from_scores(scores).expect("scores must be finite");
    snap.top_c(c).iter().map(|&i| i as usize).collect()
}

/// Sum of the `c` highest scores (the denominator of the paper's
/// Score Error Rate before dividing by `c`).
pub fn top_c_score_sum(scores: &[f64], c: usize) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    let snap = GroupedSnapshot::from_scores(scores).expect("scores must be finite");
    snap.rank_cut(c).top_sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_zero_cases() {
        assert!(exact_top_c(&[], 3).is_empty());
        assert!(exact_top_c(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn selects_highest_with_index_tiebreak() {
        let scores = [3.0, 5.0, 5.0, 1.0, 4.0];
        assert_eq!(exact_top_c(&scores, 3), vec![1, 2, 4]);
    }

    #[test]
    fn c_equal_to_len_returns_full_ordering() {
        let scores = [3.0, 5.0, 1.0];
        assert_eq!(exact_top_c(&scores, 3), vec![1, 0, 2]);
    }

    #[test]
    fn c_beyond_len_is_clamped() {
        let scores = [3.0, 5.0];
        assert_eq!(exact_top_c(&scores, 10), vec![1, 0]);
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        // Deterministic pseudo-random scores with many ties.
        let scores: Vec<f64> = (0..500).map(|i| ((i * 37) % 83) as f64).collect();
        for &c in &[1usize, 7, 50, 250, 499, 500] {
            let fast = exact_top_c(&scores, c);
            let mut idx: Vec<usize> = (0..scores.len()).collect();
            idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
            idx.truncate(c);
            assert_eq!(fast, idx, "c={c}");
        }
    }

    #[test]
    fn top_c_score_sum_matches_manual() {
        let scores = [1.0, 10.0, 5.0, 7.0];
        assert!((top_c_score_sum(&scores, 2) - 17.0).abs() < 1e-12);
        assert!((top_c_score_sum(&scores, 4) - 23.0).abs() < 1e-12);
    }
}
