//! Error type for the data substrate.

use std::fmt;

/// Errors raised while building or querying workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A score vector contained a non-finite entry.
    NonFiniteScore {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An operation required a nonempty score vector or dataset.
    Empty,
    /// An item identifier was out of range.
    ItemOutOfRange {
        /// The offending item.
        item: u32,
        /// The number of items in the universe.
        n_items: usize,
    },
    /// A record index was out of range.
    RecordOutOfRange {
        /// The offending record index.
        index: usize,
        /// The number of records.
        n_records: usize,
    },
    /// A generator was configured with invalid parameters.
    InvalidGenerator(&'static str),
    /// A transaction file could not be read or written.
    Io(String),
    /// A transaction file line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFiniteScore { index, value } => {
                write!(f, "score {index} is not finite: {value}")
            }
            Self::Empty => write!(f, "operation requires nonempty data"),
            Self::ItemOutOfRange { item, n_items } => {
                write!(
                    f,
                    "item {item} out of range for universe of {n_items} items"
                )
            }
            Self::RecordOutOfRange { index, n_records } => {
                write!(f, "record {index} out of range for {n_records} records")
            }
            Self::InvalidGenerator(reason) => write!(f, "invalid generator: {reason}"),
            Self::Io(reason) => write!(f, "i/o error: {reason}"),
            Self::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::ItemOutOfRange {
            item: 9,
            n_items: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains('9') && msg.contains('5'));
    }
}
