//! Error type for SVT operations.

use dp_mechanisms::MechanismError;
use std::fmt;

/// Errors raised by SVT algorithms and the selection wrappers.
#[derive(Debug, Clone, PartialEq)]
pub enum SvtError {
    /// A parameter-validation failure from the mechanism substrate.
    Mechanism(MechanismError),
    /// `respond` was called after the algorithm had already produced its
    /// `c`-th positive answer and aborted (Fig. 1 line 7).
    Halted,
    /// The cutoff `c` must be at least one.
    InvalidCutoff(usize),
    /// A per-query threshold sequence was shorter than the query stream.
    MissingThreshold {
        /// Index of the query without a threshold.
        query_index: usize,
    },
    /// A query answer or threshold was not finite.
    NonFiniteInput(&'static str),
}

impl fmt::Display for SvtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Mechanism(e) => write!(f, "mechanism error: {e}"),
            Self::Halted => write!(
                f,
                "sparse vector has aborted after reaching its cutoff of positive answers"
            ),
            Self::InvalidCutoff(c) => write!(f, "cutoff c must be >= 1, got {c}"),
            Self::MissingThreshold { query_index } => {
                write!(f, "no threshold supplied for query {query_index}")
            }
            Self::NonFiniteInput(what) => write!(f, "non-finite input: {what}"),
        }
    }
}

impl std::error::Error for SvtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Mechanism(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MechanismError> for SvtError {
    fn from(e: MechanismError) -> Self {
        Self::Mechanism(e)
    }
}

/// Validates that a user-supplied query answer / threshold is finite.
pub(crate) fn check_finite(value: f64, what: &'static str) -> Result<(), SvtError> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(SvtError::NonFiniteInput(what))
    }
}

/// Validates the cutoff `c`.
pub(crate) fn check_cutoff(c: usize) -> Result<(), SvtError> {
    if c == 0 {
        Err(SvtError::InvalidCutoff(c))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_errors_convert() {
        let e: SvtError = MechanismError::InvalidEpsilon(0.0).into();
        assert!(matches!(e, SvtError::Mechanism(_)));
        assert!(e.to_string().contains("epsilon"));
    }

    #[test]
    fn helpers_validate() {
        assert!(check_finite(1.0, "x").is_ok());
        assert!(check_finite(f64::NAN, "x").is_err());
        assert!(check_cutoff(1).is_ok());
        assert!(check_cutoff(0).is_err());
    }

    #[test]
    fn source_chains_to_mechanism_error() {
        use std::error::Error;
        let e: SvtError = MechanismError::EmptyCandidates.into();
        assert!(e.source().is_some());
        assert!(SvtError::Halted.source().is_none());
    }
}
