//! `(ε, δ)`-DP SVT via advanced composition — the §3.4 regime.
//!
//! The paper confines its analysis to pure `ε`-DP ("we limit our
//! attention to SVT variants satisfying ε-DP"), but §3.4 notes that
//! several SVT usages instead target `(ε, δ)`-DP by exploiting the
//! advanced composition theorem: `k` runs of an `ε₀`-DP mechanism are
//! `(ε′, δ′)`-DP with `ε′ = √(2k ln(1/δ′))·ε₀ + k·ε₀(e^{ε₀} − 1)`.
//!
//! This module implements that construction on top of the workspace's
//! *correct* SVT: an [`ApproxSvt`] answers a stream by running up to
//! `c` independent copies of [`StandardSvt`] with cutoff 1 — each copy
//! draws a fresh threshold noise, answers ⊥ "for free" until its first
//! ⊤, and then retires. Each copy is `ε₀`-DP by Theorem 2, and
//! [`dp_mechanisms::composition::per_instance_epsilon`]
//! chooses the largest `ε₀` such that `c` copies compose (adaptively)
//! to the caller's `(ε, δ)` target.
//!
//! Why bother: pure SVT's query noise scales like `2cΔ/ε₂` — linear in
//! `c`. Under advanced composition the per-copy budget is
//! `≈ ε/√(2c ln(1/δ))`, so the per-copy noise scale (`2Δ/ε₂⁰` with
//! cutoff 1) grows only like `√c`. [`ApproxSvtPlan::noise_advantage`]
//! quantifies the win. Note the crossover: the √-term beats plain
//! sequential composition only once `c ≳ 2·ln(1/δ)` (≈ 28 at
//! `δ = 10⁻⁶`); below that the planner falls back to the basic bound
//! and the advantage is exactly 1. Past the crossover it grows like
//! `√c`. The price is the `δ` failure probability and a fresh
//! threshold draw per positive (the same price Alg. 2 pays — but here
//! it buys a real guarantee instead of wasting budget).

use crate::alg::{SparseVector, StandardSvt, StandardSvtConfig};
use crate::response::SvtAnswer;
use crate::{Result, SvtError};
use dp_mechanisms::composition::{per_instance_epsilon, ApproxDp};
use dp_mechanisms::{DpRng, SvtBudget};

/// Configuration for [`ApproxSvt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxSvtConfig {
    /// The overall `(ε, δ)` guarantee to provide.
    pub target: ApproxDp,
    /// Maximum number of positive answers before halting.
    pub c: usize,
    /// Query sensitivity `Δ`.
    pub sensitivity: f64,
    /// Per-copy `ε₁ : ε₂` split, as "1 : ratio" (the §4.2 optimizer
    /// recommends `(2c)^{2/3}` with the *copy's* cutoff `c = 1`, i.e.
    /// `2^{2/3} ≈ 1.587`).
    pub ratio: f64,
    /// Whether the query family is monotonic (halves each copy's query
    /// noise; Theorem 5).
    pub monotonic: bool,
}

/// The derived plan: what each of the `c` copies may spend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxSvtPlan {
    /// The caller's target.
    pub target: ApproxDp,
    /// Number of composed copies.
    pub c: usize,
    /// Pure budget `ε₀` given to each copy.
    pub per_instance_epsilon: f64,
    /// Each copy's `ε₁/ε₂` split.
    pub per_instance_budget: SvtBudget,
    /// Query-noise scale of each copy (`2Δ/ε₂⁰`, halved when
    /// monotonic).
    pub query_noise_scale: f64,
    /// Query-noise scale a single *pure* `ε`-DP [`StandardSvt`] with
    /// the same ratio and cutoff `c` would use (`2cΔ/ε₂`).
    pub pure_query_noise_scale: f64,
}

impl ApproxSvtPlan {
    /// Computes the plan for a configuration.
    ///
    /// # Errors
    /// Propagates parameter validation; the target `δ` must be strictly
    /// positive (advanced composition needs it).
    pub fn new(config: &ApproxSvtConfig) -> Result<Self> {
        dp_mechanisms::error::check_sensitivity(config.sensitivity).map_err(SvtError::from)?;
        crate::error::check_cutoff(config.c)?;
        let eps0 = per_instance_epsilon(config.target, config.c).map_err(SvtError::from)?;
        let per_instance_budget =
            SvtBudget::from_ratio(eps0, config.ratio).map_err(SvtError::from)?;
        let copy = StandardSvtConfig {
            budget: per_instance_budget,
            sensitivity: config.sensitivity,
            c: 1,
            monotonic: config.monotonic,
        };
        let pure = StandardSvtConfig {
            budget: SvtBudget::from_ratio(config.target.epsilon, config.ratio)
                .map_err(SvtError::from)?,
            sensitivity: config.sensitivity,
            c: config.c,
            monotonic: config.monotonic,
        };
        Ok(Self {
            target: config.target,
            c: config.c,
            per_instance_epsilon: eps0,
            per_instance_budget,
            query_noise_scale: copy.query_noise_scale(),
            pure_query_noise_scale: pure.query_noise_scale(),
        })
    }

    /// How much less noise each comparison carries than under pure
    /// `ε`-DP: `pure_scale / approx_scale`. Values above 1 favor the
    /// `(ε, δ)` construction.
    pub fn noise_advantage(&self) -> f64 {
        self.pure_query_noise_scale / self.query_noise_scale
    }
}

/// SVT with an `(ε, δ)`-DP guarantee assembled from `c` independent
/// cutoff-1 copies of the paper's standard SVT (see module docs).
#[derive(Debug, Clone)]
pub struct ApproxSvt {
    config: ApproxSvtConfig,
    plan: ApproxSvtPlan,
    current: StandardSvt,
    positives: usize,
    halted: bool,
}

impl ApproxSvt {
    /// Plans the composition and draws the first copy's threshold noise.
    ///
    /// # Errors
    /// Propagates plan validation.
    pub fn new(config: ApproxSvtConfig, rng: &mut DpRng) -> Result<Self> {
        let plan = ApproxSvtPlan::new(&config)?;
        let current = StandardSvt::new(Self::copy_config(&config, &plan), rng)?;
        Ok(Self {
            config,
            plan,
            current,
            positives: 0,
            halted: false,
        })
    }

    fn copy_config(config: &ApproxSvtConfig, plan: &ApproxSvtPlan) -> StandardSvtConfig {
        StandardSvtConfig {
            budget: plan.per_instance_budget,
            sensitivity: config.sensitivity,
            c: 1,
            monotonic: config.monotonic,
        }
    }

    /// The derived plan (budgets and noise scales).
    pub fn plan(&self) -> &ApproxSvtPlan {
        &self.plan
    }

    /// The overall guarantee.
    pub fn guarantee(&self) -> ApproxDp {
        self.config.target
    }
}

impl SparseVector for ApproxSvt {
    fn respond(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer> {
        if self.halted {
            return Err(SvtError::Halted);
        }
        let answer = self.current.respond(query_answer, threshold, rng)?;
        if answer == SvtAnswer::Above {
            self.positives += 1;
            if self.positives >= self.config.c {
                self.halted = true;
            } else {
                // Retire the copy that just spent its budget and start
                // the next one with a fresh threshold draw.
                self.current = StandardSvt::new(Self::copy_config(&self.config, &self.plan), rng)?;
            }
        }
        Ok(answer)
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn positives(&self) -> usize {
        self.positives
    }

    fn name(&self) -> &'static str {
        "Approx SVT ((ε,δ) advanced composition)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::run_svt;
    use crate::threshold::Thresholds;

    fn config(c: usize) -> ApproxSvtConfig {
        ApproxSvtConfig {
            target: ApproxDp::new(1.0, 1e-6).unwrap(),
            c,
            sensitivity: 1.0,
            ratio: 2f64.powf(2.0 / 3.0),
            monotonic: false,
        }
    }

    #[test]
    fn plan_composes_back_to_the_target() {
        let cfg = config(64);
        let plan = ApproxSvtPlan::new(&cfg).unwrap();
        let achieved = dp_mechanisms::composition::best_composition(
            plan.per_instance_epsilon,
            cfg.c,
            cfg.target.delta,
        )
        .unwrap();
        assert!(achieved <= cfg.target.epsilon * (1.0 + 1e-9), "{achieved}");
    }

    #[test]
    fn noise_advantage_kicks_in_past_the_crossover_and_grows_like_sqrt_c() {
        // At δ = 1e-6 the crossover is c ≈ 2·ln(1e6) ≈ 28: below it the
        // planner falls back to basic composition (advantage exactly 1),
        // above it the advantage grows like √c.
        let a8 = ApproxSvtPlan::new(&config(8)).unwrap().noise_advantage();
        assert!((a8 - 1.0).abs() < 1e-9, "below crossover: a8 = {a8}");
        let a64 = ApproxSvtPlan::new(&config(64)).unwrap().noise_advantage();
        let a1024 = ApproxSvtPlan::new(&config(1024)).unwrap().noise_advantage();
        assert!(a64 > 1.2, "a64 = {a64}");
        assert!(a1024 > a64 * 3.0, "√c scaling: a64={a64} a1024={a1024}");
    }

    #[test]
    fn per_copy_noise_does_not_scale_linearly_in_c() {
        // Pure scale is Θ(c); past the crossover the approx scale grows
        // like √c.
        let p64 = ApproxSvtPlan::new(&config(64)).unwrap();
        let p1024 = ApproxSvtPlan::new(&config(1024)).unwrap();
        let growth = p1024.query_noise_scale / p64.query_noise_scale;
        let pure_growth = p1024.pure_query_noise_scale / p64.pure_query_noise_scale;
        assert!((pure_growth - 16.0).abs() < 1e-6, "pure is linear in c");
        assert!(growth < 8.0, "approx growth {growth} should be ≈ √16 = 4");
    }

    #[test]
    fn halts_after_c_positives_and_then_errors() {
        let mut rng = DpRng::seed_from_u64(811);
        let mut alg = ApproxSvt::new(config(3), &mut rng).unwrap();
        let run = run_svt(&mut alg, &[1e9; 10], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.positives(), 3);
        assert!(run.halted);
        assert!(matches!(
            alg.respond(0.0, 0.0, &mut rng),
            Err(SvtError::Halted)
        ));
    }

    #[test]
    fn negatives_are_free_of_positive_count() {
        let mut rng = DpRng::seed_from_u64(821);
        let mut alg = ApproxSvt::new(config(2), &mut rng).unwrap();
        let run = run_svt(&mut alg, &[-1e9; 25], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.positives(), 0);
        assert!(!run.halted);
        assert_eq!(run.examined(), 25);
    }

    #[test]
    fn monotonic_mode_halves_per_copy_noise() {
        let mut cfg = config(16);
        let general = ApproxSvtPlan::new(&cfg).unwrap();
        cfg.monotonic = true;
        let mono = ApproxSvtPlan::new(&cfg).unwrap();
        assert!((mono.query_noise_scale * 2.0 - general.query_noise_scale).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut rng = DpRng::seed_from_u64(823);
        let mut bad = config(0);
        assert!(ApproxSvt::new(bad, &mut rng).is_err());
        bad = config(4);
        bad.sensitivity = 0.0;
        assert!(ApproxSvt::new(bad, &mut rng).is_err());
        bad = config(4);
        bad.ratio = -1.0;
        assert!(ApproxSvt::new(bad, &mut rng).is_err());
    }

    #[test]
    fn guarantee_and_plan_are_reported() {
        let mut rng = DpRng::seed_from_u64(827);
        let alg = ApproxSvt::new(config(16), &mut rng).unwrap();
        assert!((alg.guarantee().epsilon - 1.0).abs() < 1e-12);
        assert_eq!(alg.plan().c, 16);
        // c = 16 sits below the δ = 1e-6 crossover, so the plan equals
        // the basic per-instance budget ε/c — never less.
        assert!(alg.plan().per_instance_epsilon >= 1.0 / 16.0 - 1e-12);
    }
}
