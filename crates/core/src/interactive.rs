//! The interactive setting: sessions, budget accounting, and the
//! corrected answer-from-history mediator of §3.4.
//!
//! SVT's unique power is interactive: a sequence of queries arrives
//! *online*, each ⊥ answer is free, and only ⊤ answers consume budget —
//! so with one `(ε₁+ε₂)` charge an analyst can keep asking questions
//! until `c` of them come back positive. [`InteractiveSvtSession`] wraps
//! [`StandardSvt`] with a [`BudgetAccountant`] to make that contract
//! explicit.
//!
//! [`HistoryMediator`] implements the iterative-construction idea from
//! the introduction, with the §3.4 **fix**: the papers [12, 16] tested
//! `|q̃ᵢ − qᵢ(D) + νᵢ| ≥ T + ρ` — noise *inside* the absolute value —
//! which makes the left side non-negative, so any ⊤ reveals `ρ ≥ −T`
//! and the free-negatives argument collapses. The corrected check
//! treats the derived-answer error `rᵢ = |q̃ᵢ − qᵢ(D)|` as the query and
//! adds the noise *outside*: `rᵢ + νᵢ ≥ T + ρ`.

use crate::alg::{SparseVector, StandardSvt, StandardSvtConfig};
use crate::response::SvtAnswer;
use crate::{Result, SvtError};
use dp_mechanisms::laplace::laplace_mechanism;
use dp_mechanisms::{BudgetAccountant, DpRng};
use std::collections::HashMap;

/// An interactive SVT session with explicit budget accounting.
///
/// The full indicator budget `ε₁ + ε₂` (plus `ε₃` if numeric outputs are
/// enabled) is charged once at session start — that is SVT's guarantee
/// for the *entire* run, regardless of how many ⊥ answers it produces.
#[derive(Debug)]
pub struct InteractiveSvtSession {
    svt: StandardSvt,
    accountant: BudgetAccountant,
    asked: usize,
}

impl InteractiveSvtSession {
    /// Opens a session, charging the SVT budget against `total_epsilon`.
    ///
    /// # Errors
    /// Budget/parameter validation; `BudgetExhausted` if the SVT budget
    /// does not fit in `total_epsilon`.
    pub fn open(total_epsilon: f64, config: StandardSvtConfig, rng: &mut DpRng) -> Result<Self> {
        let mut accountant = BudgetAccountant::new(total_epsilon).map_err(SvtError::from)?;
        accountant
            .charge("svt session", config.budget.total())
            .map_err(SvtError::from)?;
        let svt = StandardSvt::new(config, rng)?;
        Ok(Self {
            svt,
            accountant,
            asked: 0,
        })
    }

    /// Asks one query (true answer + threshold); free unless it is one
    /// of the ≤ `c` positive answers already paid for.
    ///
    /// Only successfully answered queries count toward
    /// [`queries_asked`](Self::queries_asked): a rejected query (halted
    /// session, non-finite input) increments nothing and consumes no
    /// noise, so the counter equals the number of answers the analyst
    /// actually received.
    ///
    /// # Errors
    /// [`SvtError::Halted`] once the session's `c` positives are spent.
    pub fn ask(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer> {
        let answer = self.svt.respond(query_answer, threshold, rng)?;
        self.asked += 1;
        Ok(answer)
    }

    /// Queries asked so far.
    pub fn queries_asked(&self) -> usize {
        self.asked
    }

    /// Positive answers so far.
    pub fn positives(&self) -> usize {
        self.svt.positives()
    }

    /// Whether the session has exhausted its positive-answer allowance.
    pub fn is_exhausted(&self) -> bool {
        self.svt.is_halted()
    }

    /// Remaining (uncommitted) privacy budget.
    pub fn remaining_budget(&self) -> f64 {
        self.accountant.remaining()
    }
}

/// Statistics of a [`HistoryMediator`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediatorStats {
    /// Queries answered from history (free).
    pub answered_from_history: usize,
    /// Queries that triggered a database access (paid).
    pub database_accesses: usize,
}

/// The §3.4-corrected interactive mediator: answers queries from a
/// cached history when the cached answer is accurate enough (checked
/// privately via SVT), touching the database — and spending budget —
/// only when it is not.
#[derive(Debug)]
pub struct HistoryMediator {
    svt: StandardSvt,
    accountant: BudgetAccountant,
    /// Per-refresh Laplace budget.
    refresh_epsilon: f64,
    sensitivity: f64,
    error_threshold: f64,
    cache: HashMap<u64, f64>,
    /// Fallback estimate for never-seen queries.
    default_estimate: f64,
    stats: MediatorStats,
}

impl HistoryMediator {
    /// Creates a mediator.
    ///
    /// * `svt_config` — the SVT used to test derived-answer errors
    ///   (its `c` bounds how many database accesses are allowed);
    /// * `refresh_epsilon` — Laplace budget spent per database access;
    /// * `error_threshold` — the `T` against which the derived answer's
    ///   error is tested;
    /// * `total_epsilon` — overall budget: the SVT indicator budget plus
    ///   `c` refreshes must fit.
    ///
    /// # Errors
    /// Parameter validation; `BudgetExhausted` if the worst-case cost
    /// (`ε₁ + ε₂ + c·refresh_epsilon`) exceeds `total_epsilon`.
    pub fn new(
        total_epsilon: f64,
        svt_config: StandardSvtConfig,
        refresh_epsilon: f64,
        error_threshold: f64,
        default_estimate: f64,
        rng: &mut DpRng,
    ) -> Result<Self> {
        dp_mechanisms::error::check_epsilon(refresh_epsilon).map_err(SvtError::from)?;
        crate::error::check_finite(error_threshold, "error threshold")?;
        crate::error::check_finite(default_estimate, "default estimate")?;
        let mut accountant = BudgetAccountant::new(total_epsilon).map_err(SvtError::from)?;
        accountant
            .charge("svt indicator", svt_config.budget.total())
            .map_err(SvtError::from)?;
        // Reserve the worst case up front: c database refreshes.
        accountant
            .charge("reserved refreshes", refresh_epsilon * svt_config.c as f64)
            .map_err(SvtError::from)?;
        let sensitivity = svt_config.sensitivity;
        let svt = StandardSvt::new(svt_config, rng)?;
        Ok(Self {
            svt,
            accountant,
            refresh_epsilon,
            sensitivity,
            error_threshold,
            cache: HashMap::new(),
            default_estimate,
            stats: MediatorStats::default(),
        })
    }

    /// Answers query `query_id` whose true answer is `true_answer`.
    ///
    /// The derived answer `q̃` comes from the cache (or the default
    /// estimate). Its error `r = |q̃ − q(D)|` is a sensitivity-`Δ` query;
    /// SVT tests `r + ν ≥ T + ρ`. On ⊥ the cached answer is returned
    /// free; on ⊤ a fresh Laplace answer is bought, cached, and
    /// returned.
    ///
    /// # Errors
    /// [`SvtError::Halted`] when the access allowance is exhausted.
    pub fn answer(&mut self, query_id: u64, true_answer: f64, rng: &mut DpRng) -> Result<f64> {
        crate::error::check_finite(true_answer, "query answer")?;
        let estimate = *self.cache.get(&query_id).unwrap_or(&self.default_estimate);
        // The corrected §3.4 check: noise OUTSIDE the absolute value.
        let error_query = (estimate - true_answer).abs();
        let verdict = self.svt.respond(error_query, self.error_threshold, rng)?;
        if verdict.is_positive() {
            let refreshed =
                laplace_mechanism(true_answer, self.sensitivity, self.refresh_epsilon, rng)
                    .map_err(SvtError::from)?;
            self.cache.insert(query_id, refreshed);
            self.stats.database_accesses += 1;
            Ok(refreshed)
        } else {
            self.stats.answered_from_history += 1;
            Ok(estimate)
        }
    }

    /// Run statistics.
    pub fn stats(&self) -> MediatorStats {
        self.stats
    }

    /// Whether the database-access allowance is spent.
    pub fn is_exhausted(&self) -> bool {
        self.svt.is_halted()
    }

    /// Total budget actually committed (indicator + reserved refreshes).
    pub fn committed_budget(&self) -> f64 {
        self.accountant.spent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_mechanisms::SvtBudget;

    fn svt_config(c: usize) -> StandardSvtConfig {
        StandardSvtConfig {
            budget: SvtBudget::halves(0.5).unwrap(),
            sensitivity: 1.0,
            c,
            monotonic: false,
        }
    }

    #[test]
    fn session_charges_budget_once() {
        let mut rng = DpRng::seed_from_u64(557);
        let session = InteractiveSvtSession::open(1.0, svt_config(3), &mut rng).unwrap();
        assert!((session.remaining_budget() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn session_rejects_oversized_svt_budget() {
        let mut rng = DpRng::seed_from_u64(563);
        assert!(InteractiveSvtSession::open(0.3, svt_config(3), &mut rng).is_err());
    }

    #[test]
    fn negative_answers_are_free_and_unlimited() {
        let mut rng = DpRng::seed_from_u64(569);
        let mut session = InteractiveSvtSession::open(1.0, svt_config(2), &mut rng).unwrap();
        for _ in 0..100 {
            let a = session.ask(-1e9, 0.0, &mut rng).unwrap();
            assert_eq!(a, SvtAnswer::Below);
        }
        assert_eq!(session.queries_asked(), 100);
        assert!(!session.is_exhausted());
        assert!((session.remaining_budget() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejected_queries_are_not_counted_as_asked() {
        let mut rng = DpRng::seed_from_u64(601);
        let mut session = InteractiveSvtSession::open(1.0, svt_config(1), &mut rng).unwrap();
        // Invalid inputs error out before the query is counted.
        assert!(session.ask(f64::NAN, 0.0, &mut rng).is_err());
        assert!(session.ask(0.0, f64::INFINITY, &mut rng).is_err());
        assert_eq!(session.queries_asked(), 0);
        // Spend the single positive, then keep hammering the halted
        // session: the failed asks must not inflate the counter.
        let _ = session.ask(1e9, 0.0, &mut rng).unwrap();
        assert!(session.is_exhausted());
        for _ in 0..5 {
            assert!(matches!(
                session.ask(0.0, 0.0, &mut rng),
                Err(SvtError::Halted)
            ));
        }
        assert_eq!(session.queries_asked(), 1);
    }

    #[test]
    fn session_exhausts_after_c_positives() {
        let mut rng = DpRng::seed_from_u64(571);
        let mut session = InteractiveSvtSession::open(1.0, svt_config(2), &mut rng).unwrap();
        let _ = session.ask(1e9, 0.0, &mut rng).unwrap();
        let _ = session.ask(1e9, 0.0, &mut rng).unwrap();
        assert!(session.is_exhausted());
        assert!(matches!(
            session.ask(0.0, 0.0, &mut rng),
            Err(SvtError::Halted)
        ));
    }

    #[test]
    fn mediator_reserves_worst_case_budget() {
        let mut rng = DpRng::seed_from_u64(577);
        // indicator 0.5 + 3 × 0.1 = 0.8 committed.
        let m = HistoryMediator::new(1.0, svt_config(3), 0.1, 5.0, 0.0, &mut rng).unwrap();
        assert!((m.committed_budget() - 0.8).abs() < 1e-12);
        // Doesn't fit → error.
        let mut rng2 = DpRng::seed_from_u64(577);
        assert!(HistoryMediator::new(0.7, svt_config(3), 0.1, 5.0, 0.0, &mut rng2).is_err());
    }

    #[test]
    fn accurate_history_answers_free() {
        let mut rng = DpRng::seed_from_u64(587);
        // Huge error threshold: the cached/default answer always passes.
        let mut m = HistoryMediator::new(1.0, svt_config(2), 0.1, 1e9, 42.0, &mut rng).unwrap();
        for id in 0..50 {
            let v = m.answer(id, 40.0, &mut rng).unwrap();
            assert_eq!(v, 42.0, "default estimate served from history");
        }
        assert_eq!(m.stats().answered_from_history, 50);
        assert_eq!(m.stats().database_accesses, 0);
    }

    #[test]
    fn stale_history_triggers_paid_refresh_then_serves_cache() {
        let mut rng = DpRng::seed_from_u64(593);
        // Tight threshold & generous SVT budget: a large error reliably
        // triggers a refresh.
        let config = StandardSvtConfig {
            budget: SvtBudget::halves(200.0).unwrap(),
            sensitivity: 1.0,
            c: 4,
            monotonic: false,
        };
        let mut m = HistoryMediator::new(500.0, config, 50.0, 10.0, 0.0, &mut rng).unwrap();
        // True answer 1000, default estimate 0 → error 1000 >> 10 → refresh.
        let v1 = m.answer(7, 1000.0, &mut rng).unwrap();
        assert!(
            (v1 - 1000.0).abs() < 5.0,
            "refreshed answer near truth: {v1}"
        );
        assert_eq!(m.stats().database_accesses, 1);
        // Now the cache is accurate → next ask is free.
        let v2 = m.answer(7, 1000.0, &mut rng).unwrap();
        assert_eq!(v2, v1);
        assert_eq!(m.stats().answered_from_history, 1);
    }

    #[test]
    fn mediator_halts_after_c_accesses() {
        let mut rng = DpRng::seed_from_u64(599);
        let config = StandardSvtConfig {
            budget: SvtBudget::halves(200.0).unwrap(),
            sensitivity: 1.0,
            c: 2,
            monotonic: false,
        };
        let mut m = HistoryMediator::new(400.0, config, 50.0, 10.0, 0.0, &mut rng).unwrap();
        let _ = m.answer(1, 1e4, &mut rng).unwrap();
        let _ = m.answer(2, 1e4, &mut rng).unwrap();
        assert!(m.is_exhausted());
        assert!(matches!(m.answer(3, 1e4, &mut rng), Err(SvtError::Halted)));
    }
}
