//! §5 — SVT with retraversal (`SVT-ReTr`).
//!
//! The threshold dilemma: set `T` high and a pass may end with fewer
//! than `c` selections, "wasting" the unreached share of the budget; set
//! it low and the `c` slots fill before good late queries are reached.
//! In the non-interactive setting the paper proposes: raise the
//! threshold, and when a full pass selects fewer than `c` queries,
//! *retraverse* the not-yet-selected queries (fresh query noise, same
//! noisy threshold) until `c` are selected.
//!
//! Privacy is unchanged — the run still produces at most `c` positive
//! answers and every negative answer remains free, with `ρ` drawn once
//! (Theorem 4 applies verbatim; re-examining a query is just another
//! query with the same answer).
//!
//! The experiments raise `T` by `1D…5D` where "1D means adding one
//! standard deviation of the added noises" — `D = √2 · (query-noise
//! scale)`. [`IncrementUnit`] also exposes the raw scale for ablation.

use crate::alg::{SparseVector, StandardSvt};
use crate::noninteractive::SvtSelectConfig;
use crate::streaming::{BatchedSvt, RunScratch};
use crate::{Result, SvtError};
use dp_mechanisms::DpRng;

/// What "one D" of threshold increment means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementUnit {
    /// One standard deviation of the query noise, `√2 · scale` — the
    /// paper's definition.
    NoiseStdDev,
    /// One Laplace scale parameter (ablation alternative).
    NoiseScale,
}

/// Configuration for SVT-ReTr.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetraversalConfig {
    /// The underlying SVT-S configuration (budget, cutoff, ratio…).
    pub select: SvtSelectConfig,
    /// How many units to add to the base threshold (the paper sweeps
    /// 1–5).
    pub increment: f64,
    /// The unit of increment.
    pub unit: IncrementUnit,
    /// Safety cap on full passes over the remaining queries; the paper
    /// loops "until c queries are selected", which terminates with
    /// probability 1 but not in bounded time. 64 passes is far beyond
    /// anything the paper's configurations need.
    pub max_passes: usize,
}

impl RetraversalConfig {
    /// The paper's configuration: counting queries, `1:c^{2/3}`
    /// allocation, increment of `k` noise standard deviations.
    pub fn paper(epsilon: f64, c: usize, k: f64) -> Self {
        Self {
            select: SvtSelectConfig::counting(
                epsilon,
                c,
                crate::allocation::BudgetRatio::OneToCTwoThirds,
            ),
            increment: k,
            unit: IncrementUnit::NoiseStdDev,
            max_passes: 64,
        }
    }

    /// The absolute threshold increase this configuration implies.
    ///
    /// # Errors
    /// Propagates ratio/budget validation.
    pub fn threshold_increase(&self) -> Result<f64> {
        let std = self.select.to_standard()?;
        let scale = std.query_noise_scale();
        let unit = match self.unit {
            IncrementUnit::NoiseStdDev => std::f64::consts::SQRT_2 * scale,
            IncrementUnit::NoiseScale => scale,
        };
        Ok(self.increment * unit)
    }
}

/// Result of one SVT-ReTr invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RetraversalOutcome {
    /// Selected indices, in selection order (≤ `c`).
    pub selected: Vec<usize>,
    /// Number of passes performed (1 = no retraversal needed).
    pub passes: usize,
    /// The raised threshold actually used.
    pub threshold_used: f64,
}

/// Runs SVT-ReTr over `scores` with base threshold `base_threshold`.
///
/// # Errors
/// Propagates configuration validation.
pub fn svt_retraversal(
    scores: &[f64],
    base_threshold: f64,
    config: &RetraversalConfig,
    rng: &mut DpRng,
) -> Result<RetraversalOutcome> {
    if config.max_passes == 0 {
        return Err(SvtError::Mechanism(
            dp_mechanisms::MechanismError::InvalidParameter("max_passes must be >= 1"),
        ));
    }
    let threshold = base_threshold + config.threshold_increase()?;
    let mut alg = StandardSvt::new(config.select.to_standard()?, rng)?;
    let c = config.select.c;

    // Pass 1 runs over a fresh shuffle of everything; later passes
    // re-examine the not-yet-selected queries in the same relative
    // order (fresh ν each time, same ρ — the privacy argument needs ρ
    // fixed, and it is: `alg` lives across passes).
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    rng.shuffle(&mut order);

    let mut selected = Vec::with_capacity(c);
    let mut passes = 0;
    while selected.len() < c && passes < config.max_passes && !alg.is_halted() {
        passes += 1;
        let mut survivors = Vec::with_capacity(order.len());
        for &item in &order {
            if alg.is_halted() {
                break;
            }
            let answer = alg.respond(scores[item as usize], threshold, rng)?;
            if answer.is_positive() {
                selected.push(item as usize);
            } else {
                survivors.push(item);
            }
        }
        order = survivors;
        if order.is_empty() {
            break;
        }
    }
    Ok(RetraversalOutcome {
        selected,
        passes,
        threshold_used: threshold,
    })
}

/// Pass/threshold bookkeeping from one [`svt_retraversal_into`] run; the
/// selection itself lands in the caller's [`RunScratch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetraversalRun {
    /// Number of passes performed (1 = no retraversal needed).
    pub passes: usize,
    /// The raised threshold actually used.
    pub threshold_used: f64,
}

/// Streaming SVT-ReTr: the zero-allocation, batched-noise equivalent of
/// [`svt_retraversal`]. Same output distribution and pass semantics
/// (lazy shuffle on the first pass, survivors re-examined in the same
/// relative order with fresh `ν` and the same `ρ`), but the permutation
/// buffer and noise prefetch live in `scratch` and survivors are
/// compacted in place, so a run allocates nothing.
///
/// # Errors
/// Propagates configuration validation; rejects `max_passes == 0`.
pub fn svt_retraversal_into(
    scores: &[f64],
    base_threshold: f64,
    config: &RetraversalConfig,
    rng: &mut DpRng,
    scratch: &mut RunScratch,
) -> Result<RetraversalRun> {
    svt_retraversal_from(scores, base_threshold, config, rng, scratch)
}

/// [`svt_retraversal_into`] generalized over any
/// [`ScoreSource`](crate::streaming::ScoreSource) — the one
/// implementation both engines of the experiment harness run. Two
/// sources reporting `==`-equal scores per item (a raw slice and its
/// grouped runs) consume identical draws and emit bit-identical
/// selections and pass counts from the same generator state.
///
/// # Errors
/// Propagates configuration validation; rejects `max_passes == 0`.
pub fn svt_retraversal_from<S: crate::streaming::ScoreSource + ?Sized>(
    scores: &S,
    base_threshold: f64,
    config: &RetraversalConfig,
    rng: &mut DpRng,
    scratch: &mut RunScratch,
) -> Result<RetraversalRun> {
    if config.max_passes == 0 {
        return Err(SvtError::Mechanism(
            dp_mechanisms::MechanismError::InvalidParameter("max_passes must be >= 1"),
        ));
    }
    let threshold = base_threshold + config.threshold_increase()?;
    let mut svt = BatchedSvt::new(&config.select.to_standard()?, rng)?;
    let c = config.select.c;
    scratch.begin_run(scores.len());
    let mut live = scores.len();
    let mut passes = 0;
    while scratch.selected_len() < c && passes < config.max_passes && !svt.is_halted() && live > 0 {
        passes += 1;
        let first_pass = passes == 1;
        let mut write = 0;
        for read in 0..live {
            if svt.is_halted() {
                break;
            }
            let item = if first_pass {
                // Lazy shuffle: emits the next position of a uniformly
                // random order, materializing only what is examined.
                scratch.step_order(rng)
            } else {
                scratch.order_at(read)
            };
            if svt.crosses(scores.score(item as usize), threshold, scratch.noise_mut()) {
                scratch.push_selected(item as usize);
            } else {
                scratch.order_set(write, item);
                write += 1;
            }
        }
        live = write;
    }
    Ok(RetraversalRun {
        passes,
        threshold_used: threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::BudgetRatio;

    #[test]
    fn threshold_increase_matches_units() {
        let cfg = RetraversalConfig::paper(0.1, 25, 2.0);
        let std = cfg.select.to_standard().unwrap();
        let want = 2.0 * std::f64::consts::SQRT_2 * std.query_noise_scale();
        assert!((cfg.threshold_increase().unwrap() - want).abs() < 1e-9);

        let mut raw = cfg;
        raw.unit = IncrementUnit::NoiseScale;
        let want_raw = 2.0 * std.query_noise_scale();
        assert!((raw.threshold_increase().unwrap() - want_raw).abs() < 1e-9);
    }

    #[test]
    fn retraversal_fills_to_c_when_possible() {
        // Threshold raised far above everything: pass 1 selects almost
        // nothing, retraversal keeps going until c fill up (every query
        // has a positive crossing probability).
        let scores = vec![100.0f64; 40];
        let mut cfg = RetraversalConfig::paper(2.0, 10, 1.0);
        cfg.max_passes = 64;
        let mut rng = DpRng::seed_from_u64(509);
        let out = svt_retraversal(&scores, 100.0, &cfg, &mut rng).unwrap();
        assert_eq!(out.selected.len(), 10);
        let mut d = out.selected.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10, "selections must be distinct items");
    }

    #[test]
    fn single_pass_when_plenty_cross_immediately() {
        let scores = vec![1e9f64; 40];
        let cfg = RetraversalConfig {
            select: SvtSelectConfig::counting(10.0, 5, BudgetRatio::OneToOne),
            increment: 1.0,
            unit: IncrementUnit::NoiseStdDev,
            max_passes: 64,
        };
        let mut rng = DpRng::seed_from_u64(521);
        let out = svt_retraversal(&scores, 0.0, &cfg, &mut rng).unwrap();
        assert_eq!(out.passes, 1);
        assert_eq!(out.selected.len(), 5);
    }

    #[test]
    fn max_passes_caps_the_loop() {
        // Scores astronomically below the threshold: crossing is
        // essentially impossible, the loop must stop at max_passes.
        let scores = vec![-1e12f64; 5];
        let mut cfg = RetraversalConfig::paper(0.1, 3, 1.0);
        cfg.max_passes = 4;
        let mut rng = DpRng::seed_from_u64(523);
        let out = svt_retraversal(&scores, 0.0, &cfg, &mut rng).unwrap();
        assert!(out.passes <= 4);
        assert!(out.selected.len() < 3);
    }

    #[test]
    fn zero_max_passes_is_rejected() {
        let mut cfg = RetraversalConfig::paper(0.1, 3, 1.0);
        cfg.max_passes = 0;
        let mut rng = DpRng::seed_from_u64(541);
        assert!(svt_retraversal(&[1.0], 0.0, &cfg, &mut rng).is_err());
    }

    #[test]
    fn streaming_retraversal_fills_to_c_when_possible() {
        let scores = vec![100.0f64; 40];
        let mut cfg = RetraversalConfig::paper(2.0, 10, 1.0);
        cfg.max_passes = 64;
        let mut rng = DpRng::seed_from_u64(509);
        let mut scratch = RunScratch::new();
        let run = svt_retraversal_into(&scores, 100.0, &cfg, &mut rng, &mut scratch).unwrap();
        assert_eq!(scratch.selected().len(), 10);
        assert!(run.passes >= 1);
        let mut d = scratch.selected().to_vec();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10, "selections must be distinct items");
    }

    #[test]
    fn streaming_retraversal_is_noise_batch_size_invariant() {
        let scores: Vec<f64> = (0..500).map(|i| f64::from(i % 83)).collect();
        let mut cfg = RetraversalConfig::paper(1.0, 12, 2.0);
        cfg.max_passes = 16;
        let reference = {
            let mut rng = DpRng::seed_from_u64(613);
            let mut scratch = RunScratch::with_noise_batch(1);
            let run = svt_retraversal_into(&scores, 60.0, &cfg, &mut rng, &mut scratch).unwrap();
            (scratch.selected().to_vec(), run)
        };
        for batch in [3usize, 64, 1024] {
            let mut rng = DpRng::seed_from_u64(613);
            let mut scratch = RunScratch::with_noise_batch(batch);
            let run = svt_retraversal_into(&scores, 60.0, &cfg, &mut rng, &mut scratch).unwrap();
            assert_eq!(scratch.selected(), &reference.0[..], "batch {batch}");
            assert_eq!(run, reference.1, "batch {batch}");
        }
    }

    #[test]
    fn streaming_retraversal_matches_scalar_distribution() {
        // Same output distribution as the Vec-allocating reference: the
        // mean number of passes and selections must agree statistically.
        let scores: Vec<f64> = (0..200).map(f64::from).collect();
        let mut cfg = RetraversalConfig::paper(1.5, 8, 2.0);
        cfg.max_passes = 32;
        let runs = 300;
        let mut rng_a = DpRng::seed_from_u64(21001);
        let mut rng_b = DpRng::seed_from_u64(88123);
        let mut scratch = RunScratch::new();
        let (mut sel_new, mut pass_new, mut sel_old, mut pass_old) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..runs {
            let run = svt_retraversal_into(&scores, 150.0, &cfg, &mut rng_a, &mut scratch).unwrap();
            sel_new += scratch.selected().len() as f64;
            pass_new += run.passes as f64;
            let out = svt_retraversal(&scores, 150.0, &cfg, &mut rng_b).unwrap();
            sel_old += out.selected.len() as f64;
            pass_old += out.passes as f64;
        }
        let n = runs as f64;
        assert!(
            (sel_new / n - sel_old / n).abs() < 0.8,
            "selected {} vs {}",
            sel_new / n,
            sel_old / n
        );
        assert!(
            (pass_new / n - pass_old / n).abs() < 0.8,
            "passes {} vs {}",
            pass_new / n,
            pass_old / n
        );
    }

    #[test]
    fn streaming_retraversal_caps_passes_and_rejects_zero() {
        let scores = vec![-1e12f64; 5];
        let mut cfg = RetraversalConfig::paper(0.1, 3, 1.0);
        cfg.max_passes = 4;
        let mut rng = DpRng::seed_from_u64(523);
        let mut scratch = RunScratch::new();
        let run = svt_retraversal_into(&scores, 0.0, &cfg, &mut rng, &mut scratch).unwrap();
        assert!(run.passes <= 4);
        assert!(scratch.selected().len() < 3);

        cfg.max_passes = 0;
        assert!(svt_retraversal_into(&scores, 0.0, &cfg, &mut rng, &mut scratch).is_err());
    }

    #[test]
    fn selected_items_never_repeat_across_passes() {
        let scores: Vec<f64> = (0..30).map(|i| i as f64 * 10.0).collect();
        let mut cfg = RetraversalConfig::paper(1.0, 8, 3.0);
        cfg.max_passes = 64;
        let mut rng = DpRng::seed_from_u64(547);
        for _ in 0..20 {
            let out = svt_retraversal(&scores, 100.0, &cfg, &mut rng).unwrap();
            let mut d = out.selected.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), out.selected.len());
        }
    }
}
