//! Threshold sequences.
//!
//! Fig. 1's I/O block allows "either a sequence of thresholds
//! `T = T₁, T₂, …` or a single threshold `T`". The paper's footnote
//! points out the difference is mostly syntactical (one can translate
//! per-query thresholds away by answering `r_i = q_i − T_i` against 0);
//! we keep both forms for fidelity and convenience.

use crate::error::SvtError;
use crate::Result;

/// A threshold source for a query stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Thresholds {
    /// One threshold shared by every query (Alg. 2–5).
    Constant(f64),
    /// A per-query threshold sequence (Alg. 1, 6, 7).
    PerQuery(Vec<f64>),
}

impl Thresholds {
    /// The threshold for query `i`.
    ///
    /// # Errors
    /// [`SvtError::MissingThreshold`] when a per-query sequence is too
    /// short, [`SvtError::NonFiniteInput`] on a non-finite threshold.
    pub fn for_query(&self, i: usize) -> Result<f64> {
        let t = match self {
            Self::Constant(t) => *t,
            Self::PerQuery(ts) => *ts
                .get(i)
                .ok_or(SvtError::MissingThreshold { query_index: i })?,
        };
        crate::error::check_finite(t, "threshold")?;
        Ok(t)
    }

    /// Rewrites `(queries, thresholds)` into the equivalent
    /// `(queries − thresholds, 0)` form from the paper's footnote.
    ///
    /// # Errors
    /// Same as [`Thresholds::for_query`].
    pub fn normalize(&self, query_answers: &[f64]) -> Result<Vec<f64>> {
        query_answers
            .iter()
            .enumerate()
            .map(|(i, &q)| Ok(q - self.for_query(i)?))
            .collect()
    }
}

impl From<f64> for Thresholds {
    fn from(t: f64) -> Self {
        Self::Constant(t)
    }
}

impl From<Vec<f64>> for Thresholds {
    fn from(ts: Vec<f64>) -> Self {
        Self::PerQuery(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_repeats_forever() {
        let t = Thresholds::Constant(5.0);
        assert_eq!(t.for_query(0).unwrap(), 5.0);
        assert_eq!(t.for_query(1_000_000).unwrap(), 5.0);
    }

    #[test]
    fn per_query_is_bounds_checked() {
        let t = Thresholds::PerQuery(vec![1.0, 2.0]);
        assert_eq!(t.for_query(1).unwrap(), 2.0);
        assert!(matches!(
            t.for_query(2),
            Err(SvtError::MissingThreshold { query_index: 2 })
        ));
    }

    #[test]
    fn non_finite_thresholds_rejected() {
        let t = Thresholds::Constant(f64::INFINITY);
        assert!(t.for_query(0).is_err());
    }

    #[test]
    fn normalize_subtracts_pointwise() {
        let t = Thresholds::PerQuery(vec![1.0, 2.0, 3.0]);
        let r = t.normalize(&[10.0, 10.0, 10.0]).unwrap();
        assert_eq!(r, vec![9.0, 8.0, 7.0]);
    }

    #[test]
    fn conversions() {
        assert_eq!(Thresholds::from(2.0), Thresholds::Constant(2.0));
        assert_eq!(Thresholds::from(vec![1.0]), Thresholds::PerQuery(vec![1.0]));
    }
}
