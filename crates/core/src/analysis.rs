//! §5 — closed-form utility bounds: `α_SVT` vs `α_EM`.
//!
//! For the one-shot setting (k−1 queries at most `T − α`, one query at
//! least `T + α`, `c = Δ = 1`):
//!
//! * Dwork–Roth Theorem 3.24: SVT is `(α, β)`-accurate for
//!   `α_SVT = 8(log k + log(2/β))/ε`.
//! * EM picks the right query with probability ≥ 1 − β once
//!   `α_EM = (log(k−1) + log((1−β)/β))/ε`,
//!   from `Pr[correct] ≥ e^{ε(T+α)/2} / ((k−1)e^{ε(T−α)/2} + e^{ε(T+α)/2})`.
//!
//! The paper observes `α_EM < α_SVT/8` — the analytic seed of its
//! "prefer EM non-interactively" recommendation. These functions back
//! the `alpha` experiment binary and are validated against an exact
//! probability computation in the tests.

use crate::{Result, SvtError};
use dp_mechanisms::MechanismError;

fn check_beta(beta: f64) -> Result<()> {
    if beta > 0.0 && beta < 1.0 {
        Ok(())
    } else {
        Err(SvtError::Mechanism(MechanismError::InvalidProbability(
            beta,
        )))
    }
}

fn check_k(k: usize) -> Result<()> {
    if k >= 2 {
        Ok(())
    } else {
        Err(SvtError::Mechanism(MechanismError::InvalidParameter(
            "utility bounds require k >= 2 queries",
        )))
    }
}

/// `α_SVT = 8(ln k + ln(2/β))/ε` (Dwork–Roth Theorem 3.24, c = Δ = 1).
///
/// # Errors
/// Requires `k ≥ 2`, `β ∈ (0,1)`, `ε > 0`.
pub fn alpha_svt(k: usize, beta: f64, epsilon: f64) -> Result<f64> {
    check_k(k)?;
    check_beta(beta)?;
    dp_mechanisms::error::check_epsilon(epsilon).map_err(SvtError::from)?;
    Ok(8.0 * ((k as f64).ln() + (2.0 / beta).ln()) / epsilon)
}

/// `α_EM = (ln(k−1) + ln((1−β)/β))/ε` (§5).
///
/// # Errors
/// Requires `k ≥ 2`, `β ∈ (0,1)`, `ε > 0`.
pub fn alpha_em(k: usize, beta: f64, epsilon: f64) -> Result<f64> {
    check_k(k)?;
    check_beta(beta)?;
    dp_mechanisms::error::check_epsilon(epsilon).map_err(SvtError::from)?;
    Ok(((k as f64 - 1.0).ln() + ((1.0 - beta) / beta).ln()) / epsilon)
}

/// The exact §5 lower bound on EM's probability of selecting the unique
/// query with answer `T + α` among `k − 1` queries at `T − α`
/// (monotonic scoring over counting queries uses `ε q`, the paper's
/// derivation uses `εq/2`; we follow the paper's `εq/2`).
///
/// # Errors
/// Requires `k ≥ 2`, finite inputs, `ε > 0`.
pub fn em_correct_selection_probability(
    k: usize,
    alpha: f64,
    threshold: f64,
    epsilon: f64,
) -> Result<f64> {
    check_k(k)?;
    crate::error::check_finite(alpha, "alpha")?;
    crate::error::check_finite(threshold, "threshold")?;
    dp_mechanisms::error::check_epsilon(epsilon).map_err(SvtError::from)?;
    // e^{ε(T+α)/2} / ((k−1)e^{ε(T−α)/2} + e^{ε(T+α)/2}); divide through
    // by e^{ε(T+α)/2} for numerical stability:
    // = 1 / ((k−1) e^{−εα} + 1).
    Ok(1.0 / ((k as f64 - 1.0) * (-epsilon * alpha).exp() + 1.0))
}

/// One row of the §5 comparison table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaComparison {
    /// Number of candidate queries.
    pub k: usize,
    /// Failure probability target.
    pub beta: f64,
    /// Privacy budget.
    pub epsilon: f64,
    /// SVT's accuracy bound.
    pub alpha_svt: f64,
    /// EM's accuracy bound.
    pub alpha_em: f64,
    /// `α_SVT / α_EM` — the paper notes this exceeds 8.
    pub advantage: f64,
}

/// Builds the comparison row for `(k, β, ε)`.
///
/// # Errors
/// Same domain requirements as [`alpha_svt`] / [`alpha_em`].
pub fn compare_alpha(k: usize, beta: f64, epsilon: f64) -> Result<AlphaComparison> {
    let a_svt = alpha_svt(k, beta, epsilon)?;
    let a_em = alpha_em(k, beta, epsilon)?;
    Ok(AlphaComparison {
        k,
        beta,
        epsilon,
        alpha_svt: a_svt,
        alpha_em: a_em,
        advantage: a_svt / a_em,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_validation() {
        assert!(alpha_svt(1, 0.05, 0.1).is_err());
        assert!(alpha_svt(10, 0.0, 0.1).is_err());
        assert!(alpha_svt(10, 1.0, 0.1).is_err());
        assert!(alpha_svt(10, 0.05, 0.0).is_err());
        assert!(alpha_em(1, 0.05, 0.1).is_err());
    }

    #[test]
    fn formulas_match_hand_computation() {
        // k = e², β = 2/e (so ln(2/β) = 1), ε = 1: α_SVT = 8(2+1) = 24.
        let k = (std::f64::consts::E * std::f64::consts::E).round() as usize; // 7
        let a = alpha_svt(k, 0.05, 0.1).unwrap();
        let want = 8.0 * ((7f64).ln() + (40f64).ln()) / 0.1;
        assert!((a - want).abs() < 1e-9);
        let e = alpha_em(k, 0.05, 0.1).unwrap();
        let want_em = ((6f64).ln() + (19f64).ln()) / 0.1;
        assert!((e - want_em).abs() < 1e-9);
    }

    #[test]
    fn em_beats_svt_by_more_than_factor_eight() {
        // The paper's claim: α_EM < α_SVT / 8 for reasonable (k, β).
        for &k in &[10usize, 100, 1000, 100_000] {
            for &beta in &[0.01, 0.05, 0.2] {
                let cmp = compare_alpha(k, beta, 0.1).unwrap();
                assert!(
                    cmp.advantage > 8.0,
                    "k={k} β={beta}: advantage {}",
                    cmp.advantage
                );
            }
        }
    }

    #[test]
    fn em_selection_probability_formula_is_stable_and_correct() {
        // Cross-check the stabilized form against the naive formula in a
        // regime where the naive one is computable.
        let (k, alpha, t, eps): (usize, f64, f64, f64) = (50, 20.0, 100.0, 0.05);
        let naive = {
            let top = (eps * (t + alpha) / 2.0).exp();
            let rest = (k as f64 - 1.0) * (eps * (t - alpha) / 2.0).exp();
            top / (rest + top)
        };
        let stable = em_correct_selection_probability(k, alpha, t, eps).unwrap();
        assert!((naive - stable).abs() < 1e-12);
        // And it must not overflow where the naive one would.
        let extreme = em_correct_selection_probability(10, 10.0, 1e6, 1.0).unwrap();
        assert!(extreme.is_finite() && extreme > 0.99);
    }

    #[test]
    fn alpha_em_is_the_inversion_of_the_probability_bound() {
        // At α = α_EM the correct-selection probability is exactly 1−β.
        let (k, beta, eps) = (200usize, 0.07, 0.3);
        let alpha = alpha_em(k, beta, eps).unwrap();
        let p = em_correct_selection_probability(k, alpha, 0.0, eps).unwrap();
        assert!((p - (1.0 - beta)).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn bounds_shrink_with_epsilon_and_grow_with_k() {
        let a1 = alpha_svt(100, 0.05, 0.1).unwrap();
        let a2 = alpha_svt(100, 0.05, 0.2).unwrap();
        assert!(a2 < a1);
        let a3 = alpha_svt(1000, 0.05, 0.1).unwrap();
        assert!(a3 > a1);
    }
}
