//! Algorithm 6 — SVT as in Chen et al. 2015. **Not private** (∞-DP).
//!
//! Fig. 1, Algorithm 6:
//!
//! ```text
//! Input: D, Q, Δ, T = T₁, T₂, ⋯.     ← no cutoff c!
//! 1: ε₁ = ε/2, ρ = Lap(Δ/ε₁)
//! 2: ε₂ = ε − ε₁
//! 3: for each query qᵢ ∈ Q do
//! 4:   νᵢ = Lap(Δ/ε₂)
//! 5:   if qᵢ(D) + νᵢ ≥ Tᵢ + ρ then
//! 6:     Output aᵢ = ⊤
//! 8:   else
//! 9:     Output aᵢ = ⊥
//! ```
//!
//! Unlike Alg. 5 this does add query noise, but the noise does not scale
//! with a cutoff — because there is no cutoff: the algorithm happily
//! outputs unboundedly many ⊤s at a fixed per-query accuracy, which
//! would be privacy "for free" (§3, step 4). The flawed proofs treat
//! `∫ p(z)f(z)g(z) dz` as if it factored into
//! `∫ p f · ∫ p g` (§3.2). Theorem 7 (Appendix 10.2) shows the output
//! `⊥^m ⊤^m` on `q(D) = 0^{2m}` vs `q(D′) = 1^m(−1)^m` has probability
//! ratio ≥ `e^{mε/2}`, unbounded in `m`.
//!
//! This is also the `GPTT` shape (§3.3) for `ε₁ = ε₂ = ε/2`: the
//! generalized private threshold testing algorithm whose published
//! non-privacy proof the paper shows to be itself flawed.

use crate::alg::SparseVector;
use crate::response::SvtAnswer;
use crate::{Result, SvtError};
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::DpRng;

/// Chen et al.'s 2015 SVT (Fig. 1, Alg. 6). **∞-DP — research artifact
/// only.**
#[derive(Debug, Clone)]
pub struct Alg6 {
    rho: f64,
    query_noise: Laplace,
    positives: usize,
}

impl Alg6 {
    /// Lines 1–2.
    ///
    /// # Errors
    /// Rejects non-positive `ε`/`Δ`.
    pub fn new(epsilon: f64, sensitivity: f64, rng: &mut DpRng) -> Result<Self> {
        dp_mechanisms::error::check_epsilon(epsilon).map_err(SvtError::from)?;
        dp_mechanisms::error::check_sensitivity(sensitivity).map_err(SvtError::from)?;
        let eps1 = epsilon / 2.0;
        let eps2 = epsilon - eps1;
        let rho = Laplace::new(sensitivity / eps1)
            .map_err(SvtError::from)?
            .sample(rng);
        let query_noise = Laplace::new(sensitivity / eps2).map_err(SvtError::from)?;
        Ok(Self {
            rho,
            query_noise,
            positives: 0,
        })
    }

    /// Constructs the GPTT generalization (§3.3): threshold noise
    /// `Lap(Δ/ε₁)`, query noise `Lap(Δ/ε₂)`, no cutoff, for an arbitrary
    /// `ε₁, ε₂` split. `Alg6::new(ε, Δ, rng)` equals
    /// `gptt(ε/2, ε/2, Δ, rng)`.
    ///
    /// # Errors
    /// Rejects non-positive `ε₁`/`ε₂`/`Δ`.
    pub fn gptt(eps1: f64, eps2: f64, sensitivity: f64, rng: &mut DpRng) -> Result<Self> {
        dp_mechanisms::error::check_epsilon(eps1).map_err(SvtError::from)?;
        dp_mechanisms::error::check_epsilon(eps2).map_err(SvtError::from)?;
        dp_mechanisms::error::check_sensitivity(sensitivity).map_err(SvtError::from)?;
        let rho = Laplace::new(sensitivity / eps1)
            .map_err(SvtError::from)?
            .sample(rng);
        let query_noise = Laplace::new(sensitivity / eps2).map_err(SvtError::from)?;
        Ok(Self {
            rho,
            query_noise,
            positives: 0,
        })
    }
}

impl SparseVector for Alg6 {
    fn respond(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer> {
        crate::error::check_finite(query_answer, "query answer")?;
        crate::error::check_finite(threshold, "threshold")?;
        let nu = self.query_noise.sample(rng); // line 4
        if query_answer + nu >= threshold + self.rho {
            self.positives += 1;
            Ok(SvtAnswer::Above)
        } else {
            Ok(SvtAnswer::Below)
        }
    }

    fn is_halted(&self) -> bool {
        false // never aborts — there is no cutoff
    }

    fn positives(&self) -> usize {
        self.positives
    }

    fn name(&self) -> &'static str {
        "Alg. 6 (Chen+ '15)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::run_svt;
    use crate::threshold::Thresholds;

    #[test]
    fn never_halts() {
        let mut rng = DpRng::seed_from_u64(383);
        let mut alg = Alg6::new(1.0, 1.0, &mut rng).unwrap();
        let run = run_svt(&mut alg, &[1e9; 50], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.positives(), 50);
        assert!(!run.halted);
    }

    #[test]
    fn query_noise_scale_ignores_any_cutoff_notion() {
        let mut rng = DpRng::seed_from_u64(389);
        let alg = Alg6::new(0.1, 1.0, &mut rng).unwrap();
        // ε₂ = 0.05 ⇒ scale = 20, no c anywhere.
        assert!((alg.query_noise.scale() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn supports_per_query_thresholds() {
        let mut rng = DpRng::seed_from_u64(397);
        let mut alg = Alg6::new(100.0, 1.0, &mut rng).unwrap();
        let run = run_svt(
            &mut alg,
            &[0.0, 0.0],
            &Thresholds::PerQuery(vec![1e9, -1e9]),
            &mut rng,
        )
        .unwrap();
        assert_eq!(run.answers[0], SvtAnswer::Below);
        assert_eq!(run.answers[1], SvtAnswer::Above);
    }

    #[test]
    fn gptt_with_even_split_equals_alg6_parameters() {
        let mut rng_a = DpRng::seed_from_u64(401);
        let mut rng_b = DpRng::seed_from_u64(401);
        let a = Alg6::new(0.2, 1.0, &mut rng_a).unwrap();
        let b = Alg6::gptt(0.1, 0.1, 1.0, &mut rng_b).unwrap();
        assert_eq!(a.rho, b.rho);
        assert_eq!(a.query_noise.scale(), b.query_noise.scale());
    }

    #[test]
    fn gptt_validates_parameters() {
        let mut rng = DpRng::seed_from_u64(409);
        assert!(Alg6::gptt(0.0, 0.1, 1.0, &mut rng).is_err());
        assert!(Alg6::gptt(0.1, -0.1, 1.0, &mut rng).is_err());
        assert!(Alg6::gptt(0.1, 0.1, 0.0, &mut rng).is_err());
    }
}
