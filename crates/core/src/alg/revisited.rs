//! SVT-Revisited — Kaplan, Mansour & Stemmer (arXiv:2010.00917).
//! **ε-DP**, with budget charged only on ⊤ answers.
//!
//! The 2020 revision of the technique reframes a cutoff-`c` session as
//! `c` *chained cutoff-1 instances* of budget `ε/c` each: an instance
//! fixes its threshold noise `ρ`, answers ⊥ after ⊥ for free, and the
//! first ⊤ closes it — consuming its `ε/c` — whereupon the next
//! instance opens with a fresh `ρ`. The observable stream is the
//! textbook one (a run of ⊥s punctuated by at most `c` ⊤s), but the
//! accounting differs in a way that matters for serving: a session that
//! never crosses the threshold has spent nothing and may keep going,
//! and partial consumption is `positives · ε/c`, not all-or-nothing.
//!
//! Per instance (budget `ε/c`, split `ε₁ : ε₂` like the standard SVT):
//!
//! - `ρ ~ Lap(Δ/(ε₁/c)) = Lap(cΔ/ε₁)`, redrawn after every non-final ⊤
//!   ([`StandardSvtConfig::revisited_threshold_noise_scale`]);
//! - `ν ~ Lap(kΔ/(ε₂/c)) = Lap(kcΔ/ε₂)` with `k = 1` monotonic / `2`
//!   general — numerically the same scale as Algorithm 7's
//!   [`StandardSvtConfig::query_noise_scale`].
//!
//! So at equal total `ε` the revisited variant pays a factor-`c` wider
//! threshold noise (like Alg. 2) to buy the ⊤-only charging rule; its
//! value is the accounting, not the utility.

use crate::alg::{SparseVector, StandardSvtConfig};
use crate::response::SvtAnswer;
use crate::session::{ChargePolicy, SessionState};
use crate::{Result, SvtError};
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::DpRng;

/// SVT-Revisited (KMS '20): `c` chained cutoff-1 instances, `ε/c`
/// charged per ⊤ answer. Satisfies `(ε₁+ε₂)`-DP.
///
/// ```
/// use dp_mechanisms::{DpRng, SvtBudget};
/// use svt_core::alg::{SparseVector, StandardSvtConfig, SvtRevisited};
///
/// let mut rng = DpRng::seed_from_u64(7);
/// let config = StandardSvtConfig {
///     budget: SvtBudget::halves(1.0)?,
///     sensitivity: 1.0,
///     c: 4,
///     monotonic: true,
/// };
/// let mut alg = SvtRevisited::new(config, &mut rng)?;
/// assert_eq!(alg.spent_epsilon(), 0.0); // nothing spent at open
/// let _ = alg.respond(1e9, 0.0, &mut rng)?; // a forced ⊤ costs ε/c
/// assert!((alg.spent_epsilon() - 0.25).abs() < 1e-12);
/// # Ok::<(), svt_core::SvtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SvtRevisited {
    state: SessionState,
    query_noise: Laplace,
    threshold_noise: Laplace,
}

impl SvtRevisited {
    /// Opens the first instance: draws `ρ = Lap(cΔ/ε₁)` from `rng` and
    /// prepares the `Lap(kcΔ/ε₂)` query noise.
    ///
    /// The budget in `config` is the **whole-session** `ε`; the
    /// per-instance split is derived internally (see the module docs).
    ///
    /// # Errors
    /// Rejects the same invalid configurations as
    /// [`StandardSvt::new`](crate::alg::StandardSvt::new), plus any
    /// budget with a numeric phase — SVT-Revisited defines no numeric
    /// release.
    pub fn new(config: StandardSvtConfig, rng: &mut DpRng) -> Result<Self> {
        dp_mechanisms::error::check_sensitivity(config.sensitivity).map_err(SvtError::from)?;
        crate::error::check_cutoff(config.c)?;
        let query_noise = Laplace::new(config.query_noise_scale()).map_err(SvtError::from)?;
        let threshold_noise =
            Laplace::new(config.revisited_threshold_noise_scale()).map_err(SvtError::from)?;
        if config.budget.has_numeric_phase() {
            return Err(SvtError::from(
                dp_mechanisms::MechanismError::InvalidParameter(
                    "per-top charging (SVT-Revisited) has no numeric phase",
                ),
            ));
        }
        let rho = threshold_noise.sample(rng);
        Ok(Self {
            state: SessionState::with_policy(config, rho, ChargePolicy::PerTop)?,
            query_noise,
            threshold_noise,
        })
    }

    /// The configuration in force.
    #[inline]
    pub fn config(&self) -> &StandardSvtConfig {
        self.state.config()
    }

    /// Privacy budget consumed so far: `positives · ε/c`.
    #[inline]
    pub fn spent_epsilon(&self) -> f64 {
        self.state.spent_epsilon()
    }

    #[cfg(test)]
    pub(crate) fn rho(&self) -> f64 {
        self.state.rho()
    }
}

impl SparseVector for SvtRevisited {
    fn respond(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer> {
        self.state.check(query_answer, threshold)?;
        let nu = self.query_noise.sample(rng);
        let positive = self.state.observe_unchecked(query_answer, threshold, nu);
        if positive && self.state.needs_rho_refresh() {
            // The ⊤ closed an instance; open the next one. Drawn from
            // the caller's rng immediately (the Alg. 2 refresh pattern),
            // so a ⊥ consumes exactly one draw and a non-final ⊤ two.
            let rho = self.threshold_noise.sample(rng);
            self.state.refresh_rho(rho)?;
        }
        Ok(if positive {
            SvtAnswer::Above
        } else {
            SvtAnswer::Below
        })
    }

    fn is_halted(&self) -> bool {
        self.state.is_halted()
    }

    fn positives(&self) -> usize {
        self.state.positives()
    }

    fn name(&self) -> &'static str {
        "SVT-Revisited (KMS '20)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::run_svt;
    use crate::threshold::Thresholds;
    use dp_mechanisms::SvtBudget;

    fn config(epsilon: f64, c: usize) -> StandardSvtConfig {
        StandardSvtConfig {
            budget: SvtBudget::halves(epsilon).unwrap(),
            sensitivity: 1.0,
            c,
            monotonic: true,
        }
    }

    #[test]
    fn construction_validates() {
        let mut rng = DpRng::seed_from_u64(307);
        let mut bad = config(1.0, 1);
        bad.sensitivity = f64::NAN;
        assert!(SvtRevisited::new(bad, &mut rng).is_err());
        let mut bad_c = config(1.0, 1);
        bad_c.c = 0;
        assert!(SvtRevisited::new(bad_c, &mut rng).is_err());
        // No numeric phase: the 2020 formulation has no Alg. 7 line 6.
        let numeric = StandardSvtConfig {
            budget: SvtBudget::new(0.25, 0.25, 0.5).unwrap(),
            sensitivity: 1.0,
            c: 2,
            monotonic: true,
        };
        assert!(SvtRevisited::new(numeric, &mut rng).is_err());
    }

    #[test]
    fn budget_is_charged_only_on_tops() {
        let mut rng = DpRng::seed_from_u64(311);
        let mut alg = SvtRevisited::new(config(1.0, 4), &mut rng).unwrap();
        assert_eq!(alg.spent_epsilon(), 0.0);
        for _ in 0..25 {
            let _ = alg.respond(-1e12, 0.0, &mut rng).unwrap(); // forced ⊥
        }
        assert_eq!(alg.spent_epsilon(), 0.0, "⊥ answers are free");
        let _ = alg.respond(1e12, 0.0, &mut rng).unwrap(); // forced ⊤
        assert!((alg.spent_epsilon() - 0.25).abs() < 1e-12);
        for _ in 0..3 {
            let _ = alg.respond(1e12, 0.0, &mut rng).unwrap();
        }
        assert!((alg.spent_epsilon() - 1.0).abs() < 1e-12);
        assert!(alg.is_halted());
    }

    #[test]
    fn rho_is_refreshed_after_each_nonfinal_positive() {
        let mut rng = DpRng::seed_from_u64(313);
        let mut alg = SvtRevisited::new(config(1.0, 10), &mut rng).unwrap();
        let before = alg.rho();
        let _ = alg.respond(1e12, 0.0, &mut rng).unwrap(); // forced ⊤
        assert_ne!(alg.rho(), before, "ρ must be refreshed on ⊤");
        let mid = alg.rho();
        let _ = alg.respond(-1e12, 0.0, &mut rng).unwrap(); // forced ⊥
        assert_eq!(alg.rho(), mid, "ρ must NOT be refreshed on ⊥");
    }

    #[test]
    fn threshold_noise_scales_with_c() {
        // Mean |Lap(b)| = b: the initial ρ dispersion must carry the
        // factor-c per-instance widening (cΔ/ε₁).
        let mut rng = DpRng::seed_from_u64(317);
        let n = 4000;
        let spread_c100: f64 = (0..n)
            .map(|_| {
                SvtRevisited::new(config(0.1, 100), &mut rng)
                    .unwrap()
                    .rho()
                    .abs()
            })
            .sum::<f64>()
            / n as f64;
        let spread_c1: f64 = (0..n)
            .map(|_| {
                SvtRevisited::new(config(0.1, 1), &mut rng)
                    .unwrap()
                    .rho()
                    .abs()
            })
            .sum::<f64>()
            / n as f64;
        let ratio = spread_c100 / spread_c1;
        assert!((70.0..140.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn aborts_at_cutoff() {
        let mut rng = DpRng::seed_from_u64(331);
        let mut alg = SvtRevisited::new(config(1.0, 2), &mut rng).unwrap();
        let run = run_svt(&mut alg, &[1e12; 5], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.positives(), 2);
        assert!(run.halted);
        assert!(matches!(
            alg.respond(0.0, 0.0, &mut rng),
            Err(SvtError::Halted)
        ));
    }

    #[test]
    fn rejected_queries_consume_no_budget_and_no_noise_draws() {
        // The PR 6 lockstep pin, extended to the per-top charging rule:
        // a ⊥ consumes exactly one ν draw and no budget; a bad input
        // consumes nothing at all; only a non-final ⊤ draws a fresh ρ.
        let cfg = config(1.0, 3);
        let mut rng_a = DpRng::seed_from_u64(337);
        let mut alg = SvtRevisited::new(cfg, &mut rng_a).unwrap();

        // Shadow generator replaying the pinned draw protocol by hand.
        let mut rng_b = DpRng::seed_from_u64(337);
        let nu_dist = Laplace::new(cfg.query_noise_scale()).unwrap();
        let rho_dist = Laplace::new(cfg.revisited_threshold_noise_scale()).unwrap();
        let _ = rho_dist.sample(&mut rng_b); // construction draws one ρ

        // Errors consume nothing.
        assert!(alg.respond(f64::NAN, 0.0, &mut rng_a).is_err());
        assert!(alg.respond(0.0, f64::INFINITY, &mut rng_a).is_err());
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "errors must be free");
        assert_eq!(alg.spent_epsilon(), 0.0);

        // A ⊥: exactly one ν draw, zero budget, no ρ draw.
        assert!(!alg.respond(-1e12, 0.0, &mut rng_a).unwrap().is_positive());
        let _ = nu_dist.sample(&mut rng_b);
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "⊥ = one ν draw");
        assert_eq!(alg.spent_epsilon(), 0.0, "⊥ must not be charged");

        // A non-final ⊤: one ν draw plus one ρ refresh, ε/c charged.
        assert!(alg.respond(1e12, 0.0, &mut rng_a).unwrap().is_positive());
        let _ = nu_dist.sample(&mut rng_b);
        let _ = rho_dist.sample(&mut rng_b);
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "⊤ = ν + fresh ρ");
        assert!((alg.spent_epsilon() - 1.0 / 3.0).abs() < 1e-12);

        // After the halt (final ⊤ has no refresh), errors stay free.
        assert!(alg.respond(1e12, 0.0, &mut rng_a).unwrap().is_positive());
        let _ = nu_dist.sample(&mut rng_b);
        let _ = rho_dist.sample(&mut rng_b);
        assert!(alg.respond(1e12, 0.0, &mut rng_a).unwrap().is_positive());
        let _ = nu_dist.sample(&mut rng_b); // final ⊤: ν only, no refresh
        assert!(alg.is_halted());
        assert!(alg.respond(0.0, 0.0, &mut rng_a).is_err());
        assert_eq!(
            rng_a.next_u64(),
            rng_b.next_u64(),
            "final ⊤ draws no ρ; halted respond draws nothing"
        );
        assert!((alg.spent_epsilon() - 1.0).abs() < 1e-12);
    }
}
