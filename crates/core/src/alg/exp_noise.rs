//! Exponential-noise SVT — the accuracy-enhanced variant of
//! arXiv:2407.20068. **ε-DP**, with one-sided noise.
//!
//! Structurally this is Algorithm 7's ⊤/⊥ phase with both perturbations
//! drawn from the one-sided exponential distribution instead of
//! Laplace:
//!
//! - `ρ ~ Exp(Δ/ε₁)`, fixed for the session;
//! - `ν ~ Exp(kcΔ/ε₂)` per query, `k = 1` monotonic / `2` general.
//!
//! Why the Laplace scales carry over: the SVT privacy proof only ever
//! shifts `ρ` and `ν` *upwards* by the sensitivity when moving to the
//! neighbouring database, and on its support the exponential density
//! satisfies `f(x)/f(x+Δ) = exp(Δ/b)` exactly — the same bound
//! `Lap(b)` provides. The win is accuracy: `Exp(b)` has variance `b²`
//! against `Lap(b)`'s `2b²`, and its noise never pushes a query *below*
//! its true value relative to the unperturbed threshold comparison's
//! symmetric error.
//!
//! One-sidedness is **not** DP for numeric release (a downward shift of
//! an observed `q + ν` has unbounded likelihood ratio), so this variant
//! rejects budgets with a numeric phase.

use crate::alg::{SparseVector, StandardSvtConfig};
use crate::response::SvtAnswer;
use crate::session::SessionState;
use crate::{Result, SvtError};
use dp_mechanisms::exp_noise::Exponential;
use dp_mechanisms::DpRng;

/// The exponential-noise SVT. Satisfies `(ε₁+ε₂)`-DP with one-sided
/// `Exp` perturbations at the Laplace scales.
///
/// ```
/// use dp_mechanisms::{DpRng, SvtBudget};
/// use svt_core::alg::{ExpNoiseSvt, SparseVector, StandardSvtConfig};
///
/// let mut rng = DpRng::seed_from_u64(7);
/// let config = StandardSvtConfig {
///     budget: SvtBudget::halves(1.0)?,
///     sensitivity: 1.0,
///     c: 2,
///     monotonic: true,
/// };
/// let mut alg = ExpNoiseSvt::new(config, &mut rng)?;
/// let answer = alg.respond(1e9, 0.0, &mut rng)?;
/// assert!(answer.is_positive());
/// # Ok::<(), svt_core::SvtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExpNoiseSvt {
    state: SessionState,
    query_noise: Exponential,
}

impl ExpNoiseSvt {
    /// Draws `ρ = Exp(Δ/ε₁)` from `rng` and prepares the `Exp(kcΔ/ε₂)`
    /// query noise.
    ///
    /// # Errors
    /// Rejects the same invalid configurations as
    /// [`StandardSvt::new`](crate::alg::StandardSvt::new), plus any
    /// budget with a numeric phase — one-sided noise is not DP for
    /// numeric release (see the module docs).
    pub fn new(config: StandardSvtConfig, rng: &mut DpRng) -> Result<Self> {
        dp_mechanisms::error::check_sensitivity(config.sensitivity).map_err(SvtError::from)?;
        crate::error::check_cutoff(config.c)?;
        let query_noise = Exponential::new(config.query_noise_scale()).map_err(SvtError::from)?;
        let threshold_noise =
            Exponential::new(config.threshold_noise_scale()).map_err(SvtError::from)?;
        if config.budget.has_numeric_phase() {
            return Err(SvtError::from(
                dp_mechanisms::MechanismError::InvalidParameter(
                    "one-sided exponential noise is not DP for numeric release",
                ),
            ));
        }
        let rho = threshold_noise.sample(rng);
        Ok(Self {
            state: SessionState::new(config, rho)?,
            query_noise,
        })
    }

    /// The configuration in force.
    #[inline]
    pub fn config(&self) -> &StandardSvtConfig {
        self.state.config()
    }

    #[cfg(test)]
    pub(crate) fn rho(&self) -> f64 {
        self.state.rho()
    }
}

impl SparseVector for ExpNoiseSvt {
    fn respond(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer> {
        self.state.check(query_answer, threshold)?;
        let nu = self.query_noise.sample(rng);
        Ok(
            if self.state.observe_unchecked(query_answer, threshold, nu) {
                SvtAnswer::Above
            } else {
                SvtAnswer::Below
            },
        )
    }

    fn is_halted(&self) -> bool {
        self.state.is_halted()
    }

    fn positives(&self) -> usize {
        self.state.positives()
    }

    fn name(&self) -> &'static str {
        "SVT-Exp (one-sided noise)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::run_svt;
    use crate::threshold::Thresholds;
    use dp_mechanisms::SvtBudget;

    fn config(epsilon: f64, c: usize) -> StandardSvtConfig {
        StandardSvtConfig {
            budget: SvtBudget::halves(epsilon).unwrap(),
            sensitivity: 1.0,
            c,
            monotonic: true,
        }
    }

    #[test]
    fn construction_validates_and_rejects_numeric_phase() {
        let mut rng = DpRng::seed_from_u64(347);
        let mut bad = config(1.0, 1);
        bad.sensitivity = -1.0;
        assert!(ExpNoiseSvt::new(bad, &mut rng).is_err());
        let mut bad_c = config(1.0, 1);
        bad_c.c = 0;
        assert!(ExpNoiseSvt::new(bad_c, &mut rng).is_err());
        let numeric = StandardSvtConfig {
            budget: SvtBudget::new(0.25, 0.25, 0.5).unwrap(),
            sensitivity: 1.0,
            c: 2,
            monotonic: true,
        };
        assert!(ExpNoiseSvt::new(numeric, &mut rng).is_err());
    }

    #[test]
    fn threshold_noise_is_one_sided() {
        let mut rng = DpRng::seed_from_u64(349);
        for _ in 0..500 {
            let alg = ExpNoiseSvt::new(config(1.0, 1), &mut rng).unwrap();
            assert!(alg.rho() >= 0.0, "ρ must be non-negative");
        }
    }

    #[test]
    fn threshold_noise_mean_matches_the_laplace_scale() {
        // Mean Exp(b) = b with b = Δ/ε₁ = 2 for ε = 1.
        let mut rng = DpRng::seed_from_u64(353);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| ExpNoiseSvt::new(config(1.0, 1), &mut rng).unwrap().rho())
            .sum::<f64>()
            / n as f64;
        assert!((mean / 2.0 - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn one_sided_noise_never_lifts_a_deeply_negative_query() {
        // ν ≥ 0 and ρ ≥ 0, so ⊤ requires ν ≥ (T − q) + ρ; for clearly
        // separated scores the answers are near-deterministic.
        let mut rng = DpRng::seed_from_u64(359);
        let mut alg = ExpNoiseSvt::new(config(2.0, 5), &mut rng).unwrap();
        let run = run_svt(
            &mut alg,
            &[1e9, -1e9, 1e9, -1e9],
            &Thresholds::Constant(0.0),
            &mut rng,
        )
        .unwrap();
        let positives: Vec<bool> = run.answers.iter().map(|a| a.is_positive()).collect();
        assert_eq!(positives, vec![true, false, true, false]);
    }

    #[test]
    fn aborts_at_cutoff() {
        let mut rng = DpRng::seed_from_u64(367);
        let mut alg = ExpNoiseSvt::new(config(1.0, 2), &mut rng).unwrap();
        let run = run_svt(&mut alg, &[1e12; 5], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.positives(), 2);
        assert!(run.halted);
        assert!(matches!(
            alg.respond(0.0, 0.0, &mut rng),
            Err(SvtError::Halted)
        ));
    }

    #[test]
    fn errors_consume_no_noise() {
        // Same lockstep pin as the other variants: a failed respond
        // leaves the generator untouched.
        let cfg = config(1.0, 3);
        let mut rng_a = DpRng::seed_from_u64(373);
        let mut alg = ExpNoiseSvt::new(cfg, &mut rng_a).unwrap();
        let mut rng_b = DpRng::seed_from_u64(373);
        let rho_dist = Exponential::new(cfg.threshold_noise_scale()).unwrap();
        let nu_dist = Exponential::new(cfg.query_noise_scale()).unwrap();
        let _ = rho_dist.sample(&mut rng_b);
        assert!(alg.respond(f64::NAN, 0.0, &mut rng_a).is_err());
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "errors must be free");
        assert!(!alg.respond(-1e12, 0.0, &mut rng_a).unwrap().is_positive());
        let _ = nu_dist.sample(&mut rng_b);
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "one ν per answer");
    }

    #[test]
    fn lower_variance_than_laplace_at_equal_epsilon() {
        // The variant's selling point: at identical scales the noise
        // variance halves (b² vs 2b²).
        let cfg = config(0.1, 25);
        let exp_var = {
            let d = Exponential::new(cfg.query_noise_scale()).unwrap();
            d.variance()
        };
        let lap_var = {
            let d = dp_mechanisms::Laplace::new(cfg.query_noise_scale()).unwrap();
            d.variance()
        };
        assert!((exp_var * 2.0 - lap_var).abs() < 1e-9);
    }
}
