//! The SVT variants of Figure 1, behind one streaming trait.
//!
//! Each submodule mirrors its Fig. 1 pseudocode line by line — noise
//! scales, `ε` splits, abort semantics, threshold-noise resets, numeric
//! outputs — *including the bugs*, because the bugs are the paper's
//! subject. The table below is Fig. 2; `crate::catalog` renders it.
//!
//! | | Alg. 1 | Alg. 2 | Alg. 3 | Alg. 4 | Alg. 5 | Alg. 6 |
//! |---|---|---|---|---|---|---|
//! | `ε₁` | ε/2 | ε/2 | ε/2 | ε/4 | ε/2 | ε/2 |
//! | scale of `ρ` | Δ/ε₁ | cΔ/ε₁ | Δ/ε₁ | Δ/ε₁ | Δ/ε₁ | Δ/ε₁ |
//! | resets `ρ` per ⊤ | | yes | | | | |
//! | scale of `ν` | 2cΔ/ε₂ | 2cΔ/ε₁ | cΔ/ε₂ | Δ/ε₂ | 0 | Δ/ε₂ |
//! | outputs `q+ν` for ⊤ | | | yes | | | |
//! | unbounded ⊤s | | | | | yes | yes |
//! | privacy | ε-DP | ε-DP | ∞-DP | (1+6c)ε/4 | ∞-DP | ∞-DP |
//!
//! Beyond Fig. 1, the suite carries the post-2017 generations as
//! first-class variants behind the same trait: [`SvtRevisited`]
//! (arXiv:2010.00917 — budget charged only on ⊤ answers) and
//! [`ExpNoiseSvt`] (arXiv:2407.20068 — one-sided exponential noise).

mod alg1;
mod alg2;
mod alg3;
mod alg4;
mod alg5;
mod alg6;
mod exp_noise;
mod revisited;
mod standard;

pub use alg1::Alg1;
pub use alg2::Alg2;
pub use alg3::Alg3;
pub use alg4::Alg4;
pub use alg5::Alg5;
pub use alg6::Alg6;
pub use exp_noise::ExpNoiseSvt;
pub use revisited::SvtRevisited;
pub use standard::{StandardSvt, StandardSvtConfig};

use crate::response::{SvtAnswer, SvtRun};
use crate::threshold::Thresholds;
use crate::{Result, SvtError};
use dp_mechanisms::DpRng;

/// Streaming interface shared by every SVT variant.
///
/// The interactive setting is the primitive: queries arrive one at a
/// time, the algorithm answers each before seeing the next, and a
/// variant with a cutoff stops accepting queries after its `c`-th
/// positive answer. The caller supplies the *true* query answer
/// `q_i(D)` (evaluating queries against a datastore is the caller's
/// job — see `dp-data`) and the threshold `T_i`.
pub trait SparseVector {
    /// Answers the next query. `query_answer` is the exact `q_i(D)`;
    /// `threshold` is `T_i`.
    ///
    /// # Errors
    /// [`SvtError::Halted`] once the variant has aborted;
    /// [`SvtError::NonFiniteInput`] on NaN/infinite inputs.
    fn respond(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer>;

    /// Whether the variant has aborted (output its `c`-th ⊤).
    fn is_halted(&self) -> bool;

    /// Positive answers produced so far.
    fn positives(&self) -> usize;

    /// The variant's display name (e.g. `"Alg. 3 (Roth '11)"`).
    fn name(&self) -> &'static str;
}

/// Feeds a whole query stream through an algorithm, stopping early if it
/// halts. This is the non-interactive driver used by the experiments.
///
/// # Errors
/// Propagates the first error from [`SparseVector::respond`] or
/// [`Thresholds::for_query`]; an early halt is *not* an error.
pub fn run_svt<A: SparseVector + ?Sized>(
    alg: &mut A,
    query_answers: &[f64],
    thresholds: &Thresholds,
    rng: &mut DpRng,
) -> Result<SvtRun> {
    let mut answers = Vec::with_capacity(query_answers.len());
    for (i, &q) in query_answers.iter().enumerate() {
        if alg.is_halted() {
            break;
        }
        let t = thresholds.for_query(i)?;
        answers.push(alg.respond(q, t, rng)?);
    }
    Ok(SvtRun {
        answers,
        halted: alg.is_halted(),
    })
}

/// Shared parameter validation for the variant constructors.
pub(crate) fn validate_common(epsilon: f64, sensitivity: f64, c: usize) -> Result<()> {
    dp_mechanisms::error::check_epsilon(epsilon).map_err(SvtError::from)?;
    dp_mechanisms::error::check_sensitivity(sensitivity).map_err(SvtError::from)?;
    crate::error::check_cutoff(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_svt_stops_at_halt() {
        // Alg. 1 with c = 1 and an overwhelming first query must answer
        // exactly one query and halt.
        let mut rng = DpRng::seed_from_u64(211);
        let mut alg = Alg1::new(1.0, 1.0, 1, &mut rng).unwrap();
        let run = run_svt(
            &mut alg,
            &[1e9, 0.0, 0.0],
            &Thresholds::Constant(0.0),
            &mut rng,
        )
        .unwrap();
        assert!(run.halted);
        assert_eq!(run.examined(), 1);
        assert_eq!(run.positives(), 1);
    }

    #[test]
    fn run_svt_answers_everything_when_no_halt() {
        let mut rng = DpRng::seed_from_u64(223);
        let mut alg = Alg1::new(1.0, 1.0, 5, &mut rng).unwrap();
        let run = run_svt(&mut alg, &[-1e9; 20], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert!(!run.halted);
        assert_eq!(run.examined(), 20);
        assert_eq!(run.positives(), 0);
    }

    #[test]
    fn run_svt_propagates_missing_thresholds() {
        let mut rng = DpRng::seed_from_u64(227);
        let mut alg = Alg1::new(1.0, 1.0, 5, &mut rng).unwrap();
        let err = run_svt(
            &mut alg,
            &[0.0, 0.0],
            &Thresholds::PerQuery(vec![0.0]),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, SvtError::MissingThreshold { query_index: 1 }));
    }

    #[test]
    fn trait_objects_work() {
        // The trait must be object-safe: the experiments iterate over
        // heterogeneous variant collections.
        let mut rng = DpRng::seed_from_u64(229);
        let mut algs: Vec<Box<dyn SparseVector>> = vec![
            Box::new(Alg1::new(1.0, 1.0, 2, &mut rng).unwrap()),
            Box::new(Alg5::new(1.0, 1.0, &mut rng).unwrap()),
        ];
        for alg in &mut algs {
            let run = run_svt(
                alg.as_mut(),
                &[0.0; 4],
                &Thresholds::Constant(100.0),
                &mut rng,
            )
            .unwrap();
            assert_eq!(run.examined(), 4);
        }
    }
}
