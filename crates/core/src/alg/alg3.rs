//! Algorithm 3 — SVT as in Roth's 2011 lecture notes. **Not private**
//! (∞-DP).
//!
//! Fig. 1, Algorithm 3:
//!
//! ```text
//! Input: D, Q, Δ, T, c.
//! 1: ε₁ = ε/2, ρ = Lap(Δ/ε₁)
//! 2: ε₂ = ε − ε₁, count = 0
//! 3: for each query qᵢ ∈ Q do
//! 4:   νᵢ = Lap(cΔ/ε₂)
//! 5:   if qᵢ(D) + νᵢ ≥ T + ρ then
//! 6:     Output aᵢ = qᵢ(D) + νᵢ          ← the fatal line
//! 7:     count = count + 1, Abort if count ≥ c.
//! 8:   else
//! 9:     Output aᵢ = ⊥
//! ```
//!
//! Two deviations from Alg. 1 (§3.2): the query noise `Lap(cΔ/ε₂)` is
//! missing its factor of 2 (alone that would still give `(3ε/2)`-DP),
//! and — fatally — line 6 outputs the **noisy query answer itself**.
//! Releasing a value known to exceed the noisy threshold reveals
//! one-sided information about `ρ`, and once `ρ` leaks, the "free"
//! negative answers are no longer free. Theorem 6 (Appendix 10.1)
//! constructs outputs whose probability ratio grows as `e^{(m−1)ε/2}`
//! with the query count `m`, so no finite `ε′` bounds it; the
//! `dp-auditor` crate demonstrates the growth empirically.

use crate::alg::SparseVector;
use crate::response::SvtAnswer;
use crate::{Result, SvtError};
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::DpRng;

/// Roth's 2011 lecture-notes SVT (Fig. 1, Alg. 3). **∞-DP — research
/// artifact only.**
#[derive(Debug, Clone)]
pub struct Alg3 {
    rho: f64,
    query_noise: Laplace,
    c: usize,
    count: usize,
    halted: bool,
}

impl Alg3 {
    /// Lines 1–2.
    ///
    /// # Errors
    /// Rejects non-positive `ε`/`Δ` and `c == 0`.
    pub fn new(epsilon: f64, sensitivity: f64, c: usize, rng: &mut DpRng) -> Result<Self> {
        crate::alg::validate_common(epsilon, sensitivity, c)?;
        let eps1 = epsilon / 2.0;
        let eps2 = epsilon - eps1;
        let rho = Laplace::new(sensitivity / eps1)
            .map_err(SvtError::from)?
            .sample(rng);
        let query_noise = Laplace::new(c as f64 * sensitivity / eps2).map_err(SvtError::from)?;
        Ok(Self {
            rho,
            query_noise,
            c,
            count: 0,
            halted: false,
        })
    }
}

impl SparseVector for Alg3 {
    fn respond(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer> {
        if self.halted {
            return Err(SvtError::Halted);
        }
        crate::error::check_finite(query_answer, "query answer")?;
        crate::error::check_finite(threshold, "threshold")?;
        let nu = self.query_noise.sample(rng); // line 4
        let noisy = query_answer + nu;
        if noisy >= threshold + self.rho {
            // line 6: leaks the noisy answer (and hence info about ρ).
            self.count += 1;
            if self.count >= self.c {
                self.halted = true;
            }
            Ok(SvtAnswer::Numeric(noisy))
        } else {
            Ok(SvtAnswer::Below)
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn positives(&self) -> usize {
        self.count
    }

    fn name(&self) -> &'static str {
        "Alg. 3 (Roth '11)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::run_svt;
    use crate::threshold::Thresholds;

    #[test]
    fn positive_outputs_are_numeric() {
        let mut rng = DpRng::seed_from_u64(307);
        let mut alg = Alg3::new(1.0, 1.0, 3, &mut rng).unwrap();
        let answer = alg.respond(1e9, 0.0, &mut rng).unwrap();
        match answer {
            SvtAnswer::Numeric(v) => assert!((v - 1e9).abs() < 1e6, "noisy answer near 1e9"),
            other => panic!("expected numeric output, got {other:?}"),
        }
    }

    #[test]
    fn numeric_output_always_exceeds_noisy_threshold() {
        // The structural leak: every released number is ≥ T + ρ, so the
        // observer learns an upper bound on ρ. We verify the invariant
        // that triggers it.
        let mut rng = DpRng::seed_from_u64(311);
        for _ in 0..200 {
            let mut alg = Alg3::new(1.0, 1.0, 5, &mut rng).unwrap();
            let rho = alg.rho;
            for _ in 0..20 {
                if let SvtAnswer::Numeric(v) = alg.respond(2.0, 0.0, &mut rng).unwrap() {
                    assert!(v >= rho, "released value below noisy threshold");
                }
                if alg.is_halted() {
                    break;
                }
            }
        }
    }

    #[test]
    fn query_noise_lacks_factor_of_two() {
        let mut rng = DpRng::seed_from_u64(313);
        let alg = Alg3::new(0.1, 1.0, 25, &mut rng).unwrap();
        // ε₂ = 0.05 ⇒ scale = 25/0.05 = 500 (Alg. 1 would use 1000).
        assert!((alg.query_noise.scale() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn still_aborts_at_cutoff() {
        let mut rng = DpRng::seed_from_u64(317);
        let mut alg = Alg3::new(1.0, 1.0, 2, &mut rng).unwrap();
        let run = run_svt(&mut alg, &[1e9; 6], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.positives(), 2);
        assert!(run.halted);
        assert!(run.answers.iter().all(|a| a.numeric().is_some()));
    }

    #[test]
    fn negative_answers_are_plain_bottoms() {
        let mut rng = DpRng::seed_from_u64(331);
        let mut alg = Alg3::new(1.0, 1.0, 2, &mut rng).unwrap();
        let run = run_svt(&mut alg, &[-1e9; 4], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.render(), "⊥⊥⊥⊥");
    }
}
