//! Algorithm 1 — the paper's proposed SVT instantiation. **ε-DP.**
//!
//! Fig. 1, Algorithm 1:
//!
//! ```text
//! Input: D, Q, Δ, T = T₁, T₂, ⋯, c.
//! 1: ε₁ = ε/2, ρ = Lap(Δ/ε₁)
//! 2: ε₂ = ε − ε₁, count = 0
//! 3: for each query qᵢ ∈ Q do
//! 4:   νᵢ = Lap(2cΔ/ε₂)
//! 5:   if qᵢ(D) + νᵢ ≥ Tᵢ + ρ then
//! 6:     Output aᵢ = ⊤
//! 7:     count = count + 1, Abort if count ≥ c.
//! 8:   else
//! 9:     Output aᵢ = ⊥
//! ```
//!
//! Key points proved in §3.1 (Lemma 1 + Theorem 2): the threshold noise
//! `ρ` is drawn **once** and scales with `Δ/ε₁` only — unlike the
//! textbook Alg. 2 it carries no factor of `c`, because the noisy
//! threshold is never refreshed. The query noise must scale with
//! `2cΔ/ε₂` to pay for up to `c` positive outcomes (Eq. 9–10).

use crate::alg::SparseVector;
use crate::response::SvtAnswer;
use crate::{Result, SvtError};
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::DpRng;

/// The paper's SVT (Fig. 1, Alg. 1). Satisfies `ε`-DP.
#[derive(Debug, Clone)]
pub struct Alg1 {
    epsilon: f64,
    rho: f64,
    query_noise: Laplace,
    c: usize,
    count: usize,
    halted: bool,
}

impl Alg1 {
    /// Line 1–2: splits `ε` in half, draws `ρ = Lap(Δ/ε₁)` once, and
    /// prepares the query-noise distribution `Lap(2cΔ/ε₂)`.
    ///
    /// # Errors
    /// Rejects non-positive `ε`/`Δ` and `c == 0`.
    pub fn new(epsilon: f64, sensitivity: f64, c: usize, rng: &mut DpRng) -> Result<Self> {
        crate::alg::validate_common(epsilon, sensitivity, c)?;
        let eps1 = epsilon / 2.0;
        let eps2 = epsilon - eps1;
        let rho = Laplace::new(sensitivity / eps1)
            .map_err(SvtError::from)?
            .sample(rng);
        let query_noise =
            Laplace::new(2.0 * c as f64 * sensitivity / eps2).map_err(SvtError::from)?;
        Ok(Self {
            epsilon,
            rho,
            query_noise,
            c,
            count: 0,
            halted: false,
        })
    }

    /// The total `ε` this instance satisfies (Theorem 2).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The fixed noisy-threshold offset `ρ` (test access; a deployed
    /// system must never release this).
    #[cfg(test)]
    pub(crate) fn rho(&self) -> f64 {
        self.rho
    }
}

impl SparseVector for Alg1 {
    fn respond(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer> {
        if self.halted {
            return Err(SvtError::Halted);
        }
        crate::error::check_finite(query_answer, "query answer")?;
        crate::error::check_finite(threshold, "threshold")?;
        let nu = self.query_noise.sample(rng); // line 4
        if query_answer + nu >= threshold + self.rho {
            // lines 6–7
            self.count += 1;
            if self.count >= self.c {
                self.halted = true;
            }
            Ok(SvtAnswer::Above)
        } else {
            // line 9
            Ok(SvtAnswer::Below)
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn positives(&self) -> usize {
        self.count
    }

    fn name(&self) -> &'static str {
        "Alg. 1 (this paper)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::run_svt;
    use crate::threshold::Thresholds;

    #[test]
    fn construction_validates() {
        let mut rng = DpRng::seed_from_u64(233);
        assert!(Alg1::new(0.0, 1.0, 1, &mut rng).is_err());
        assert!(Alg1::new(1.0, 0.0, 1, &mut rng).is_err());
        assert!(Alg1::new(1.0, 1.0, 0, &mut rng).is_err());
        assert!(Alg1::new(0.1, 1.0, 25, &mut rng).is_ok());
    }

    #[test]
    fn aborts_exactly_at_c_positives() {
        let mut rng = DpRng::seed_from_u64(239);
        let mut alg = Alg1::new(10.0, 1.0, 3, &mut rng).unwrap();
        let run = run_svt(&mut alg, &[1e9; 10], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.positives(), 3);
        assert_eq!(run.examined(), 3);
        assert!(run.halted);
        assert!(matches!(
            alg.respond(0.0, 0.0, &mut rng),
            Err(SvtError::Halted)
        ));
    }

    #[test]
    fn threshold_noise_is_fixed_across_queries() {
        // Unlike Alg. 2, ρ never changes — even after positive outcomes.
        let mut rng = DpRng::seed_from_u64(241);
        let mut alg = Alg1::new(1.0, 1.0, 5, &mut rng).unwrap();
        let before = alg.rho();
        let _ = alg.respond(1e9, 0.0, &mut rng).unwrap(); // forced ⊤
        assert_eq!(alg.rho(), before);
    }

    #[test]
    fn query_noise_scale_is_2c_delta_over_eps2() {
        let mut rng = DpRng::seed_from_u64(251);
        let alg = Alg1::new(0.1, 2.0, 25, &mut rng).unwrap();
        // ε₂ = 0.05 ⇒ scale = 2·25·2/0.05 = 2000.
        assert!((alg.query_noise.scale() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn far_below_queries_come_back_negative() {
        let mut rng = DpRng::seed_from_u64(257);
        let mut alg = Alg1::new(10.0, 1.0, 5, &mut rng).unwrap();
        let run = run_svt(&mut alg, &[-1e9; 8], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.positives(), 0);
        assert_eq!(run.render(), "⊥⊥⊥⊥⊥⊥⊥⊥");
    }

    #[test]
    fn per_query_thresholds_are_honored() {
        let mut rng = DpRng::seed_from_u64(263);
        let mut alg = Alg1::new(10.0, 1.0, 2, &mut rng).unwrap();
        // Same answers, wildly different thresholds.
        let run = run_svt(
            &mut alg,
            &[0.0, 0.0],
            &Thresholds::PerQuery(vec![1e9, -1e9]),
            &mut rng,
        )
        .unwrap();
        assert_eq!(run.answers[0], SvtAnswer::Below);
        assert_eq!(run.answers[1], SvtAnswer::Above);
    }

    #[test]
    fn rejects_non_finite_inputs() {
        let mut rng = DpRng::seed_from_u64(269);
        let mut alg = Alg1::new(1.0, 1.0, 1, &mut rng).unwrap();
        assert!(alg.respond(f64::NAN, 0.0, &mut rng).is_err());
        assert!(alg.respond(0.0, f64::INFINITY, &mut rng).is_err());
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let mk = || {
            let mut rng = DpRng::seed_from_u64(271);
            let mut alg = Alg1::new(0.5, 1.0, 4, &mut rng).unwrap();
            let answers: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
            run_svt(&mut alg, &answers, &Thresholds::Constant(3.0), &mut rng).unwrap()
        };
        assert_eq!(mk(), mk());
    }
}
