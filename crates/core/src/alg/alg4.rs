//! Algorithm 4 — SVT as in Lee & Clifton 2014. **Not ε-DP**: only
//! `((1+6c)/4)ε`-DP in general, `((1+3c)/4)ε`-DP for monotonic queries.
//!
//! Fig. 1, Algorithm 4:
//!
//! ```text
//! Input: D, Q, Δ, T, c.
//! 1: ε₁ = ε/4, ρ = Lap(Δ/ε₁)
//! 2: ε₂ = ε − ε₁, count = 0
//! 3: for each query qᵢ ∈ Q do
//! 4:   νᵢ = Lap(Δ/ε₂)
//! 5:   if qᵢ(D) + νᵢ ≥ T + ρ then
//! 6:     Output aᵢ = ⊤
//! 7:     count = count + 1, Abort if count ≥ c.
//! 8:   else
//! 9:     Output aᵢ = ⊥
//! ```
//!
//! Differences from Alg. 1 (§3.2): `ε₁ = ε/4` instead of `ε/2` (harmless
//! — just a different allocation ratio, 1:3), and the query noise
//! `Lap(Δ/ε₂)` is missing its factor of `c` entirely. Each of up to `c`
//! positive outcomes costs `ε₂`-ish on its own, so by Theorem 4 applied
//! in reverse the algorithm only satisfies `((1+6c)/4)ε`-DP (the
//! monotonic counting queries of the original frequent-itemset use case
//! give `((1+3c)/4)ε`). With `c = 50–400` as used in [13], the real
//! guarantee is 40–600× weaker than claimed.

use crate::alg::SparseVector;
use crate::response::SvtAnswer;
use crate::{Result, SvtError};
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::DpRng;

/// Lee & Clifton's 2014 SVT (Fig. 1, Alg. 4). **Only `((1+6c)/4)ε`-DP —
/// research artifact only.**
#[derive(Debug, Clone)]
pub struct Alg4 {
    nominal_epsilon: f64,
    rho: f64,
    query_noise: Laplace,
    c: usize,
    count: usize,
    halted: bool,
}

impl Alg4 {
    /// Lines 1–2: `ε₁ = ε/4`, `ρ = Lap(Δ/ε₁)`, `ν ~ Lap(Δ/ε₂)`.
    ///
    /// # Errors
    /// Rejects non-positive `ε`/`Δ` and `c == 0`.
    pub fn new(epsilon: f64, sensitivity: f64, c: usize, rng: &mut DpRng) -> Result<Self> {
        crate::alg::validate_common(epsilon, sensitivity, c)?;
        let eps1 = epsilon / 4.0;
        let eps2 = epsilon - eps1;
        let rho = Laplace::new(sensitivity / eps1)
            .map_err(SvtError::from)?
            .sample(rng);
        let query_noise = Laplace::new(sensitivity / eps2).map_err(SvtError::from)?;
        Ok(Self {
            nominal_epsilon: epsilon,
            rho,
            query_noise,
            c,
            count: 0,
            halted: false,
        })
    }

    /// The `ε` the algorithm *claims* to satisfy.
    pub fn nominal_epsilon(&self) -> f64 {
        self.nominal_epsilon
    }

    /// The `ε` it *actually* satisfies for general queries:
    /// `(1+6c)/4 · ε` (Fig. 2 last row).
    pub fn actual_epsilon_general(&self) -> f64 {
        (1.0 + 6.0 * self.c as f64) / 4.0 * self.nominal_epsilon
    }

    /// The `ε` it actually satisfies for monotonic queries:
    /// `(1+3c)/4 · ε` (§3.2, via Theorem 5 applied to its parameters).
    pub fn actual_epsilon_monotonic(&self) -> f64 {
        (1.0 + 3.0 * self.c as f64) / 4.0 * self.nominal_epsilon
    }
}

impl SparseVector for Alg4 {
    fn respond(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer> {
        if self.halted {
            return Err(SvtError::Halted);
        }
        crate::error::check_finite(query_answer, "query answer")?;
        crate::error::check_finite(threshold, "threshold")?;
        let nu = self.query_noise.sample(rng); // line 4
        if query_answer + nu >= threshold + self.rho {
            self.count += 1;
            if self.count >= self.c {
                self.halted = true;
            }
            Ok(SvtAnswer::Above)
        } else {
            Ok(SvtAnswer::Below)
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn positives(&self) -> usize {
        self.count
    }

    fn name(&self) -> &'static str {
        "Alg. 4 (Lee-Clifton '14)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::run_svt;
    use crate::threshold::Thresholds;

    #[test]
    fn epsilon_accounting_matches_figure_2() {
        let mut rng = DpRng::seed_from_u64(337);
        let alg = Alg4::new(0.4, 1.0, 50, &mut rng).unwrap();
        assert!((alg.nominal_epsilon() - 0.4).abs() < 1e-12);
        // (1 + 6·50)/4 · 0.4 = 30.1
        assert!((alg.actual_epsilon_general() - 30.1).abs() < 1e-9);
        // (1 + 3·50)/4 · 0.4 = 15.1
        assert!((alg.actual_epsilon_monotonic() - 15.1).abs() < 1e-9);
    }

    #[test]
    fn query_noise_is_independent_of_c() {
        let mut rng = DpRng::seed_from_u64(347);
        let a = Alg4::new(0.1, 1.0, 1, &mut rng).unwrap();
        let b = Alg4::new(0.1, 1.0, 400, &mut rng).unwrap();
        assert_eq!(a.query_noise.scale(), b.query_noise.scale());
        // ε₂ = 0.075 ⇒ scale = 1/0.075.
        assert!((a.query_noise.scale() - 1.0 / 0.075).abs() < 1e-9);
    }

    #[test]
    fn one_to_three_split() {
        // ε₁ = ε/4 means the threshold noise has scale 4Δ/ε.
        let mut rng = DpRng::seed_from_u64(349);
        let mean_abs: f64 = (0..4000)
            .map(|_| Alg4::new(1.0, 1.0, 5, &mut rng).unwrap().rho.abs())
            .sum::<f64>()
            / 4000.0;
        // Mean |Lap(b)| = b = 4.
        assert!((mean_abs - 4.0).abs() < 0.3, "mean |ρ| = {mean_abs}");
    }

    #[test]
    fn abort_behaviour_matches_alg1() {
        let mut rng = DpRng::seed_from_u64(353);
        let mut alg = Alg4::new(1.0, 1.0, 3, &mut rng).unwrap();
        let run = run_svt(&mut alg, &[1e9; 9], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.positives(), 3);
        assert!(run.halted);
    }
}
