//! Algorithm 2 — SVT as in Dwork & Roth's 2014 book. **ε-DP**, but
//! noisier than Algorithm 1.
//!
//! Fig. 1, Algorithm 2:
//!
//! ```text
//! Input: D, Q, Δ, T, c.
//! 1: ε₁ = ε/2, ρ = Lap(cΔ/ε₁)
//! 2: ε₂ = ε − ε₁, count = 0
//! 3: for each query qᵢ ∈ Q do
//! 4:   νᵢ = Lap(2cΔ/ε₁)
//! 5:   if qᵢ(D) + νᵢ ≥ T + ρ then
//! 6:     Output aᵢ = ⊤, ρ = Lap(cΔ/ε₂)
//! 7:     count = count + 1, Abort if count ≥ c.
//! 8:   else
//! 9:     Output aᵢ = ⊥
//! ```
//!
//! The two differences from Alg. 1 (§3.2): the threshold noise scales
//! with `cΔ/ε₁` — a factor of `c` larger — and the noisy threshold is
//! **resampled after every ⊤** (line 6). The paper's point is that the
//! resampling is what forces the `c` into the threshold-noise scale, and
//! that the resampling is unnecessary; dropping both (as Alg. 1 does)
//! gives strictly better utility at the same `ε`. This is the
//! `SVT-DPBook` baseline of Figure 4.

use crate::alg::SparseVector;
use crate::response::SvtAnswer;
use crate::{Result, SvtError};
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::DpRng;

/// The Dwork–Roth textbook SVT (Fig. 1, Alg. 2). Satisfies `ε`-DP.
#[derive(Debug, Clone)]
pub struct Alg2 {
    epsilon: f64,
    rho: f64,
    /// Distribution used to *re*-sample ρ after each ⊤ (`Lap(cΔ/ε₂)`).
    rho_refresh: Laplace,
    query_noise: Laplace,
    c: usize,
    count: usize,
    halted: bool,
}

impl Alg2 {
    /// Lines 1–2: draws `ρ = Lap(cΔ/ε₁)` and prepares `Lap(2cΔ/ε₁)`
    /// query noise and the `Lap(cΔ/ε₂)` refresh distribution.
    ///
    /// # Errors
    /// Rejects non-positive `ε`/`Δ` and `c == 0`.
    pub fn new(epsilon: f64, sensitivity: f64, c: usize, rng: &mut DpRng) -> Result<Self> {
        crate::alg::validate_common(epsilon, sensitivity, c)?;
        let eps1 = epsilon / 2.0;
        let eps2 = epsilon - eps1;
        let c_f = c as f64;
        let rho = Laplace::new(c_f * sensitivity / eps1)
            .map_err(SvtError::from)?
            .sample(rng);
        let rho_refresh = Laplace::new(c_f * sensitivity / eps2).map_err(SvtError::from)?;
        // Fig. 1 line 4 uses ε₁ here (not ε₂) — faithful to the source.
        let query_noise = Laplace::new(2.0 * c_f * sensitivity / eps1).map_err(SvtError::from)?;
        Ok(Self {
            epsilon,
            rho,
            rho_refresh,
            query_noise,
            c,
            count: 0,
            halted: false,
        })
    }

    /// The total `ε` this instance satisfies.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    #[cfg(test)]
    pub(crate) fn rho(&self) -> f64 {
        self.rho
    }
}

impl SparseVector for Alg2 {
    fn respond(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer> {
        if self.halted {
            return Err(SvtError::Halted);
        }
        crate::error::check_finite(query_answer, "query answer")?;
        crate::error::check_finite(threshold, "threshold")?;
        let nu = self.query_noise.sample(rng); // line 4
        if query_answer + nu >= threshold + self.rho {
            // line 6: output ⊤ and refresh the noisy threshold.
            self.rho = self.rho_refresh.sample(rng);
            self.count += 1;
            if self.count >= self.c {
                self.halted = true;
            }
            Ok(SvtAnswer::Above)
        } else {
            Ok(SvtAnswer::Below)
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn positives(&self) -> usize {
        self.count
    }

    fn name(&self) -> &'static str {
        "Alg. 2 (Dwork-Roth '14)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::run_svt;
    use crate::threshold::Thresholds;

    #[test]
    fn threshold_noise_scales_with_c() {
        // Verify the scale statistically: with c = 100 and ε = 0.1 the
        // initial ρ has scale 100/0.05 = 2000, so |ρ| ≥ 100 almost
        // always... rather, compare dispersion across constructions.
        let mut rng = DpRng::seed_from_u64(277);
        let n = 4000;
        let spread_c100: f64 = (0..n)
            .map(|_| Alg2::new(0.1, 1.0, 100, &mut rng).unwrap().rho().abs())
            .sum::<f64>()
            / n as f64;
        let spread_c1: f64 = (0..n)
            .map(|_| Alg2::new(0.1, 1.0, 1, &mut rng).unwrap().rho().abs())
            .sum::<f64>()
            / n as f64;
        // Mean |Lap(b)| = b: ratio should be ≈ 100.
        let ratio = spread_c100 / spread_c1;
        assert!((70.0..140.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rho_is_resampled_after_each_positive() {
        let mut rng = DpRng::seed_from_u64(281);
        let mut alg = Alg2::new(1.0, 1.0, 10, &mut rng).unwrap();
        let before = alg.rho();
        let _ = alg.respond(1e12, 0.0, &mut rng).unwrap(); // forced ⊤
        assert_ne!(alg.rho(), before, "ρ must be refreshed on ⊤");
        let mid = alg.rho();
        let _ = alg.respond(-1e12, 0.0, &mut rng).unwrap(); // forced ⊥
        assert_eq!(alg.rho(), mid, "ρ must NOT be refreshed on ⊥");
    }

    #[test]
    fn aborts_at_cutoff() {
        let mut rng = DpRng::seed_from_u64(283);
        let mut alg = Alg2::new(1.0, 1.0, 2, &mut rng).unwrap();
        let run = run_svt(&mut alg, &[1e12; 5], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.positives(), 2);
        assert!(run.halted);
    }

    #[test]
    fn noisier_than_alg1_in_comparison_variance() {
        // The effective comparison noise of Alg. 2 (ρ scale cΔ/ε₁ plus
        // ν scale 2cΔ/ε₁) strictly dominates Alg. 1's (Δ/ε₁ and
        // 2cΔ/ε₂): check the implied variances for the paper's settings.
        let (eps, c) = (0.1f64, 50f64);
        let (e1, e2) = (eps / 2.0, eps / 2.0);
        let var =
            |rho_scale: f64, nu_scale: f64| 2.0 * rho_scale * rho_scale + 2.0 * nu_scale * nu_scale;
        let alg1 = var(1.0 / e1, 2.0 * c / e2);
        let alg2 = var(c / e1, 2.0 * c / e1);
        assert!(alg2 > alg1);
    }

    #[test]
    fn construction_validates() {
        let mut rng = DpRng::seed_from_u64(293);
        assert!(Alg2::new(-1.0, 1.0, 1, &mut rng).is_err());
        assert!(Alg2::new(1.0, f64::NAN, 1, &mut rng).is_err());
        assert!(Alg2::new(1.0, 1.0, 0, &mut rng).is_err());
    }
}
