//! Algorithm 7 — the paper's generalized "standard" SVT. **`(ε₁+ε₂+ε₃)`-DP**
//! (Theorem 4; Theorem 5 for the monotonic refinement).
//!
//! Fig. Alg. 7:
//!
//! ```text
//! Input: D, Q, Δ, T = T₁, T₂, ⋯, c and ε₁, ε₂ and ε₃.
//! 1: ρ = Lap(Δ/ε₁), count = 0
//! 2: for each query qᵢ ∈ Q do
//! 3:   νᵢ = Lap(2cΔ/ε₂)
//! 4:   if qᵢ(D) + νᵢ ≥ Tᵢ + ρ then
//! 5:     if ε₃ > 0 then
//! 6:       Output aᵢ = qᵢ(D) + Lap(cΔ/ε₃)
//! 7:     else
//! 8:       Output aᵢ = ⊤
//! 9:     count = count + 1, Abort if count ≥ c.
//! 10:  else
//! 11:    Output aᵢ = ⊥
//! ```
//!
//! Generalizations over Alg. 1:
//!
//! * the `ε₁ : ε₂` split is free (the §4.2 optimizer picks
//!   `1 : (2c)^{2/3}`, or `1 : c^{2/3}` for monotonic queries);
//! * `ε₃ > 0` releases a **freshly perturbed** numeric answer for
//!   positive queries (contrast Alg. 3, which re-uses the comparison
//!   noise and breaks);
//! * monotonic mode (Theorem 5) halves the query-noise scale to
//!   `Lap(cΔ/ε₂)`.
//!
//! This type powers `SVT-S` in the evaluation and is the recommended
//! production SVT of this workspace.

use crate::alg::SparseVector;
use crate::response::SvtAnswer;
use crate::session::SessionState;
use crate::{Result, SvtError};
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::{DpRng, SvtBudget};

/// Configuration for [`StandardSvt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StandardSvtConfig {
    /// The `ε₁/ε₂/ε₃` budget split.
    pub budget: SvtBudget,
    /// Query sensitivity `Δ`.
    pub sensitivity: f64,
    /// Maximum number of positive answers before aborting.
    pub c: usize,
    /// Whether the query family is monotonic (Theorem 5: halves the
    /// query-noise scale).
    pub monotonic: bool,
}

impl StandardSvtConfig {
    /// Convenience constructor: splits `epsilon` as `ε₁ : ε₂ = 1 : ratio`
    /// with no numeric phase.
    ///
    /// # Errors
    /// Propagates budget validation.
    pub fn from_ratio(
        epsilon: f64,
        ratio: f64,
        sensitivity: f64,
        c: usize,
        monotonic: bool,
    ) -> Result<Self> {
        Ok(Self {
            budget: SvtBudget::from_ratio(epsilon, ratio).map_err(SvtError::from)?,
            sensitivity,
            c,
            monotonic,
        })
    }

    /// The query-noise scale this configuration implies:
    /// `2cΔ/ε₂`, or `cΔ/ε₂` in monotonic mode.
    pub fn query_noise_scale(&self) -> f64 {
        let k = if self.monotonic { 1.0 } else { 2.0 };
        k * self.c as f64 * self.sensitivity / self.budget.queries
    }

    /// The threshold-noise scale `Δ/ε₁`.
    pub fn threshold_noise_scale(&self) -> f64 {
        self.sensitivity / self.budget.threshold
    }

    /// The numeric-release scale `cΔ/ε₃` (line 6). Meaningless unless
    /// [`SvtBudget::has_numeric_phase`] holds.
    pub fn numeric_noise_scale(&self) -> f64 {
        self.c as f64 * self.sensitivity / self.budget.numeric
    }

    /// The per-instance threshold-noise scale under SVT-Revisited's
    /// ⊤-only charging (arXiv:2010.00917): the session is `c` chained
    /// cutoff-1 instances of budget `ε/c` each, so each instance's `ρ`
    /// is `Lap(Δ/(ε₁/c)) = Lap(cΔ/ε₁)` — a factor `c` wider than
    /// Algorithm 7's [`threshold_noise_scale`](Self::threshold_noise_scale).
    /// (The per-instance *query* scale `kΔ/(ε₂/c)` coincides with
    /// [`query_noise_scale`](Self::query_noise_scale).)
    pub fn revisited_threshold_noise_scale(&self) -> f64 {
        self.c as f64 * self.sensitivity / self.budget.threshold
    }
}

/// The standard SVT (Alg. 7). Satisfies `(ε₁+ε₂+ε₃)`-DP.
///
/// ```
/// use dp_mechanisms::{DpRng, SvtBudget};
/// use svt_core::alg::{SparseVector, StandardSvt, StandardSvtConfig};
/// use svt_core::SvtAnswer;
///
/// let mut rng = DpRng::seed_from_u64(7);
/// let mut svt = StandardSvt::new(
///     StandardSvtConfig {
///         budget: SvtBudget::halves(1.0)?, // ε₁ = ε₂ = 0.5
///         sensitivity: 1.0,
///         c: 2,
///         monotonic: true,
///     },
///     &mut rng,
/// )?;
///
/// // Stream queries; ⊥ answers are free, ⊤ answers count toward c.
/// assert_eq!(svt.respond(-1e6, 0.0, &mut rng)?, SvtAnswer::Below);
/// assert_eq!(svt.respond(1e6, 0.0, &mut rng)?, SvtAnswer::Above);
/// assert_eq!(svt.positives(), 1);
/// assert!(!svt.is_halted());
/// # Ok::<(), svt_core::SvtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StandardSvt {
    state: SessionState,
    query_noise: Laplace,
    numeric_noise: Option<Laplace>,
}

impl StandardSvt {
    /// Line 1: validates the configuration and draws `ρ = Lap(Δ/ε₁)`.
    ///
    /// The protocol state lives in a [`SessionState`]; this type adds
    /// only the noise distributions and the caller-supplied-RNG calling
    /// convention on top of it.
    ///
    /// # Errors
    /// Rejects non-positive sensitivity, `c == 0`, or an invalid budget.
    pub fn new(config: StandardSvtConfig, rng: &mut DpRng) -> Result<Self> {
        dp_mechanisms::error::check_sensitivity(config.sensitivity).map_err(SvtError::from)?;
        crate::error::check_cutoff(config.c)?;
        let rho = Laplace::new(config.threshold_noise_scale())
            .map_err(SvtError::from)?
            .sample(rng);
        let query_noise = Laplace::new(config.query_noise_scale()).map_err(SvtError::from)?;
        let numeric_noise = if config.budget.has_numeric_phase() {
            Some(Laplace::new(config.numeric_noise_scale()).map_err(SvtError::from)?)
        } else {
            None
        };
        Ok(Self {
            state: SessionState::new(config, rho)?,
            query_noise,
            numeric_noise,
        })
    }

    /// Convenience: builds the config from a ratio and constructs.
    ///
    /// # Errors
    /// Propagates validation from [`StandardSvtConfig::from_ratio`] and
    /// [`StandardSvt::new`].
    pub fn with_ratio(
        epsilon: f64,
        ratio: f64,
        sensitivity: f64,
        c: usize,
        monotonic: bool,
        rng: &mut DpRng,
    ) -> Result<Self> {
        Self::new(
            StandardSvtConfig::from_ratio(epsilon, ratio, sensitivity, c, monotonic)?,
            rng,
        )
    }

    /// The configuration in force.
    pub fn config(&self) -> &StandardSvtConfig {
        self.state.config()
    }

    /// Total privacy consumption (Theorem 4): `ε₁ + ε₂ + ε₃`.
    pub fn epsilon(&self) -> f64 {
        self.config().budget.total()
    }

    /// The underlying protocol state machine.
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    #[cfg(test)]
    pub(crate) fn rho(&self) -> f64 {
        self.state.rho()
    }
}

impl SparseVector for StandardSvt {
    fn respond(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer> {
        self.state.check(query_answer, threshold)?;
        let nu = self.query_noise.sample(rng); // line 3
        if self.state.observe_unchecked(query_answer, threshold, nu) {
            // lines 5–9
            match &self.numeric_noise {
                // Line 6: fresh Laplace noise — NOT the comparison noise.
                Some(noise) => Ok(SvtAnswer::Numeric(query_answer + noise.sample(rng))),
                None => Ok(SvtAnswer::Above),
            }
        } else {
            Ok(SvtAnswer::Below) // line 11
        }
    }

    fn is_halted(&self) -> bool {
        self.state.is_halted()
    }

    fn positives(&self) -> usize {
        self.state.positives()
    }

    fn name(&self) -> &'static str {
        "Alg. 7 (standard SVT)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::run_svt;
    use crate::threshold::Thresholds;

    fn basic_config(monotonic: bool) -> StandardSvtConfig {
        StandardSvtConfig {
            budget: SvtBudget::halves(1.0).unwrap(),
            sensitivity: 1.0,
            c: 5,
            monotonic,
        }
    }

    #[test]
    fn noise_scales_match_the_pseudocode() {
        let general = basic_config(false);
        // ε₂ = 0.5, c = 5, Δ = 1 ⇒ 2·5·1/0.5 = 20.
        assert!((general.query_noise_scale() - 20.0).abs() < 1e-12);
        let mono = basic_config(true);
        // Theorem 5: cΔ/ε₂ = 10.
        assert!((mono.query_noise_scale() - 10.0).abs() < 1e-12);
        assert!((general.threshold_noise_scale() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn plain_mode_outputs_tops() {
        let mut rng = DpRng::seed_from_u64(419);
        let mut alg = StandardSvt::new(basic_config(true), &mut rng).unwrap();
        assert_eq!(alg.respond(1e9, 0.0, &mut rng).unwrap(), SvtAnswer::Above);
    }

    #[test]
    fn numeric_phase_outputs_fresh_noisy_answers() {
        let mut rng = DpRng::seed_from_u64(421);
        let config = StandardSvtConfig {
            budget: SvtBudget::new(0.25, 0.25, 0.5).unwrap(),
            sensitivity: 1.0,
            c: 3,
            monotonic: true,
        };
        let mut alg = StandardSvt::new(config, &mut rng).unwrap();
        match alg.respond(1e9, 0.0, &mut rng).unwrap() {
            SvtAnswer::Numeric(v) => {
                // Scale cΔ/ε₃ = 6: the release is near the true answer.
                assert!((v - 1e9).abs() < 1e3, "v={v}");
            }
            other => panic!("expected numeric, got {other:?}"),
        }
    }

    #[test]
    fn epsilon_sums_all_three_parts() {
        let mut rng = DpRng::seed_from_u64(431);
        let config = StandardSvtConfig {
            budget: SvtBudget::new(0.1, 0.6, 0.3).unwrap(),
            sensitivity: 1.0,
            c: 2,
            monotonic: false,
        };
        let alg = StandardSvt::new(config, &mut rng).unwrap();
        assert!((alg.epsilon() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_noise_never_refreshes() {
        let mut rng = DpRng::seed_from_u64(433);
        let mut alg = StandardSvt::new(basic_config(true), &mut rng).unwrap();
        let rho = alg.rho();
        for _ in 0..3 {
            let _ = alg.respond(1e9, 0.0, &mut rng).unwrap();
            assert_eq!(alg.rho(), rho);
        }
    }

    #[test]
    fn aborts_at_cutoff_and_then_errors() {
        let mut rng = DpRng::seed_from_u64(439);
        let mut alg = StandardSvt::new(basic_config(true), &mut rng).unwrap();
        let run = run_svt(&mut alg, &[1e9; 9], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.positives(), 5);
        assert!(run.halted);
        assert!(matches!(
            alg.respond(0.0, 0.0, &mut rng),
            Err(SvtError::Halted)
        ));
    }

    #[test]
    fn with_ratio_splits_budget() {
        let mut rng = DpRng::seed_from_u64(443);
        let alg = StandardSvt::with_ratio(0.1, 3.0, 1.0, 25, true, &mut rng).unwrap();
        assert!((alg.config().budget.threshold - 0.025).abs() < 1e-12);
        assert!((alg.config().budget.queries - 0.075).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut rng = DpRng::seed_from_u64(449);
        let bad_c = StandardSvtConfig {
            budget: SvtBudget::halves(1.0).unwrap(),
            sensitivity: 1.0,
            c: 0,
            monotonic: false,
        };
        assert!(StandardSvt::new(bad_c, &mut rng).is_err());
        let bad_sens = StandardSvtConfig {
            budget: SvtBudget::halves(1.0).unwrap(),
            sensitivity: -1.0,
            c: 1,
            monotonic: false,
        };
        assert!(StandardSvt::new(bad_sens, &mut rng).is_err());
    }

    #[test]
    fn monotonic_mode_is_strictly_less_noisy() {
        let g = basic_config(false);
        let m = basic_config(true);
        assert!(m.query_noise_scale() < g.query_noise_scale());
    }
}
