//! Algorithm 5 — SVT as in Stoddard et al. 2014. **Not private**
//! (∞-DP).
//!
//! Fig. 1, Algorithm 5:
//!
//! ```text
//! Input: D, Q, Δ, T.          ← no cutoff c!
//! 1: ε₁ = ε/2, ρ = Lap(Δ/ε₁)
//! 2: ε₂ = ε − ε₁
//! 3: for each query qᵢ ∈ Q do
//! 4:   νᵢ = 0                  ← no query noise!
//! 5:   if qᵢ(D) + νᵢ ≥ T + ρ then
//! 6:     Output aᵢ = ⊤
//! 8:   else
//! 9:     Output aᵢ = ⊥
//! ```
//!
//! Two things are missing relative to Alg. 1: no noise is ever added to
//! query answers, and there is no bound on the number of ⊤ outputs. The
//! likely cause (§3.1): Lemma 1's proof goes through even with
//! `ν_i = 0` — *for all-negative outputs*. The moment an output mixes
//! ⊥ and ⊤, one side's bound needs the query noise, and Theorem 3 gives
//! a two-query counterexample with probability ratio ∞: with `T = 0`,
//! `q(D) = ⟨0, 1⟩`, `q(D′) = ⟨1, 0⟩`, the output `⟨⊥, ⊤⟩` has positive
//! probability on `D` and **zero** on `D′` (it would require
//! `1 < ρ ≤ 0`).

use crate::alg::SparseVector;
use crate::response::SvtAnswer;
use crate::{Result, SvtError};
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::DpRng;

/// Stoddard et al.'s 2014 SVT (Fig. 1, Alg. 5). **∞-DP — research
/// artifact only.**
#[derive(Debug, Clone)]
pub struct Alg5 {
    rho: f64,
    positives: usize,
}

impl Alg5 {
    /// Lines 1–2: only the threshold is ever perturbed.
    ///
    /// # Errors
    /// Rejects non-positive `ε`/`Δ`.
    pub fn new(epsilon: f64, sensitivity: f64, rng: &mut DpRng) -> Result<Self> {
        dp_mechanisms::error::check_epsilon(epsilon).map_err(SvtError::from)?;
        dp_mechanisms::error::check_sensitivity(sensitivity).map_err(SvtError::from)?;
        let eps1 = epsilon / 2.0;
        let rho = Laplace::new(sensitivity / eps1)
            .map_err(SvtError::from)?
            .sample(rng);
        Ok(Self { rho, positives: 0 })
    }
}

impl SparseVector for Alg5 {
    fn respond(
        &mut self,
        query_answer: f64,
        threshold: f64,
        _rng: &mut DpRng,
    ) -> Result<SvtAnswer> {
        crate::error::check_finite(query_answer, "query answer")?;
        crate::error::check_finite(threshold, "threshold")?;
        // Line 4: ν = 0 — the comparison is deterministic given ρ.
        if query_answer >= threshold + self.rho {
            self.positives += 1;
            Ok(SvtAnswer::Above)
        } else {
            Ok(SvtAnswer::Below)
        }
    }

    fn is_halted(&self) -> bool {
        false // never aborts — there is no cutoff
    }

    fn positives(&self) -> usize {
        self.positives
    }

    fn name(&self) -> &'static str {
        "Alg. 5 (Stoddard+ '14)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::run_svt;
    use crate::threshold::Thresholds;

    #[test]
    fn never_halts_regardless_of_positives() {
        let mut rng = DpRng::seed_from_u64(359);
        let mut alg = Alg5::new(1.0, 1.0, &mut rng).unwrap();
        let run = run_svt(&mut alg, &[1e9; 100], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(run.positives(), 100, "unbounded ⊤ output");
        assert!(!run.halted);
    }

    #[test]
    fn comparison_is_deterministic_given_rho() {
        // With no query noise, answers are a deterministic threshold
        // function of the true answers.
        let mut rng = DpRng::seed_from_u64(367);
        let mut alg = Alg5::new(1.0, 1.0, &mut rng).unwrap();
        let rho = alg.rho;
        for q in [-3.0, -1.0, 0.0, 1.0, 3.0] {
            let expected = q >= rho;
            let got = alg.respond(q, 0.0, &mut rng).unwrap().is_positive();
            assert_eq!(got, expected, "q={q}, ρ={rho}");
        }
    }

    #[test]
    fn theorem_3_event_is_impossible_on_d_prime() {
        // q(D') = <1, 0>, a = <⊥, ⊤> needs ρ > 1 AND ρ ≤ 0: impossible.
        // Exhaustively check over many instances that it never occurs.
        let mut rng = DpRng::seed_from_u64(373);
        for _ in 0..5000 {
            let mut alg = Alg5::new(0.5, 1.0, &mut rng).unwrap();
            let a1 = alg.respond(1.0, 0.0, &mut rng).unwrap();
            let a2 = alg.respond(0.0, 0.0, &mut rng).unwrap();
            assert!(
                !(a1 == SvtAnswer::Below && a2 == SvtAnswer::Above),
                "impossible event observed on D'"
            );
        }
    }

    #[test]
    fn theorem_3_event_has_positive_probability_on_d() {
        // q(D) = <0, 1>, a = <⊥, ⊤> occurs iff 0 < ρ ≤ 1: P = F(1)−F(0) > 0.
        let mut rng = DpRng::seed_from_u64(379);
        let mut hits = 0;
        let trials = 20_000;
        for _ in 0..trials {
            let mut alg = Alg5::new(0.5, 1.0, &mut rng).unwrap();
            let a1 = alg.respond(0.0, 0.0, &mut rng).unwrap();
            let a2 = alg.respond(1.0, 0.0, &mut rng).unwrap();
            if a1 == SvtAnswer::Below && a2 == SvtAnswer::Above {
                hits += 1;
            }
        }
        // P = F(1) - F(0) for Lap(Δ/ε₁) = Lap(4): 0.5 - 0.5e^{-1/4} ≈ 0.1106.
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.1106).abs() < 0.01, "rate {rate}");
    }
}
