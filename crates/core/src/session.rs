//! The session state machine / noise driver split behind every
//! interactive SVT surface in the workspace.
//!
//! The paper's interactive setting (§3–§4) makes SVT a *stateful*
//! protocol: a session fixes its threshold noise `ρ` once, answers ⊥
//! for free, counts ⊤ answers, and halts at `c`. Everything else —
//! where the noise comes from, who accounts the budget, which thread
//! owns the session — is I/O, and fusing it into the algorithm state
//! (as the original `InteractiveSvtSession` did) makes the state
//! unshareable: nothing above a single-threaded session can be built.
//!
//! This module splits the two concerns:
//!
//! - [`SessionState`] is the **pure state machine**: the validated
//!   configuration, the drawn `ρ`, the positives count, and the halt
//!   flag. It holds no RNG and no accountant, is `Copy`, and is `Send`
//!   by construction (pinned by a test), so a server can park millions
//!   of them in shared maps. Its one transition, [`SessionState::observe`],
//!   consumes an externally supplied noise value `ν` and applies lines
//!   4–9 of Algorithm 7.
//! - [`SessionDriver`] is the **thin I/O layer**: it owns a forked
//!   noise generator and a [`NoiseBuffer`], draws `ν` through the
//!   batched fill path, and feeds the state machine. Because batched
//!   fills are stream-equivalent to scalar draws (the `BatchSample`
//!   contract), a driver answering a prefetched batch of queries is
//!   bit-identical to one answering them one at a time.
//!
//! ## Draw protocol (pinned)
//!
//! [`SessionDriver::open`] consumes the caller's generator in a fixed
//! order so sessions are reproducible from a single seed:
//!
//! 1. fork the query-noise generator off `rng`;
//! 2. if the numeric phase is enabled, fork the numeric-noise generator;
//! 3. draw `ρ = Lap(Δ/ε₁)` from `rng` itself.
//!
//! This mirrors the `streaming` module's batched protocol (fork first,
//! then `ρ`), and keeping the numeric stream on its own fork means the
//! ⊤/⊥ decision stream is unaffected by whether numeric outputs are on.
//!
//! The existing public surfaces — [`StandardSvt`](crate::alg::StandardSvt),
//! [`InteractiveSvtSession`](crate::interactive::InteractiveSvtSession),
//! the mediator, and the streaming engines — are wrappers over
//! [`SessionState`]; their caller-supplied-RNG behavior is unchanged.

use crate::alg::StandardSvtConfig;
use crate::response::SvtAnswer;
use crate::{Result, SvtError};
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::{DpRng, MechanismError, NoiseBuffer, NoiseKernel};

/// How a session charges its privacy budget.
///
/// The paper's Algorithm 7 commits the whole `ε` when the session
/// opens; Kaplan–Mansour–Stemmer's *SVT Revisited* (arXiv:2010.00917)
/// instead runs `c` chained cutoff-1 instances of `ε/c` each, so budget
/// is consumed only when an instance closes with a ⊤ answer and a
/// session that never crosses the threshold spends (almost) nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargePolicy {
    /// Algorithm 7: the full `ε₁ + ε₂ (+ ε₃)` budget is spent at open.
    Upfront,
    /// SVT-Revisited: `ε/c` is spent per ⊤ answer; after each non-final
    /// ⊤ the threshold noise `ρ` must be redrawn (a fresh instance).
    PerTop,
}

/// The pure SVT session state machine: Algorithm 7 minus the noise
/// source.
///
/// Holds exactly what the protocol must remember between queries — the
/// validated configuration, the threshold noise `ρ`, the positives
/// count, and the halt flag — and nothing about where noise comes from.
/// `Copy`, `Send`, and `Sync`, so it can live in shared session stores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionState {
    config: StandardSvtConfig,
    rho: f64,
    count: usize,
    halted: bool,
    policy: ChargePolicy,
    needs_refresh: bool,
}

impl SessionState {
    /// Builds a session state from a configuration and an
    /// already-drawn threshold noise `ρ`, charging upfront
    /// (Algorithm 7's rule).
    ///
    /// # Errors
    /// Rejects non-positive sensitivity, `c == 0`, budgets implying
    /// invalid noise scales, and a non-finite `ρ`.
    pub fn new(config: StandardSvtConfig, rho: f64) -> Result<Self> {
        Self::with_policy(config, rho, ChargePolicy::Upfront)
    }

    /// Builds a session state under an explicit [`ChargePolicy`].
    ///
    /// Under [`ChargePolicy::PerTop`] the interpretation of the budget
    /// changes: `ε₁`/`ε₂` are split evenly across `c` cutoff-1
    /// instances, so the per-instance threshold scale is
    /// [`StandardSvtConfig::revisited_threshold_noise_scale`] (a factor
    /// `c` wider than Algorithm 7's) while the per-instance query scale
    /// coincides with [`StandardSvtConfig::query_noise_scale`].
    ///
    /// # Errors
    /// Same as [`new`](Self::new); additionally rejects a numeric phase
    /// under `PerTop` (SVT-Revisited defines no numeric release).
    pub fn with_policy(config: StandardSvtConfig, rho: f64, policy: ChargePolicy) -> Result<Self> {
        dp_mechanisms::error::check_sensitivity(config.sensitivity).map_err(SvtError::from)?;
        crate::error::check_cutoff(config.c)?;
        // Scale validation mirrors StandardSvt::new; the Laplace values
        // are only constructed to reuse their parameter checks.
        Laplace::new(config.threshold_noise_scale()).map_err(SvtError::from)?;
        Laplace::new(config.query_noise_scale()).map_err(SvtError::from)?;
        if config.budget.has_numeric_phase() {
            if policy == ChargePolicy::PerTop {
                return Err(SvtError::from(MechanismError::InvalidParameter(
                    "per-top charging (SVT-Revisited) has no numeric phase",
                )));
            }
            Laplace::new(config.numeric_noise_scale()).map_err(SvtError::from)?;
        }
        crate::error::check_finite(rho, "threshold noise")?;
        Ok(Self {
            config,
            rho,
            count: 0,
            halted: false,
            policy,
            needs_refresh: false,
        })
    }

    /// The configuration in force.
    #[inline]
    pub fn config(&self) -> &StandardSvtConfig {
        &self.config
    }

    /// The threshold noise `ρ` fixed for the session's lifetime.
    #[inline]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Positive (`⊤`) answers so far.
    #[inline]
    pub fn positives(&self) -> usize {
        self.count
    }

    /// Whether the session has spent its `c` positive answers.
    #[inline]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The budget-charging rule in force.
    #[inline]
    pub fn charge_policy(&self) -> ChargePolicy {
        self.policy
    }

    /// Privacy budget consumed so far under the session's
    /// [`ChargePolicy`]: the full budget for [`ChargePolicy::Upfront`],
    /// `positives · ε/c` for [`ChargePolicy::PerTop`].
    #[inline]
    pub fn spent_epsilon(&self) -> f64 {
        match self.policy {
            ChargePolicy::Upfront => self.config.budget.total(),
            ChargePolicy::PerTop => {
                self.config.budget.total() * self.count as f64 / self.config.c as f64
            }
        }
    }

    /// Under [`ChargePolicy::PerTop`]: does the session need a fresh
    /// threshold noise `ρ` before the next query? True exactly after a
    /// non-final ⊤ answer, until [`refresh_rho`](Self::refresh_rho) is
    /// called. Always false under [`ChargePolicy::Upfront`].
    #[inline]
    pub fn needs_rho_refresh(&self) -> bool {
        self.needs_refresh
    }

    /// Installs a freshly drawn threshold noise `ρ`, opening the next
    /// cutoff-1 instance of a [`ChargePolicy::PerTop`] session.
    ///
    /// # Errors
    /// [`SvtError::NonFiniteInput`] on a non-finite `rho` (the pending
    /// refresh, if any, stays pending).
    #[inline]
    pub fn refresh_rho(&mut self, rho: f64) -> Result<()> {
        crate::error::check_finite(rho, "threshold noise")?;
        self.rho = rho;
        self.needs_refresh = false;
        Ok(())
    }

    /// Validates a query against the current state without transitioning:
    /// the session must not be halted and both inputs must be finite.
    ///
    /// # Errors
    /// [`SvtError::Halted`] / [`SvtError::NonFiniteInput`]. Callers that
    /// check first may then use [`observe_unchecked`](Self::observe_unchecked)
    /// without drawing noise for rejected queries.
    #[inline]
    pub fn check(&self, query_answer: f64, threshold: f64) -> Result<()> {
        if self.halted {
            return Err(SvtError::Halted);
        }
        crate::error::check_finite(query_answer, "query answer")?;
        crate::error::check_finite(threshold, "threshold")?;
        Ok(())
    }

    /// Lines 4 and 9 of Algorithm 7 with the noise supplied: does
    /// `q + ν ≥ T + ρ`? Counts the positive and halts at `c`.
    ///
    /// The caller must have validated the query via [`check`](Self::check)
    /// (hot paths validate their inputs upstream once, not per query) —
    /// on a halted session this transition is a protocol violation and
    /// the answer meaningless, though no memory unsafety is possible.
    #[inline]
    pub fn observe_unchecked(&mut self, query_answer: f64, threshold: f64, nu: f64) -> bool {
        if query_answer + nu >= threshold + self.rho {
            self.count += 1;
            if self.count >= self.config.c {
                self.halted = true;
                self.needs_refresh = false;
            } else if self.policy == ChargePolicy::PerTop {
                self.needs_refresh = true;
            }
            true
        } else {
            false
        }
    }

    /// The checked transition: [`check`](Self::check) then
    /// [`observe_unchecked`](Self::observe_unchecked).
    ///
    /// # Errors
    /// [`SvtError::Halted`] once `c` positives are spent;
    /// [`SvtError::NonFiniteInput`] on bad inputs. The noise value is
    /// untouched on error.
    #[inline]
    pub fn observe(&mut self, query_answer: f64, threshold: f64, nu: f64) -> Result<bool> {
        self.check(query_answer, threshold)?;
        Ok(self.observe_unchecked(query_answer, threshold, nu))
    }
}

/// The thin I/O layer over [`SessionState`]: owns the forked noise
/// generators and the prefetch buffer, so the state machine itself
/// stays pure.
///
/// ```
/// use dp_mechanisms::{DpRng, SvtBudget};
/// use svt_core::alg::StandardSvtConfig;
/// use svt_core::session::SessionDriver;
/// use svt_core::SvtAnswer;
///
/// let mut rng = DpRng::seed_from_u64(7);
/// let config = StandardSvtConfig {
///     budget: SvtBudget::halves(1.0)?,
///     sensitivity: 1.0,
///     c: 2,
///     monotonic: true,
/// };
/// let mut driver = SessionDriver::open(config, &mut rng)?;
/// assert_eq!(driver.ask(-1e6, 0.0)?, SvtAnswer::Below);
/// assert_eq!(driver.ask(1e6, 0.0)?, SvtAnswer::Above);
/// assert_eq!(driver.queries_asked(), 2);
/// assert_eq!(driver.state().positives(), 1);
/// # Ok::<(), svt_core::SvtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SessionDriver {
    state: SessionState,
    query_noise: Laplace,
    numeric_noise: Option<Laplace>,
    threshold_noise: Option<Laplace>,
    noise_rng: DpRng,
    numeric_rng: Option<DpRng>,
    threshold_rng: Option<DpRng>,
    noise: NoiseBuffer,
    asked: usize,
}

impl SessionDriver {
    /// Opens a driver, consuming `rng` per the module-level draw
    /// protocol (fork noise generator(s), then draw `ρ` from `rng`).
    ///
    /// # Errors
    /// Rejects the same invalid configurations as
    /// [`StandardSvt::new`](crate::alg::StandardSvt::new).
    pub fn open(config: StandardSvtConfig, rng: &mut DpRng) -> Result<Self> {
        dp_mechanisms::error::check_sensitivity(config.sensitivity).map_err(SvtError::from)?;
        crate::error::check_cutoff(config.c)?;
        let query_noise = Laplace::new(config.query_noise_scale()).map_err(SvtError::from)?;
        let numeric_noise = if config.budget.has_numeric_phase() {
            Some(Laplace::new(config.numeric_noise_scale()).map_err(SvtError::from)?)
        } else {
            None
        };
        let noise_rng = rng.fork();
        let numeric_rng = numeric_noise.is_some().then(|| rng.fork());
        let rho = Laplace::new(config.threshold_noise_scale())
            .map_err(SvtError::from)?
            .sample(rng);
        Ok(Self {
            state: SessionState::new(config, rho)?,
            query_noise,
            numeric_noise,
            threshold_noise: None,
            noise_rng,
            numeric_rng,
            threshold_rng: None,
            noise: NoiseBuffer::new(),
            asked: 0,
        })
    }

    /// Opens an SVT-Revisited session: `c` chained cutoff-1 instances,
    /// budget charged only on ⊤ answers ([`ChargePolicy::PerTop`]).
    ///
    /// Draw protocol (pinned, a superset of [`open`](Self::open)'s):
    ///
    /// 1. fork the query-noise generator off `rng`;
    /// 2. fork the threshold-refresh generator off `rng`;
    /// 3. draw the first instance's `ρ` from `rng` itself.
    ///
    /// The refresh generator is deliberately *not* the query-noise
    /// fork: [`prefetch_noise`](Self::prefetch_noise) runs the query
    /// fork ahead of consumption, so interleaving `ρ` redraws into the
    /// same stream would make answers depend on the prefetch schedule.
    ///
    /// # Errors
    /// Same as [`open`](Self::open); additionally rejects budgets with a
    /// numeric phase (SVT-Revisited defines no numeric release).
    pub fn open_revisited(config: StandardSvtConfig, rng: &mut DpRng) -> Result<Self> {
        dp_mechanisms::error::check_sensitivity(config.sensitivity).map_err(SvtError::from)?;
        crate::error::check_cutoff(config.c)?;
        let query_noise = Laplace::new(config.query_noise_scale()).map_err(SvtError::from)?;
        let threshold_noise =
            Laplace::new(config.revisited_threshold_noise_scale()).map_err(SvtError::from)?;
        let noise_rng = rng.fork();
        let threshold_rng = rng.fork();
        let rho = threshold_noise.sample(rng);
        Ok(Self {
            state: SessionState::with_policy(config, rho, ChargePolicy::PerTop)?,
            query_noise,
            numeric_noise: None,
            threshold_noise: Some(threshold_noise),
            noise_rng,
            numeric_rng: None,
            threshold_rng: Some(threshold_rng),
            noise: NoiseBuffer::new(),
            asked: 0,
        })
    }

    /// The underlying state machine.
    #[inline]
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// Queries successfully answered so far (error paths do not count).
    #[inline]
    pub fn queries_asked(&self) -> usize {
        self.asked
    }

    /// Whether the session has spent its `c` positive answers.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.state.is_halted()
    }

    /// Asks one query: draws `ν` through the buffered batch path, feeds
    /// the state machine, and renders the answer (numeric-phase answers
    /// draw from the dedicated numeric fork).
    ///
    /// # Errors
    /// [`SvtError::Halted`] once the session's `c` positives are spent;
    /// [`SvtError::NonFiniteInput`] on bad inputs. No noise is consumed
    /// and the query is not counted on error.
    pub fn ask(&mut self, query_answer: f64, threshold: f64) -> Result<SvtAnswer> {
        self.state.check(query_answer, threshold)?;
        let nu = self.noise.next(&self.query_noise, &mut self.noise_rng);
        let positive = self.state.observe_unchecked(query_answer, threshold, nu);
        self.asked += 1;
        if positive {
            if self.state.needs_rho_refresh() {
                if let (Some(noise), Some(rng)) = (&self.threshold_noise, &mut self.threshold_rng) {
                    let rho = noise.sample(rng);
                    self.state.refresh_rho(rho)?;
                }
            }
            if let (Some(noise), Some(rng)) = (&self.numeric_noise, &mut self.numeric_rng) {
                return Ok(SvtAnswer::Numeric(query_answer + noise.sample(rng)));
            }
            Ok(SvtAnswer::Above)
        } else {
            Ok(SvtAnswer::Below)
        }
    }

    /// Privacy budget consumed so far (see [`SessionState::spent_epsilon`]).
    #[inline]
    pub fn spent_epsilon(&self) -> f64 {
        self.state.spent_epsilon()
    }

    /// Ensures `n` query-noise values are buffered using a single
    /// batched generator fill — the serving layer's way to answer a
    /// batch of queries with one fill per session per batch.
    ///
    /// Prefetching never changes the answers (see
    /// [`NoiseBuffer::prefetch`]); over-prefetching for queries that end
    /// up rejected is harmless.
    #[inline]
    pub fn prefetch_noise(&mut self, n: usize) {
        self.noise
            .prefetch(&self.query_noise, &mut self.noise_rng, n);
    }

    /// Selects the noise transform kernel for subsequent refills.
    ///
    /// Drivers default to [`NoiseKernel::Reference`] — serving sessions
    /// are pinned bit-identical to scalar sampling history — so
    /// switching to [`NoiseKernel::Vectorized`] is an explicit opt-in
    /// for deployments that prefer throughput over replaying historical
    /// bit patterns. Either kernel consumes the same generator words
    /// and samples the same distribution.
    #[inline]
    pub fn set_noise_kernel(&mut self, kernel: NoiseKernel) {
        self.noise.set_kernel(kernel);
    }

    /// The noise transform kernel in force.
    #[inline]
    pub fn noise_kernel(&self) -> NoiseKernel {
        self.noise.kernel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_mechanisms::SvtBudget;

    fn config(c: usize, numeric: f64) -> StandardSvtConfig {
        StandardSvtConfig {
            budget: SvtBudget::new(0.25, 0.25, numeric).unwrap(),
            sensitivity: 1.0,
            c,
            monotonic: true,
        }
    }

    #[test]
    fn session_state_is_send_sync_and_copy() {
        fn assert_send_sync_copy<T: Send + Sync + Copy + 'static>() {}
        assert_send_sync_copy::<SessionState>();
        fn assert_send<T: Send + 'static>() {}
        assert_send::<SessionDriver>();
    }

    #[test]
    fn observe_applies_algorithm_seven_lines() {
        let mut s = SessionState::new(config(2, 0.0), 0.5).unwrap();
        // q + ν < T + ρ → ⊥, free.
        assert!(!s.observe(1.0, 2.0, 0.0).unwrap());
        assert_eq!(s.positives(), 0);
        // q + ν ≥ T + ρ → ⊤.
        assert!(s.observe(3.0, 2.0, 0.0).unwrap());
        assert!(s.observe(10.0, 2.0, -1.0).unwrap());
        assert!(s.is_halted());
        assert!(matches!(s.observe(0.0, 0.0, 0.0), Err(SvtError::Halted)));
    }

    #[test]
    fn state_validates_like_standard_svt() {
        let mut bad = config(1, 0.0);
        bad.sensitivity = -1.0;
        assert!(SessionState::new(bad, 0.0).is_err());
        let mut bad_c = config(1, 0.0);
        bad_c.c = 0;
        assert!(SessionState::new(bad_c, 0.0).is_err());
        assert!(SessionState::new(config(1, 0.0), f64::NAN).is_err());
    }

    #[test]
    fn driver_errors_do_not_consume_noise_or_count_queries() {
        let mut rng = DpRng::seed_from_u64(11);
        let mut a = SessionDriver::open(config(3, 0.0), &mut rng).unwrap();
        let mut rng2 = DpRng::seed_from_u64(11);
        let mut b = SessionDriver::open(config(3, 0.0), &mut rng2).unwrap();

        // Driver `a` suffers rejected queries interleaved with good ones;
        // driver `b` sees only the good ones. Streams must match.
        let mut answers_a = Vec::new();
        for i in 0..50 {
            if i % 3 == 0 {
                assert!(a.ask(f64::NAN, 0.0).is_err());
            }
            answers_a.push(a.ask(-(i as f64), 100.0).unwrap());
        }
        let answers_b: Vec<_> = (0..50)
            .map(|i| b.ask(-(i as f64), 100.0).unwrap())
            .collect();
        assert_eq!(answers_a, answers_b);
        assert_eq!(a.queries_asked(), 50);
        assert_eq!(b.queries_asked(), 50);
    }

    #[test]
    fn driver_prefetch_does_not_change_answers() {
        let queries: Vec<(f64, f64)> = (0..200)
            .map(|i| (if i % 7 == 0 { 1e6 } else { -1e6 }, 0.0))
            .collect();
        let cfg = config(usize::MAX >> 1, 0.5);

        let mut rng = DpRng::seed_from_u64(23);
        let mut plain = SessionDriver::open(cfg, &mut rng).unwrap();
        let reference: Vec<_> = queries
            .iter()
            .map(|&(q, t)| plain.ask(q, t).unwrap())
            .collect();

        let mut rng = DpRng::seed_from_u64(23);
        let mut batched = SessionDriver::open(cfg, &mut rng).unwrap();
        let mut got = Vec::new();
        for chunk in queries.chunks(17) {
            batched.prefetch_noise(chunk.len());
            for &(q, t) in chunk {
                got.push(batched.ask(q, t).unwrap());
            }
        }
        assert_eq!(got, reference);
    }

    #[test]
    fn driver_defaults_to_reference_kernel_and_can_switch() {
        let mut rng = DpRng::seed_from_u64(97);
        let mut d = SessionDriver::open(config(10, 0.0), &mut rng).unwrap();
        assert_eq!(d.noise_kernel(), NoiseKernel::Reference);
        d.set_noise_kernel(NoiseKernel::Vectorized);
        assert_eq!(d.noise_kernel(), NoiseKernel::Vectorized);
        // The vectorized driver still answers sanely.
        assert_eq!(d.ask(1e9, 0.0).unwrap(), SvtAnswer::Above);
        assert_eq!(d.ask(-1e9, 0.0).unwrap(), SvtAnswer::Below);
    }

    #[test]
    fn driver_halts_after_c_positives() {
        let mut rng = DpRng::seed_from_u64(31);
        let mut d = SessionDriver::open(config(2, 0.0), &mut rng).unwrap();
        assert_eq!(d.ask(1e9, 0.0).unwrap(), SvtAnswer::Above);
        assert_eq!(d.ask(1e9, 0.0).unwrap(), SvtAnswer::Above);
        assert!(d.is_exhausted());
        assert!(matches!(d.ask(0.0, 0.0), Err(SvtError::Halted)));
        // The rejected ask after halt is not counted.
        assert_eq!(d.queries_asked(), 2);
    }

    #[test]
    fn per_top_state_charges_per_positive_and_requests_refreshes() {
        let mut s = SessionState::with_policy(config(3, 0.0), 0.0, ChargePolicy::PerTop).unwrap();
        assert_eq!(s.charge_policy(), ChargePolicy::PerTop);
        assert_eq!(s.spent_epsilon(), 0.0);
        assert!(!s.observe(1.0, 2.0, 0.0).unwrap());
        assert_eq!(s.spent_epsilon(), 0.0, "⊥ is free");
        assert!(!s.needs_rho_refresh());
        assert!(s.observe(3.0, 2.0, 0.0).unwrap());
        assert!((s.spent_epsilon() - 0.5 / 3.0).abs() < 1e-12);
        assert!(s.needs_rho_refresh(), "non-final ⊤ opens a new instance");
        assert!(s.refresh_rho(f64::NAN).is_err());
        assert!(s.needs_rho_refresh(), "failed refresh stays pending");
        s.refresh_rho(1.5).unwrap();
        assert_eq!(s.rho(), 1.5);
        assert!(!s.needs_rho_refresh());
        assert!(s.observe(10.0, 2.0, 0.0).unwrap());
        s.refresh_rho(0.0).unwrap();
        assert!(s.observe(10.0, 2.0, 0.0).unwrap());
        assert!(s.is_halted());
        assert!(!s.needs_rho_refresh(), "the final ⊤ needs no refresh");
        assert!((s.spent_epsilon() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn upfront_state_spends_everything_at_open() {
        let s = SessionState::new(config(3, 0.5), 0.0).unwrap();
        assert_eq!(s.charge_policy(), ChargePolicy::Upfront);
        assert!((s.spent_epsilon() - 1.0).abs() < 1e-12);
        assert!(!s.needs_rho_refresh());
    }

    #[test]
    fn per_top_rejects_numeric_phase() {
        assert!(SessionState::with_policy(config(2, 0.5), 0.0, ChargePolicy::PerTop).is_err());
        let mut rng = DpRng::seed_from_u64(43);
        assert!(SessionDriver::open_revisited(config(2, 0.5), &mut rng).is_err());
    }

    #[test]
    fn revisited_driver_charges_per_top_and_halts() {
        let mut rng = DpRng::seed_from_u64(47);
        let mut d = SessionDriver::open_revisited(config(2, 0.0), &mut rng).unwrap();
        assert_eq!(d.spent_epsilon(), 0.0);
        assert_eq!(d.ask(-1e9, 0.0).unwrap(), SvtAnswer::Below);
        assert_eq!(d.spent_epsilon(), 0.0);
        let rho_before = d.state().rho();
        assert_eq!(d.ask(1e9, 0.0).unwrap(), SvtAnswer::Above);
        assert!((d.spent_epsilon() - 0.25).abs() < 1e-12);
        assert_ne!(d.state().rho(), rho_before, "⊤ must refresh ρ");
        assert!(!d.state().needs_rho_refresh(), "refresh is internal");
        assert_eq!(d.ask(1e9, 0.0).unwrap(), SvtAnswer::Above);
        assert!(d.is_exhausted());
        assert!((d.spent_epsilon() - 0.5).abs() < 1e-12);
        assert!(matches!(d.ask(0.0, 0.0), Err(SvtError::Halted)));
    }

    #[test]
    fn revisited_driver_prefetch_does_not_change_answers() {
        // The ρ refreshes live on their own fork, so running the query
        // noise ahead of consumption must not perturb the stream even
        // when ⊤ answers (and hence refreshes) land mid-batch.
        let queries: Vec<(f64, f64)> = (0..200)
            .map(|i| (if i % 7 == 0 { 1e6 } else { -1e6 }, 0.0))
            .collect();
        let cfg = config(usize::MAX >> 1, 0.0);

        let mut rng = DpRng::seed_from_u64(53);
        let mut plain = SessionDriver::open_revisited(cfg, &mut rng).unwrap();
        let reference: Vec<_> = queries
            .iter()
            .map(|&(q, t)| plain.ask(q, t).unwrap())
            .collect();

        let mut rng = DpRng::seed_from_u64(53);
        let mut batched = SessionDriver::open_revisited(cfg, &mut rng).unwrap();
        let mut got = Vec::new();
        for chunk in queries.chunks(17) {
            batched.prefetch_noise(chunk.len());
            for &(q, t) in chunk {
                got.push(batched.ask(q, t).unwrap());
            }
        }
        assert_eq!(got, reference);
        assert_eq!(batched.spent_epsilon(), plain.spent_epsilon());
    }

    #[test]
    fn numeric_phase_uses_its_own_fork() {
        // The ⊤/⊥ decision stream must be identical with and without the
        // numeric phase: the numeric draws live on a separate fork.
        let queries: Vec<f64> = (0..100)
            .map(|i| if i % 5 == 0 { 1e6 } else { -1e6 })
            .collect();
        let mut rng = DpRng::seed_from_u64(41);
        let mut plain = SessionDriver::open(config(1000, 0.0), &mut rng).unwrap();
        let mut rng = DpRng::seed_from_u64(41);
        let mut numeric = SessionDriver::open(config(1000, 0.5), &mut rng).unwrap();
        for &q in &queries {
            let a = plain.ask(q, 0.0).unwrap();
            let b = numeric.ask(q, 0.0).unwrap();
            assert_eq!(a.is_positive(), b.is_positive(), "q={q}");
            if b.is_positive() {
                assert!(matches!(b, SvtAnswer::Numeric(_)));
            }
        }
    }
}
