//! The machine-readable Figure 2: what differs across Algorithms 1–6
//! and which of them are actually private.
//!
//! The experiments' `figure2` binary renders this table; tests pin every
//! cell to the paper.

/// A noise-scale formula, symbolically (rendered with the paper's
/// notation) and numerically (for a concrete `(ε, Δ, c)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseScale {
    /// No noise at all (Alg. 5's query noise).
    Zero,
    /// `Δ/ε₁`.
    DeltaOverEps1,
    /// `cΔ/ε₁`.
    CDeltaOverEps1,
    /// `2cΔ/ε₁` (Alg. 2's query noise — note the ε₁).
    TwoCDeltaOverEps1,
    /// `2cΔ/ε₂`.
    TwoCDeltaOverEps2,
    /// `cΔ/ε₂`.
    CDeltaOverEps2,
    /// `Δ/ε₂`.
    DeltaOverEps2,
}

impl NoiseScale {
    /// The paper's notation for the scale.
    pub fn symbol(&self) -> &'static str {
        match self {
            Self::Zero => "0",
            Self::DeltaOverEps1 => "Δ/ε1",
            Self::CDeltaOverEps1 => "cΔ/ε1",
            Self::TwoCDeltaOverEps1 => "2cΔ/ε1",
            Self::TwoCDeltaOverEps2 => "2cΔ/ε2",
            Self::CDeltaOverEps2 => "cΔ/ε2",
            Self::DeltaOverEps2 => "Δ/ε2",
        }
    }

    /// Evaluates the scale for concrete parameters.
    pub fn evaluate(&self, eps1: f64, eps2: f64, sensitivity: f64, c: usize) -> f64 {
        let c = c as f64;
        match self {
            Self::Zero => 0.0,
            Self::DeltaOverEps1 => sensitivity / eps1,
            Self::CDeltaOverEps1 => c * sensitivity / eps1,
            Self::TwoCDeltaOverEps1 => 2.0 * c * sensitivity / eps1,
            Self::TwoCDeltaOverEps2 => 2.0 * c * sensitivity / eps2,
            Self::CDeltaOverEps2 => c * sensitivity / eps2,
            Self::DeltaOverEps2 => sensitivity / eps2,
        }
    }
}

/// The privacy property a variant actually satisfies (Fig. 2, last row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrivacyProperty {
    /// Satisfies `ε`-DP as claimed.
    EpsilonDp,
    /// Satisfies only `((constant + c_coefficient·c)/4)·ε`-DP — the
    /// shape of Alg. 4's `(1+6c)/4` (general) and `(1+3c)/4`
    /// (monotonic) guarantees.
    Inflated {
        /// Constant term of the numerator.
        constant: f64,
        /// Coefficient of `c` in the numerator.
        c_coefficient: f64,
    },
    /// Not `ε′`-DP for any finite `ε′`.
    Infinite,
}

impl PrivacyProperty {
    /// The multiplier of the nominal `ε` at cutoff `c` (1 for `ε`-DP,
    /// `+∞` for ∞-DP).
    pub fn epsilon_factor(&self, c: usize) -> f64 {
        match self {
            Self::EpsilonDp => 1.0,
            Self::Inflated {
                constant,
                c_coefficient,
            } => (constant + c_coefficient * c as f64) / 4.0,
            Self::Infinite => f64::INFINITY,
        }
    }

    /// Rendering matching the paper's table.
    pub fn render(&self, c: usize) -> String {
        match self {
            Self::EpsilonDp => "ε-DP".to_owned(),
            Self::Inflated { .. } => format!("{:.2}ε-DP", self.epsilon_factor(c)),
            Self::Infinite => "∞-DP".to_owned(),
        }
    }

    /// Whether the variant is safe to deploy.
    pub fn is_private(&self) -> bool {
        matches!(self, Self::EpsilonDp)
    }
}

/// One column of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantProperties {
    /// Display name.
    pub name: &'static str,
    /// Source of the variant.
    pub source: &'static str,
    /// Fraction of `ε` given to `ε₁` (0.5 or 0.25).
    pub eps1_fraction: f64,
    /// Scale of the threshold noise `ρ`.
    pub threshold_noise: NoiseScale,
    /// Whether `ρ` is resampled after each ⊤ (only Alg. 2; the paper
    /// marks it "unnecessary").
    pub resets_threshold_noise: bool,
    /// Scale of the query noise `ν`.
    pub query_noise: NoiseScale,
    /// Whether the variant outputs `q + ν` instead of ⊤ (only Alg. 3;
    /// "not private").
    pub outputs_noisy_answer: bool,
    /// Whether the variant can output unboundedly many ⊤s (Alg. 5 and
    /// 6; "not private").
    pub unbounded_positives: bool,
    /// What the variant actually satisfies.
    pub privacy: PrivacyProperty,
}

/// The six columns of Figure 2, in order.
pub fn figure2() -> Vec<VariantProperties> {
    vec![
        VariantProperties {
            name: "Alg. 1",
            source: "this paper",
            eps1_fraction: 0.5,
            threshold_noise: NoiseScale::DeltaOverEps1,
            resets_threshold_noise: false,
            query_noise: NoiseScale::TwoCDeltaOverEps2,
            outputs_noisy_answer: false,
            unbounded_positives: false,
            privacy: PrivacyProperty::EpsilonDp,
        },
        VariantProperties {
            name: "Alg. 2",
            source: "Dwork & Roth 2014",
            eps1_fraction: 0.5,
            threshold_noise: NoiseScale::CDeltaOverEps1,
            resets_threshold_noise: true,
            query_noise: NoiseScale::TwoCDeltaOverEps1,
            outputs_noisy_answer: false,
            unbounded_positives: false,
            privacy: PrivacyProperty::EpsilonDp,
        },
        VariantProperties {
            name: "Alg. 3",
            source: "Roth 2011 lecture notes",
            eps1_fraction: 0.5,
            threshold_noise: NoiseScale::DeltaOverEps1,
            resets_threshold_noise: false,
            query_noise: NoiseScale::CDeltaOverEps2,
            outputs_noisy_answer: true,
            unbounded_positives: false,
            privacy: PrivacyProperty::Infinite,
        },
        VariantProperties {
            name: "Alg. 4",
            source: "Lee & Clifton 2014",
            eps1_fraction: 0.25,
            threshold_noise: NoiseScale::DeltaOverEps1,
            resets_threshold_noise: false,
            query_noise: NoiseScale::DeltaOverEps2,
            outputs_noisy_answer: false,
            unbounded_positives: false,
            privacy: PrivacyProperty::Inflated {
                constant: 1.0,
                c_coefficient: 6.0,
            },
        },
        VariantProperties {
            name: "Alg. 5",
            source: "Stoddard et al. 2014",
            eps1_fraction: 0.5,
            threshold_noise: NoiseScale::DeltaOverEps1,
            resets_threshold_noise: false,
            query_noise: NoiseScale::Zero,
            outputs_noisy_answer: false,
            unbounded_positives: true,
            privacy: PrivacyProperty::Infinite,
        },
        VariantProperties {
            name: "Alg. 6",
            source: "Chen et al. 2015",
            eps1_fraction: 0.5,
            threshold_noise: NoiseScale::DeltaOverEps1,
            resets_threshold_noise: false,
            query_noise: NoiseScale::DeltaOverEps2,
            outputs_noisy_answer: false,
            unbounded_positives: true,
            privacy: PrivacyProperty::Infinite,
        },
    ]
}

/// The noise family a variant draws its perturbations from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseFamily {
    /// Two-sided `Lap(b)` noise (every Figure-2 variant).
    Laplace,
    /// One-sided `Exp(b)` noise on `[0, ∞)` (arXiv:2407.20068).
    OneSidedExponential,
}

/// When a variant consumes its privacy budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargingRule {
    /// The whole `ε` is committed when the session opens (Alg. 1–7).
    Upfront,
    /// `ε/c` is consumed per ⊤ answer; ⊥ answers are free
    /// (arXiv:2010.00917).
    PerTop,
}

/// One row of the post-2017 extension of Figure 2: the later SVT
/// generations the suite carries beyond the paper's six columns
/// ([`figure2`] stays pinned to exactly those six).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedVariantProperties {
    /// Display name (matches the experiment labels).
    pub name: &'static str,
    /// Source of the variant.
    pub source: &'static str,
    /// Which distribution perturbs `ρ` and `ν`.
    pub noise_family: NoiseFamily,
    /// When the budget is consumed.
    pub charging: ChargingRule,
    /// Scale of the threshold noise `ρ`.
    pub threshold_noise: NoiseScale,
    /// Whether `ρ` is resampled after each ⊤.
    pub resets_threshold_noise: bool,
    /// Scale of the query noise `ν` (general, i.e. non-monotonic, form).
    pub query_noise: NoiseScale,
    /// What the variant satisfies.
    pub privacy: PrivacyProperty,
}

/// The post-2017 variants, in the order the engines run them.
pub fn post2017() -> Vec<ExtendedVariantProperties> {
    vec![
        ExtendedVariantProperties {
            name: "SVT-RV",
            source: "Kaplan, Mansour & Stemmer 2020 (arXiv:2010.00917)",
            noise_family: NoiseFamily::Laplace,
            charging: ChargingRule::PerTop,
            // Per-instance ε₁/c widens ρ by a factor c, like Alg. 2.
            threshold_noise: NoiseScale::CDeltaOverEps1,
            resets_threshold_noise: true,
            query_noise: NoiseScale::TwoCDeltaOverEps2,
            privacy: PrivacyProperty::EpsilonDp,
        },
        ExtendedVariantProperties {
            name: "SVT-Exp",
            source: "exponential-noise SVT 2024 (arXiv:2407.20068)",
            noise_family: NoiseFamily::OneSidedExponential,
            charging: ChargingRule::Upfront,
            threshold_noise: NoiseScale::DeltaOverEps1,
            resets_threshold_noise: false,
            query_noise: NoiseScale::TwoCDeltaOverEps2,
            privacy: PrivacyProperty::EpsilonDp,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_variants_in_paper_order() {
        let rows = figure2();
        assert_eq!(rows.len(), 6);
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec!["Alg. 1", "Alg. 2", "Alg. 3", "Alg. 4", "Alg. 5", "Alg. 6"]
        );
    }

    #[test]
    fn privacy_row_matches_figure_2() {
        let rows = figure2();
        assert!(rows[0].privacy.is_private());
        assert!(rows[1].privacy.is_private());
        assert!(!rows[2].privacy.is_private());
        assert!(!rows[3].privacy.is_private());
        assert!(!rows[4].privacy.is_private());
        assert!(!rows[5].privacy.is_private());
        assert_eq!(rows[2].privacy.render(10), "∞-DP");
        // Alg. 4 at c = 1: (1+6)/4 = 1.75.
        assert_eq!(rows[3].privacy.render(1), "1.75ε-DP");
    }

    #[test]
    fn eps1_row_matches_figure_2() {
        let fracs: Vec<f64> = figure2().iter().map(|r| r.eps1_fraction).collect();
        assert_eq!(fracs, vec![0.5, 0.5, 0.5, 0.25, 0.5, 0.5]);
    }

    #[test]
    fn noise_rows_match_figure_2() {
        let rows = figure2();
        assert_eq!(rows[0].threshold_noise.symbol(), "Δ/ε1");
        assert_eq!(rows[1].threshold_noise.symbol(), "cΔ/ε1");
        assert_eq!(rows[0].query_noise.symbol(), "2cΔ/ε2");
        assert_eq!(rows[1].query_noise.symbol(), "2cΔ/ε1");
        assert_eq!(rows[2].query_noise.symbol(), "cΔ/ε2");
        assert_eq!(rows[3].query_noise.symbol(), "Δ/ε2");
        assert_eq!(rows[4].query_noise.symbol(), "0");
        assert_eq!(rows[5].query_noise.symbol(), "Δ/ε2");
    }

    #[test]
    fn flag_rows_match_figure_2() {
        let rows = figure2();
        assert!(rows[1].resets_threshold_noise);
        assert!(rows.iter().filter(|r| r.resets_threshold_noise).count() == 1);
        assert!(rows[2].outputs_noisy_answer);
        assert!(rows.iter().filter(|r| r.outputs_noisy_answer).count() == 1);
        let unbounded: Vec<&str> = rows
            .iter()
            .filter(|r| r.unbounded_positives)
            .map(|r| r.name)
            .collect();
        assert_eq!(unbounded, vec!["Alg. 5", "Alg. 6"]);
    }

    #[test]
    fn scale_evaluation_is_consistent_with_symbols() {
        let (e1, e2, d, c) = (0.05, 0.05, 1.0, 25);
        assert_eq!(NoiseScale::Zero.evaluate(e1, e2, d, c), 0.0);
        assert!((NoiseScale::DeltaOverEps1.evaluate(e1, e2, d, c) - 20.0).abs() < 1e-12);
        assert!((NoiseScale::TwoCDeltaOverEps2.evaluate(e1, e2, d, c) - 1000.0).abs() < 1e-12);
        assert!((NoiseScale::CDeltaOverEps1.evaluate(e1, e2, d, c) - 500.0).abs() < 1e-12);
    }

    #[test]
    fn post2017_rows_match_the_implementations() {
        let rows = post2017();
        assert_eq!(rows.len(), 2);
        let rv = &rows[0];
        assert_eq!(rv.name, "SVT-RV");
        assert_eq!(rv.charging, ChargingRule::PerTop);
        assert_eq!(rv.noise_family, NoiseFamily::Laplace);
        assert!(rv.resets_threshold_noise);
        // The catalog's symbolic scales must agree with the config's
        // numeric ones (general mode, ε split 1:1).
        let config = crate::alg::StandardSvtConfig {
            budget: dp_mechanisms::SvtBudget::halves(0.1).unwrap(),
            sensitivity: 1.0,
            c: 25,
            monotonic: false,
        };
        assert!(
            (rv.threshold_noise.evaluate(0.05, 0.05, 1.0, 25)
                - config.revisited_threshold_noise_scale())
            .abs()
                < 1e-12
        );
        assert!(
            (rv.query_noise.evaluate(0.05, 0.05, 1.0, 25) - config.query_noise_scale()).abs()
                < 1e-12
        );
        let exp = &rows[1];
        assert_eq!(exp.name, "SVT-Exp");
        assert_eq!(exp.charging, ChargingRule::Upfront);
        assert_eq!(exp.noise_family, NoiseFamily::OneSidedExponential);
        assert!(!exp.resets_threshold_noise);
        assert!(
            (exp.threshold_noise.evaluate(0.05, 0.05, 1.0, 25) - config.threshold_noise_scale())
                .abs()
                < 1e-12
        );
        // Both are ε-DP — that's the point of carrying them.
        assert!(rows.iter().all(|r| r.privacy.is_private()));
    }

    #[test]
    fn alg4_factor_matches_paper_examples() {
        // c = 50 → (1+300)/4 = 75.25.
        let p = PrivacyProperty::Inflated {
            constant: 1.0,
            c_coefficient: 6.0,
        };
        assert!((p.epsilon_factor(50) - 75.25).abs() < 1e-12);
        assert_eq!(PrivacyProperty::EpsilonDp.epsilon_factor(50), 1.0);
        assert_eq!(PrivacyProperty::Infinite.epsilon_factor(50), f64::INFINITY);
    }
}
