//! Zero-copy streaming evaluation: reusable run buffers, lazy shuffles,
//! and batched query noise.
//!
//! The faithful per-query engine pays three per-run costs that dominate
//! the paper's large workloads (AOL: 2,290,685 items): allocating and
//! fully shuffling a fresh permutation vector, and drawing Laplace noise
//! one `ln()` at a time. This module removes all three without changing
//! any output distribution:
//!
//! * **[`RunScratch`]** — the permutation, selection, and noise buffers
//!   live across runs; a run only rewinds them.
//! * **Lazy Fisher–Yates** — the examination order is generated with
//!   [`DpRng::shuffle_step`] one position at a time, so a run that
//!   aborts after `k` items pays `O(k)` shuffle work instead of `O(n)`.
//!   The visited prefix is exactly the prefix of a full
//!   [`DpRng::shuffle_forward`] (proven by property test), so the
//!   traversal order is a uniformly random permutation either way.
//! * **Batched noise** — the standard SVT's per-query `ν` comes from a
//!   [`NoiseBuffer`] refilled block-wise via [`Laplace::sample_into`],
//!   drawn from a dedicated forked generator so the handed-out noise
//!   stream is bit-identical for every batch size.
//!
//! ## Draw protocol (the reproducibility contract)
//!
//! [`svt_select_into`] consumes randomness in this fixed order, which is
//! what makes its output a pure function of the run generator,
//! independent of noise batch size:
//!
//! 1. fork the query-noise generator off the run generator;
//! 2. draw `ρ = Lap(Δ/ε₁)` from the run generator;
//! 3. per examined position `i`: one [`DpRng::shuffle_step`] from the
//!    run generator, then one `ν = Lap(·/ε₂)` from the (buffered)
//!    noise generator.
//!
//! The streaming paths release set membership only (⊤/⊥ — what the
//! non-interactive selection experiments consume); the optional `ε₃`
//! numeric phase of Algorithm 7 stays on [`StandardSvt`]'s interactive
//! path.

use crate::alg::SparseVector;
use crate::alg::StandardSvtConfig;
use crate::noninteractive::SvtSelectConfig;
use crate::{Result, SvtError};
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::{DpRng, NoiseBuffer};

/// Reusable per-run buffers for the streaming evaluation paths.
///
/// Construct once per worker thread, pass to every run; no run-sized
/// allocation happens after the first run at a given dataset size.
#[derive(Debug, Clone)]
pub struct RunScratch {
    order: Vec<u32>,
    selected: Vec<usize>,
    noise: NoiseBuffer,
}

impl RunScratch {
    /// Creates empty scratch with the default noise batch size.
    pub fn new() -> Self {
        Self::with_noise_batch(NoiseBuffer::DEFAULT_BATCH)
    }

    /// Creates empty scratch with an explicit noise batch size (the
    /// selection output is bit-identical for every batch size; this
    /// knob exists for tests and tuning).
    pub fn with_noise_batch(batch: usize) -> Self {
        Self {
            order: Vec::new(),
            selected: Vec::new(),
            noise: NoiseBuffer::with_batch(batch),
        }
    }

    /// The indices selected by the most recent run, in answer order.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// Rewinds the buffers for a fresh run over `n` items: identity
    /// permutation, empty selection, no stale prefetched noise.
    pub(crate) fn begin_run(&mut self, n: usize) {
        self.order.clear();
        self.order.extend(0..n as u32);
        self.selected.clear();
        self.noise.reset();
    }

    pub(crate) fn selected_len(&self) -> usize {
        self.selected.len()
    }

    pub(crate) fn push_selected(&mut self, item: usize) {
        self.selected.push(item);
    }

    pub(crate) fn order_mut(&mut self) -> &mut [u32] {
        &mut self.order
    }

    pub(crate) fn order_at(&self, i: usize) -> u32 {
        self.order[i]
    }

    pub(crate) fn noise_mut(&mut self) -> &mut NoiseBuffer {
        &mut self.noise
    }
}

impl Default for RunScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The comparison core of Algorithm 7 with prefetched query noise:
/// `ρ` fixed at construction, one buffered `ν` per query, halt at `c`.
/// Shared by [`svt_select_into`] and the retraversal streaming path.
pub(crate) struct BatchedSvt {
    noise_rng: DpRng,
    rho: f64,
    query_noise: Laplace,
    count: usize,
    c: usize,
    halted: bool,
}

impl BatchedSvt {
    /// Validates exactly like [`StandardSvt::new`] and performs steps
    /// 1–2 of the module-level draw protocol.
    ///
    /// [`StandardSvt::new`]: crate::alg::StandardSvt::new
    pub(crate) fn new(config: &StandardSvtConfig, rng: &mut DpRng) -> Result<Self> {
        dp_mechanisms::error::check_sensitivity(config.sensitivity).map_err(SvtError::from)?;
        crate::error::check_cutoff(config.c)?;
        let noise_rng = rng.fork();
        let rho = Laplace::new(config.threshold_noise_scale())
            .map_err(SvtError::from)?
            .sample(rng);
        let query_noise = Laplace::new(config.query_noise_scale()).map_err(SvtError::from)?;
        Ok(Self {
            noise_rng,
            rho,
            query_noise,
            count: 0,
            c: config.c,
            halted: false,
        })
    }

    pub(crate) fn is_halted(&self) -> bool {
        self.halted
    }

    /// Lines 3–9 of Algorithm 7 for one query: does `q + ν ≥ T + ρ`?
    #[inline]
    pub(crate) fn crosses(
        &mut self,
        query_answer: f64,
        threshold: f64,
        noise: &mut NoiseBuffer,
    ) -> bool {
        let nu = noise.next(&self.query_noise, &mut self.noise_rng);
        if query_answer + nu >= threshold + self.rho {
            self.count += 1;
            if self.count >= self.c {
                self.halted = true;
            }
            true
        } else {
            false
        }
    }
}

/// Streaming SVT-S selection: the zero-allocation, batched-noise
/// equivalent of [`svt_select`](crate::noninteractive::svt_select).
///
/// Samples the same output distribution (a fresh uniformly random
/// examination order, Algorithm 7 against a constant threshold, abort
/// at `c` positives) but reuses `scratch` across runs, shuffles lazily
/// up to the abort point, and draws query noise block-wise. The
/// selection lands in [`RunScratch::selected`].
///
/// ```
/// use dp_mechanisms::DpRng;
/// use svt_core::allocation::BudgetRatio;
/// use svt_core::noninteractive::SvtSelectConfig;
/// use svt_core::streaming::{svt_select_into, RunScratch};
///
/// let supports = [700.0, 650.0, 30.0, 20.0, 10.0, 5.0];
/// let cfg = SvtSelectConfig::counting(40.0, 2, BudgetRatio::OneToCTwoThirds);
/// let mut rng = DpRng::seed_from_u64(11);
/// let mut scratch = RunScratch::new();
/// svt_select_into(&supports, 340.0, &cfg, &mut rng, &mut scratch)?;
/// let mut picked = scratch.selected().to_vec();
/// picked.sort_unstable();
/// assert_eq!(picked, vec![0, 1]);
/// # Ok::<(), svt_core::SvtError>(())
/// ```
///
/// # Errors
/// Propagates configuration validation.
pub fn svt_select_into(
    scores: &[f64],
    threshold: f64,
    config: &SvtSelectConfig,
    rng: &mut DpRng,
    scratch: &mut RunScratch,
) -> Result<()> {
    let mut svt = BatchedSvt::new(&config.to_standard()?, rng)?;
    scratch.begin_run(scores.len());
    for i in 0..scores.len() {
        if svt.is_halted() {
            break;
        }
        rng.shuffle_step(&mut scratch.order, i);
        let item = scratch.order[i] as usize;
        if svt.crosses(scores[item], threshold, &mut scratch.noise) {
            scratch.selected.push(item);
        }
    }
    Ok(())
}

/// Streaming selection for *any* [`SparseVector`] variant (Alg. 1–6 and
/// the standard SVT): lazy shuffle and reusable buffers, with the
/// variant managing its own noise through [`SparseVector::respond`].
///
/// This is the allocation-free counterpart of
/// [`run_selection`](crate::noninteractive::select_with); it exists so
/// order-dependent variants (SVT-DPBook's per-⊤ threshold refresh) get
/// the zero-copy treatment too, even though their noise cannot be
/// prefetched.
///
/// # Errors
/// Propagates the first error from [`SparseVector::respond`].
pub fn select_streaming<A: SparseVector + ?Sized>(
    alg: &mut A,
    scores: &[f64],
    threshold: f64,
    rng: &mut DpRng,
    scratch: &mut RunScratch,
) -> Result<()> {
    scratch.begin_run(scores.len());
    for i in 0..scores.len() {
        if alg.is_halted() {
            break;
        }
        rng.shuffle_step(&mut scratch.order, i);
        let item = scratch.order[i] as usize;
        let answer = alg.respond(scores[item], threshold, rng)?;
        if answer.is_positive() {
            scratch.selected.push(item);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::Alg1;
    use crate::allocation::BudgetRatio;

    fn counting(epsilon: f64, c: usize) -> SvtSelectConfig {
        SvtSelectConfig::counting(epsilon, c, BudgetRatio::OneToCTwoThirds)
    }

    #[test]
    fn select_into_respects_cutoff_and_uniqueness() {
        let scores: Vec<f64> = (0..300).map(f64::from).collect();
        let mut rng = DpRng::seed_from_u64(1009);
        let mut scratch = RunScratch::new();
        for _ in 0..20 {
            svt_select_into(&scores, 250.0, &counting(5.0, 10), &mut rng, &mut scratch).unwrap();
            assert!(scratch.selected().len() <= 10);
            let mut d = scratch.selected().to_vec();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), scratch.selected().len());
        }
    }

    #[test]
    fn select_into_finds_clear_winners() {
        let mut scores = vec![0.0f64; 500];
        for s in scores.iter_mut().take(5) {
            *s = 1e6;
        }
        let cfg = SvtSelectConfig::counting(100.0, 5, BudgetRatio::OneToOne);
        let mut rng = DpRng::seed_from_u64(1013);
        let mut scratch = RunScratch::new();
        svt_select_into(&scores, 5e5, &cfg, &mut rng, &mut scratch).unwrap();
        let mut sel = scratch.selected().to_vec();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn select_into_is_noise_batch_size_invariant() {
        // The whole point of the forked-noise protocol: prefetching more
        // or less noise must not change a single selection.
        let scores: Vec<f64> = (0..2000).map(|i| (i % 97) as f64 * 3.0).collect();
        let cfg = counting(0.7, 25);
        let reference = {
            let mut rng = DpRng::seed_from_u64(4242);
            let mut scratch = RunScratch::with_noise_batch(1);
            svt_select_into(&scores, 150.0, &cfg, &mut rng, &mut scratch).unwrap();
            scratch.selected().to_vec()
        };
        for batch in [2usize, 7, 64, 256, 4096] {
            let mut rng = DpRng::seed_from_u64(4242);
            let mut scratch = RunScratch::with_noise_batch(batch);
            svt_select_into(&scores, 150.0, &cfg, &mut rng, &mut scratch).unwrap();
            assert_eq!(scratch.selected(), &reference[..], "batch {batch}");
        }
    }

    #[test]
    fn select_into_is_seed_deterministic_and_scratch_reuse_is_clean() {
        let scores: Vec<f64> = (0..1000).map(|i| f64::from(i % 51)).collect();
        let cfg = counting(1.0, 15);
        let run = |scratch: &mut RunScratch, seed: u64| {
            let mut rng = DpRng::seed_from_u64(seed);
            svt_select_into(&scores, 40.0, &cfg, &mut rng, scratch).unwrap();
            scratch.selected().to_vec()
        };
        let mut fresh_each_time = RunScratch::new();
        let a = run(&mut fresh_each_time, 7);
        // A dirty scratch (just used for a different seed) must not leak
        // state into the next run.
        let mut reused = RunScratch::new();
        run(&mut reused, 99);
        let b = run(&mut reused, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn select_into_matches_scalar_engine_distribution() {
        // The streaming path is a different (lazier) sampler of the same
        // distribution as `svt_select`; their mean selection sizes must
        // agree statistically.
        let scores: Vec<f64> = (0..400).map(f64::from).collect();
        let cfg = counting(0.5, 10);
        let runs = 400;
        let mut rng_a = DpRng::seed_from_u64(31337);
        let mut rng_b = DpRng::seed_from_u64(97531);
        let mut scratch = RunScratch::new();
        let mut mean_new = 0.0;
        let mut mean_old = 0.0;
        for _ in 0..runs {
            svt_select_into(&scores, 350.0, &cfg, &mut rng_a, &mut scratch).unwrap();
            mean_new += scratch.selected().len() as f64;
            mean_old += crate::noninteractive::svt_select(&scores, 350.0, &cfg, &mut rng_b)
                .unwrap()
                .len() as f64;
        }
        mean_new /= runs as f64;
        mean_old /= runs as f64;
        assert!(
            (mean_new - mean_old).abs() < 1.0,
            "streaming {mean_new} vs scalar {mean_old}"
        );
    }

    #[test]
    fn generic_streaming_path_works_for_interactive_variants() {
        let mut rng = DpRng::seed_from_u64(1021);
        let mut alg = Alg1::new(50.0, 1.0, 3, &mut rng).unwrap();
        let scores = vec![1e9f64; 30];
        let mut scratch = RunScratch::new();
        select_streaming(&mut alg, &scores, 0.0, &mut rng, &mut scratch).unwrap();
        assert_eq!(scratch.selected().len(), 3);
        assert!(alg.is_halted());
    }

    #[test]
    fn empty_scores_select_nothing() {
        let mut rng = DpRng::seed_from_u64(1031);
        let mut scratch = RunScratch::new();
        svt_select_into(&[], 0.0, &counting(1.0, 5), &mut rng, &mut scratch).unwrap();
        assert!(scratch.selected().is_empty());
    }
}
