//! Zero-copy streaming evaluation: reusable run buffers, lazy shuffles,
//! and batched query noise.
//!
//! The faithful per-query engine pays three per-run costs that dominate
//! the paper's large workloads (AOL: 2,290,685 items): allocating and
//! fully shuffling a fresh permutation vector, and drawing Laplace noise
//! one `ln()` at a time. This module removes all three without changing
//! any output distribution:
//!
//! * **[`RunScratch`]** — the permutation, selection, and noise buffers
//!   live across runs; a run only rewinds them.
//! * **Sparse lazy Fisher–Yates** — the examination order is generated
//!   by [`SparseOrder`] one position at a time over an *implicit*
//!   identity permutation (displacements tracked in a hash map), so a
//!   run that aborts after `k` items pays `O(k)` total — no `O(n)`
//!   identity fill, no `O(n)` shuffle. The emitted prefix is exactly
//!   the prefix of a full [`DpRng::shuffle_forward`] (proven by
//!   property test), so the traversal order is a uniformly random
//!   permutation either way.
//! * **Batched noise** — the standard SVT's per-query `ν` comes from a
//!   [`NoiseBuffer`] refilled block-wise via [`Laplace::sample_into`],
//!   drawn from a dedicated forked generator so the handed-out noise
//!   stream is bit-identical for every batch size.
//!
//! ## Draw protocol (the reproducibility contract)
//!
//! [`svt_select_into`] consumes randomness in this fixed order, which is
//! what makes its output a pure function of the run generator,
//! independent of noise batch size:
//!
//! 1. fork the query-noise generator off the run generator;
//! 2. draw `ρ = Lap(Δ/ε₁)` from the run generator;
//! 3. per examined position `i`: one [`DpRng::shuffle_step`] from the
//!    run generator, then one `ν = Lap(·/ε₂)` from the (buffered)
//!    noise generator.
//!
//! The streaming paths release set membership only (⊤/⊥ — what the
//! non-interactive selection experiments consume); the optional `ε₃`
//! numeric phase of Algorithm 7 stays on [`crate::alg::StandardSvt`]'s interactive
//! path.

use crate::alg::SparseVector;
use crate::alg::StandardSvtConfig;
use crate::em_select::EmScratch;
use crate::noninteractive::SvtSelectConfig;
use crate::session::{ChargePolicy, SessionState};
use crate::{Result, SvtError};
use dp_data::GroupedSnapshot;
use dp_mechanisms::exp_noise::Exponential;
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::{DpRng, NoiseBuffer, NoiseKernel};

/// Per-item score access for the streaming selection paths.
///
/// The streaming algorithms ([`svt_select_from`],
/// [`select_streaming_from`],
/// [`svt_retraversal_from`](crate::retraversal::svt_retraversal_from))
/// only ever ask two questions — how many items are there, and what is
/// item `i`'s score — so they are generic over this trait, and the
/// *same* code path serves both a dense score slice and the
/// index-preserving grouped runs of an immutable [`GroupedSnapshot`]
/// (which resolves an item through its group in `O(1)`). A snapshot is
/// epoch-stamped and never mutated after publication, so a selection
/// path holding one is *epoch-pinned*: live score updates elsewhere
/// publish new snapshots and cannot perturb an in-flight run. Two sources that report
/// `==`-equal scores for every item drive the algorithms through
/// identical comparisons and identical draws, which is what makes an
/// engine built on the grouped form emit selections **bit-identical**
/// to one built on the raw slice.
pub trait ScoreSource {
    /// Number of items.
    fn len(&self) -> usize;

    /// Whether there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The score of `item` (`0..len()`).
    fn score(&self, item: usize) -> f64;
}

impl ScoreSource for [f64] {
    #[inline]
    fn len(&self) -> usize {
        <[f64]>::len(self)
    }

    #[inline]
    fn score(&self, item: usize) -> f64 {
        self[item]
    }
}

impl ScoreSource for GroupedSnapshot {
    #[inline]
    fn len(&self) -> usize {
        self.len_items()
    }

    #[inline]
    fn score(&self, item: usize) -> f64 {
        self.score_of_item(item)
    }
}

/// One slot of the displacement map: occupied iff `gen` matches the
/// map's current generation.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    gen: u32,
    key: u32,
    val: u32,
}

/// Open-addressing hash map from position to displaced value, built for
/// the sparse-permutation access pattern shared by [`SparseOrder`]
/// (lazy forward Fisher–Yates) and the grouped EM sampler's
/// within-group swap-with-last draws
/// ([`EmTopC::select_grouped_into`](crate::em_select::EmTopC::select_grouped_into)),
/// and nothing else:
///
/// * **no deletions** — once position `i` has been examined it is never
///   probed again (future probes use keys `> i`), so stale entries are
///   merely dead weight that the next reset discards;
/// * **`O(1)` reset** — slots are generation-stamped; rewinding for a
///   new run just bumps the generation instead of touching memory
///   (crucial: `reset` runs once per simulation run);
/// * **single-probe upsert** — [`replace`](Self::replace) returns the
///   evicted value in the same probe sequence that stores the new one;
/// * Fibonacci hashing + linear probing at ≤ ½ load on a power-of-two
///   table, so the common miss costs one multiply and one cache line.
#[derive(Debug, Clone, Default)]
pub(crate) struct DisplacementMap {
    slots: Vec<Slot>,
    /// `slots.len() - 1`; the table is always a power of two.
    mask: usize,
    /// Bit shift taking the 64-bit hash to a table index (top bits).
    shift: u32,
    /// Occupied (current-generation) slot count.
    len: usize,
    /// Current generation stamp.
    gen: u32,
}

impl DisplacementMap {
    const MIN_CAPACITY: usize = 64;

    #[inline]
    fn bucket(&self, key: u32) -> usize {
        // Fibonacci hashing: the high bits of key · φ⁻¹·2⁶⁴ are
        // well-mixed for consecutive keys.
        ((u64::from(key).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> self.shift) as usize) & self.mask
    }

    /// Forgets every entry in O(1) by advancing the generation.
    pub(crate) fn reset(&mut self) {
        self.len = 0;
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // The stamp wrapped (once per 2³² resets): wipe physically
            // so ancient slots cannot alias the reused generation.
            self.slots.fill(Slot::default());
            self.gen = 1;
        }
    }

    /// The value displaced to `key`, if any.
    #[inline]
    pub(crate) fn get(&self, key: u32) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mut i = self.bucket(key);
        loop {
            let s = self.slots[i];
            if s.gen != self.gen {
                return None;
            }
            if s.key == key {
                return Some(s.val);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Stores `val` at `key`, returning the value previously there (one
    /// probe sequence for lookup + insert).
    #[inline]
    pub(crate) fn replace(&mut self, key: u32, val: u32) -> Option<u32> {
        if self.slots.is_empty() || 2 * (self.len + 1) > self.slots.len() {
            self.grow();
        }
        let mut i = self.bucket(key);
        loop {
            let s = &mut self.slots[i];
            if s.gen != self.gen {
                *s = Slot {
                    gen: self.gen,
                    key,
                    val,
                };
                self.len += 1;
                return None;
            }
            if s.key == key {
                return Some(std::mem::replace(&mut s.val, val));
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Fast-forwards the generation stamp as if `gen - self.gen` resets
    /// had happened (restamping live entries so they stay visible), so
    /// tests can drive the stamp to the wraparound boundary without
    /// 2³² literal resets.
    #[cfg(test)]
    pub(crate) fn jump_generation(&mut self, gen: u32) {
        for s in &mut self.slots {
            if s.gen == self.gen {
                s.gen = gen;
            }
        }
        self.gen = gen;
    }

    /// Current table capacity in slots (tests observe grow boundaries).
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Doubles the table (or allocates the first one) and rehashes the
    /// current generation's entries.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(Self::MIN_CAPACITY);
        let old = std::mem::replace(&mut self.slots, vec![Slot::default(); new_cap]);
        self.mask = new_cap - 1;
        self.shift = 64 - new_cap.trailing_zeros();
        let live = self.gen;
        if live == 0 {
            // A never-reset map: stamp must not collide with the
            // default (empty) slots of the fresh table.
            self.gen = 1;
        }
        self.len = 0;
        if live != 0 {
            for s in old {
                if s.gen == live {
                    self.replace(s.key, s.val);
                }
            }
        }
    }
}

/// A lazily generated uniformly random permutation of `0..n`.
///
/// Produces the exact value stream of a forward Fisher–Yates shuffle
/// ([`DpRng::shuffle_forward`]) — bit-identical draws, bit-identical
/// prefix — without ever materializing the identity permutation.
/// Conceptually the array starts as the identity; [`step`](Self::step)
/// performs one forward Fisher–Yates step, but untouched positions are
/// implicit (`value(j) = j`) and only *displaced* values are tracked in
/// a hash map. Stepping `k` times therefore costs `O(k)` total — time
/// **and** space — even for `n` in the millions, which is what makes an
/// early-aborting SVT run `O(examined)` end to end.
///
/// ## Densification
///
/// A run that keeps going (SVT-Revisited's per-⊤ charging examines most
/// of the list) would push the displacement map to `O(n)` entries, each
/// step paying a hash probe. Once the examined count reaches ⅛ of `n`
/// the order *densifies*: the remaining tail's conceptual values are
/// materialized into a flat array and every later step is two array
/// reads and a write. The switch draws nothing and changes no emitted
/// value — the dense step performs the identical forward Fisher–Yates
/// transition on the materialized state — so it is invisible to
/// callers (property-pinned against the pure-sparse stream). The
/// one-off `O(n)` materialization is only paid after `Ω(n)` steps,
/// keeping the `O(examined)` bound.
///
/// The emitted prefix is stored densely and can be re-read (and
/// compacted in place) by multi-pass consumers like SVT-ReTr.
///
/// ```
/// use dp_mechanisms::DpRng;
/// use svt_core::streaming::SparseOrder;
///
/// let mut full_rng = DpRng::seed_from_u64(9);
/// let mut lazy_rng = DpRng::seed_from_u64(9);
///
/// // Reference: full forward Fisher–Yates over 1000 items.
/// let mut full: Vec<u32> = (0..1000).collect();
/// full_rng.shuffle_forward(&mut full);
///
/// // Lazy: step 3 times, touching O(3) state — same prefix.
/// let mut order = SparseOrder::new();
/// order.reset(1000);
/// let prefix: Vec<u32> = (0..3).map(|_| order.step(&mut lazy_rng)).collect();
/// assert_eq!(prefix, full[..3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseOrder {
    /// Positions examined so far, in examination order (the emitted
    /// permutation prefix).
    prefix: Vec<u32>,
    /// Values displaced out of the untouched suffix: position → value.
    /// Absent positions hold their identity value. Entries at already
    /// examined positions are stale and never probed again (probe keys
    /// are ≥ the next examination index), which is why the map needs no
    /// deletion support.
    displaced: DisplacementMap,
    /// Length of the conceptual permutation.
    len: usize,
    /// After densification: the conceptual values of positions
    /// `dense_from.. len`, stored flat (`dense[p - dense_from]`).
    dense: Vec<u32>,
    /// The position the dense tail starts at; `None` while sparse.
    dense_from: Option<usize>,
    /// Eager mode ([`reset_eager`](Self::reset_eager)): the whole
    /// permutation is materialized in `prefix` upfront and this tracks
    /// how much of it the consumer has examined. `None` in lazy mode.
    eager_taken: Option<usize>,
}

impl SparseOrder {
    /// Creates an empty order (call [`reset`](Self::reset) before
    /// stepping).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewinds to a fresh identity permutation of `0..n` in `O(1)`
    /// (the displacement map is generation-stamped), not `O(n)`.
    pub fn reset(&mut self, n: usize) {
        self.prefix.clear();
        self.displaced.reset();
        self.len = n;
        self.dense.clear();
        self.dense_from = None;
        self.eager_taken = None;
    }

    /// Rewinds to a fresh permutation of `0..n` and materializes *all*
    /// of it upfront with one tight forward Fisher–Yates pass — `O(n)`
    /// by design, trading the `O(examined)` bound for a much cheaper
    /// per-position cost (a sequential array read instead of a lazy
    /// step's hashing/branch bookkeeping).
    ///
    /// The pass makes exactly the draws that stepping through all `n`
    /// positions lazily would make, in the same order with the same
    /// values, so a full traversal is draw-for-draw identical under
    /// either mode. Built for whole-list consumers — SVT-Revisited's
    /// per-⊤ charging examines nearly everything — where lazy stepping
    /// only adds overhead. Walk the result with
    /// [`eager_at`](Self::eager_at) and record progress with
    /// [`mark_taken`](Self::mark_taken) so [`emitted`](Self::emitted)
    /// keeps reporting the examined count.
    pub fn reset_eager(&mut self, n: usize, rng: &mut DpRng) {
        self.displaced.reset();
        self.len = n;
        self.dense.clear();
        self.dense_from = None;
        self.prefix.clear();
        self.prefix.extend(0..n as u32);
        rng.shuffle_forward(&mut self.prefix);
        self.eager_taken = Some(0);
    }

    /// Reads position `i` of the eagerly materialized order.
    ///
    /// # Panics
    /// Debug-asserts eager mode; panics if `i` is out of range.
    #[inline]
    pub fn eager_at(&self, i: usize) -> u32 {
        debug_assert!(self.eager_taken.is_some(), "eager_at outside eager mode");
        self.prefix[i]
    }

    /// Records that the consumer has examined the first `k` positions
    /// of the eager order (no-op in lazy mode).
    pub fn mark_taken(&mut self, k: usize) {
        if let Some(taken) = &mut self.eager_taken {
            debug_assert!(k <= self.len);
            *taken = k;
        }
    }

    /// Number of positions emitted so far (in eager mode: examined so
    /// far, per [`mark_taken`](Self::mark_taken)).
    pub fn emitted(&self) -> usize {
        self.eager_taken.unwrap_or(self.prefix.len())
    }

    /// The emitted prefix, in examination order (in eager mode: the
    /// examined prefix of the materialized order).
    pub fn prefix(&self) -> &[u32] {
        match self.eager_taken {
            Some(taken) => &self.prefix[..taken],
            None => &self.prefix,
        }
    }

    /// Emits the next position of the lazy shuffle.
    ///
    /// Draws exactly what [`DpRng::shuffle_step`] would draw at this
    /// index (one bounded draw, or none at the final position), so
    /// interleaving other draws from the same generator behaves
    /// identically under either implementation.
    ///
    /// # Panics
    /// Debug-asserts that fewer than `n` positions have been emitted.
    #[inline]
    pub fn step(&mut self, rng: &mut DpRng) -> u32 {
        debug_assert!(self.eager_taken.is_none(), "step in eager mode");
        let i = self.prefix.len();
        debug_assert!(i < self.len, "SparseOrder::step past the end");
        if self.dense_from.is_none() && (i + 1) * 8 >= self.len {
            self.densify(i);
        }
        let remaining = self.len - i;
        let picked = if let Some(base) = self.dense_from {
            // Dense tail: a plain forward Fisher–Yates step on the
            // materialized values — same draw, same transition.
            let vi = self.dense[i - base];
            if remaining > 1 {
                let j = i + rng.index(remaining);
                let v = self.dense[j - base];
                self.dense[j - base] = vi;
                v
            } else {
                vi
            }
        } else {
            let vi = self.displaced.get(i as u32).unwrap_or(i as u32);
            if remaining > 1 {
                let j = i + rng.index(remaining);
                if j == i {
                    vi
                } else {
                    // Move position i's value out to j (overwriting j's
                    // entry, whose value we take); position i itself is
                    // finished and its stale entry, if any, is never
                    // probed again.
                    self.displaced.replace(j as u32, vi).unwrap_or(j as u32)
                }
            } else {
                vi
            }
        };
        self.prefix.push(picked);
        picked
    }

    /// Emits the next `out.len()` positions of the lazy shuffle —
    /// exactly [`step`](Self::step) repeated `out.len()` times (same
    /// draws, same values), but when the whole block provably stays in
    /// the sparse phase the per-step densify trigger, mode branch, and
    /// length reloads are hoisted out of the loop. This is the batched
    /// drivers' fill path: their lookahead windows step in blocks, so
    /// the hoisting pays on every examined item.
    pub fn step_block(&mut self, rng: &mut DpRng, out: &mut [u32]) {
        let n = self.len;
        let start = self.prefix.len();
        let m = out.len();
        debug_assert!(self.eager_taken.is_none(), "step_block in eager mode");
        debug_assert!(start + m <= n, "SparseOrder::step_block past the end");
        // `(i + 1) * 8 < n` for every position the block touches means
        // no step densifies, and `remaining > 1` throughout (the
        // trigger fires long before the final position).
        if self.dense_from.is_none() && (start + m) * 8 < n {
            self.prefix.reserve(m);
            for (t, slot) in out.iter_mut().enumerate() {
                let i = start + t;
                let vi = self.displaced.get(i as u32).unwrap_or(i as u32);
                let j = i + rng.index(n - i);
                let picked = if j == i {
                    vi
                } else {
                    self.displaced.replace(j as u32, vi).unwrap_or(j as u32)
                };
                self.prefix.push(picked);
                *slot = picked;
            }
            return;
        }
        for slot in out.iter_mut() {
            *slot = self.step(rng);
        }
    }

    /// Materializes the conceptual values of positions `i..len` into the
    /// flat dense tail (see the type docs) — `O(len - i)`, once per run.
    fn densify(&mut self, i: usize) {
        self.dense.clear();
        self.dense
            .extend((i..self.len).map(|p| self.displaced.get(p as u32).unwrap_or(p as u32)));
        self.dense_from = Some(i);
    }

    /// Drops stepped-but-unexamined positions from the prefix. The
    /// batched drivers step a small lookahead window ahead of the
    /// comparisons (see [`svt_select_from`]); a halt mid-window leaves
    /// stepped positions that were never examined, and this trims them
    /// so [`emitted`](Self::emitted)/[`prefix`](Self::prefix) report
    /// exactly the examined count.
    pub(crate) fn truncate_prefix(&mut self, k: usize) {
        self.prefix.truncate(k);
    }

    /// Reads position `i` of the emitted prefix.
    #[inline]
    pub(crate) fn prefix_at(&self, i: usize) -> u32 {
        self.prefix[i]
    }

    /// Overwrites position `i` of the emitted prefix (used by SVT-ReTr
    /// to compact survivors in place between passes).
    #[inline]
    pub(crate) fn prefix_set(&mut self, i: usize, value: u32) {
        self.prefix[i] = value;
    }
}

/// Reusable per-run buffers for the streaming evaluation paths.
///
/// Construct once per worker thread, pass to every run; nothing in here
/// is ever allocated proportional to the dataset size, and after the
/// first few runs the steady state allocates nothing at all. One
/// scratch serves every streaming path — [`svt_select_into`],
/// [`select_streaming`],
/// [`svt_retraversal_into`](crate::retraversal::svt_retraversal_into),
/// and [`EmTopC::select_into`](crate::em_select::EmTopC::select_into) —
/// with the result of the most recent run in
/// [`selected`](Self::selected).
///
/// ```
/// use dp_mechanisms::DpRng;
/// use svt_core::allocation::BudgetRatio;
/// use svt_core::em_select::EmTopC;
/// use svt_core::noninteractive::SvtSelectConfig;
/// use svt_core::streaming::{svt_select_into, RunScratch};
///
/// let scores = [900.0, 850.0, 20.0, 15.0, 10.0, 5.0];
/// let mut rng = DpRng::seed_from_u64(3);
/// let mut scratch = RunScratch::new();
///
/// // One scratch, two different engines, zero per-run allocation.
/// let cfg = SvtSelectConfig::counting(40.0, 2, BudgetRatio::OneToCTwoThirds);
/// svt_select_into(&scores, 400.0, &cfg, &mut rng, &mut scratch)?;
/// assert!(scratch.selected().len() <= 2);
///
/// let em = EmTopC::new(4.0, 2, 1.0, true)?;
/// em.select_into(&scores, &mut rng, &mut scratch)?;
/// assert_eq!(scratch.selected().len(), 2);
/// # Ok::<(), svt_core::SvtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RunScratch {
    order: SparseOrder,
    selected: Vec<usize>,
    noise: NoiseBuffer,
    em: EmScratch,
    /// Threads used to prefill chunked noise streams (SVT-Revisited's
    /// whole-list runs); the stream is bit-identical for every value.
    noise_threads: usize,
}

impl RunScratch {
    /// Creates empty scratch with the default noise batch size and the
    /// [`NoiseKernel::Vectorized`] transform — the configuration both
    /// mirror simulation engines run. Engines are compared against
    /// *each other* (both consume the same kernel), so the vectorized
    /// default keeps every cross-engine bit-identity pin while taking
    /// the fast batched log.
    pub fn new() -> Self {
        Self::with_kernel(NoiseBuffer::DEFAULT_BATCH, NoiseKernel::Vectorized)
    }

    /// Creates empty scratch with an explicit noise batch size and the
    /// [`NoiseKernel::Reference`] transform (the selection output is
    /// then bit-identical to scalar sampling for every batch size; this
    /// knob exists for tests, tuning, and scalar-history comparisons).
    pub fn with_noise_batch(batch: usize) -> Self {
        Self::with_kernel(batch, NoiseKernel::Reference)
    }

    /// Creates empty scratch with an explicit batch size and transform
    /// kernel.
    pub fn with_kernel(batch: usize, kernel: NoiseKernel) -> Self {
        Self {
            order: SparseOrder::new(),
            selected: Vec::new(),
            noise: NoiseBuffer::with_kernel(batch, kernel),
            em: EmScratch::new(),
            noise_threads: 1,
        }
    }

    /// The noise transform kernel this scratch's runs use.
    #[inline]
    pub fn kernel(&self) -> NoiseKernel {
        self.noise.kernel()
    }

    /// Sets how many threads prefill chunked noise streams (clamped to
    /// ≥ 1). Output streams are **bit-identical for every value** — the
    /// chunked derivation is thread-count-independent by construction
    /// ([`NoiseBuffer::enable_chunked`]) — so this is purely a
    /// wall-clock knob for large-`c` runs.
    pub fn set_noise_threads(&mut self, threads: usize) {
        self.noise_threads = threads.max(1);
    }

    /// The indices selected by the most recent run, in answer order.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// Number of items the most recent streaming run examined before
    /// halting — the quantity the `O(examined)` cost bound refers to.
    /// (Zero after [`EmTopC::select_into`](crate::em_select::EmTopC::select_into),
    /// which scans without an examination order.)
    pub fn examined(&self) -> usize {
        self.order.emitted()
    }

    /// Rewinds the buffers for a fresh run over `n` items: implicit
    /// identity permutation, empty selection, no stale prefetched
    /// noise. Costs `O(state touched last run)`, **not** `O(n)` — this
    /// is what makes an early-aborting run `O(examined)` end to end.
    pub(crate) fn begin_run(&mut self, n: usize) {
        self.order.reset(n);
        self.selected.clear();
        self.noise.reset();
    }

    pub(crate) fn selected_len(&self) -> usize {
        self.selected.len()
    }

    pub(crate) fn push_selected(&mut self, item: usize) {
        self.selected.push(item);
    }

    /// One lazy-shuffle step: emits the item examined at the next
    /// position.
    #[inline]
    pub(crate) fn step_order(&mut self, rng: &mut DpRng) -> u32 {
        self.order.step(rng)
    }

    pub(crate) fn order_at(&self, i: usize) -> u32 {
        self.order.prefix_at(i)
    }

    pub(crate) fn order_set(&mut self, i: usize, value: u32) {
        self.order.prefix_set(i, value);
    }

    pub(crate) fn noise_mut(&mut self) -> &mut NoiseBuffer {
        &mut self.noise
    }

    /// Rewinds for an EM selection: empty selection and a zero-length
    /// order (EM scans without an examination order, so
    /// [`examined`](Self::examined) reads 0 afterwards).
    pub(crate) fn begin_em_run(&mut self) {
        self.order.reset(0);
        self.selected.clear();
    }

    /// The EM scratch and the shared selection buffer, borrowed
    /// together for [`EmTopC::select_into`](crate::em_select::EmTopC::select_into).
    pub(crate) fn em_parts(&mut self) -> (&mut EmScratch, &mut Vec<usize>) {
        (&mut self.em, &mut self.selected)
    }
}

impl Default for RunScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Lookahead depth of the batched drivers' traversal windows: order
/// positions are examined this many at a time so the per-item score
/// reads — one random access each, a guaranteed cache miss at
/// AOL-scale list sizes — issue together and overlap in the memory
/// system. Chosen to sit near typical miss-level parallelism limits;
/// the window is a pure scheduling change (no draw moves, no output
/// changes).
const LOOKAHEAD: usize = 16;

/// The comparison core of Algorithm 7 with prefetched query noise:
/// `ρ` fixed at construction, one buffered `ν` per query, halt at `c`.
/// Shared by [`svt_select_into`] and the retraversal streaming path.
pub(crate) struct BatchedSvt {
    noise_rng: DpRng,
    state: SessionState,
    query_noise: Laplace,
}

impl BatchedSvt {
    /// Validates exactly like [`StandardSvt::new`] and performs steps
    /// 1–2 of the module-level draw protocol.
    ///
    /// [`StandardSvt::new`]: crate::alg::StandardSvt::new
    pub(crate) fn new(config: &StandardSvtConfig, rng: &mut DpRng) -> Result<Self> {
        dp_mechanisms::error::check_sensitivity(config.sensitivity).map_err(SvtError::from)?;
        crate::error::check_cutoff(config.c)?;
        let noise_rng = rng.fork();
        let rho = Laplace::new(config.threshold_noise_scale())
            .map_err(SvtError::from)?
            .sample(rng);
        let query_noise = Laplace::new(config.query_noise_scale()).map_err(SvtError::from)?;
        Ok(Self {
            noise_rng,
            state: SessionState::new(*config, rho)?,
            query_noise,
        })
    }

    pub(crate) fn is_halted(&self) -> bool {
        self.state.is_halted()
    }

    /// Lines 3–9 of Algorithm 7 for one query: does `q + ν ≥ T + ρ`?
    /// Scores are validated upstream, so the unchecked transition
    /// applies; callers stop at [`is_halted`](Self::is_halted).
    #[inline]
    pub(crate) fn crosses(
        &mut self,
        query_answer: f64,
        threshold: f64,
        noise: &mut NoiseBuffer,
    ) -> bool {
        let nu = noise.next(&self.query_noise, &mut self.noise_rng);
        self.state.observe_unchecked(query_answer, threshold, nu)
    }

    /// Pulls the next `out.len()` query-noise values in one block —
    /// the same ν stream [`crosses`](Self::crosses) consumes, without
    /// the per-draw buffer bookkeeping. Pair with
    /// [`observe`](Self::observe).
    #[inline]
    pub(crate) fn take_noise(&mut self, noise: &mut NoiseBuffer, out: &mut [f64]) {
        noise.take_into(&self.query_noise, &mut self.noise_rng, out);
    }

    /// [`crosses`](Self::crosses) with the ν drawn up front by
    /// [`take_noise`](Self::take_noise).
    #[inline]
    pub(crate) fn observe(&mut self, query_answer: f64, threshold: f64, nu: f64) -> bool {
        self.state.observe_unchecked(query_answer, threshold, nu)
    }
}

/// Streaming SVT-S selection: the zero-allocation, batched-noise
/// equivalent of [`svt_select`](crate::noninteractive::svt_select).
///
/// Samples the same output distribution (a fresh uniformly random
/// examination order, Algorithm 7 against a constant threshold, abort
/// at `c` positives) but reuses `scratch` across runs, shuffles lazily
/// up to the abort point, and draws query noise block-wise. The
/// selection lands in [`RunScratch::selected`].
///
/// ```
/// use dp_mechanisms::DpRng;
/// use svt_core::allocation::BudgetRatio;
/// use svt_core::noninteractive::SvtSelectConfig;
/// use svt_core::streaming::{svt_select_into, RunScratch};
///
/// let supports = [700.0, 650.0, 30.0, 20.0, 10.0, 5.0];
/// let cfg = SvtSelectConfig::counting(40.0, 2, BudgetRatio::OneToCTwoThirds);
/// let mut rng = DpRng::seed_from_u64(11);
/// let mut scratch = RunScratch::new();
/// svt_select_into(&supports, 340.0, &cfg, &mut rng, &mut scratch)?;
/// let mut picked = scratch.selected().to_vec();
/// picked.sort_unstable();
/// assert_eq!(picked, vec![0, 1]);
/// # Ok::<(), svt_core::SvtError>(())
/// ```
///
/// # Errors
/// Propagates configuration validation.
pub fn svt_select_into(
    scores: &[f64],
    threshold: f64,
    config: &SvtSelectConfig,
    rng: &mut DpRng,
    scratch: &mut RunScratch,
) -> Result<()> {
    svt_select_from(scores, threshold, config, rng, scratch)
}

/// [`svt_select_into`] generalized over any [`ScoreSource`] — the one
/// implementation both engines of the experiment harness run.
///
/// The draw protocol (see the module docs) depends only on `len()` and
/// on the comparisons' outcomes, so two sources reporting `==`-equal
/// scores per item — e.g. a raw slice and its [`GroupedSnapshot`] — yield
/// bit-identical selections from the same generator state.
///
/// Internally the traversal runs a two-deep pipeline of
/// [`LOOKAHEAD`]-sized windows: order positions are stepped ahead of
/// the comparisons so their score reads issue back-to-back and the
/// cache misses resolve under the previous window's observations. The
/// pipeline changes no draw value (the order steps are the loop's only
/// draws from `rng`) and hence no selection; on an early halt it only
/// means `rng` has advanced by up to `2 · LOOKAHEAD - 1` extra order
/// draws.
///
/// # Errors
/// Propagates configuration validation.
pub fn svt_select_from<S: ScoreSource + ?Sized>(
    scores: &S,
    threshold: f64,
    config: &SvtSelectConfig,
    rng: &mut DpRng,
    scratch: &mut RunScratch,
) -> Result<()> {
    let mut svt = BatchedSvt::new(&config.to_standard()?, rng)?;
    scratch.begin_run(scores.len());
    let n = scores.len();
    // Two-deep software pipeline over the lookahead windows: while
    // window `w` is being observed, window `w + 1` has already been
    // stepped and its score reads issued, so those cache misses (one
    // per item at AOL-scale list sizes) resolve under the observation
    // compute instead of stalling it. The draws are unchanged — order
    // steps stay the loop's only draws from `rng`, in the same order —
    // but on an early halt `rng` has advanced by up to
    // `2 · LOOKAHEAD - 1` extra order draws. Query noise is pulled one
    // window at a time from the ν fork — same stream, and up to
    // `LOOKAHEAD - 1` values past a halt, which is unobservable: the
    // fork is discarded with this call and the buffer reset next run.
    let (mut items_a, mut items_b) = ([0u32; LOOKAHEAD], [0u32; LOOKAHEAD]);
    let (mut vals_a, mut vals_b) = ([0.0f64; LOOKAHEAD], [0.0f64; LOOKAHEAD]);
    let mut nus = [0.0f64; LOOKAHEAD];
    let (mut cur_items, mut cur_vals) = (&mut items_a, &mut vals_a);
    let (mut nxt_items, mut nxt_vals) = (&mut items_b, &mut vals_b);
    let mut cur_w = LOOKAHEAD.min(n);
    scratch.order.step_block(rng, &mut cur_items[..cur_w]);
    for k in 0..cur_w {
        cur_vals[k] = scores.score(cur_items[k] as usize);
    }
    let mut stepped = cur_w;
    let mut examined = 0;
    'outer: while cur_w > 0 && !svt.is_halted() {
        let next_w = LOOKAHEAD.min(n - stepped);
        if next_w > 0 {
            scratch.order.step_block(rng, &mut nxt_items[..next_w]);
            for k in 0..next_w {
                nxt_vals[k] = scores.score(nxt_items[k] as usize);
            }
            stepped += next_w;
        }
        svt.take_noise(&mut scratch.noise, &mut nus[..cur_w]);
        for k in 0..cur_w {
            examined += 1;
            if svt.observe(cur_vals[k], threshold, nus[k]) {
                scratch.selected.push(cur_items[k] as usize);
            }
            if svt.is_halted() {
                break 'outer;
            }
        }
        std::mem::swap(&mut cur_items, &mut nxt_items);
        std::mem::swap(&mut cur_vals, &mut nxt_vals);
        cur_w = next_w;
    }
    scratch.order.truncate_prefix(examined);
    Ok(())
}

/// Streaming SVT-Revisited selection with batched, chunked query noise.
///
/// Samples the same output distribution as running
/// [`SvtRevisited`](crate::alg::SvtRevisited) through
/// [`select_streaming_from`] — `c` chained cutoff-1 instances, `ρ`
/// redrawn after every non-final ⊤ — but with the noise streams
/// restructured for batching (the [`SessionDriver::open_revisited`]
/// protocol):
///
/// 1. fork the query-noise generator off `rng`;
/// 2. fork the threshold-refresh generator off `rng`;
/// 3. draw the first instance's `ρ` from `rng` itself;
/// 4. draw the full examination order from `rng` with one eager
///    forward Fisher–Yates pass ([`SparseOrder::reset_eager`]) — the
///    same draws, in the same order, that lazy stepping makes over a
///    full traversal;
/// 5. per examined position: one buffered `ν` from the query fork;
///    after a non-final ⊤, a fresh `ρ` from the refresh fork.
///
/// Because SVT-Revisited typically examines most of the list (⊥s are
/// free), both expensive streams run in whole-list mode: the
/// examination order is materialized eagerly (a tight shuffle beats
/// per-step lazy bookkeeping when nearly every step happens), and the
/// query noise runs in the [`NoiseBuffer`]'s *chunked* mode — the fork
/// seeds a counter-derived chunk family prefilled by
/// [`RunScratch::set_noise_threads`] threads, bit-identical for every
/// thread count.
///
/// [`SessionDriver::open_revisited`]: crate::session::SessionDriver::open_revisited
///
/// # Errors
/// Propagates configuration validation; like
/// [`SvtRevisited::new`](crate::alg::SvtRevisited::new), rejects budgets
/// with a numeric phase.
pub fn revisited_select_from<S: ScoreSource + ?Sized>(
    scores: &S,
    threshold: f64,
    config: &SvtSelectConfig,
    rng: &mut DpRng,
    scratch: &mut RunScratch,
) -> Result<()> {
    let cfg = config.to_standard()?;
    dp_mechanisms::error::check_sensitivity(cfg.sensitivity).map_err(SvtError::from)?;
    crate::error::check_cutoff(cfg.c)?;
    let query_noise = Laplace::new(cfg.query_noise_scale()).map_err(SvtError::from)?;
    let threshold_noise =
        Laplace::new(cfg.revisited_threshold_noise_scale()).map_err(SvtError::from)?;
    let mut noise_rng = rng.fork();
    let mut threshold_rng = rng.fork();
    let rho = threshold_noise.sample(rng);
    let mut state = SessionState::with_policy(cfg, rho, ChargePolicy::PerTop)?;
    scratch.begin_run(scores.len());
    let threads = scratch.noise_threads;
    scratch.noise.enable_chunked(threads);
    scratch.order.reset_eager(scores.len(), rng);
    let n = scores.len();
    // Same two-deep window pipeline as `svt_select_from` (the order is
    // already materialized, so only the score reads pipeline): window
    // `w + 1`'s reads are in flight while window `w` is observed.
    let (mut vals_a, mut vals_b) = ([0.0f64; LOOKAHEAD], [0.0f64; LOOKAHEAD]);
    let (mut cur_vals, mut nxt_vals) = (&mut vals_a, &mut vals_b);
    let mut nus = [0.0f64; LOOKAHEAD];
    let mut base = 0;
    let mut cur_w = LOOKAHEAD.min(n);
    for (k, v) in cur_vals.iter_mut().enumerate().take(cur_w) {
        *v = scores.score(scratch.order.eager_at(k) as usize);
    }
    let mut taken = 0;
    'outer: while cur_w > 0 && !state.is_halted() {
        let next_base = base + cur_w;
        let next_w = LOOKAHEAD.min(n - next_base);
        for (k, v) in nxt_vals.iter_mut().enumerate().take(next_w) {
            *v = scores.score(scratch.order.eager_at(next_base + k) as usize);
        }
        // Block-pull the window's ν values (same stream as per-draw
        // `next`; a halt strands at most `LOOKAHEAD - 1` of them, which
        // is unobservable — the fork dies with this call).
        scratch
            .noise
            .take_into(&query_noise, &mut noise_rng, &mut nus[..cur_w]);
        for (k, &val) in cur_vals.iter().enumerate().take(cur_w) {
            let item = scratch.order.eager_at(base + k) as usize;
            taken += 1;
            let nu = nus[k];
            if state.observe_unchecked(val, threshold, nu) {
                scratch.selected.push(item);
                if state.needs_rho_refresh() {
                    state.refresh_rho(threshold_noise.sample(&mut threshold_rng))?;
                }
            }
            if state.is_halted() {
                break 'outer;
            }
        }
        std::mem::swap(&mut cur_vals, &mut nxt_vals);
        base = next_base;
        cur_w = next_w;
    }
    scratch.order.mark_taken(taken);
    Ok(())
}

/// Streaming exponential-noise SVT selection with batched query noise.
///
/// Samples the same output distribution as running
/// [`ExpNoiseSvt`](crate::alg::ExpNoiseSvt) through
/// [`select_streaming_from`], with the query noise restructured for
/// batching exactly like [`svt_select_from`]'s:
///
/// 1. fork the query-noise generator off `rng`;
/// 2. draw `ρ = Exp(Δ/ε₁)` from `rng` itself;
/// 3. per examined position: one shuffle step from `rng`, one buffered
///    `ν = Exp(kcΔ/ε₂)` from the fork.
///
/// # Errors
/// Propagates configuration validation; like
/// [`ExpNoiseSvt::new`](crate::alg::ExpNoiseSvt::new), rejects budgets
/// with a numeric phase (one-sided noise is not DP for numeric release).
pub fn exp_noise_select_from<S: ScoreSource + ?Sized>(
    scores: &S,
    threshold: f64,
    config: &SvtSelectConfig,
    rng: &mut DpRng,
    scratch: &mut RunScratch,
) -> Result<()> {
    let cfg = config.to_standard()?;
    dp_mechanisms::error::check_sensitivity(cfg.sensitivity).map_err(SvtError::from)?;
    crate::error::check_cutoff(cfg.c)?;
    let query_noise = Exponential::new(cfg.query_noise_scale()).map_err(SvtError::from)?;
    let threshold_noise = Exponential::new(cfg.threshold_noise_scale()).map_err(SvtError::from)?;
    if cfg.budget.has_numeric_phase() {
        return Err(SvtError::from(
            dp_mechanisms::MechanismError::InvalidParameter(
                "one-sided exponential noise is not DP for numeric release",
            ),
        ));
    }
    let mut noise_rng = rng.fork();
    let rho = threshold_noise.sample(rng);
    let mut state = SessionState::new(cfg, rho)?;
    scratch.begin_run(scores.len());
    for _ in 0..scores.len() {
        if state.is_halted() {
            break;
        }
        let item = scratch.order.step(rng) as usize;
        let nu = scratch.noise.next(&query_noise, &mut noise_rng);
        if state.observe_unchecked(scores.score(item), threshold, nu) {
            scratch.selected.push(item);
        }
    }
    Ok(())
}

/// Streaming selection for *any* [`SparseVector`] variant (Alg. 1–6 and
/// the standard SVT): lazy shuffle and reusable buffers, with the
/// variant managing its own noise through [`SparseVector::respond`].
///
/// This is the allocation-free counterpart of
/// [`run_selection`](crate::noninteractive::select_with); it exists so
/// order-dependent variants (SVT-DPBook's per-⊤ threshold refresh) get
/// the zero-copy treatment too, even though their noise cannot be
/// prefetched.
///
/// ```
/// use dp_mechanisms::DpRng;
/// use svt_core::alg::Alg2;
/// use svt_core::streaming::{select_streaming, RunScratch};
///
/// let scores = vec![1e6f64; 20];
/// let mut rng = DpRng::seed_from_u64(5);
/// let mut alg = Alg2::new(1.0, 1.0, 3, &mut rng)?; // SVT-DPBook, c = 3
/// let mut scratch = RunScratch::new();
/// select_streaming(&mut alg, &scores, 0.0, &mut rng, &mut scratch)?;
/// assert_eq!(scratch.selected().len(), 3);
/// # Ok::<(), svt_core::SvtError>(())
/// ```
///
/// # Errors
/// Propagates the first error from [`SparseVector::respond`].
pub fn select_streaming<A: SparseVector + ?Sized>(
    alg: &mut A,
    scores: &[f64],
    threshold: f64,
    rng: &mut DpRng,
    scratch: &mut RunScratch,
) -> Result<()> {
    select_streaming_from(alg, scores, threshold, rng, scratch)
}

/// [`select_streaming`] generalized over any [`ScoreSource`], so even
/// order-dependent variants (SVT-DPBook's per-⊤ threshold refresh) can
/// run off the grouped score runs with draws — and hence selections —
/// bit-identical to the dense path.
///
/// # Errors
/// Propagates the first error from [`SparseVector::respond`].
pub fn select_streaming_from<A: SparseVector + ?Sized, S: ScoreSource + ?Sized>(
    alg: &mut A,
    scores: &S,
    threshold: f64,
    rng: &mut DpRng,
    scratch: &mut RunScratch,
) -> Result<()> {
    scratch.begin_run(scores.len());
    for _ in 0..scores.len() {
        if alg.is_halted() {
            break;
        }
        let item = scratch.order.step(rng) as usize;
        let answer = alg.respond(scores.score(item), threshold, rng)?;
        if answer.is_positive() {
            scratch.selected.push(item);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::Alg1;
    use crate::allocation::BudgetRatio;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn sparse_order_prefix_is_bit_identical_to_fisher_yates(
            seed in any::<u64>(),
            n in 1usize..300,
            k_frac in 0.0f64..1.0,
        ) {
            // The load-bearing property: stepping the sparse lazy
            // shuffle k times emits exactly the first k elements of the
            // dense forward Fisher–Yates stream, consuming exactly the
            // same draws.
            let k = ((n as f64) * k_frac).round() as usize;
            let k = k.min(n);
            let mut dense_rng = DpRng::seed_from_u64(seed);
            let mut dense: Vec<u32> = (0..n as u32).collect();
            for i in 0..k {
                dense_rng.shuffle_step(&mut dense, i);
            }
            let mut lazy_rng = DpRng::seed_from_u64(seed);
            let mut order = SparseOrder::new();
            order.reset(n);
            let emitted: Vec<u32> = (0..k).map(|_| order.step(&mut lazy_rng)).collect();
            prop_assert_eq!(&emitted[..], &dense[..k]);
            // Identical randomness consumed: lockstep afterwards.
            prop_assert_eq!(dense_rng.next_u64(), lazy_rng.next_u64());
        }

        #[test]
        fn sparse_order_full_run_matches_shuffle_forward(
            seed in any::<u64>(),
            n in 1usize..300,
        ) {
            let mut lazy_rng = DpRng::seed_from_u64(seed);
            let mut order = SparseOrder::new();
            order.reset(n);
            let mut emitted: Vec<u32> = (0..n).map(|_| order.step(&mut lazy_rng)).collect();
            let mut full_rng = DpRng::seed_from_u64(seed);
            let mut full: Vec<u32> = (0..n as u32).collect();
            full_rng.shuffle_forward(&mut full);
            prop_assert_eq!(&emitted[..], &full[..]);
            // And it is a permutation of 0..n.
            emitted.sort_unstable();
            prop_assert_eq!(emitted, (0..n as u32).collect::<Vec<_>>());
        }

        #[test]
        fn step_block_is_stream_identical_to_per_step(
            seed in any::<u64>(),
            n in 1usize..300,
            first_block in 1usize..40,
        ) {
            // Blocked stepping (the drivers' lookahead fill) must emit
            // the same values from the same draws as one-at-a-time
            // stepping, across sparse, boundary, and dense blocks.
            let mut block_rng = DpRng::seed_from_u64(seed);
            let mut blocked = SparseOrder::new();
            blocked.reset(n);
            let mut got = vec![0u32; n];
            let mut done = 0;
            let mut w = first_block;
            while done < n {
                let take = w.min(n - done);
                blocked.step_block(&mut block_rng, &mut got[done..done + take]);
                done += take;
                w = (w * 2) % 37 + 1;
            }
            let mut step_rng = DpRng::seed_from_u64(seed);
            let mut stepped = SparseOrder::new();
            stepped.reset(n);
            let want: Vec<u32> = (0..n).map(|_| stepped.step(&mut step_rng)).collect();
            prop_assert_eq!(&got[..], &want[..]);
            prop_assert_eq!(blocked.prefix(), &want[..]);
            prop_assert_eq!(block_rng.next_u64(), step_rng.next_u64());
        }

        #[test]
        fn reset_eager_matches_full_lazy_traversal(
            seed in any::<u64>(),
            n in 1usize..300,
        ) {
            // The eager mode draws the whole order upfront; over a full
            // traversal that is draw-for-draw identical to stepping.
            let mut eager_rng = DpRng::seed_from_u64(seed);
            let mut eager = SparseOrder::new();
            eager.reset_eager(n, &mut eager_rng);
            let got: Vec<u32> = (0..n).map(|i| eager.eager_at(i)).collect();
            eager.mark_taken(n);
            let mut step_rng = DpRng::seed_from_u64(seed);
            let mut stepped = SparseOrder::new();
            stepped.reset(n);
            let want: Vec<u32> = (0..n).map(|_| stepped.step(&mut step_rng)).collect();
            prop_assert_eq!(&got[..], &want[..]);
            prop_assert_eq!(eager.prefix(), &want[..]);
            prop_assert_eq!(eager.emitted(), n);
            prop_assert_eq!(eager_rng.next_u64(), step_rng.next_u64());
        }

        #[test]
        fn sparse_order_reset_reuse_is_clean(
            seed in any::<u64>(),
            n1 in 1usize..200,
            n2 in 1usize..200,
            k_frac in 0.0f64..1.0,
        ) {
            // Reusing the same SparseOrder across runs of different
            // sizes must behave exactly like a fresh one.
            let k1 = (((n1 as f64) * k_frac).round() as usize).min(n1);
            let mut order = SparseOrder::new();
            order.reset(n1);
            let mut rng = DpRng::seed_from_u64(seed ^ 0xabcd);
            for _ in 0..k1 {
                order.step(&mut rng);
            }
            let mut reused_rng = DpRng::seed_from_u64(seed);
            order.reset(n2);
            let reused: Vec<u32> = (0..n2).map(|_| order.step(&mut reused_rng)).collect();
            let mut fresh_rng = DpRng::seed_from_u64(seed);
            let mut fresh = SparseOrder::new();
            fresh.reset(n2);
            let want: Vec<u32> = (0..n2).map(|_| fresh.step(&mut fresh_rng)).collect();
            prop_assert_eq!(reused, want);
        }
    }

    proptest! {
        #[test]
        fn displacement_map_matches_hash_map_model_across_resets(
            ops in proptest::collection::vec(0u32..64_000, 1..400),
            reset_every in 1usize..80,
        ) {
            // Model-based pinning of the sparse-swap machinery the
            // engines lean on: interleaved replace/get/reset against a
            // std HashMap. The tight key range forces heavy bucket
            // collisions, and the op count crosses several grow
            // boundaries (64 → 128 → 256 slots), so linear probing is
            // exercised right up to the ≤ ½ load limit.
            let mut map = DisplacementMap::default();
            let mut model: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
            for (i, &op) in ops.iter().enumerate() {
                // 64 hot keys × 1000 values, packed into one u32 (the
                // vendored proptest has no tuple strategies).
                let (key, val) = (op % 64, op / 64);
                if i % reset_every == reset_every - 1 {
                    map.reset();
                    model.clear();
                }
                prop_assert_eq!(map.get(key), model.get(&key).copied(), "pre-insert get");
                let evicted = map.replace(key, val);
                let model_evicted = model.insert(key, val);
                prop_assert_eq!(evicted, model_evicted, "replace must return the prior value");
                prop_assert_eq!(map.get(key), Some(val));
            }
            for key in 0u32..64 {
                prop_assert_eq!(map.get(key), model.get(&key).copied(), "final sweep");
            }
        }

        #[test]
        fn displacement_map_generation_wraparound_cannot_alias(
            keys in proptest::collection::vec(0u32..200, 1..60),
            gens_from_wrap in 0u32..3,
        ) {
            // Drive the stamp to (or next to) u32::MAX, fill the map,
            // then reset across the wraparound boundary: the wrap path
            // must physically wipe the table so no pre-wrap entry can
            // alias a post-wrap generation, and the map must keep
            // working through further resets.
            let mut map = DisplacementMap::default();
            map.jump_generation(u32::MAX - gens_from_wrap);
            for (i, &k) in keys.iter().enumerate() {
                map.replace(k, i as u32);
            }
            for _ in 0..=gens_from_wrap {
                map.reset();
                for &k in &keys {
                    prop_assert_eq!(map.get(k), None, "entry survived a reset");
                }
            }
            // Post-wrap inserts behave like a fresh map.
            for (i, &k) in keys.iter().enumerate() {
                map.replace(k, i as u32 + 7000);
            }
            let mut last_val_of = std::collections::HashMap::new();
            for (i, &k) in keys.iter().enumerate() {
                last_val_of.insert(k, i as u32 + 7000);
            }
            for (&k, &v) in &last_val_of {
                prop_assert_eq!(map.get(k), Some(v));
            }
        }

        #[test]
        fn displacement_map_survives_growth_at_full_load(
            extra in 0usize..40,
            stride in 1u32..5000,
        ) {
            // Fill to exactly the ≤ ½ load boundary of the current
            // table, then keep inserting with a fixed key stride (the
            // worst case for Fibonacci hashing is a regular lattice):
            // every entry must remain retrievable across each grow's
            // rehash, and capacity must stay a power of two at ≤ ½
            // load.
            let mut map = DisplacementMap::default();
            let mut n = 0u32;
            // First grow happens on the first insert; fill to half of
            // the minimum table, then `extra` more.
            let target = 32 + extra;
            while (n as usize) < target {
                map.replace(n.wrapping_mul(stride), n);
                n += 1;
                let cap = map.capacity();
                prop_assert!(cap.is_power_of_two());
                prop_assert!(2 * (n as usize) <= cap, "load factor exceeded ½");
            }
            for i in 0..n {
                prop_assert_eq!(map.get(i.wrapping_mul(stride)), Some(i), "key {} lost", i);
            }
        }
    }

    #[test]
    fn grouped_source_drives_svt_bit_identically_to_dense_slice() {
        // The keystone of the engine unification: the same generic
        // selection run off a raw slice and off its GroupedSnapshot form
        // consumes identical draws and emits identical selections.
        let scores: Vec<f64> = (0..3000).map(|i| f64::from(i % 101) * 2.0).collect();
        let groups = dp_data::GroupedSnapshot::from_scores(&scores).unwrap();
        let cfg = counting(0.8, 20);
        for seed in [7u64, 1009, 0xdead_beef] {
            let mut rng_a = DpRng::seed_from_u64(seed);
            let mut scratch_a = RunScratch::new();
            svt_select_from(&scores[..], 150.0, &cfg, &mut rng_a, &mut scratch_a).unwrap();
            let mut rng_b = DpRng::seed_from_u64(seed);
            let mut scratch_b = RunScratch::new();
            svt_select_from(&groups, 150.0, &cfg, &mut rng_b, &mut scratch_b).unwrap();
            assert_eq!(scratch_a.selected(), scratch_b.selected(), "seed {seed}");
            assert_eq!(scratch_a.examined(), scratch_b.examined(), "seed {seed}");
            // Identical randomness consumed: lockstep afterwards.
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "seed {seed}");
        }
    }

    fn counting(epsilon: f64, c: usize) -> SvtSelectConfig {
        SvtSelectConfig::counting(epsilon, c, BudgetRatio::OneToCTwoThirds)
    }

    #[test]
    fn select_into_respects_cutoff_and_uniqueness() {
        let scores: Vec<f64> = (0..300).map(f64::from).collect();
        let mut rng = DpRng::seed_from_u64(1009);
        let mut scratch = RunScratch::new();
        for _ in 0..20 {
            svt_select_into(&scores, 250.0, &counting(5.0, 10), &mut rng, &mut scratch).unwrap();
            assert!(scratch.selected().len() <= 10);
            let mut d = scratch.selected().to_vec();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), scratch.selected().len());
        }
    }

    #[test]
    fn select_into_finds_clear_winners() {
        let mut scores = vec![0.0f64; 500];
        for s in scores.iter_mut().take(5) {
            *s = 1e6;
        }
        let cfg = SvtSelectConfig::counting(100.0, 5, BudgetRatio::OneToOne);
        let mut rng = DpRng::seed_from_u64(1013);
        let mut scratch = RunScratch::new();
        svt_select_into(&scores, 5e5, &cfg, &mut rng, &mut scratch).unwrap();
        let mut sel = scratch.selected().to_vec();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn select_into_is_noise_batch_size_invariant() {
        // The whole point of the forked-noise protocol: prefetching more
        // or less noise must not change a single selection.
        let scores: Vec<f64> = (0..2000).map(|i| (i % 97) as f64 * 3.0).collect();
        let cfg = counting(0.7, 25);
        let reference = {
            let mut rng = DpRng::seed_from_u64(4242);
            let mut scratch = RunScratch::with_noise_batch(1);
            svt_select_into(&scores, 150.0, &cfg, &mut rng, &mut scratch).unwrap();
            scratch.selected().to_vec()
        };
        for batch in [2usize, 7, 64, 256, 4096] {
            let mut rng = DpRng::seed_from_u64(4242);
            let mut scratch = RunScratch::with_noise_batch(batch);
            svt_select_into(&scores, 150.0, &cfg, &mut rng, &mut scratch).unwrap();
            assert_eq!(scratch.selected(), &reference[..], "batch {batch}");
        }
    }

    #[test]
    fn select_into_is_seed_deterministic_and_scratch_reuse_is_clean() {
        let scores: Vec<f64> = (0..1000).map(|i| f64::from(i % 51)).collect();
        let cfg = counting(1.0, 15);
        let run = |scratch: &mut RunScratch, seed: u64| {
            let mut rng = DpRng::seed_from_u64(seed);
            svt_select_into(&scores, 40.0, &cfg, &mut rng, scratch).unwrap();
            scratch.selected().to_vec()
        };
        let mut fresh_each_time = RunScratch::new();
        let a = run(&mut fresh_each_time, 7);
        // A dirty scratch (just used for a different seed) must not leak
        // state into the next run.
        let mut reused = RunScratch::new();
        run(&mut reused, 99);
        let b = run(&mut reused, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn select_into_matches_scalar_engine_distribution() {
        // The streaming path is a different (lazier) sampler of the same
        // distribution as `svt_select`; their mean selection sizes must
        // agree statistically.
        let scores: Vec<f64> = (0..400).map(f64::from).collect();
        let cfg = counting(0.5, 10);
        let runs = 400;
        let mut rng_a = DpRng::seed_from_u64(31337);
        let mut rng_b = DpRng::seed_from_u64(97531);
        let mut scratch = RunScratch::new();
        let mut mean_new = 0.0;
        let mut mean_old = 0.0;
        for _ in 0..runs {
            svt_select_into(&scores, 350.0, &cfg, &mut rng_a, &mut scratch).unwrap();
            mean_new += scratch.selected().len() as f64;
            mean_old += crate::noninteractive::svt_select(&scores, 350.0, &cfg, &mut rng_b)
                .unwrap()
                .len() as f64;
        }
        mean_new /= runs as f64;
        mean_old /= runs as f64;
        assert!(
            (mean_new - mean_old).abs() < 1.0,
            "streaming {mean_new} vs scalar {mean_old}"
        );
    }

    #[test]
    fn generic_streaming_path_works_for_interactive_variants() {
        let mut rng = DpRng::seed_from_u64(1021);
        let mut alg = Alg1::new(50.0, 1.0, 3, &mut rng).unwrap();
        let scores = vec![1e9f64; 30];
        let mut scratch = RunScratch::new();
        select_streaming(&mut alg, &scores, 0.0, &mut rng, &mut scratch).unwrap();
        assert_eq!(scratch.selected().len(), 3);
        assert!(alg.is_halted());
    }

    #[test]
    fn examined_reads_zero_after_an_em_selection() {
        // Mixed-algorithm scratch reuse (the sweep-runner pattern): an
        // EM selection must not leave a previous streaming run's
        // examined count behind.
        let scores: Vec<f64> = (0..500).map(f64::from).collect();
        let mut rng = DpRng::seed_from_u64(1033);
        let mut scratch = RunScratch::new();
        svt_select_into(&scores, 400.0, &counting(2.0, 5), &mut rng, &mut scratch).unwrap();
        assert!(scratch.examined() > 0);
        let em = crate::em_select::EmTopC::new(1.0, 5, 1.0, true).unwrap();
        em.select_into(&scores, &mut rng, &mut scratch).unwrap();
        assert_eq!(scratch.examined(), 0);
        assert_eq!(scratch.selected().len(), 5);
    }

    #[test]
    fn empty_scores_select_nothing() {
        let mut rng = DpRng::seed_from_u64(1031);
        let mut scratch = RunScratch::new();
        svt_select_into(&[], 0.0, &counting(1.0, 5), &mut rng, &mut scratch).unwrap();
        assert!(scratch.selected().is_empty());
    }

    #[test]
    fn scratch_constructors_pick_the_documented_kernels() {
        assert_eq!(RunScratch::new().kernel(), NoiseKernel::Vectorized);
        assert_eq!(
            RunScratch::with_noise_batch(64).kernel(),
            NoiseKernel::Reference
        );
        assert_eq!(
            RunScratch::with_kernel(64, NoiseKernel::Vectorized).kernel(),
            NoiseKernel::Vectorized
        );
    }

    #[test]
    fn kernels_agree_on_mean_selection_size() {
        // The two kernels sample the same distribution (values within
        // 1e-12 relative), so the mean selection count must match
        // closely across runs — the cheap end-to-end policy pin.
        let scores: Vec<f64> = (0..2000).map(|i| (i % 97) as f64 * 3.0).collect();
        let cfg = counting(0.7, 25);
        let mean_of = |kernel: NoiseKernel| {
            let mut rng = DpRng::seed_from_u64(2024);
            let mut scratch = RunScratch::with_kernel(NoiseBuffer::DEFAULT_BATCH, kernel);
            let runs = 150;
            let mut total = 0usize;
            for _ in 0..runs {
                svt_select_into(&scores, 150.0, &cfg, &mut rng, &mut scratch).unwrap();
                total += scratch.selected().len();
            }
            total as f64 / runs as f64
        };
        let reference = mean_of(NoiseKernel::Reference);
        let vectorized = mean_of(NoiseKernel::Vectorized);
        assert!(
            (reference - vectorized).abs() < 1.5,
            "reference {reference} vs vectorized {vectorized}"
        );
    }

    #[test]
    fn revisited_driver_is_noise_thread_count_invariant() {
        // The whole point of the chunked derivation: more prefill
        // threads must not change one bit of the output.
        let scores: Vec<f64> = (0..5000).map(|i| (i % 89) as f64 * 4.0).collect();
        let cfg = counting(0.5, 12);
        let reference = {
            let mut rng = DpRng::seed_from_u64(777);
            let mut scratch = RunScratch::new();
            revisited_select_from(&scores[..], 170.0, &cfg, &mut rng, &mut scratch).unwrap();
            (scratch.selected().to_vec(), scratch.examined())
        };
        assert!(reference.1 > 0);
        for threads in [2usize, 4, 8] {
            let mut rng = DpRng::seed_from_u64(777);
            let mut scratch = RunScratch::new();
            scratch.set_noise_threads(threads);
            revisited_select_from(&scores[..], 170.0, &cfg, &mut rng, &mut scratch).unwrap();
            assert_eq!(scratch.selected(), &reference.0[..], "threads {threads}");
            assert_eq!(scratch.examined(), reference.1, "threads {threads}");
        }
    }

    #[test]
    fn revisited_driver_matches_interactive_variant_distribution() {
        // The batched driver restructures the noise streams (forked +
        // chunked) but must sample the same output law as SvtRevisited
        // driven through the generic streaming path.
        let scores: Vec<f64> = (0..600).map(|i| (i % 40) as f64 * 5.0).collect();
        let cfg = counting(0.6, 8);
        let std_cfg = cfg.to_standard().unwrap();
        let runs = 300;
        let mut rng_a = DpRng::seed_from_u64(31);
        let mut rng_b = DpRng::seed_from_u64(407);
        let mut scratch = RunScratch::new();
        let mut mean_new = 0.0;
        let mut mean_old = 0.0;
        for _ in 0..runs {
            revisited_select_from(&scores[..], 120.0, &cfg, &mut rng_a, &mut scratch).unwrap();
            mean_new += scratch.selected().len() as f64;
            let mut alg = crate::alg::SvtRevisited::new(std_cfg, &mut rng_b).unwrap();
            select_streaming_from(&mut alg, &scores[..], 120.0, &mut rng_b, &mut scratch).unwrap();
            mean_old += scratch.selected().len() as f64;
        }
        mean_new /= runs as f64;
        mean_old /= runs as f64;
        assert!(
            (mean_new - mean_old).abs() < 0.6,
            "batched {mean_new} vs interactive {mean_old}"
        );
    }

    #[test]
    fn revisited_driver_respects_cutoff_and_halts() {
        let scores = vec![1e9f64; 40];
        let cfg = counting(1.0, 3);
        let mut rng = DpRng::seed_from_u64(1041);
        let mut scratch = RunScratch::new();
        revisited_select_from(&scores[..], 0.0, &cfg, &mut rng, &mut scratch).unwrap();
        assert_eq!(scratch.selected().len(), 3);
        assert_eq!(scratch.examined(), 3, "halt must stop the traversal");
    }

    #[test]
    fn exp_noise_driver_matches_interactive_variant_distribution() {
        let scores: Vec<f64> = (0..600).map(|i| (i % 40) as f64 * 5.0).collect();
        let cfg = counting(0.6, 8);
        let std_cfg = cfg.to_standard().unwrap();
        let runs = 300;
        let mut rng_a = DpRng::seed_from_u64(67);
        let mut rng_b = DpRng::seed_from_u64(733);
        let mut scratch = RunScratch::new();
        let mut mean_new = 0.0;
        let mut mean_old = 0.0;
        for _ in 0..runs {
            exp_noise_select_from(&scores[..], 120.0, &cfg, &mut rng_a, &mut scratch).unwrap();
            mean_new += scratch.selected().len() as f64;
            let mut alg = crate::alg::ExpNoiseSvt::new(std_cfg, &mut rng_b).unwrap();
            select_streaming_from(&mut alg, &scores[..], 120.0, &mut rng_b, &mut scratch).unwrap();
            mean_old += scratch.selected().len() as f64;
        }
        mean_new /= runs as f64;
        mean_old /= runs as f64;
        assert!(
            (mean_new - mean_old).abs() < 0.6,
            "batched {mean_new} vs interactive {mean_old}"
        );
    }

    #[test]
    fn new_drivers_work_from_grouped_snapshots_bit_identically() {
        // Same keystone as the standard driver: slice and snapshot
        // sources consume identical draws.
        let scores: Vec<f64> = (0..3000).map(|i| f64::from(i % 101) * 2.0).collect();
        let groups = dp_data::GroupedSnapshot::from_scores(&scores).unwrap();
        let cfg = counting(0.8, 10);
        for seed in [7u64, 1009] {
            let mut rng_a = DpRng::seed_from_u64(seed);
            let mut scratch_a = RunScratch::new();
            revisited_select_from(&scores[..], 150.0, &cfg, &mut rng_a, &mut scratch_a).unwrap();
            let mut rng_b = DpRng::seed_from_u64(seed);
            let mut scratch_b = RunScratch::new();
            revisited_select_from(&groups, 150.0, &cfg, &mut rng_b, &mut scratch_b).unwrap();
            assert_eq!(scratch_a.selected(), scratch_b.selected(), "rv seed {seed}");
            let mut rng_a = DpRng::seed_from_u64(seed);
            exp_noise_select_from(&scores[..], 150.0, &cfg, &mut rng_a, &mut scratch_a).unwrap();
            let mut rng_b = DpRng::seed_from_u64(seed);
            exp_noise_select_from(&groups, 150.0, &cfg, &mut rng_b, &mut scratch_b).unwrap();
            assert_eq!(
                scratch_a.selected(),
                scratch_b.selected(),
                "exp seed {seed}"
            );
        }
    }
}
