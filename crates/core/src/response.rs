//! SVT outputs: the per-query answers and whole-run summaries.

/// One SVT answer, `a_i ∈ {⊤, ⊥} ∪ ℝ` (Fig. 1 I/O block).
///
/// `Numeric` arises in two places: Algorithm 3 (which outputs the noisy
/// query answer instead of ⊤ — the leak that makes it ∞-DP) and
/// Algorithm 7's sanctioned `ε₃` phase (which releases a *freshly*
/// perturbed answer after the comparison, which is safe).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SvtAnswer {
    /// `⊤` — the (noisy) query answer met the (noisy) threshold.
    Above,
    /// `⊥` — it did not.
    Below,
    /// A numeric release accompanying a positive outcome.
    Numeric(f64),
}

impl SvtAnswer {
    /// Whether this answer is a positive outcome (counts toward `c`).
    #[inline]
    pub fn is_positive(&self) -> bool {
        !matches!(self, Self::Below)
    }

    /// The numeric payload, if any.
    #[inline]
    pub fn numeric(&self) -> Option<f64> {
        match self {
            Self::Numeric(v) => Some(*v),
            _ => None,
        }
    }

    /// Paper-style rendering: `⊤`, `⊥`, or the number.
    pub fn symbol(&self) -> String {
        match self {
            Self::Above => "⊤".to_owned(),
            Self::Below => "⊥".to_owned(),
            Self::Numeric(v) => format!("{v:.3}"),
        }
    }
}

/// The result of feeding a full query stream through an SVT algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct SvtRun {
    /// Answers actually produced, one per examined query. May be shorter
    /// than the query stream when the algorithm aborted.
    pub answers: Vec<SvtAnswer>,
    /// Whether the algorithm aborted (reached its cutoff).
    pub halted: bool,
}

impl SvtRun {
    /// Number of queries examined before stopping.
    #[inline]
    pub fn examined(&self) -> usize {
        self.answers.len()
    }

    /// Number of positive outcomes.
    pub fn positives(&self) -> usize {
        self.answers.iter().filter(|a| a.is_positive()).count()
    }

    /// Indices (into the examined prefix) of positive outcomes.
    pub fn positive_indices(&self) -> Vec<usize> {
        self.answers
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_positive())
            .map(|(i, _)| i)
            .collect()
    }

    /// Paper-style rendering of the output vector, e.g. `⊥⊥⊤⊥`.
    pub fn render(&self) -> String {
        self.answers
            .iter()
            .map(|a| a.symbol())
            .collect::<Vec<_>>()
            .join("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positivity_classification() {
        assert!(SvtAnswer::Above.is_positive());
        assert!(SvtAnswer::Numeric(1.5).is_positive());
        assert!(!SvtAnswer::Below.is_positive());
        assert_eq!(SvtAnswer::Numeric(2.0).numeric(), Some(2.0));
        assert_eq!(SvtAnswer::Above.numeric(), None);
    }

    #[test]
    fn run_summaries() {
        let run = SvtRun {
            answers: vec![
                SvtAnswer::Below,
                SvtAnswer::Above,
                SvtAnswer::Below,
                SvtAnswer::Above,
            ],
            halted: true,
        };
        assert_eq!(run.examined(), 4);
        assert_eq!(run.positives(), 2);
        assert_eq!(run.positive_indices(), vec![1, 3]);
        assert_eq!(run.render(), "⊥⊤⊥⊤");
    }

    #[test]
    fn numeric_symbol_renders_value() {
        assert_eq!(SvtAnswer::Numeric(1.0).symbol(), "1.000");
    }
}
