//! Non-interactive top-`c` selection wrappers.
//!
//! §6's evaluation protocol: all queries (item supports) are known up
//! front; each run shuffles the examination order ("each time
//! randomizing the order of items to be examined"), runs an SVT variant
//! over the shuffled stream against the Table-1 threshold, and records
//! which items came back ⊤. These wrappers package that protocol for
//! [`crate::StandardSvt`] (the `SVT-S` series) and [`crate::Alg2`]
//! (the `SVT-DPBook` series).

use crate::alg::{Alg2, SparseVector, StandardSvt, StandardSvtConfig};
use crate::allocation::BudgetRatio;
use crate::Result;
use dp_mechanisms::DpRng;

/// Configuration for one non-interactive SVT-S selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvtSelectConfig {
    /// Total privacy budget `ε = ε₁ + ε₂`.
    pub epsilon: f64,
    /// Number of items to select (the cutoff `c`).
    pub c: usize,
    /// Query sensitivity `Δ`.
    pub sensitivity: f64,
    /// Monotonic query family (Theorem 5 noise reduction)?
    pub monotonic: bool,
    /// Budget allocation policy (§4.2).
    pub ratio: BudgetRatio,
}

impl SvtSelectConfig {
    /// The paper's evaluation configuration: counting queries
    /// (`Δ = 1`, monotonic) under the given budget, cutoff, and ratio.
    pub fn counting(epsilon: f64, c: usize, ratio: BudgetRatio) -> Self {
        Self {
            epsilon,
            c,
            sensitivity: 1.0,
            monotonic: true,
            ratio,
        }
    }

    /// Builds the [`StandardSvtConfig`] this selection will run with.
    ///
    /// # Errors
    /// Propagates ratio/budget validation.
    pub fn to_standard(&self) -> Result<StandardSvtConfig> {
        Ok(StandardSvtConfig {
            budget: self.ratio.split(self.epsilon, self.c, self.monotonic)?,
            sensitivity: self.sensitivity,
            c: self.c,
            monotonic: self.monotonic,
        })
    }
}

/// Runs a freshly shuffled SVT-S pass over `scores` against a constant
/// `threshold`; returns the indices answered ⊤, in answer order.
///
/// This is one Figure-4 run. The selection may contain fewer than `c`
/// items when the pass ends before `c` queries cross the threshold.
///
/// ```
/// use dp_mechanisms::DpRng;
/// use svt_core::allocation::BudgetRatio;
/// use svt_core::noninteractive::{svt_select, SvtSelectConfig};
///
/// let supports = [700.0, 650.0, 30.0, 20.0, 10.0, 5.0];
/// let cfg = SvtSelectConfig::counting(4.0, 2, BudgetRatio::OneToCTwoThirds);
/// let mut rng = DpRng::seed_from_u64(11);
/// let mut picked = svt_select(&supports, 340.0, &cfg, &mut rng)?;
/// picked.sort_unstable();
/// assert_eq!(picked, vec![0, 1]);
/// # Ok::<(), svt_core::SvtError>(())
/// ```
///
/// # Errors
/// Propagates configuration validation.
pub fn svt_select(
    scores: &[f64],
    threshold: f64,
    config: &SvtSelectConfig,
    rng: &mut DpRng,
) -> Result<Vec<usize>> {
    let mut alg = StandardSvt::new(config.to_standard()?, rng)?;
    run_selection(&mut alg, scores, threshold, rng)
}

/// Runs a freshly shuffled SVT-DPBook (Alg. 2) pass — the Figure-4
/// baseline. `epsilon` is split `1:1` internally, as the book specifies.
///
/// # Errors
/// Propagates configuration validation.
pub fn dpbook_select(
    scores: &[f64],
    threshold: f64,
    epsilon: f64,
    c: usize,
    sensitivity: f64,
    rng: &mut DpRng,
) -> Result<Vec<usize>> {
    let mut alg = Alg2::new(epsilon, sensitivity, c, rng)?;
    run_selection(&mut alg, scores, threshold, rng)
}

/// Shared driver: shuffle, stream, collect ⊤ indices.
pub(crate) fn run_selection<A: SparseVector>(
    alg: &mut A,
    scores: &[f64],
    threshold: f64,
    rng: &mut DpRng,
) -> Result<Vec<usize>> {
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    rng.shuffle(&mut order);
    let mut selected = Vec::new();
    for &item in &order {
        if alg.is_halted() {
            break;
        }
        let answer = alg.respond(scores[item as usize], threshold, rng)?;
        if answer.is_positive() {
            selected.push(item as usize);
        }
    }
    Ok(selected)
}

/// Convenience: selection that errors if the algorithm would run forever
/// on an unbounded variant. (The paper's unbounded variants, Alg. 5/6,
/// traverse the full list exactly once in the non-interactive setting,
/// so `run_selection` terminates for them too; this alias documents the
/// intent.)
///
/// # Errors
/// Propagates the first error from [`SparseVector::respond`].
pub fn select_with<A: SparseVector>(
    alg: &mut A,
    scores: &[f64],
    threshold: f64,
    rng: &mut DpRng,
) -> Result<Vec<usize>> {
    run_selection(alg, scores, threshold, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_config_defaults() {
        let cfg = SvtSelectConfig::counting(0.1, 25, BudgetRatio::OneToCTwoThirds);
        assert!(cfg.monotonic);
        assert_eq!(cfg.sensitivity, 1.0);
        let std = cfg.to_standard().unwrap();
        assert!((std.budget.total() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn svt_select_returns_at_most_c() {
        let scores: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let cfg = SvtSelectConfig::counting(5.0, 10, BudgetRatio::OneToCTwoThirds);
        let mut rng = DpRng::seed_from_u64(479);
        for _ in 0..20 {
            let sel = svt_select(&scores, 150.0, &cfg, &mut rng).unwrap();
            assert!(sel.len() <= 10);
            let mut d = sel.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), sel.len(), "no duplicates");
        }
    }

    #[test]
    fn generous_budget_selects_clear_winners() {
        // 5 items far above threshold, 195 far below, huge ε: the
        // selection must be exactly the 5 winners.
        let mut scores = vec![0.0f64; 200];
        for s in scores.iter_mut().take(5) {
            *s = 1e6;
        }
        let cfg = SvtSelectConfig::counting(100.0, 5, BudgetRatio::OneToOne);
        let mut rng = DpRng::seed_from_u64(487);
        let mut sel = svt_select(&scores, 5e5, &cfg, &mut rng).unwrap();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dpbook_select_respects_cutoff() {
        let scores = vec![1e6; 50];
        let mut rng = DpRng::seed_from_u64(491);
        let sel = dpbook_select(&scores, 0.0, 1.0, 7, 1.0, &mut rng).unwrap();
        assert_eq!(sel.len(), 7);
    }

    #[test]
    fn shuffling_randomizes_which_ties_are_selected() {
        // All scores equal and far above threshold: which items are
        // picked depends only on the shuffle; across runs we should see
        // many distinct selections.
        let scores = vec![1e6; 100];
        let cfg = SvtSelectConfig::counting(10.0, 3, BudgetRatio::OneToOne);
        let mut rng = DpRng::seed_from_u64(499);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..30 {
            let mut sel = svt_select(&scores, 0.0, &cfg, &mut rng).unwrap();
            sel.sort_unstable();
            seen.insert(sel);
        }
        assert!(seen.len() > 20, "distinct selections: {}", seen.len());
    }

    #[test]
    fn select_with_works_on_unbounded_variants() {
        let mut rng = DpRng::seed_from_u64(503);
        let mut alg = crate::Alg6::new(10.0, 1.0, &mut rng).unwrap();
        let scores = vec![1e6; 30];
        let sel = select_with(&mut alg, &scores, 0.0, &mut rng).unwrap();
        // Unbounded: everything above threshold gets selected.
        assert_eq!(sel.len(), 30);
    }
}
