//! # svt-core
//!
//! The primary contribution of *Understanding the Sparse Vector
//! Technique for Differential Privacy* (Lyu, Su, Li; VLDB 2017),
//! implemented as a library:
//!
//! - [`alg`] — faithful, line-by-line implementations of the six SVT
//!   variants of the paper's Figure 1 (Alg. 1 is the paper's improved
//!   SVT; Alg. 2 the Dwork–Roth textbook version; Alg. 3–6 the published
//!   variants that are **not** `ε`-DP) behind one streaming
//!   [`alg::SparseVector`] trait, plus the generalized
//!   standard SVT of Algorithm 7 ([`alg::StandardSvt`]) with monotonic
//!   mode (Theorem 5) and the optional `ε₃` numeric-output phase
//!   (Theorem 4), and the post-2017 generations: [`alg::SvtRevisited`]
//!   (arXiv:2010.00917 — `ε/c` charged per ⊤ answer, ⊥s free) and
//!   [`alg::ExpNoiseSvt`] (arXiv:2407.20068 — one-sided exponential
//!   noise at the Laplace scales, half the variance).
//! - [`allocation`] — the §4.2 privacy-budget allocation optimization:
//!   `ε₁ : ε₂ = 1 : (2c)^{2/3}` in general, `1 : c^{2/3}` for monotonic
//!   queries (Eq. 12), with the comparison-variance objective it
//!   minimizes.
//! - [`noninteractive`] — top-`c` selection wrappers for the
//!   non-interactive setting (SVT-S and SVT-DPBook over a score vector).
//! - [`streaming`] — the zero-copy evaluation path: reusable
//!   [`RunScratch`] buffers, the sparse lazy Fisher–Yates traversal
//!   ([`SparseOrder`]), and batched block-wise query noise; same output
//!   distributions, `O(examined)` per run, built for the experiment
//!   harness's hot loop.
//! - [`retraversal`] — SVT-ReTr (§5): raise the threshold by multiples
//!   of the query-noise standard deviation and retraverse unselected
//!   queries until `c` are found.
//! - [`em_select`] — the Exponential Mechanism alternative: `c` peeled
//!   selections with budget `ε/c` each (§5).
//! - [`session`] — the pure/impure split underneath every interactive
//!   surface: [`SessionState`], the `Send`-able Algorithm 7 state
//!   machine (no RNG, no accountant), and [`SessionDriver`], the thin
//!   I/O layer that feeds it batched noise — what the multi-tenant
//!   `svt-server` crate parks in its sharded session store. Both speak
//!   [`session::ChargePolicy`]: Algorithm 7's upfront charging or
//!   SVT-Revisited's ⊤-only rule (`SessionDriver::open_revisited`).
//! - [`interactive`] — the interactive session API with budget
//!   accounting, including the *corrected* answer-from-history mediator
//!   of §3.4 (`|q̃ − q(D)| + ν ≥ T + ρ`).
//! - [`analysis`] — the §5 closed-form utility bounds `α_SVT` and
//!   `α_EM` and their comparison.
//! - [`approx`] — the §3.4 `(ε, δ)`-DP regime: `c` composed cutoff-1
//!   copies of the standard SVT, with per-copy budgets solved from the
//!   advanced composition theorem (extension; `DESIGN.md` §6).
//! - [`catalog`] — the machine-readable version of Figure 2 (what
//!   differs across Alg. 1–6 and which are private).
//!
//! ## Safety disclaimer
//!
//! Algorithms 3, 4, 5 and 6 are implemented **because the paper is
//! about their flaws**. Their types are explicitly documented and
//! cataloged as non-private; do not deploy them. Use
//! [`alg::StandardSvt`] (or [`alg::Alg1`]) for real workloads.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alg;
pub mod allocation;
pub mod analysis;
pub mod approx;
pub mod catalog;
pub mod em_select;
pub mod error;
pub mod interactive;
pub mod noninteractive;
pub mod response;
pub mod retraversal;
pub mod session;
pub mod streaming;
pub mod threshold;

pub use alg::{
    Alg1, Alg2, Alg3, Alg4, Alg5, Alg6, ExpNoiseSvt, SparseVector, StandardSvt, StandardSvtConfig,
    SvtRevisited,
};
pub use allocation::BudgetRatio;
pub use approx::{ApproxSvt, ApproxSvtConfig, ApproxSvtPlan};
pub use error::SvtError;
pub use response::{SvtAnswer, SvtRun};
pub use session::{ChargePolicy, SessionDriver, SessionState};
pub use streaming::{
    select_streaming, select_streaming_from, svt_select_from, svt_select_into, RunScratch,
    ScoreSource, SparseOrder,
};
pub use threshold::Thresholds;

/// Result alias for SVT operations.
pub type Result<T> = std::result::Result<T, SvtError>;
