//! §5 — top-`c` selection with the Exponential Mechanism.
//!
//! "One runs EM `c` times, each round with privacy budget `ε/c`. The
//! quality for each query is its answer; thus each query is selected
//! with probability proportional to `exp(εq/2cΔ)` in the general case
//! and to `exp(εq/cΔ)` in the monotonic case. After one query is
//! selected, it is removed from the pool of candidate queries for the
//! remaining rounds."
//!
//! By sequential composition the whole procedure is `ε`-DP. This is the
//! `EM` series of Figure 5 — the method the paper recommends over SVT in
//! the non-interactive setting.
//!
//! Three samplers of the same output distribution are provided:
//! [`EmTopC::select`] peels literally (`c` rounds of
//! [`ExponentialMechanism`], kept as the allocating reference);
//! [`EmTopC::select_into`] exploits the Gumbel-max equivalence — one
//! scratch-buffered `O(n log c)` pass with block-batched keys;
//! [`EmTopC::select_grouped_into`] additionally exploits Gumbel
//! *max-stability* over runs of tied scores ([`GroupedSnapshot`]) to
//! draw one lazy order-statistics sampler per score *group* instead of
//! one key per item — `O(G + c)` draws for `G` distinct scores — which
//! is what the experiment harness's exact engine runs by default.

use crate::streaming::{DisplacementMap, RunScratch};
use crate::{Result, SvtError};
use dp_data::GroupedSnapshot;
use dp_mechanisms::{BatchSample, DpRng, ExponentialMechanism, Gumbel, GumbelMax, MechanismError};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How many standard-Gumbel keys [`EmTopC::select_into`] draws per
/// block-wise refill. Purely an amortization knob: the key stream is
/// bit-identical for every chunking (the [`dp_mechanisms::BatchSample`]
/// contract), so this cannot affect any selection.
const GUMBEL_CHUNK: usize = 512;

/// Reusable buffers for [`EmTopC::select_into`] and
/// [`EmTopC::select_grouped_into`]: a noise chunk, the running top-`c`
/// min-heap, and the grouped sampler's per-group cursors / cross-group
/// heap / within-group pick map. Lives inside [`RunScratch`] so one
/// worker-thread scratch serves the SVT and EM engines alike; after
/// warm-up a selection allocates nothing.
///
/// ## Tie contract
///
/// Perturbed *keys* are continuous, so exact key ties only arise from
/// `f64` rounding; when they do, [`EmTopC::select_into`]'s heap keeps
/// the **earliest-seen** index (the sift comparisons are strict, so an
/// incoming equal key never evicts an incumbent) and the final
/// selection order among bit-equal keys is unspecified
/// (`sort_unstable`). The contract all three samplers actually promise
/// — and that the tie tests pin — is distributional: items with equal
/// *scores* are selected with equal probability, in every selection
/// round. `select` inherits this from exact softmax weights,
/// `select_into` from i.i.d. per-item keys, and `select_grouped_into`
/// by construction (a winning tied-score group expands uniformly among
/// its not-yet-selected members).
#[derive(Debug, Clone, Default)]
pub struct EmScratch {
    /// Block of standard Gumbel draws (refilled per `GUMBEL_CHUNK`
    /// scores).
    noise: Vec<f64>,
    /// Min-heap of the `c` best `(key, index)` pairs seen so far.
    top: Vec<(f64, u32)>,
    /// Per-group lazy order-statistics cursors (grouped sampler).
    groups: Vec<GroupCursor>,
    /// Backing storage for the grouped sampler's cross-group max-heap,
    /// kept between runs so the heap never reallocates in steady state.
    heap: Vec<GroupKey>,
    /// Within-group without-replacement pick state: maps a position in
    /// the grouped sorted order to the value swapped into it (sparse
    /// back-to-front Fisher–Yates), generation-stamped for O(1) reset.
    picks: DisplacementMap,
}

impl EmScratch {
    /// Creates empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One score-group's sampler state inside [`EmScratch`].
#[derive(Debug, Clone)]
struct GroupCursor {
    /// Lazy descending order statistics of the group's i.i.d.
    /// `Gumbel(φ_g, 1)` keys.
    keys: GumbelMax,
    /// Members not yet selected.
    remaining: u32,
}

/// A group's current best unconsumed key, ordered for the cross-group
/// max-heap (ties — probability zero — break by group index so the heap
/// order is deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
struct GroupKey {
    key: f64,
    group: u32,
}
impl Eq for GroupKey {}
impl PartialOrd for GroupKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GroupKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key
            .total_cmp(&other.key)
            .then(self.group.cmp(&other.group))
    }
}

/// Restores the min-heap property upward from `heap[i]` (keyed on the
/// `f64`; all keys are finite by construction).
fn sift_up(heap: &mut [(f64, u32)], mut i: usize) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[i].0 < heap[parent].0 {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

/// Restores the min-heap property downward from `heap[0]`.
fn sift_down(heap: &mut [(f64, u32)]) {
    let mut i = 0;
    loop {
        let left = 2 * i + 1;
        let right = left + 1;
        let mut smallest = i;
        if left < heap.len() && heap[left].0 < heap[smallest].0 {
            smallest = left;
        }
        if right < heap.len() && heap[right].0 < heap[smallest].0 {
            smallest = right;
        }
        if smallest == i {
            break;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
}

/// Top-`c` selection via `c` rounds of peeled EM. Satisfies `ε`-DP.
///
/// ```
/// use dp_mechanisms::DpRng;
/// use svt_core::em_select::EmTopC;
///
/// let supports = [900.0, 850.0, 20.0, 15.0, 10.0, 5.0];
/// let em = EmTopC::new(2.0, 2, 1.0, /*monotonic=*/true)?;
/// let mut rng = DpRng::seed_from_u64(7);
/// let mut picked = em.select(&supports, &mut rng)?;
/// picked.sort_unstable();
/// // With this budget the two clear winners are selected.
/// assert_eq!(picked, vec![0, 1]);
/// # Ok::<(), svt_core::SvtError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmTopC {
    /// Total privacy budget for the whole selection.
    pub epsilon: f64,
    /// Number of queries to select.
    pub c: usize,
    /// Query sensitivity `Δ`.
    pub sensitivity: f64,
    /// Whether monotonic scoring (`exp(εq/cΔ)`) may be used.
    pub monotonic: bool,
}

impl EmTopC {
    /// Creates the selector.
    ///
    /// # Errors
    /// Rejects non-positive `ε`/`Δ` and `c == 0`.
    pub fn new(epsilon: f64, c: usize, sensitivity: f64, monotonic: bool) -> Result<Self> {
        crate::alg::validate_common(epsilon, sensitivity, c)?;
        Ok(Self {
            epsilon,
            c,
            sensitivity,
            monotonic,
        })
    }

    /// The per-round budget `ε/c`.
    pub fn epsilon_per_round(&self) -> f64 {
        self.epsilon / self.c as f64
    }

    /// Selects up to `c` distinct indices (fewer only if the candidate
    /// pool is smaller), in selection order.
    ///
    /// # Errors
    /// [`SvtError::Mechanism`] on empty/non-finite scores.
    pub fn select(&self, scores: &[f64], rng: &mut DpRng) -> Result<Vec<usize>> {
        let per_round = self.epsilon_per_round();
        let em = if self.monotonic {
            ExponentialMechanism::new_monotonic(per_round, self.sensitivity)
        } else {
            ExponentialMechanism::new(per_round, self.sensitivity)
        }
        .map_err(SvtError::from)?;
        em.select_without_replacement(scores, self.c, rng)
            .map_err(SvtError::from)
    }

    /// The exponent factor `ε_round/(kΔ)` this selector applies to
    /// scores (`k = 1` monotonic, `k = 2` general) — validated exactly
    /// like [`select`](Self::select).
    fn key_factor(&self) -> Result<f64> {
        let per_round = self.epsilon_per_round();
        let em = if self.monotonic {
            ExponentialMechanism::new_monotonic(per_round, self.sensitivity)
        } else {
            ExponentialMechanism::new(per_round, self.sensitivity)
        }
        .map_err(SvtError::from)?;
        Ok(em.log_weight_factor())
    }

    /// Scratch-buffered top-`c` selection: the zero-allocation,
    /// batched-noise equivalent of [`select`](Self::select). The
    /// selection lands in [`RunScratch::selected`], in selection order.
    ///
    /// Samples the same output distribution as `select` via the
    /// Gumbel-max equivalence: perturbing every score once with
    /// `Gumbel(0, 1/f)` noise (`f` the exponent factor) and keeping the
    /// `c` largest perturbed scores is distributionally identical to
    /// `c` rounds of Exponential Mechanism peeling — but costs one
    /// `O(n log c)` pass instead of `c` full passes, and draws its keys
    /// block-wise through [`Gumbel::sample_into`] (bit-identical for
    /// every chunk size). Steady state allocates nothing: the noise
    /// chunk, the top-`c` heap, and the selection buffer all live in
    /// `scratch`.
    ///
    /// ```
    /// use dp_mechanisms::DpRng;
    /// use svt_core::em_select::EmTopC;
    /// use svt_core::streaming::RunScratch;
    ///
    /// let supports = [900.0, 850.0, 20.0, 15.0, 10.0, 5.0];
    /// let em = EmTopC::new(2.0, 2, 1.0, /*monotonic=*/true)?;
    /// let mut rng = DpRng::seed_from_u64(7);
    /// let mut scratch = RunScratch::new();
    /// em.select_into(&supports, &mut rng, &mut scratch)?;
    /// let mut picked = scratch.selected().to_vec();
    /// picked.sort_unstable();
    /// assert_eq!(picked, vec![0, 1]);
    /// # Ok::<(), svt_core::SvtError>(())
    /// ```
    ///
    /// # Errors
    /// [`SvtError::Mechanism`] on empty or non-finite scores. Scores
    /// are validated as they stream past, so on a non-finite score the
    /// generator has already consumed some noise (the selection buffer
    /// is left empty either way).
    pub fn select_into(
        &self,
        scores: &[f64],
        rng: &mut DpRng,
        scratch: &mut RunScratch,
    ) -> Result<()> {
        let factor = self.key_factor()?;
        let kernel = scratch.kernel();
        scratch.begin_em_run();
        let (em, selected) = scratch.em_parts();
        if scores.is_empty() {
            return Err(SvtError::Mechanism(MechanismError::EmptyCandidates));
        }
        let take = self.c.min(scores.len());
        em.top.clear();
        em.top.reserve(take);
        if em.noise.len() != GUMBEL_CHUNK {
            em.noise.resize(GUMBEL_CHUNK, 0.0);
        }
        let gumbel = Gumbel::standard();
        let mut index = 0u32;
        for chunk in scores.chunks(GUMBEL_CHUNK) {
            let keys = &mut em.noise[..chunk.len()];
            gumbel.sample_into_kernel(rng, keys, kernel);
            for (&score, key) in chunk.iter().zip(keys.iter_mut()) {
                if !score.is_finite() {
                    return Err(SvtError::Mechanism(MechanismError::NonFiniteScore {
                        index: index as usize,
                        score,
                    }));
                }
                *key += factor * score;
                if em.top.len() < take {
                    em.top.push((*key, index));
                    let last = em.top.len() - 1;
                    sift_up(&mut em.top, last);
                } else if *key > em.top[0].0 {
                    em.top[0] = (*key, index);
                    sift_down(&mut em.top);
                }
                index += 1;
            }
        }
        // Selection order = decreasing perturbed key (round order under
        // the peeling equivalence).
        em.top.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        selected.extend(em.top.iter().map(|&(_, i)| i as usize));
        Ok(())
    }

    /// Grouped top-`c` selection: the `O(G + c)`-draws equivalent of
    /// [`select_into`](Self::select_into) over the index-preserving
    /// grouped score runs (`G` = number of distinct scores). The
    /// selection lands in [`RunScratch::selected`], in selection order,
    /// exactly like the other samplers.
    ///
    /// Samples the same output distribution as [`select`](Self::select)
    /// and `select_into` through two identities layered on the
    /// Gumbel-max equivalence:
    ///
    /// * **across groups** — within a run of `m` tied scores the `m`
    ///   perturbed keys are i.i.d. `Gumbel(φ_g, 1)`, so the group's key
    ///   order statistics can be peeled lazily in descending order by
    ///   [`GumbelMax`] (the maximum in one draw via the `ln m` location
    ///   shift, successors via the exponential-spacings recurrence); a
    ///   max-heap across groups then replays the global descending key
    ///   order that `select_into` materializes item by item;
    /// * **within a group** — i.i.d. keys are exchangeable, so the
    ///   member holding the group's `k`-th largest key is uniform among
    ///   the not-yet-selected members; the expansion draws it by sparse
    ///   back-to-front Fisher–Yates over the group's run (swap-with-last
    ///   in a generation-stamped displacement map), `O(1)` per pick.
    ///
    /// Per run this draws one uniform per group (the `G` initial
    /// maxima), then at most two uniforms per selection (successor key +
    /// member pick) — independent of the item count, which is what keeps
    /// the exact engine's EM cell fast at AOL scale. Steady state
    /// allocates nothing: cursors, heap, and pick map live in `scratch`.
    ///
    /// ```
    /// use dp_data::ScoreVector;
    /// use dp_mechanisms::DpRng;
    /// use svt_core::em_select::EmTopC;
    /// use svt_core::streaming::RunScratch;
    ///
    /// let supports = ScoreVector::new(vec![900.0, 850.0, 20.0, 15.0, 10.0, 5.0])?;
    /// let em = EmTopC::new(2.0, 2, 1.0, /*monotonic=*/true)?;
    /// let mut rng = DpRng::seed_from_u64(7);
    /// let mut scratch = RunScratch::new();
    /// em.select_grouped_into(&supports.grouped_scores(), &mut rng, &mut scratch)?;
    /// let mut picked = scratch.selected().to_vec();
    /// picked.sort_unstable();
    /// assert_eq!(picked, vec![0, 1]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// [`SvtError::Mechanism`] on invalid configuration or if a key
    /// location `ε/(kcΔ)·score` overflows to a non-finite value
    /// (scores themselves are already validated finite by
    /// [`GroupedSnapshot`]'s constructors; the snapshot is immutable
    /// and epoch-stamped, so the run is pinned to one version of the
    /// dataset).
    pub fn select_grouped_into(
        &self,
        groups: &GroupedSnapshot,
        rng: &mut DpRng,
        scratch: &mut RunScratch,
    ) -> Result<()> {
        let factor = self.key_factor()?;
        let kernel = scratch.kernel();
        scratch.begin_em_run();
        let (em, selected) = scratch.em_parts();
        if groups.len_items() == 0 {
            return Err(SvtError::Mechanism(MechanismError::EmptyCandidates));
        }
        let take = self.c.min(groups.len_items());
        em.groups.clear();
        em.groups.reserve(groups.num_groups());
        em.heap.clear();
        em.heap.reserve(groups.num_groups());
        em.picks.reset();
        // Draw protocol (fixed, documented): one uniform per group for
        // the initial maxima, in group (descending score) order …
        for g in 0..groups.num_groups() {
            let dist = Gumbel::new(factor * groups.score(g), 1.0).map_err(SvtError::from)?;
            let mut keys = GumbelMax::new(dist, groups.len(g)).map_err(SvtError::from)?;
            let key = keys
                .next_key_with(rng, kernel)
                .expect("score groups are nonempty");
            em.groups.push(GroupCursor {
                keys,
                remaining: groups.len(g) as u32,
            });
            em.heap.push(GroupKey {
                key,
                group: g as u32,
            });
        }
        let mut heap = BinaryHeap::from(std::mem::take(&mut em.heap));
        // … then per selection round: the member pick for the winning
        // group, then (if the group is not exhausted) its next key.
        for _ in 0..take {
            let GroupKey { group, .. } = heap.pop().expect(
                "every non-exhausted group keeps one key in the heap, \
                 and take is at most the total item count",
            );
            let cursor = &mut em.groups[group as usize];
            let offset = groups.offset(group as usize);
            // Uniform pick among the group's remaining members: sparse
            // swap-with-last over positions offset..offset+remaining.
            let r = cursor.remaining;
            let slot = if r > 1 {
                offset + rng.index(r as usize) as u32
            } else {
                offset
            };
            let picked_pos = em.picks.get(slot).unwrap_or(slot);
            let last = offset + r - 1;
            if slot != last {
                let moved = em.picks.get(last).unwrap_or(last);
                em.picks.replace(slot, moved);
            }
            cursor.remaining = r - 1;
            selected.push(groups.item(picked_pos) as usize);
            if cursor.remaining > 0 {
                let key = cursor
                    .keys
                    .next_key_with(rng, kernel)
                    .expect("remaining members imply remaining order statistics");
                heap.push(GroupKey { key, group });
            }
        }
        em.heap = heap.into_vec();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(EmTopC::new(0.1, 25, 1.0, true).is_ok());
        assert!(EmTopC::new(0.0, 25, 1.0, true).is_err());
        assert!(EmTopC::new(0.1, 0, 1.0, true).is_err());
        assert!(EmTopC::new(0.1, 25, 0.0, true).is_err());
    }

    #[test]
    fn per_round_budget_is_epsilon_over_c() {
        let em = EmTopC::new(0.1, 25, 1.0, true).unwrap();
        assert!((em.epsilon_per_round() - 0.004).abs() < 1e-12);
    }

    #[test]
    fn selects_c_distinct_indices() {
        let em = EmTopC::new(1.0, 10, 1.0, true).unwrap();
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut rng = DpRng::seed_from_u64(457);
        let picked = em.select(&scores, &mut rng).unwrap();
        assert_eq!(picked.len(), 10);
        let mut s = picked.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn generous_budget_recovers_exact_top_c() {
        let em = EmTopC::new(1000.0, 5, 1.0, true).unwrap();
        let scores: Vec<f64> = (0..50).map(|i| (i * i) as f64).collect();
        let mut rng = DpRng::seed_from_u64(461);
        let mut picked = em.select(&scores, &mut rng).unwrap();
        picked.sort_unstable();
        assert_eq!(picked, vec![45, 46, 47, 48, 49]);
    }

    #[test]
    fn small_pool_is_exhausted_without_error() {
        let em = EmTopC::new(1.0, 10, 1.0, false).unwrap();
        let mut rng = DpRng::seed_from_u64(463);
        let picked = em.select(&[1.0, 2.0, 3.0], &mut rng).unwrap();
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn select_into_selects_c_distinct_indices_in_key_order() {
        let em = EmTopC::new(1.0, 10, 1.0, true).unwrap();
        let scores: Vec<f64> = (0..3000).map(|i| (i % 211) as f64).collect();
        let mut rng = DpRng::seed_from_u64(571);
        let mut scratch = RunScratch::new();
        for _ in 0..20 {
            em.select_into(&scores, &mut rng, &mut scratch).unwrap();
            assert_eq!(scratch.selected().len(), 10);
            let mut s = scratch.selected().to_vec();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 10);
        }
    }

    #[test]
    fn select_into_generous_budget_recovers_exact_top_c() {
        let em = EmTopC::new(1000.0, 5, 1.0, true).unwrap();
        let scores: Vec<f64> = (0..50).map(|i| (i * i) as f64).collect();
        let mut rng = DpRng::seed_from_u64(577);
        let mut scratch = RunScratch::new();
        em.select_into(&scores, &mut rng, &mut scratch).unwrap();
        let mut picked = scratch.selected().to_vec();
        picked.sort_unstable();
        assert_eq!(picked, vec![45, 46, 47, 48, 49]);
        // And the selection order is best-first under that budget.
        assert_eq!(scratch.selected()[0], 49);
    }

    #[test]
    fn select_into_exhausts_small_pools_and_validates() {
        let em = EmTopC::new(1.0, 10, 1.0, false).unwrap();
        let mut rng = DpRng::seed_from_u64(587);
        let mut scratch = RunScratch::new();
        em.select_into(&[1.0, 2.0, 3.0], &mut rng, &mut scratch)
            .unwrap();
        assert_eq!(scratch.selected().len(), 3);
        assert!(em.select_into(&[], &mut rng, &mut scratch).is_err());
        assert!(em
            .select_into(&[1.0, f64::NAN], &mut rng, &mut scratch)
            .is_err());
        assert!(scratch.selected().is_empty(), "error leaves no selection");
    }

    #[test]
    fn select_into_is_seed_deterministic_across_scratch_reuse() {
        let em = EmTopC::new(0.4, 12, 1.0, true).unwrap();
        let scores: Vec<f64> = (0..2000).map(|i| (i % 97) as f64 * 2.0).collect();
        let run = |scratch: &mut RunScratch, seed: u64| {
            let mut rng = DpRng::seed_from_u64(seed);
            em.select_into(&scores, &mut rng, scratch).unwrap();
            scratch.selected().to_vec()
        };
        let mut fresh = RunScratch::new();
        let a = run(&mut fresh, 11);
        let mut reused = RunScratch::new();
        run(&mut reused, 99); // dirty the scratch with a different seed
        let b = run(&mut reused, 11);
        assert_eq!(a, b, "dirty scratch must not leak into the next run");
    }

    #[test]
    fn select_into_matches_peeling_distribution() {
        // The Gumbel-max one-shot and literal peeling sample the same
        // distribution; compare first-pick frequencies on a small
        // instance where the exact probabilities are known.
        let em = EmTopC::new(3.0, 1, 1.0, true).unwrap();
        let scores = [0.0, 1.0, 2.0];
        let probs = dp_mechanisms::ExponentialMechanism::new_monotonic(3.0, 1.0)
            .unwrap()
            .selection_probabilities(&scores)
            .unwrap();
        let mut rng = DpRng::seed_from_u64(593);
        let mut scratch = RunScratch::new();
        let trials = 60_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            em.select_into(&scores, &mut rng, &mut scratch).unwrap();
            counts[scratch.selected()[0]] += 1;
        }
        for i in 0..3 {
            let f = counts[i] as f64 / trials as f64;
            assert!((f - probs[i]).abs() < 0.012, "i={i}: {f} vs {}", probs[i]);
        }
    }

    #[test]
    fn select_into_matches_peeling_on_full_set_distribution() {
        // Full ordered-outcome comparison against the peeling reference
        // (4 candidates, c = 2 → 12 ordered outcomes).
        let em = EmTopC::new(2.0, 2, 1.0, true).unwrap();
        let scores = [0.0, 0.5, 1.0, 1.5];
        let mut rng = DpRng::seed_from_u64(599);
        let mut scratch = RunScratch::new();
        let trials = 40_000;
        let key = |v: &[usize]| v[0] * 4 + v[1];
        let mut peel_counts = [0usize; 16];
        let mut shot_counts = [0usize; 16];
        for _ in 0..trials {
            let a = em.select(&scores, &mut rng).unwrap();
            peel_counts[key(&a)] += 1;
            em.select_into(&scores, &mut rng, &mut scratch).unwrap();
            shot_counts[key(scratch.selected())] += 1;
        }
        for i in 0..16 {
            let p = peel_counts[i] as f64 / trials as f64;
            let s = shot_counts[i] as f64 / trials as f64;
            assert!((p - s).abs() < 0.015, "outcome {i}: peel {p} vs shot {s}");
        }
    }

    fn grouped(scores: &[f64]) -> GroupedSnapshot {
        GroupedSnapshot::from_scores(scores).unwrap()
    }

    #[test]
    fn select_grouped_into_selects_c_distinct_indices_with_ties() {
        let em = EmTopC::new(1.0, 10, 1.0, true).unwrap();
        let scores: Vec<f64> = (0..3000).map(|i| (i % 7) as f64).collect();
        let g = grouped(&scores);
        let mut rng = DpRng::seed_from_u64(601);
        let mut scratch = RunScratch::new();
        for _ in 0..20 {
            em.select_grouped_into(&g, &mut rng, &mut scratch).unwrap();
            assert_eq!(scratch.selected().len(), 10);
            let mut s = scratch.selected().to_vec();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 10, "duplicate index selected");
            assert!(s.iter().all(|&i| i < 3000));
        }
    }

    #[test]
    fn select_grouped_into_generous_budget_recovers_exact_top_c() {
        let em = EmTopC::new(1000.0, 5, 1.0, true).unwrap();
        let scores: Vec<f64> = (0..50).map(|i| (i * i) as f64).collect();
        let g = grouped(&scores);
        let mut rng = DpRng::seed_from_u64(607);
        let mut scratch = RunScratch::new();
        em.select_grouped_into(&g, &mut rng, &mut scratch).unwrap();
        let mut picked = scratch.selected().to_vec();
        picked.sort_unstable();
        assert_eq!(picked, vec![45, 46, 47, 48, 49]);
        assert_eq!(scratch.selected()[0], 49, "selection order is best-first");
    }

    #[test]
    fn select_grouped_into_exhausts_small_pools() {
        let em = EmTopC::new(1.0, 10, 1.0, false).unwrap();
        let mut rng = DpRng::seed_from_u64(613);
        let mut scratch = RunScratch::new();
        em.select_grouped_into(&grouped(&[1.0, 1.0, 1.0]), &mut rng, &mut scratch)
            .unwrap();
        let mut s = scratch.selected().to_vec();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn select_grouped_into_is_seed_deterministic_across_scratch_reuse() {
        let em = EmTopC::new(0.4, 12, 1.0, true).unwrap();
        let scores: Vec<f64> = (0..2000).map(|i| (i % 97) as f64 * 2.0).collect();
        let g = grouped(&scores);
        let run = |scratch: &mut RunScratch, seed: u64| {
            let mut rng = DpRng::seed_from_u64(seed);
            em.select_grouped_into(&g, &mut rng, scratch).unwrap();
            scratch.selected().to_vec()
        };
        let mut fresh = RunScratch::new();
        let a = run(&mut fresh, 11);
        let mut reused = RunScratch::new();
        run(&mut reused, 99); // dirty the scratch with a different seed
        let b = run(&mut reused, 11);
        assert_eq!(a, b, "dirty scratch must not leak into the next run");
    }

    #[test]
    fn select_grouped_into_matches_peeling_distribution_on_ties() {
        // First-pick frequencies against the exact softmax probabilities
        // on an instance where two candidates tie.
        let em = EmTopC::new(3.0, 1, 1.0, true).unwrap();
        let scores = [0.0, 1.0, 1.0];
        let probs = dp_mechanisms::ExponentialMechanism::new_monotonic(3.0, 1.0)
            .unwrap()
            .selection_probabilities(&scores)
            .unwrap();
        let g = grouped(&scores);
        let mut rng = DpRng::seed_from_u64(617);
        let mut scratch = RunScratch::new();
        let trials = 60_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            em.select_grouped_into(&g, &mut rng, &mut scratch).unwrap();
            counts[scratch.selected()[0]] += 1;
        }
        for i in 0..3 {
            let f = counts[i] as f64 / trials as f64;
            assert!((f - probs[i]).abs() < 0.012, "i={i}: {f} vs {}", probs[i]);
        }
    }

    #[test]
    fn select_grouped_into_matches_select_and_select_into_on_full_set_distribution() {
        // Full ordered-outcome comparison of all three samplers on an
        // instance with a tied pair (4 candidates, c = 2 → 12 ordered
        // outcomes).
        let em = EmTopC::new(2.0, 2, 1.0, true).unwrap();
        let scores = [0.0, 1.0, 1.0, 1.5];
        let g = grouped(&scores);
        let mut rng = DpRng::seed_from_u64(619);
        let mut scratch = RunScratch::new();
        let trials = 40_000;
        let key = |v: &[usize]| v[0] * 4 + v[1];
        let mut peel_counts = [0usize; 16];
        let mut shot_counts = [0usize; 16];
        let mut grouped_counts = [0usize; 16];
        for _ in 0..trials {
            let a = em.select(&scores, &mut rng).unwrap();
            peel_counts[key(&a)] += 1;
            em.select_into(&scores, &mut rng, &mut scratch).unwrap();
            shot_counts[key(scratch.selected())] += 1;
            em.select_grouped_into(&g, &mut rng, &mut scratch).unwrap();
            grouped_counts[key(scratch.selected())] += 1;
        }
        for i in 0..16 {
            let p = peel_counts[i] as f64 / trials as f64;
            let s = shot_counts[i] as f64 / trials as f64;
            let q = grouped_counts[i] as f64 / trials as f64;
            assert!(
                (p - q).abs() < 0.015,
                "outcome {i}: peel {p} vs grouped {q}"
            );
            assert!(
                (s - q).abs() < 0.015,
                "outcome {i}: shot {s} vs grouped {q}"
            );
        }
    }

    #[test]
    fn tied_scores_are_selected_uniformly_at_tiny_epsilon() {
        // The tie contract (see `EmScratch`): duplicate scores at tiny ε
        // (keys driven almost purely by noise, maximal heap-collision
        // pressure) must be selected with equal probability by all three
        // samplers — `select` is the reference, the other two must agree.
        let em = EmTopC::new(1e-9, 2, 1.0, true).unwrap();
        let scores = [5.0, 5.0, 5.0, 5.0, 5.0, 5.0];
        let g = grouped(&scores);
        let mut rng = DpRng::seed_from_u64(631);
        let mut scratch = RunScratch::new();
        let trials = 30_000;
        let mut peel = [0usize; 6];
        let mut shot = [0usize; 6];
        let mut runs_grouped = [0usize; 6];
        for _ in 0..trials {
            for &i in &em.select(&scores, &mut rng).unwrap() {
                peel[i] += 1;
            }
            em.select_into(&scores, &mut rng, &mut scratch).unwrap();
            for &i in scratch.selected() {
                shot[i] += 1;
            }
            em.select_grouped_into(&g, &mut rng, &mut scratch).unwrap();
            for &i in scratch.selected() {
                runs_grouped[i] += 1;
            }
        }
        // Each of the 6 tied items should appear in c/n = 1/3 of runs.
        for i in 0..6 {
            for (name, counts) in [("peel", &peel), ("shot", &shot), ("grouped", &runs_grouped)] {
                let f = counts[i] as f64 / trials as f64;
                assert!(
                    (f - 1.0 / 3.0).abs() < 0.012,
                    "{name} i={i}: rate {f} not uniform"
                );
            }
        }
    }

    #[test]
    fn heap_sift_keeps_earliest_index_on_equal_keys() {
        // The documented key-tie behaviour of select_into's min-heap:
        // strict comparisons mean an incoming bit-equal key neither
        // displaces an incumbent on insert nor survives replacement at
        // the boundary.
        let mut heap: Vec<(f64, u32)> = vec![];
        for i in 0..4u32 {
            heap.push((1.0, i));
            let last = heap.len() - 1;
            sift_up(&mut heap, last);
        }
        // All keys equal: sift_up must never have reordered anything.
        assert_eq!(heap, vec![(1.0, 0), (1.0, 1), (1.0, 2), (1.0, 3)]);
        // Root replacement with an equal key: sift_down leaves it put.
        heap[0] = (1.0, 9);
        sift_down(&mut heap);
        assert_eq!(heap[0], (1.0, 9));
    }

    #[test]
    fn select_grouped_into_is_bit_identical_to_select_into_on_distinct_sorted_scores() {
        // The degenerate case: all scores distinct and already in
        // decreasing order means every group is a singleton *and* the
        // grouped traversal visits items in index order. GumbelMax with
        // m = 1 is bit-identical to a plain Gumbel draw and the batched
        // fill is stream-equivalent to scalar draws, so both samplers
        // consume the same uniforms, compute bit-identical keys, and
        // must emit the identical selection.
        let em = EmTopC::new(0.7, 25, 1.0, true).unwrap();
        let scores: Vec<f64> = (0..4000).map(|i| (8000 - i) as f64).collect();
        let g = grouped(&scores);
        let mut scratch = RunScratch::new();
        for seed in [3u64, 641, 0xfeed_f00d] {
            let mut rng = DpRng::seed_from_u64(seed);
            em.select_into(&scores, &mut rng, &mut scratch).unwrap();
            let per_item = scratch.selected().to_vec();
            let mut rng = DpRng::seed_from_u64(seed);
            em.select_grouped_into(&g, &mut rng, &mut scratch).unwrap();
            assert_eq!(scratch.selected(), &per_item[..], "seed {seed}");
        }
    }

    #[test]
    fn tiny_budget_is_near_uniform() {
        // With ε → 0 every candidate is near-equally likely; check the
        // top item is NOT systematically selected first.
        let em = EmTopC::new(1e-9, 1, 1.0, true).unwrap();
        let scores = [10.0, 0.0, 0.0, 0.0];
        let mut rng = DpRng::seed_from_u64(467);
        let hits = (0..8000)
            .filter(|_| em.select(&scores, &mut rng).unwrap()[0] == 0)
            .count() as f64
            / 8000.0;
        assert!((hits - 0.25).abs() < 0.02, "rate {hits}");
    }
}
