//! §5 — top-`c` selection with the Exponential Mechanism.
//!
//! "One runs EM `c` times, each round with privacy budget `ε/c`. The
//! quality for each query is its answer; thus each query is selected
//! with probability proportional to `exp(εq/2cΔ)` in the general case
//! and to `exp(εq/cΔ)` in the monotonic case. After one query is
//! selected, it is removed from the pool of candidate queries for the
//! remaining rounds."
//!
//! By sequential composition the whole procedure is `ε`-DP. This is the
//! `EM` series of Figure 5 — the method the paper recommends over SVT in
//! the non-interactive setting.

use crate::{Result, SvtError};
use dp_mechanisms::{DpRng, ExponentialMechanism};

/// Top-`c` selection via `c` rounds of peeled EM. Satisfies `ε`-DP.
///
/// ```
/// use dp_mechanisms::DpRng;
/// use svt_core::em_select::EmTopC;
///
/// let supports = [900.0, 850.0, 20.0, 15.0, 10.0, 5.0];
/// let em = EmTopC::new(2.0, 2, 1.0, /*monotonic=*/true)?;
/// let mut rng = DpRng::seed_from_u64(7);
/// let mut picked = em.select(&supports, &mut rng)?;
/// picked.sort_unstable();
/// // With this budget the two clear winners are selected.
/// assert_eq!(picked, vec![0, 1]);
/// # Ok::<(), svt_core::SvtError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmTopC {
    /// Total privacy budget for the whole selection.
    pub epsilon: f64,
    /// Number of queries to select.
    pub c: usize,
    /// Query sensitivity `Δ`.
    pub sensitivity: f64,
    /// Whether monotonic scoring (`exp(εq/cΔ)`) may be used.
    pub monotonic: bool,
}

impl EmTopC {
    /// Creates the selector.
    ///
    /// # Errors
    /// Rejects non-positive `ε`/`Δ` and `c == 0`.
    pub fn new(epsilon: f64, c: usize, sensitivity: f64, monotonic: bool) -> Result<Self> {
        crate::alg::validate_common(epsilon, sensitivity, c)?;
        Ok(Self {
            epsilon,
            c,
            sensitivity,
            monotonic,
        })
    }

    /// The per-round budget `ε/c`.
    pub fn epsilon_per_round(&self) -> f64 {
        self.epsilon / self.c as f64
    }

    /// Selects up to `c` distinct indices (fewer only if the candidate
    /// pool is smaller), in selection order.
    ///
    /// # Errors
    /// [`SvtError::Mechanism`] on empty/non-finite scores.
    pub fn select(&self, scores: &[f64], rng: &mut DpRng) -> Result<Vec<usize>> {
        let per_round = self.epsilon_per_round();
        let em = if self.monotonic {
            ExponentialMechanism::new_monotonic(per_round, self.sensitivity)
        } else {
            ExponentialMechanism::new(per_round, self.sensitivity)
        }
        .map_err(SvtError::from)?;
        em.select_without_replacement(scores, self.c, rng)
            .map_err(SvtError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(EmTopC::new(0.1, 25, 1.0, true).is_ok());
        assert!(EmTopC::new(0.0, 25, 1.0, true).is_err());
        assert!(EmTopC::new(0.1, 0, 1.0, true).is_err());
        assert!(EmTopC::new(0.1, 25, 0.0, true).is_err());
    }

    #[test]
    fn per_round_budget_is_epsilon_over_c() {
        let em = EmTopC::new(0.1, 25, 1.0, true).unwrap();
        assert!((em.epsilon_per_round() - 0.004).abs() < 1e-12);
    }

    #[test]
    fn selects_c_distinct_indices() {
        let em = EmTopC::new(1.0, 10, 1.0, true).unwrap();
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut rng = DpRng::seed_from_u64(457);
        let picked = em.select(&scores, &mut rng).unwrap();
        assert_eq!(picked.len(), 10);
        let mut s = picked.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn generous_budget_recovers_exact_top_c() {
        let em = EmTopC::new(1000.0, 5, 1.0, true).unwrap();
        let scores: Vec<f64> = (0..50).map(|i| (i * i) as f64).collect();
        let mut rng = DpRng::seed_from_u64(461);
        let mut picked = em.select(&scores, &mut rng).unwrap();
        picked.sort_unstable();
        assert_eq!(picked, vec![45, 46, 47, 48, 49]);
    }

    #[test]
    fn small_pool_is_exhausted_without_error() {
        let em = EmTopC::new(1.0, 10, 1.0, false).unwrap();
        let mut rng = DpRng::seed_from_u64(463);
        let picked = em.select(&[1.0, 2.0, 3.0], &mut rng).unwrap();
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn tiny_budget_is_near_uniform() {
        // With ε → 0 every candidate is near-equally likely; check the
        // top item is NOT systematically selected first.
        let em = EmTopC::new(1e-9, 1, 1.0, true).unwrap();
        let scores = [10.0, 0.0, 0.0, 0.0];
        let mut rng = DpRng::seed_from_u64(467);
        let hits = (0..8000)
            .filter(|_| em.select(&scores, &mut rng).unwrap()[0] == 0)
            .count() as f64
            / 8000.0;
        assert!((hits - 0.25).abs() < 0.02, "rate {hits}");
    }
}
