//! §4.2 — optimizing the `ε₁ : ε₂` privacy-budget allocation.
//!
//! SVT compares `q_i(D) + Lap(kcΔ/ε₂)` against `T + Lap(Δ/ε₁)` (`k = 2`
//! general, `k = 1` monotonic). The accuracy of that comparison is
//! governed by the variance of the *difference* of the two noises,
//!
//! ```text
//! Var = 2(Δ/ε₁)² + 2(kcΔ/ε₂)²,
//! ```
//!
//! which, for fixed `ε₁ + ε₂`, is minimized at
//!
//! ```text
//! ε₁ : ε₂ = 1 : (kc)^{2/3}        (Eq. 12)
//! ```
//!
//! Most prior variants use `1 : 1` "without a clear justification";
//! Alg. 4 uses `1 : 3`. Figure 4 shows the optimized ratios winning by a
//! wide margin; [`BudgetRatio`] captures every policy the paper
//! evaluates.

use crate::{Result, SvtError};
use dp_mechanisms::SvtBudget;

/// The optimal ratio `ε₂/ε₁ = (kc)^{2/3}` (Eq. 12), with `k = 2` for
/// general queries and `k = 1` for monotonic queries.
pub fn optimal_ratio(c: usize, monotonic: bool) -> f64 {
    let k = if monotonic { 1.0 } else { 2.0 };
    (k * c as f64).powf(2.0 / 3.0)
}

/// The §4.2 objective: the variance of
/// `Lap(Δ/ε₁) − Lap(kcΔ/ε₂)`.
pub fn comparison_variance(
    eps1: f64,
    eps2: f64,
    c: usize,
    sensitivity: f64,
    monotonic: bool,
) -> f64 {
    let k = if monotonic { 1.0 } else { 2.0 };
    let a = sensitivity / eps1;
    let b = k * c as f64 * sensitivity / eps2;
    2.0 * a * a + 2.0 * b * b
}

/// The budget-allocation policies compared in the evaluation (§6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetRatio {
    /// `ε₁ : ε₂ = 1 : 1` — the historical default.
    OneToOne,
    /// `1 : 3` — Algorithm 4's choice.
    OneToThree,
    /// `1 : c` — a simple cutoff-aware heuristic.
    OneToC,
    /// `1 : c^{2/3}` — the paper's recommendation for monotonic queries
    /// (labelled `1:c^{2/3}` in Figures 4–5).
    OneToCTwoThirds,
    /// The Eq. 12 optimum for the configured query family
    /// (`1 : (2c)^{2/3}` general, `1 : c^{2/3}` monotonic).
    Optimal,
    /// An explicit `1 : r` ratio.
    Custom(f64),
}

impl BudgetRatio {
    /// The numeric ratio `r` in `ε₁ : ε₂ = 1 : r` for cutoff `c`.
    ///
    /// # Errors
    /// Rejects non-positive custom ratios and `c == 0`.
    pub fn value(&self, c: usize, monotonic: bool) -> Result<f64> {
        crate::error::check_cutoff(c)?;
        let r = match self {
            Self::OneToOne => 1.0,
            Self::OneToThree => 3.0,
            Self::OneToC => c as f64,
            Self::OneToCTwoThirds => (c as f64).powf(2.0 / 3.0),
            Self::Optimal => optimal_ratio(c, monotonic),
            Self::Custom(r) => {
                if !(r.is_finite() && *r > 0.0) {
                    return Err(SvtError::Mechanism(
                        dp_mechanisms::MechanismError::InvalidParameter(
                            "custom budget ratio must be positive and finite",
                        ),
                    ));
                }
                *r
            }
        };
        Ok(r)
    }

    /// Splits `epsilon` into an [`SvtBudget`] (no numeric phase) using
    /// this policy.
    ///
    /// # Errors
    /// Propagates ratio and budget validation.
    pub fn split(&self, epsilon: f64, c: usize, monotonic: bool) -> Result<SvtBudget> {
        let r = self.value(c, monotonic)?;
        SvtBudget::from_ratio(epsilon, r).map_err(SvtError::from)
    }

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Self::OneToOne => "1:1".to_owned(),
            Self::OneToThree => "1:3".to_owned(),
            Self::OneToC => "1:c".to_owned(),
            Self::OneToCTwoThirds => "1:c^(2/3)".to_owned(),
            Self::Optimal => "1:(kc)^(2/3)".to_owned(),
            Self::Custom(r) => format!("1:{r:.3}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_ratio_formula() {
        // General: (2c)^{2/3}; monotonic: c^{2/3}.
        assert!((optimal_ratio(4, false) - 4.0).abs() < 1e-12); // 8^(2/3) = 4
        assert!((optimal_ratio(8, true) - 4.0).abs() < 1e-12); // 8^(2/3) = 4
        assert!(optimal_ratio(100, false) > optimal_ratio(100, true));
    }

    #[test]
    fn optimum_minimizes_the_variance_objective() {
        // Grid-check Eq. 12 for several (c, monotonic) settings: no
        // other split of the same ε₁+ε₂ does better.
        for &(c, monotonic) in &[(1usize, false), (25, true), (100, true), (300, false)] {
            let eps = 0.1;
            let r_star = optimal_ratio(c, monotonic);
            let e1_star = eps / (1.0 + r_star);
            let best = comparison_variance(e1_star, eps - e1_star, c, 1.0, monotonic);
            for i in 1..200 {
                let e1 = eps * i as f64 / 200.0;
                let v = comparison_variance(e1, eps - e1, c, 1.0, monotonic);
                assert!(
                    v >= best * (1.0 - 1e-9),
                    "c={c} mono={monotonic}: split {e1} beats optimum ({v} < {best})"
                );
            }
        }
    }

    #[test]
    fn ratio_values_match_labels() {
        let c = 27;
        assert_eq!(BudgetRatio::OneToOne.value(c, true).unwrap(), 1.0);
        assert_eq!(BudgetRatio::OneToThree.value(c, true).unwrap(), 3.0);
        assert_eq!(BudgetRatio::OneToC.value(c, true).unwrap(), 27.0);
        assert!((BudgetRatio::OneToCTwoThirds.value(c, true).unwrap() - 9.0).abs() < 1e-12);
        // Optimal in monotonic mode = c^{2/3}.
        assert!((BudgetRatio::Optimal.value(c, true).unwrap() - 9.0).abs() < 1e-12);
        // Optimal in general mode = (2c)^{2/3} = 54^{2/3}.
        let want = 54f64.powf(2.0 / 3.0);
        assert!((BudgetRatio::Optimal.value(c, false).unwrap() - want).abs() < 1e-12);
    }

    #[test]
    fn custom_ratio_validation() {
        assert!(BudgetRatio::Custom(2.5).value(10, true).is_ok());
        assert!(BudgetRatio::Custom(0.0).value(10, true).is_err());
        assert!(BudgetRatio::Custom(f64::NAN).value(10, true).is_err());
        assert!(BudgetRatio::OneToOne.value(0, true).is_err());
    }

    #[test]
    fn split_preserves_total() {
        let b = BudgetRatio::OneToCTwoThirds.split(0.1, 64, true).unwrap();
        assert!((b.total() - 0.1).abs() < 1e-12);
        // r = 16 ⇒ ε₁ = 0.1/17.
        assert!((b.threshold - 0.1 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn labels_are_paper_style() {
        assert_eq!(BudgetRatio::OneToCTwoThirds.label(), "1:c^(2/3)");
        assert_eq!(BudgetRatio::Custom(2.0).label(), "1:2.000");
    }

    #[test]
    fn optimized_allocation_beats_one_to_one_substantially_for_large_c() {
        // The practical claim behind Figure 4: at c = 100 the optimized
        // allocation's comparison deviation is several times smaller.
        let eps = 0.1;
        let c = 100;
        let even = comparison_variance(eps / 2.0, eps / 2.0, c, 1.0, true);
        let r = optimal_ratio(c, true);
        let e1 = eps / (1.0 + r);
        let opt = comparison_variance(e1, eps - e1, c, 1.0, true);
        assert!(even / opt > 3.0, "improvement factor {}", even / opt);
    }
}
