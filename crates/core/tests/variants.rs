//! Cross-variant integration tests: every algorithm of Figure 1 (plus
//! the generalized Alg. 7 and the (ε,δ) extension) driven through the
//! shared `SparseVector` interface, with the behavioral contracts of
//! Figure 2 checked against the machine-readable catalog.

use dp_mechanisms::DpRng;
use svt_core::alg::{run_svt, SparseVector};
use svt_core::approx::{ApproxSvt, ApproxSvtConfig};
use svt_core::{
    Alg1, Alg2, Alg3, Alg4, Alg5, Alg6, StandardSvt, StandardSvtConfig, SvtAnswer, Thresholds,
};

const EPS: f64 = 1.0;
const DELTA: f64 = 1.0;
const C: usize = 3;

/// Builds one of every variant behind a trait object, tagged with the
/// Figure 2 expectations: (has_cutoff, numeric_positive_answers).
fn lineup(rng: &mut DpRng) -> Vec<(Box<dyn SparseVector>, bool, bool)> {
    let standard = StandardSvtConfig {
        budget: dp_mechanisms::SvtBudget::halves(EPS).unwrap(),
        sensitivity: DELTA,
        c: C,
        monotonic: false,
    };
    let approx = ApproxSvtConfig {
        target: dp_mechanisms::ApproxDp::new(EPS, 1e-6).unwrap(),
        c: C,
        sensitivity: DELTA,
        ratio: 1.0,
        monotonic: false,
    };
    vec![
        (
            Box::new(Alg1::new(EPS, DELTA, C, rng).unwrap()) as Box<dyn SparseVector>,
            true,
            false,
        ),
        (
            Box::new(Alg2::new(EPS, DELTA, C, rng).unwrap()),
            true,
            false,
        ),
        (Box::new(Alg3::new(EPS, DELTA, C, rng).unwrap()), true, true),
        (
            Box::new(Alg4::new(EPS, DELTA, C, rng).unwrap()),
            true,
            false,
        ),
        (Box::new(Alg5::new(EPS, DELTA, rng).unwrap()), false, false),
        (Box::new(Alg6::new(EPS, DELTA, rng).unwrap()), false, false),
        (
            Box::new(StandardSvt::new(standard, rng).unwrap()),
            true,
            false,
        ),
        (Box::new(ApproxSvt::new(approx, rng).unwrap()), true, false),
    ]
}

#[test]
fn cutoff_semantics_match_figure2() {
    // Overwhelming positives: cut-off variants stop at C, unbounded
    // variants answer everything.
    let queries = vec![1e9; 12];
    let mut rng = DpRng::seed_from_u64(2001);
    for (mut alg, has_cutoff, _) in lineup(&mut rng) {
        let mut run_rng = DpRng::seed_from_u64(2002);
        let run = run_svt(
            alg.as_mut(),
            &queries,
            &Thresholds::Constant(0.0),
            &mut run_rng,
        )
        .unwrap();
        if has_cutoff {
            assert_eq!(run.positives(), C, "{} should stop at c", alg.name());
            assert!(run.halted, "{}", alg.name());
            assert_eq!(run.examined(), C, "{} must not answer past c", alg.name());
        } else {
            assert_eq!(
                run.positives(),
                queries.len(),
                "{} has no cutoff",
                alg.name()
            );
            assert!(!run.halted, "{}", alg.name());
        }
    }
}

#[test]
fn positive_answer_shape_matches_figure2() {
    // Only Alg. 3 (and Alg. 7 with ε₃ > 0, tested in its own module)
    // returns numeric answers for positives.
    let mut rng = DpRng::seed_from_u64(2011);
    for (mut alg, _, numeric) in lineup(&mut rng) {
        let mut run_rng = DpRng::seed_from_u64(2012);
        let answer = alg.respond(1e9, 0.0, &mut run_rng).unwrap();
        match answer {
            SvtAnswer::Numeric(v) => {
                assert!(numeric, "{} must not output numbers", alg.name());
                assert!(v > 1e8, "noisy answer should be near 1e9, got {v}");
            }
            SvtAnswer::Above => {
                assert!(!numeric, "{} should output numbers", alg.name());
            }
            SvtAnswer::Below => panic!("{}: 1e9 vs 0 cannot be below", alg.name()),
        }
    }
}

#[test]
fn all_variants_reject_non_finite_inputs() {
    let mut rng = DpRng::seed_from_u64(2021);
    for (mut alg, _, _) in lineup(&mut rng) {
        let mut run_rng = DpRng::seed_from_u64(2022);
        assert!(
            alg.respond(f64::NAN, 0.0, &mut run_rng).is_err(),
            "{} accepted NaN query",
            alg.name()
        );
        assert!(
            alg.respond(0.0, f64::INFINITY, &mut run_rng).is_err(),
            "{} accepted infinite threshold",
            alg.name()
        );
    }
}

#[test]
fn deep_negatives_never_halt_anything() {
    let queries = vec![-1e9; 30];
    let mut rng = DpRng::seed_from_u64(2031);
    for (mut alg, _, _) in lineup(&mut rng) {
        let mut run_rng = DpRng::seed_from_u64(2032);
        let run = run_svt(
            alg.as_mut(),
            &queries,
            &Thresholds::Constant(0.0),
            &mut run_rng,
        )
        .unwrap();
        assert_eq!(run.positives(), 0, "{}", alg.name());
        assert_eq!(run.examined(), 30, "{}", alg.name());
        assert!(!run.halted, "{}", alg.name());
    }
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let queries: Vec<f64> = (0..40).map(|i| (i % 7) as f64 - 3.0).collect();
    for variant in 0..8 {
        let collect = |seed: u64| -> Vec<String> {
            let mut ctor_rng = DpRng::seed_from_u64(seed);
            let mut all = lineup(&mut ctor_rng);
            let (alg, _, _) = &mut all[variant];
            let mut run_rng = DpRng::seed_from_u64(seed + 1);
            let run = run_svt(
                alg.as_mut(),
                &queries,
                &Thresholds::Constant(0.0),
                &mut run_rng,
            )
            .unwrap();
            run.answers.iter().map(|a| format!("{a:?}")).collect()
        };
        assert_eq!(
            collect(77),
            collect(77),
            "variant {variant} is not deterministic"
        );
    }
}

#[test]
fn catalog_rows_agree_with_variant_behavior() {
    let rows = svt_core::catalog::figure2();
    assert_eq!(rows.len(), 6);
    // Unbounded-positives flags (Fig. 2 row 6) match the cutoff test
    // above: exactly Alg. 5 and Alg. 6.
    let unbounded: Vec<bool> = rows.iter().map(|r| r.unbounded_positives).collect();
    assert_eq!(unbounded, [false, false, false, false, true, true]);
    // Numeric-output flag (row 5): exactly Alg. 3.
    let numeric: Vec<bool> = rows.iter().map(|r| r.outputs_noisy_answer).collect();
    assert_eq!(numeric, [false, false, true, false, false, false]);
    // Threshold-reset flag (row 3): exactly Alg. 2.
    let resets: Vec<bool> = rows.iter().map(|r| r.resets_threshold_noise).collect();
    assert_eq!(resets, [false, true, false, false, false, false]);
    // ε₁ fraction (row 1): ε/4 for Alg. 4, ε/2 elsewhere.
    for (i, r) in rows.iter().enumerate() {
        let want = if i == 3 { 0.25 } else { 0.5 };
        assert!((r.eps1_fraction - want).abs() < 1e-12, "row {i}");
    }
}

#[test]
fn alg2_still_selects_correctly_with_huge_budget() {
    // SVT-DPBook is inefficient, not broken: with a generous budget it
    // must still find the clear winners.
    let mut scores = vec![0.0f64; 60];
    for s in scores.iter_mut().take(4) {
        *s = 1e7;
    }
    let mut rng = DpRng::seed_from_u64(2041);
    let mut sel =
        svt_core::noninteractive::dpbook_select(&scores, 5e6, 200.0, 4, 1.0, &mut rng).unwrap();
    sel.sort_unstable();
    assert_eq!(sel, vec![0, 1, 2, 3]);
}

#[test]
fn noise_magnitude_ordering_alg2_vs_alg1() {
    // At (ε, c) = (0.1, 20) both variants use query noise Lap(800),
    // but Alg. 1's threshold noise is Lap(Δ/ε₁) = Lap(20) while
    // Alg. 2's is Lap(cΔ/ε₁) = Lap(400). A query 1500 below the
    // threshold therefore crosses far more often under Alg. 2. One
    // fresh instance per trial, one query each — no cutoff saturation.
    let (eps, c) = (0.1, 20usize);
    let trials = 4_000;
    let spurious_rate = |mk: &dyn Fn(&mut DpRng) -> Box<dyn SparseVector>| -> f64 {
        let mut rng = DpRng::seed_from_u64(2051);
        let hits = (0..trials)
            .filter(|_| {
                let mut alg = mk(&mut rng);
                alg.respond(-1500.0, 0.0, &mut rng).unwrap() == SvtAnswer::Above
            })
            .count();
        hits as f64 / trials as f64
    };
    let alg1_rate = spurious_rate(&|r| Box::new(Alg1::new(eps, 1.0, c, r).unwrap()));
    let alg2_rate = spurious_rate(&|r| Box::new(Alg2::new(eps, 1.0, c, r).unwrap()));
    assert!(
        alg2_rate > alg1_rate * 1.3,
        "DPBook should be noisier: alg1 {alg1_rate:.4} vs alg2 {alg2_rate:.4}"
    );
}

#[test]
fn approx_svt_tracks_standard_svt_on_easy_instances() {
    // On well-separated scores both the pure and the (ε,δ) SVT must
    // select the winners; the approx version does so with *less* noise
    // per comparison (checked via its plan).
    let mut scores = vec![0.0f64; 80];
    for s in scores.iter_mut().take(6) {
        *s = 1e7;
    }
    let config = ApproxSvtConfig {
        target: dp_mechanisms::ApproxDp::new(2.0, 1e-8).unwrap(),
        c: 6,
        sensitivity: 1.0,
        ratio: 1.0,
        monotonic: true,
    };
    let mut rng = DpRng::seed_from_u64(2061);
    let mut alg = ApproxSvt::new(config, &mut rng).unwrap();
    let mut sel = svt_core::noninteractive::select_with(&mut alg, &scores, 5e6, &mut rng).unwrap();
    sel.sort_unstable();
    assert_eq!(sel, vec![0, 1, 2, 3, 4, 5]);
    // c = 6 is below the advanced-composition crossover, so the plan
    // matches plain sequential composition (advantage exactly 1).
    assert!(alg.plan().noise_advantage() >= 1.0);
}

#[test]
fn halted_variants_report_errors_not_silent_answers() {
    let mut rng = DpRng::seed_from_u64(2071);
    for (mut alg, has_cutoff, _) in lineup(&mut rng) {
        if !has_cutoff {
            continue;
        }
        let mut run_rng = DpRng::seed_from_u64(2072);
        let _ = run_svt(
            alg.as_mut(),
            &[1e9; C + 2],
            &Thresholds::Constant(0.0),
            &mut run_rng,
        )
        .unwrap();
        assert!(alg.is_halted(), "{}", alg.name());
        assert!(
            alg.respond(0.0, 0.0, &mut run_rng).is_err(),
            "{} answered after halting",
            alg.name()
        );
    }
}

#[test]
fn per_query_thresholds_reduce_to_zero_threshold_form() {
    // Fig. 1 footnote: thresholds are syntactic — running on
    // (q_i, T_i) equals running on (q_i − T_i, 0). Verify with matched
    // RNG streams on Alg. 1.
    let queries = [5.0, -3.0, 8.0, 0.5, -2.0];
    let thresholds = [4.0, -4.0, 9.0, 0.0, -1.0];
    let shifted: Vec<f64> = queries.iter().zip(thresholds).map(|(q, t)| q - t).collect();

    let mut rng_a = DpRng::seed_from_u64(2081);
    let mut alg_a = Alg1::new(EPS, DELTA, 2, &mut rng_a).unwrap();
    let run_a = run_svt(
        &mut alg_a,
        &queries,
        &Thresholds::PerQuery(thresholds.to_vec()),
        &mut rng_a,
    )
    .unwrap();

    let mut rng_b = DpRng::seed_from_u64(2081);
    let mut alg_b = Alg1::new(EPS, DELTA, 2, &mut rng_b).unwrap();
    let run_b = run_svt(&mut alg_b, &shifted, &Thresholds::Constant(0.0), &mut rng_b).unwrap();

    assert_eq!(run_a.answers, run_b.answers);
}
