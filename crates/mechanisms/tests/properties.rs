//! Property-based tests for the mechanism substrate.
//!
//! These check structural invariants (monotonicity, symmetry, inverse
//! relationships, conservation laws) over randomized inputs rather than
//! hand-picked examples.

use dp_mechanisms::exp_noise::Exponential;
use dp_mechanisms::exponential::ExponentialMechanism;
use dp_mechanisms::gumbel::Gumbel;
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::samplers::{
    sample_binomial, sample_hypergeometric, sample_multivariate_hypergeometric,
};
use dp_mechanisms::{DpRng, SvtBudget};
use proptest::prelude::*;

fn scale_strategy() -> impl Strategy<Value = f64> {
    (0.01f64..1000.0).prop_map(|x| x)
}

proptest! {
    #[test]
    fn laplace_cdf_is_monotone(b in scale_strategy(), x in -1e4f64..1e4, dx in 0.0f64..1e3) {
        let l = Laplace::new(b).unwrap();
        prop_assert!(l.cdf(x) <= l.cdf(x + dx) + 1e-15);
    }

    #[test]
    fn laplace_cdf_survival_sum_to_one(b in scale_strategy(), x in -1e4f64..1e4) {
        let l = Laplace::new(b).unwrap();
        prop_assert!((l.cdf(x) + l.survival(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn laplace_quantile_inverts_cdf(b in scale_strategy(), p in 0.001f64..0.999) {
        let l = Laplace::new(b).unwrap();
        let x = l.quantile(p).unwrap();
        prop_assert!((l.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn laplace_pdf_is_symmetric(b in scale_strategy(), x in 0.0f64..1e3) {
        let l = Laplace::new(b).unwrap();
        prop_assert!((l.pdf(x) - l.pdf(-x)).abs() < 1e-15);
    }

    #[test]
    fn laplace_samples_are_finite(b in scale_strategy(), seed in any::<u64>()) {
        let l = Laplace::new(b).unwrap();
        let mut rng = DpRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(l.sample(&mut rng).is_finite());
        }
    }

    #[test]
    fn laplace_batched_sampling_is_bit_identical(
        b in scale_strategy(),
        seed in any::<u64>(),
        len in 1usize..600,
    ) {
        // The batched-noise pipeline must not change a single bit of any
        // experiment's noise stream.
        let l = Laplace::new(b).unwrap();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut batched_rng = DpRng::seed_from_u64(seed);
        let mut batched = vec![0.0; len];
        l.sample_into(&mut batched_rng, &mut batched);
        for (i, x) in batched.iter().enumerate() {
            prop_assert_eq!(x.to_bits(), l.sample(&mut scalar_rng).to_bits(), "index {}", i);
        }
        prop_assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64());
    }

    #[test]
    fn noise_buffer_is_batch_size_invariant(
        seed in any::<u64>(),
        batch in 1usize..64,
        draws in 1usize..200,
    ) {
        let l = Laplace::new(1.5).unwrap();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut buffered_rng = DpRng::seed_from_u64(seed);
        let mut buf = dp_mechanisms::NoiseBuffer::with_batch(batch);
        for _ in 0..draws {
            prop_assert_eq!(
                buf.next(&l, &mut buffered_rng).to_bits(),
                l.sample(&mut scalar_rng).to_bits()
            );
        }
    }

    #[test]
    fn batched_uniform_fills_are_bit_identical(seed in any::<u64>(), len in 1usize..400) {
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut batched_rng = DpRng::seed_from_u64(seed);
        let mut out = vec![0.0; len];
        batched_rng.fill_uniform(&mut out);
        for x in &out {
            prop_assert_eq!(x.to_bits(), scalar_rng.uniform().to_bits());
        }
        prop_assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64());
    }

    #[test]
    fn laplace_dp_pointwise_ratio(b in 0.1f64..100.0, x in -50.0f64..50.0, shift in 0.0f64..5.0) {
        // pdf(x)/pdf(x+shift) <= exp(shift/b): the defining DP inequality.
        let l = Laplace::new(b).unwrap();
        let lhs = l.pdf(x) / l.pdf(x + shift);
        prop_assert!(lhs <= (shift / b).exp() * (1.0 + 1e-12));
    }

    #[test]
    fn exponential_cdf_is_monotone(b in scale_strategy(), x in -1e3f64..1e4, dx in 0.0f64..1e3) {
        let e = Exponential::new(b).unwrap();
        prop_assert!(e.cdf(x) <= e.cdf(x + dx) + 1e-15);
    }

    #[test]
    fn exponential_cdf_survival_sum_to_one(b in scale_strategy(), x in -1e3f64..1e4) {
        let e = Exponential::new(b).unwrap();
        prop_assert!((e.cdf(x) + e.survival(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_quantile_inverts_cdf(b in scale_strategy(), p in 0.001f64..0.999) {
        let e = Exponential::new(b).unwrap();
        let x = e.quantile(p).unwrap();
        prop_assert!(x >= 0.0);
        prop_assert!((e.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn exponential_samples_are_nonnegative_and_finite(b in scale_strategy(), seed in any::<u64>()) {
        let e = Exponential::new(b).unwrap();
        let mut rng = DpRng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = e.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn exponential_batched_sampling_is_bit_identical(
        b in scale_strategy(),
        seed in any::<u64>(),
        len in 1usize..600,
    ) {
        // Same contract as Laplace: the batched pipeline must not change
        // a single bit of any experiment's noise stream.
        let e = Exponential::new(b).unwrap();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut batched_rng = DpRng::seed_from_u64(seed);
        let mut batched = vec![0.0; len];
        e.sample_into(&mut batched_rng, &mut batched);
        for (i, x) in batched.iter().enumerate() {
            prop_assert_eq!(x.to_bits(), e.sample(&mut scalar_rng).to_bits(), "index {}", i);
        }
        prop_assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64());
    }

    #[test]
    fn exponential_noise_buffer_is_batch_size_invariant(
        seed in any::<u64>(),
        batch in 1usize..64,
        draws in 1usize..200,
    ) {
        let e = Exponential::new(1.5).unwrap();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut buffered_rng = DpRng::seed_from_u64(seed);
        let mut buf = dp_mechanisms::NoiseBuffer::with_batch(batch);
        for _ in 0..draws {
            prop_assert_eq!(
                buf.next(&e, &mut buffered_rng).to_bits(),
                e.sample(&mut scalar_rng).to_bits()
            );
        }
    }

    #[test]
    fn exponential_one_sided_dp_ratio(b in 0.1f64..100.0, x in 0.0f64..50.0, shift in 0.001f64..5.0) {
        // Upward shifts have exactly the ratio exp(shift/b) on the
        // support — the inequality SVT's proof uses, met with equality.
        let e = Exponential::new(b).unwrap();
        let ratio = e.pdf(x) / e.pdf(x + shift);
        prop_assert!((ratio / (shift / b).exp() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gumbel_cdf_is_monotone(mu in -100.0f64..100.0, beta in scale_strategy(),
                              x in -1e3f64..1e3, dx in 0.0f64..1e2) {
        let g = Gumbel::new(mu, beta).unwrap();
        prop_assert!(g.cdf(x) <= g.cdf(x + dx) + 1e-15);
    }

    #[test]
    fn gumbel_batched_sampling_is_bit_identical(
        mu in -100.0f64..100.0,
        beta in scale_strategy(),
        seed in any::<u64>(),
        len in 1usize..600,
    ) {
        // Mirror of the Laplace property: the scratch-buffered EM path
        // must not change a single bit of any experiment's key stream.
        let g = Gumbel::new(mu, beta).unwrap();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut batched_rng = DpRng::seed_from_u64(seed);
        let mut batched = vec![0.0; len];
        g.sample_into(&mut batched_rng, &mut batched);
        for (i, x) in batched.iter().enumerate() {
            prop_assert_eq!(x.to_bits(), g.sample(&mut scalar_rng).to_bits(), "index {}", i);
        }
        prop_assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64());
    }

    #[test]
    fn gumbel_noise_buffer_is_batch_size_invariant(
        seed in any::<u64>(),
        batch in 1usize..64,
        draws in 1usize..200,
    ) {
        // The generic NoiseBuffer upholds the BatchSample contract for
        // Gumbel exactly as it does for Laplace: the handed-out stream
        // is a pure function of the generator, whatever the batch size.
        let g = Gumbel::standard();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut buffered_rng = DpRng::seed_from_u64(seed);
        let mut buf = dp_mechanisms::NoiseBuffer::with_batch(batch);
        for _ in 0..draws {
            prop_assert_eq!(
                buf.next(&g, &mut buffered_rng).to_bits(),
                g.sample(&mut scalar_rng).to_bits()
            );
        }
    }

    #[test]
    fn gumbel_max_first_key_is_the_ln_m_location_shift(
        mu in -100.0f64..100.0,
        beta in scale_strategy(),
        m in 1u64..1_000_000,
        seed in any::<u64>(),
    ) {
        // The max-stability identity the grouped EM sampler rests on:
        // inverting the base CDF at U^{1/m} equals inverting the
        // Gumbel(mu + beta ln m, beta) CDF at U. Deterministic pin —
        // replay the one uniform GumbelMax consumes and compare against
        // the analytically shifted transform.
        let base = Gumbel::new(mu, beta).unwrap();
        let mut rng = dp_mechanisms::DpRng::seed_from_u64(seed);
        let u = {
            let mut probe = rng.clone();
            probe.open_uniform()
        };
        let got = dp_mechanisms::GumbelMax::new(base, m)
            .unwrap()
            .next_key(&mut rng)
            .unwrap();
        let want = mu + beta * (m as f64).ln() - beta * (-u.ln()).ln();
        let tol = 1e-9 * (1.0 + want.abs());
        prop_assert!((got - want).abs() < tol, "m={}: {} vs {}", m, got, want);
    }

    #[test]
    fn gumbel_max_of_one_group_is_bit_identical_to_plain_sampling(
        mu in -100.0f64..100.0,
        beta in scale_strategy(),
        seed in any::<u64>(),
        draws in 1usize..32,
    ) {
        // Degenerate groups (all scores distinct => every group has
        // m = 1) must collapse to the per-item-key reference bit for
        // bit, consuming the same generator words.
        let g = Gumbel::new(mu, beta).unwrap();
        let mut plain_rng = dp_mechanisms::DpRng::seed_from_u64(seed);
        let mut grouped_rng = dp_mechanisms::DpRng::seed_from_u64(seed);
        for _ in 0..draws {
            let plain = g.sample(&mut plain_rng);
            let peeled = dp_mechanisms::GumbelMax::new(g, 1)
                .unwrap()
                .next_key(&mut grouped_rng)
                .unwrap();
            prop_assert_eq!(plain.to_bits(), peeled.to_bits());
        }
        prop_assert_eq!(plain_rng.next_u64(), grouped_rng.next_u64());
    }

    #[test]
    fn gumbel_max_order_statistics_descend_and_exhaust(
        m in 1u64..500,
        seed in any::<u64>(),
    ) {
        let mut top = dp_mechanisms::GumbelMax::new(Gumbel::standard(), m).unwrap();
        let mut rng = dp_mechanisms::DpRng::seed_from_u64(seed);
        let mut prev = f64::INFINITY;
        for _ in 0..m {
            let key = top.next_key(&mut rng).unwrap();
            prop_assert!(key.is_finite());
            prop_assert!(key < prev);
            prev = key;
        }
        prop_assert_eq!(top.next_key(&mut rng), None);
    }

    #[test]
    fn em_probabilities_sum_to_one(
        scores in prop::collection::vec(-1e5f64..1e5, 1..64),
        eps in 0.01f64..10.0,
    ) {
        let em = ExponentialMechanism::new(eps, 1.0).unwrap();
        let p = em.selection_probabilities(&scores).unwrap();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn em_probability_order_follows_score_order(
        scores in prop::collection::vec(-1e3f64..1e3, 2..32),
        eps in 0.01f64..5.0,
    ) {
        let em = ExponentialMechanism::new_monotonic(eps, 1.0).unwrap();
        let p = em.selection_probabilities(&scores).unwrap();
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if scores[i] > scores[j] {
                    prop_assert!(p[i] >= p[j] - 1e-12);
                }
            }
        }
    }

    #[test]
    fn em_peeling_never_repeats(
        scores in prop::collection::vec(-1e3f64..1e3, 1..64),
        c in 1usize..64,
        seed in any::<u64>(),
    ) {
        let em = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let mut rng = DpRng::seed_from_u64(seed);
        let picked = em.select_without_replacement(&scores, c, &mut rng).unwrap();
        prop_assert_eq!(picked.len(), c.min(scores.len()));
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), picked.len());
    }

    #[test]
    fn binomial_stays_in_range(n in 0u64..100_000, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = DpRng::seed_from_u64(seed);
        let k = sample_binomial(n, p, &mut rng).unwrap();
        prop_assert!(k <= n);
    }

    #[test]
    fn hypergeometric_stays_in_range(
        total in 1u64..10_000,
        succ_frac in 0.0f64..1.0,
        draw_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let successes = (total as f64 * succ_frac) as u64;
        let draws = (total as f64 * draw_frac) as u64;
        let mut rng = DpRng::seed_from_u64(seed);
        let h = sample_hypergeometric(total, successes, draws, &mut rng).unwrap();
        prop_assert!(h <= successes && h <= draws);
        // Can't miss more than the unmarked population allows.
        prop_assert!(h + (total - successes) >= draws);
    }

    #[test]
    fn multivariate_hypergeometric_conserves_draws(
        sizes in prop::collection::vec(0u64..1000, 1..16),
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let total: u64 = sizes.iter().sum();
        let draws = (total as f64 * frac) as u64;
        let mut rng = DpRng::seed_from_u64(seed);
        let alloc = sample_multivariate_hypergeometric(&sizes, draws, &mut rng).unwrap();
        prop_assert_eq!(alloc.iter().sum::<u64>(), draws);
        for (a, s) in alloc.iter().zip(&sizes) {
            prop_assert!(a <= s);
        }
    }

    #[test]
    fn svt_budget_ratio_split_reconstructs_total(eps in 0.001f64..10.0, ratio in 0.01f64..1e4) {
        let b = SvtBudget::from_ratio(eps, ratio).unwrap();
        prop_assert!((b.total() - eps).abs() < 1e-9);
        prop_assert!((b.queries / b.threshold - ratio).abs() / ratio < 1e-9);
    }

    #[test]
    fn forked_rngs_are_reproducible(seed in any::<u64>()) {
        let mut a = DpRng::seed_from_u64(seed);
        let mut b = DpRng::seed_from_u64(seed);
        let mut ca = a.fork();
        let mut cb = b.fork();
        for _ in 0..16 {
            prop_assert_eq!(ca.uniform().to_bits(), cb.uniform().to_bits());
        }
    }
}
