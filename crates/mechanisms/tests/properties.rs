//! Property-based tests for the mechanism substrate.
//!
//! These check structural invariants (monotonicity, symmetry, inverse
//! relationships, conservation laws) over randomized inputs rather than
//! hand-picked examples.

use dp_mechanisms::exp_noise::Exponential;
use dp_mechanisms::exponential::ExponentialMechanism;
use dp_mechanisms::gumbel::Gumbel;
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::sample::BatchSample;
use dp_mechanisms::samplers::{
    sample_binomial, sample_hypergeometric, sample_multivariate_hypergeometric,
};
use dp_mechanisms::{fastmath, DpRng, NoiseKernel, SvtBudget};
use proptest::prelude::*;

fn scale_strategy() -> impl Strategy<Value = f64> {
    (0.01f64..1000.0).prop_map(|x| x)
}

proptest! {
    #[test]
    fn laplace_cdf_is_monotone(b in scale_strategy(), x in -1e4f64..1e4, dx in 0.0f64..1e3) {
        let l = Laplace::new(b).unwrap();
        prop_assert!(l.cdf(x) <= l.cdf(x + dx) + 1e-15);
    }

    #[test]
    fn laplace_cdf_survival_sum_to_one(b in scale_strategy(), x in -1e4f64..1e4) {
        let l = Laplace::new(b).unwrap();
        prop_assert!((l.cdf(x) + l.survival(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn laplace_quantile_inverts_cdf(b in scale_strategy(), p in 0.001f64..0.999) {
        let l = Laplace::new(b).unwrap();
        let x = l.quantile(p).unwrap();
        prop_assert!((l.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn laplace_pdf_is_symmetric(b in scale_strategy(), x in 0.0f64..1e3) {
        let l = Laplace::new(b).unwrap();
        prop_assert!((l.pdf(x) - l.pdf(-x)).abs() < 1e-15);
    }

    #[test]
    fn laplace_samples_are_finite(b in scale_strategy(), seed in any::<u64>()) {
        let l = Laplace::new(b).unwrap();
        let mut rng = DpRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(l.sample(&mut rng).is_finite());
        }
    }

    #[test]
    fn laplace_batched_sampling_is_bit_identical(
        b in scale_strategy(),
        seed in any::<u64>(),
        len in 1usize..600,
    ) {
        // The batched-noise pipeline must not change a single bit of any
        // experiment's noise stream.
        let l = Laplace::new(b).unwrap();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut batched_rng = DpRng::seed_from_u64(seed);
        let mut batched = vec![0.0; len];
        l.sample_into(&mut batched_rng, &mut batched);
        for (i, x) in batched.iter().enumerate() {
            prop_assert_eq!(x.to_bits(), l.sample(&mut scalar_rng).to_bits(), "index {}", i);
        }
        prop_assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64());
    }

    #[test]
    fn noise_buffer_is_batch_size_invariant(
        seed in any::<u64>(),
        batch in 1usize..64,
        draws in 1usize..200,
    ) {
        let l = Laplace::new(1.5).unwrap();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut buffered_rng = DpRng::seed_from_u64(seed);
        let mut buf = dp_mechanisms::NoiseBuffer::with_batch(batch);
        for _ in 0..draws {
            prop_assert_eq!(
                buf.next(&l, &mut buffered_rng).to_bits(),
                l.sample(&mut scalar_rng).to_bits()
            );
        }
    }

    #[test]
    fn batched_uniform_fills_are_bit_identical(seed in any::<u64>(), len in 1usize..400) {
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut batched_rng = DpRng::seed_from_u64(seed);
        let mut out = vec![0.0; len];
        batched_rng.fill_uniform(&mut out);
        for x in &out {
            prop_assert_eq!(x.to_bits(), scalar_rng.uniform().to_bits());
        }
        prop_assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64());
    }

    #[test]
    fn laplace_dp_pointwise_ratio(b in 0.1f64..100.0, x in -50.0f64..50.0, shift in 0.0f64..5.0) {
        // pdf(x)/pdf(x+shift) <= exp(shift/b): the defining DP inequality.
        let l = Laplace::new(b).unwrap();
        let lhs = l.pdf(x) / l.pdf(x + shift);
        prop_assert!(lhs <= (shift / b).exp() * (1.0 + 1e-12));
    }

    #[test]
    fn exponential_cdf_is_monotone(b in scale_strategy(), x in -1e3f64..1e4, dx in 0.0f64..1e3) {
        let e = Exponential::new(b).unwrap();
        prop_assert!(e.cdf(x) <= e.cdf(x + dx) + 1e-15);
    }

    #[test]
    fn exponential_cdf_survival_sum_to_one(b in scale_strategy(), x in -1e3f64..1e4) {
        let e = Exponential::new(b).unwrap();
        prop_assert!((e.cdf(x) + e.survival(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_quantile_inverts_cdf(b in scale_strategy(), p in 0.001f64..0.999) {
        let e = Exponential::new(b).unwrap();
        let x = e.quantile(p).unwrap();
        prop_assert!(x >= 0.0);
        prop_assert!((e.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn exponential_samples_are_nonnegative_and_finite(b in scale_strategy(), seed in any::<u64>()) {
        let e = Exponential::new(b).unwrap();
        let mut rng = DpRng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = e.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn exponential_batched_sampling_is_bit_identical(
        b in scale_strategy(),
        seed in any::<u64>(),
        len in 1usize..600,
    ) {
        // Same contract as Laplace: the batched pipeline must not change
        // a single bit of any experiment's noise stream.
        let e = Exponential::new(b).unwrap();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut batched_rng = DpRng::seed_from_u64(seed);
        let mut batched = vec![0.0; len];
        e.sample_into(&mut batched_rng, &mut batched);
        for (i, x) in batched.iter().enumerate() {
            prop_assert_eq!(x.to_bits(), e.sample(&mut scalar_rng).to_bits(), "index {}", i);
        }
        prop_assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64());
    }

    #[test]
    fn exponential_noise_buffer_is_batch_size_invariant(
        seed in any::<u64>(),
        batch in 1usize..64,
        draws in 1usize..200,
    ) {
        let e = Exponential::new(1.5).unwrap();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut buffered_rng = DpRng::seed_from_u64(seed);
        let mut buf = dp_mechanisms::NoiseBuffer::with_batch(batch);
        for _ in 0..draws {
            prop_assert_eq!(
                buf.next(&e, &mut buffered_rng).to_bits(),
                e.sample(&mut scalar_rng).to_bits()
            );
        }
    }

    #[test]
    fn exponential_one_sided_dp_ratio(b in 0.1f64..100.0, x in 0.0f64..50.0, shift in 0.001f64..5.0) {
        // Upward shifts have exactly the ratio exp(shift/b) on the
        // support — the inequality SVT's proof uses, met with equality.
        let e = Exponential::new(b).unwrap();
        let ratio = e.pdf(x) / e.pdf(x + shift);
        prop_assert!((ratio / (shift / b).exp() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gumbel_cdf_is_monotone(mu in -100.0f64..100.0, beta in scale_strategy(),
                              x in -1e3f64..1e3, dx in 0.0f64..1e2) {
        let g = Gumbel::new(mu, beta).unwrap();
        prop_assert!(g.cdf(x) <= g.cdf(x + dx) + 1e-15);
    }

    #[test]
    fn gumbel_batched_sampling_is_bit_identical(
        mu in -100.0f64..100.0,
        beta in scale_strategy(),
        seed in any::<u64>(),
        len in 1usize..600,
    ) {
        // Mirror of the Laplace property: the scratch-buffered EM path
        // must not change a single bit of any experiment's key stream.
        let g = Gumbel::new(mu, beta).unwrap();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut batched_rng = DpRng::seed_from_u64(seed);
        let mut batched = vec![0.0; len];
        g.sample_into(&mut batched_rng, &mut batched);
        for (i, x) in batched.iter().enumerate() {
            prop_assert_eq!(x.to_bits(), g.sample(&mut scalar_rng).to_bits(), "index {}", i);
        }
        prop_assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64());
    }

    #[test]
    fn gumbel_noise_buffer_is_batch_size_invariant(
        seed in any::<u64>(),
        batch in 1usize..64,
        draws in 1usize..200,
    ) {
        // The generic NoiseBuffer upholds the BatchSample contract for
        // Gumbel exactly as it does for Laplace: the handed-out stream
        // is a pure function of the generator, whatever the batch size.
        let g = Gumbel::standard();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut buffered_rng = DpRng::seed_from_u64(seed);
        let mut buf = dp_mechanisms::NoiseBuffer::with_batch(batch);
        for _ in 0..draws {
            prop_assert_eq!(
                buf.next(&g, &mut buffered_rng).to_bits(),
                g.sample(&mut scalar_rng).to_bits()
            );
        }
    }

    #[test]
    fn gumbel_max_first_key_is_the_ln_m_location_shift(
        mu in -100.0f64..100.0,
        beta in scale_strategy(),
        m in 1u64..1_000_000,
        seed in any::<u64>(),
    ) {
        // The max-stability identity the grouped EM sampler rests on:
        // inverting the base CDF at U^{1/m} equals inverting the
        // Gumbel(mu + beta ln m, beta) CDF at U. Deterministic pin —
        // replay the one uniform GumbelMax consumes and compare against
        // the analytically shifted transform.
        let base = Gumbel::new(mu, beta).unwrap();
        let mut rng = dp_mechanisms::DpRng::seed_from_u64(seed);
        let u = {
            let mut probe = rng.clone();
            probe.open_uniform()
        };
        let got = dp_mechanisms::GumbelMax::new(base, m)
            .unwrap()
            .next_key(&mut rng)
            .unwrap();
        let want = mu + beta * (m as f64).ln() - beta * (-u.ln()).ln();
        let tol = 1e-9 * (1.0 + want.abs());
        prop_assert!((got - want).abs() < tol, "m={}: {} vs {}", m, got, want);
    }

    #[test]
    fn gumbel_max_of_one_group_is_bit_identical_to_plain_sampling(
        mu in -100.0f64..100.0,
        beta in scale_strategy(),
        seed in any::<u64>(),
        draws in 1usize..32,
    ) {
        // Degenerate groups (all scores distinct => every group has
        // m = 1) must collapse to the per-item-key reference bit for
        // bit, consuming the same generator words.
        let g = Gumbel::new(mu, beta).unwrap();
        let mut plain_rng = dp_mechanisms::DpRng::seed_from_u64(seed);
        let mut grouped_rng = dp_mechanisms::DpRng::seed_from_u64(seed);
        for _ in 0..draws {
            let plain = g.sample(&mut plain_rng);
            let peeled = dp_mechanisms::GumbelMax::new(g, 1)
                .unwrap()
                .next_key(&mut grouped_rng)
                .unwrap();
            prop_assert_eq!(plain.to_bits(), peeled.to_bits());
        }
        prop_assert_eq!(plain_rng.next_u64(), grouped_rng.next_u64());
    }

    #[test]
    fn gumbel_max_order_statistics_descend_and_exhaust(
        m in 1u64..500,
        seed in any::<u64>(),
    ) {
        let mut top = dp_mechanisms::GumbelMax::new(Gumbel::standard(), m).unwrap();
        let mut rng = dp_mechanisms::DpRng::seed_from_u64(seed);
        let mut prev = f64::INFINITY;
        for _ in 0..m {
            let key = top.next_key(&mut rng).unwrap();
            prop_assert!(key.is_finite());
            prop_assert!(key < prev);
            prev = key;
        }
        prop_assert_eq!(top.next_key(&mut rng), None);
    }

    #[test]
    fn em_probabilities_sum_to_one(
        scores in prop::collection::vec(-1e5f64..1e5, 1..64),
        eps in 0.01f64..10.0,
    ) {
        let em = ExponentialMechanism::new(eps, 1.0).unwrap();
        let p = em.selection_probabilities(&scores).unwrap();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn em_probability_order_follows_score_order(
        scores in prop::collection::vec(-1e3f64..1e3, 2..32),
        eps in 0.01f64..5.0,
    ) {
        let em = ExponentialMechanism::new_monotonic(eps, 1.0).unwrap();
        let p = em.selection_probabilities(&scores).unwrap();
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if scores[i] > scores[j] {
                    prop_assert!(p[i] >= p[j] - 1e-12);
                }
            }
        }
    }

    #[test]
    fn em_peeling_never_repeats(
        scores in prop::collection::vec(-1e3f64..1e3, 1..64),
        c in 1usize..64,
        seed in any::<u64>(),
    ) {
        let em = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let mut rng = DpRng::seed_from_u64(seed);
        let picked = em.select_without_replacement(&scores, c, &mut rng).unwrap();
        prop_assert_eq!(picked.len(), c.min(scores.len()));
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), picked.len());
    }

    #[test]
    fn binomial_stays_in_range(n in 0u64..100_000, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = DpRng::seed_from_u64(seed);
        let k = sample_binomial(n, p, &mut rng).unwrap();
        prop_assert!(k <= n);
    }

    #[test]
    fn hypergeometric_stays_in_range(
        total in 1u64..10_000,
        succ_frac in 0.0f64..1.0,
        draw_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let successes = (total as f64 * succ_frac) as u64;
        let draws = (total as f64 * draw_frac) as u64;
        let mut rng = DpRng::seed_from_u64(seed);
        let h = sample_hypergeometric(total, successes, draws, &mut rng).unwrap();
        prop_assert!(h <= successes && h <= draws);
        // Can't miss more than the unmarked population allows.
        prop_assert!(h + (total - successes) >= draws);
    }

    #[test]
    fn multivariate_hypergeometric_conserves_draws(
        sizes in prop::collection::vec(0u64..1000, 1..16),
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let total: u64 = sizes.iter().sum();
        let draws = (total as f64 * frac) as u64;
        let mut rng = DpRng::seed_from_u64(seed);
        let alloc = sample_multivariate_hypergeometric(&sizes, draws, &mut rng).unwrap();
        prop_assert_eq!(alloc.iter().sum::<u64>(), draws);
        for (a, s) in alloc.iter().zip(&sizes) {
            prop_assert!(a <= s);
        }
    }

    #[test]
    fn svt_budget_ratio_split_reconstructs_total(eps in 0.001f64..10.0, ratio in 0.01f64..1e4) {
        let b = SvtBudget::from_ratio(eps, ratio).unwrap();
        prop_assert!((b.total() - eps).abs() < 1e-9);
        prop_assert!((b.queries / b.threshold - ratio).abs() / ratio < 1e-9);
    }

    #[test]
    fn forked_rngs_are_reproducible(seed in any::<u64>()) {
        let mut a = DpRng::seed_from_u64(seed);
        let mut b = DpRng::seed_from_u64(seed);
        let mut ca = a.fork();
        let mut cb = b.fork();
        for _ in 0..16 {
            prop_assert_eq!(ca.uniform().to_bits(), cb.uniform().to_bits());
        }
    }

    // ---- fastmath: the vectorized ln kernel ------------------------

    #[test]
    fn fastmath_ln_stays_within_1e12_over_the_full_exponent_range(
        mantissa in 1.0f64..2.0,
        exp in -1022i32..1023,
    ) {
        // The kernel contract: ≤ 1e-12 relative error against libm for
        // every normal input, whatever the exponent.
        let x = mantissa * 2f64.powi(exp);
        prop_assume!(x.is_finite() && x > 0.0);
        let want = x.ln();
        let got = fastmath::ln(x);
        let tol = 1e-12 * want.abs() + 1e-300;
        prop_assert!((got - want).abs() <= tol, "x={x:e}: {got} vs {want}");
    }

    #[test]
    fn fastmath_ln_handles_subnormal_adjacent_inputs(
        mantissa in 1.0f64..2.0,
        exp in -1074i32..-1010,
    ) {
        // Below 2⁻¹⁰²² the kernel rescales by 2⁵⁴ before extraction;
        // the accuracy bound must hold straight through the subnormal
        // range down to the smallest positive double.
        let x = mantissa * 2f64.powi(exp);
        prop_assume!(x > 0.0);
        let want = x.ln();
        let got = fastmath::ln(x);
        prop_assert!((got - want).abs() <= 1e-12 * want.abs(), "x={x:e}: {got} vs {want}");
    }

    #[test]
    fn fastmath_ln_is_monotone_across_separated_inputs(
        mantissa in 1.0f64..2.0,
        exp in -1000i32..1000,
        ratio in 1.0000000001f64..1e6,
    ) {
        // Strict order preservation for inputs separated by at least a
        // 1e-10 relative gap (the polynomial is not guaranteed monotone
        // within a couple of ulps, but must never reorder real gaps).
        let x = mantissa * 2f64.powi(exp);
        let y = x * ratio;
        prop_assume!(x > 0.0 && y.is_finite());
        prop_assert!(fastmath::ln(x) < fastmath::ln(y), "ln({x:e}) !< ln({y:e})");
    }

    #[test]
    fn fastmath_ln_into_is_bit_identical_to_scalar_ln(
        seed in any::<u64>(),
        len in 1usize..200,
    ) {
        // Chunk-boundary independence: the 8-lane batched fill and the
        // scalar remainder path must agree bit for bit with per-element
        // `ln` at every index, whatever the buffer length.
        let mut rng = DpRng::seed_from_u64(seed);
        let mut xs = vec![0.0; len];
        rng.fill_open_uniform(&mut xs);
        for (i, x) in xs.iter_mut().enumerate() {
            // Spread across exponents so lanes see dissimilar scales.
            *x *= 2f64.powi((i as i32 % 120) - 60);
        }
        let mut out = vec![0.0; len];
        fastmath::ln_into(&xs, &mut out);
        for (i, (&x, &got)) in xs.iter().zip(&out).enumerate() {
            prop_assert_eq!(got.to_bits(), fastmath::ln(x).to_bits(), "index {}", i);
        }
    }

    #[test]
    fn fastmath_ln_1p_stays_accurate_for_tiny_and_moderate_inputs(
        x in -0.9999f64..1e6,
    ) {
        let want = x.ln_1p();
        let got = fastmath::ln_1p(x);
        let tol = 1e-12 * want.abs() + 1e-300;
        prop_assert!((got - want).abs() <= tol, "x={x:e}: {got} vs {want}");
    }

    // ---- kernel policy: Reference vs Vectorized --------------------

    #[test]
    fn reference_kernel_dispatch_is_bit_identical_to_scalar(
        b in scale_strategy(),
        seed in any::<u64>(),
        len in 1usize..300,
    ) {
        // `sample_into_kernel(.., Reference)` is the pinned scalar
        // history: one bit of drift anywhere is a bug.
        let l = Laplace::new(b).unwrap();
        let mut scalar_rng = DpRng::seed_from_u64(seed);
        let mut kernel_rng = DpRng::seed_from_u64(seed);
        let mut out = vec![0.0; len];
        l.sample_into_kernel(&mut kernel_rng, &mut out, NoiseKernel::Reference);
        for (i, x) in out.iter().enumerate() {
            prop_assert_eq!(x.to_bits(), l.sample(&mut scalar_rng).to_bits(), "index {}", i);
        }
        prop_assert_eq!(scalar_rng.next_u64(), kernel_rng.next_u64());
    }

    #[test]
    fn vectorized_laplace_consumes_the_same_words_and_stays_close(
        b in scale_strategy(),
        seed in any::<u64>(),
        len in 1usize..300,
    ) {
        let l = Laplace::new(b).unwrap();
        let mut ref_rng = DpRng::seed_from_u64(seed);
        let mut vec_rng = DpRng::seed_from_u64(seed);
        let mut reference = vec![0.0; len];
        let mut vectorized = vec![0.0; len];
        l.sample_into(&mut ref_rng, &mut reference);
        l.sample_into_kernel(&mut vec_rng, &mut vectorized, NoiseKernel::Vectorized);
        prop_assert_eq!(ref_rng.next_u64(), vec_rng.next_u64(), "word streams diverged");
        for (i, (&r, &v)) in reference.iter().zip(&vectorized).enumerate() {
            let tol = 1e-11 * (r.abs() + b);
            prop_assert!((r - v).abs() <= tol, "index {}: {} vs {}", i, r, v);
        }
    }

    #[test]
    fn vectorized_exponential_consumes_the_same_words_and_stays_close(
        b in scale_strategy(),
        seed in any::<u64>(),
        len in 1usize..300,
    ) {
        let e = Exponential::new(b).unwrap();
        let mut ref_rng = DpRng::seed_from_u64(seed);
        let mut vec_rng = DpRng::seed_from_u64(seed);
        let mut reference = vec![0.0; len];
        let mut vectorized = vec![0.0; len];
        e.sample_into(&mut ref_rng, &mut reference);
        e.sample_into_kernel(&mut vec_rng, &mut vectorized, NoiseKernel::Vectorized);
        prop_assert_eq!(ref_rng.next_u64(), vec_rng.next_u64(), "word streams diverged");
        for (i, (&r, &v)) in reference.iter().zip(&vectorized).enumerate() {
            prop_assert!(v >= 0.0, "index {}: negative one-sided noise {}", i, v);
            let tol = 1e-11 * (r.abs() + b);
            prop_assert!((r - v).abs() <= tol, "index {}: {} vs {}", i, r, v);
        }
    }

    #[test]
    fn vectorized_gumbel_consumes_the_same_words_and_stays_close(
        mu in -100.0f64..100.0,
        beta in scale_strategy(),
        seed in any::<u64>(),
        len in 1usize..300,
    ) {
        let g = Gumbel::new(mu, beta).unwrap();
        let mut ref_rng = DpRng::seed_from_u64(seed);
        let mut vec_rng = DpRng::seed_from_u64(seed);
        let mut reference = vec![0.0; len];
        let mut vectorized = vec![0.0; len];
        g.sample_into(&mut ref_rng, &mut reference);
        g.sample_into_kernel(&mut vec_rng, &mut vectorized, NoiseKernel::Vectorized);
        prop_assert_eq!(ref_rng.next_u64(), vec_rng.next_u64(), "word streams diverged");
        for (i, (&r, &v)) in reference.iter().zip(&vectorized).enumerate() {
            // Two composed logs: one extra rounding layer vs Laplace.
            let tol = 1e-10 * (r.abs() + beta + mu.abs());
            prop_assert!((r - v).abs() <= tol, "index {}: {} vs {}", i, r, v);
        }
    }

    #[test]
    fn chunked_noise_stream_is_thread_count_invariant(
        b in scale_strategy(),
        seed in any::<u64>(),
        threads in 2usize..6,
        draws in 1usize..400,
    ) {
        // The intra-run parallelism contract: the chunked stream is a
        // pure function of the base seed, so any thread count replays
        // the single-threaded stream bit for bit.
        let l = Laplace::new(b).unwrap();
        let mut single_rng = DpRng::seed_from_u64(seed);
        let mut multi_rng = DpRng::seed_from_u64(seed);
        let mut single = dp_mechanisms::NoiseBuffer::new();
        single.enable_chunked(1);
        let mut multi = dp_mechanisms::NoiseBuffer::new();
        multi.enable_chunked(threads);
        for i in 0..draws {
            prop_assert_eq!(
                single.next(&l, &mut single_rng).to_bits(),
                multi.next(&l, &mut multi_rng).to_bits(),
                "draw {}", i
            );
        }
    }
}
