//! Property coverage for the ledger WAL: arbitrary receipt sequences
//! encode → truncate / corrupt at arbitrary byte positions → `replay`
//! either recovers a verified prefix or names the exact corrupt record.
//! No input may panic the decoder.

use dp_mechanisms::ledger::BudgetLedger;
use dp_mechanisms::wal::{
    replay_records, CorruptKind, FsyncPolicy, LedgerWal, MemSink, WalError, RECORD_SIZE,
};
use proptest::prelude::*;

/// Expands one opaque word into a (tenant, session, ε) charge: a few
/// tenants, small sessions, ε small enough that long runs still fit the
/// registered total.
fn decode_op(word: u64) -> (u64, u64, f64) {
    let tenant = word % 5;
    let session = (word >> 3) % 64;
    let eps = 0.001 + (word >> 9) as f64 % 97.0 / 100.0;
    (tenant, session, eps)
}

/// Encodes the op sequence through a real `LedgerWal`, registering each
/// tenant (budget 1000, ample) on first sight. Returns the log bytes
/// and the cumulative ε acknowledged after each *record* (index `r` =
/// spend state once `r` records are durable), for prefix checks.
fn build_log(ops: &[u64]) -> (Vec<u8>, Vec<std::collections::BTreeMap<u64, f64>>) {
    let sink = MemSink::new();
    let mut wal = LedgerWal::with_sink(Box::new(sink.clone()), FsyncPolicy::Manual);
    let mut ledgers: std::collections::BTreeMap<u64, BudgetLedger> = Default::default();
    let mut spent_after: Vec<std::collections::BTreeMap<u64, f64>> = vec![Default::default()];
    let spend_now = |ledgers: &std::collections::BTreeMap<u64, BudgetLedger>| {
        ledgers
            .iter()
            .map(|(t, l)| (*t, l.spent()))
            .collect::<std::collections::BTreeMap<u64, f64>>()
    };
    for &word in ops {
        let (tenant, session, eps) = decode_op(word);
        if let std::collections::btree_map::Entry::Vacant(slot) = ledgers.entry(tenant) {
            wal.append_tenant(tenant, 1000.0).unwrap();
            slot.insert(BudgetLedger::new(tenant, 1000.0).unwrap());
            spent_after.push(spend_now(&ledgers));
        }
        let receipt = ledgers
            .get_mut(&tenant)
            .unwrap()
            .charge(session, "proptest charge", eps)
            .unwrap()
            .clone();
        wal.append_charge(&receipt).unwrap();
        spent_after.push(spend_now(&ledgers));
    }
    (sink.bytes(), spent_after)
}

proptest! {
    /// Truncating an honest log at *any* byte boundary recovers exactly
    /// the whole-record prefix, chain-verified, with the remainder
    /// reported as a torn tail — never an error, never a panic.
    #[test]
    fn truncation_recovers_a_verified_prefix(
        ops in prop::collection::vec(any::<u64>(), 1..40usize),
        cut_word in any::<u64>(),
    ) {
        let (bytes, spent_after) = build_log(&ops);
        let cut = (cut_word as usize) % (bytes.len() + 1);
        let replay = replay_records(&bytes[..cut]).unwrap();
        let whole = cut / RECORD_SIZE;
        prop_assert_eq!(replay.records, whole);
        prop_assert_eq!(replay.torn_tail_bytes, cut % RECORD_SIZE);
        prop_assert_eq!(replay.valid_len as usize, whole * RECORD_SIZE);
        // The recovered spend per tenant is exactly the acknowledged
        // spend at that record boundary (bit-equal: same charges,
        // same order).
        let want = &spent_after[whole];
        prop_assert_eq!(replay.ledgers.len(), want.len());
        for (tenant, ledger) in &replay.ledgers {
            prop_assert_eq!(ledger.spent().to_bits(), want[tenant].to_bits());
            ledger.verify_chain().unwrap();
        }
    }

    /// Flipping one byte either surfaces as a hard `CorruptRecord`
    /// naming exactly the damaged record (mid-log) or drops the final
    /// record as a torn tail — and never panics.
    #[test]
    fn byte_flip_is_attributed_to_the_exact_record(
        ops in prop::collection::vec(any::<u64>(), 1..30usize),
        pos_word in any::<u64>(),
        flip in 1..256u64,
    ) {
        let (mut bytes, _) = build_log(&ops);
        let pos = (pos_word as usize) % bytes.len();
        bytes[pos] ^= flip as u8;
        let damaged = pos / RECORD_SIZE;
        let total = bytes.len() / RECORD_SIZE;
        match replay_records(&bytes) {
            Ok(replay) => {
                // Only the final record may be silently dropped, and
                // only as a torn tail.
                prop_assert_eq!(damaged, total - 1);
                prop_assert_eq!(replay.records, total - 1);
                prop_assert_eq!(replay.torn_tail_bytes, RECORD_SIZE);
            }
            Err(WalError::CorruptRecord { index, offset, kind }) => {
                prop_assert_eq!(index, damaged);
                prop_assert_eq!(offset as usize, damaged * RECORD_SIZE);
                prop_assert_eq!(kind, CorruptKind::BadCrc);
            }
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
        }
    }

    /// Arbitrary byte soup never panics the decoder: it replays to an
    /// (almost always empty) prefix or reports a structured error.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in prop::collection::vec(any::<u64>(), 0..80usize),
        pad in 0..8usize,
    ) {
        let mut soup: Vec<u8> = bytes.iter().flat_map(|w| w.to_le_bytes()).collect();
        soup.truncate(soup.len().saturating_sub(pad));
        let _ = replay_records(&soup);
    }
}

/// The exhaustive version of the truncation property: one fixed
/// workload, every single byte boundary.
#[test]
fn every_byte_boundary_truncation_is_clean() {
    let ops: Vec<u64> = (0..12u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
    let (bytes, spent_after) = build_log(&ops);
    assert!(bytes.len() >= 12 * RECORD_SIZE);
    for cut in 0..=bytes.len() {
        let replay = replay_records(&bytes[..cut])
            .unwrap_or_else(|e| panic!("cut {cut}: replay failed: {e}"));
        let whole = cut / RECORD_SIZE;
        assert_eq!(replay.records, whole, "cut {cut}");
        assert_eq!(replay.torn_tail_bytes, cut % RECORD_SIZE, "cut {cut}");
        for (tenant, ledger) in &replay.ledgers {
            assert_eq!(
                ledger.spent().to_bits(),
                spent_after[whole][tenant].to_bits(),
                "cut {cut} tenant {tenant}"
            );
            ledger.verify_chain().unwrap();
        }
    }
}
