//! Privacy-budget accounting and the `ε₁/ε₂/ε₃` split used by SVT.
//!
//! Differential privacy composes sequentially: running mechanisms with
//! budgets `ε₁, …, ε_m` on the same data satisfies `(Σεᵢ)`-DP. A
//! [`BudgetAccountant`] tracks that sum against a total and refuses
//! charges that would exceed it — the discipline the paper's interactive
//! setting depends on.
//!
//! [`SvtBudget`] captures the three-way split of Algorithm 7:
//! `ε₁` perturbs the threshold, `ε₂` perturbs the query answers, and an
//! optional `ε₃` releases numeric answers for above-threshold queries.
//! The ratio `ε₁:ε₂` is the subject of the paper's Section 4.2
//! optimization (implemented in `svt-core::allocation`).

use crate::error::MechanismError;
use crate::Result;

/// Whether a charge of `epsilon` fits a budget with `spent` of `total`
/// already consumed, under the workspace-wide floating-point tolerance.
///
/// Shared by [`BudgetAccountant`] and
/// [`BudgetLedger`](crate::ledger::BudgetLedger) so both enforce the
/// same overdraw rule (e.g. three charges of `0.1` fill a total of
/// `0.3` even though `0.1 × 3 ≠ 0.3` in binary).
#[inline]
#[must_use]
pub fn charge_fits(total: f64, spent: f64, epsilon: f64) -> bool {
    const TOLERANCE: f64 = 1e-12;
    spent + epsilon <= total * (1.0 + TOLERANCE) + TOLERANCE
}

/// One entry in a [`BudgetAccountant`] ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetCharge {
    /// Human-readable description of what consumed the budget.
    pub label: String,
    /// The `ε` consumed.
    pub epsilon: f64,
}

/// Tracks sequential composition against a fixed total `ε`.
#[derive(Debug, Clone)]
pub struct BudgetAccountant {
    total: f64,
    spent: f64,
    ledger: Vec<BudgetCharge>,
}

impl BudgetAccountant {
    /// Creates an accountant with the given total budget.
    ///
    /// # Errors
    /// Rejects non-positive or non-finite totals.
    pub fn new(total_epsilon: f64) -> Result<Self> {
        crate::error::check_epsilon(total_epsilon)?;
        Ok(Self {
            total: total_epsilon,
            spent: 0.0,
            ledger: Vec::new(),
        })
    }

    /// The configured total budget.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The budget consumed so far.
    #[inline]
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// The budget still available (never negative).
    #[inline]
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Records a charge of `epsilon` attributed to `label`.
    ///
    /// # Errors
    /// [`MechanismError::BudgetExhausted`] if the charge does not fit
    /// (within a small floating-point tolerance);
    /// [`MechanismError::InvalidEpsilon`] on a non-positive charge.
    pub fn charge(&mut self, label: &str, epsilon: f64) -> Result<()> {
        crate::error::check_epsilon(epsilon)?;
        if !charge_fits(self.total, self.spent, epsilon) {
            return Err(MechanismError::BudgetExhausted {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        self.spent += epsilon;
        self.ledger.push(BudgetCharge {
            label: label.to_owned(),
            epsilon,
        });
        Ok(())
    }

    /// The full charge history, in order.
    pub fn ledger(&self) -> &[BudgetCharge] {
        &self.ledger
    }
}

/// The `ε₁/ε₂/ε₃` decomposition of an SVT invocation (Algorithm 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvtBudget {
    /// `ε₁` — perturbs the threshold (`ρ = Lap(Δ/ε₁)`).
    pub threshold: f64,
    /// `ε₂` — perturbs query answers (`ν = Lap(2cΔ/ε₂)`).
    pub queries: f64,
    /// `ε₃` — optional numeric release for positive queries
    /// (`Lap(cΔ/ε₃)`); `0` disables numeric outputs.
    pub numeric: f64,
}

impl SvtBudget {
    /// Builds a budget from explicit parts.
    ///
    /// # Errors
    /// `threshold` and `queries` must be positive and finite; `numeric`
    /// must be non-negative and finite.
    pub fn new(threshold: f64, queries: f64, numeric: f64) -> Result<Self> {
        crate::error::check_epsilon(threshold)?;
        crate::error::check_epsilon(queries)?;
        if !(numeric.is_finite() && numeric >= 0.0) {
            return Err(MechanismError::InvalidParameter(
                "numeric budget must be finite and non-negative",
            ));
        }
        Ok(Self {
            threshold,
            queries,
            numeric,
        })
    }

    /// The classic even split `ε₁ = ε₂ = ε/2`, `ε₃ = 0` — what most SVT
    /// variants in the literature use (Fig. 2 row 1).
    ///
    /// # Errors
    /// Rejects a non-positive or non-finite total.
    pub fn halves(total_epsilon: f64) -> Result<Self> {
        crate::error::check_epsilon(total_epsilon)?;
        Self::new(total_epsilon / 2.0, total_epsilon / 2.0, 0.0)
    }

    /// Splits `total_epsilon` as `ε₁ : ε₂ = 1 : ratio` with `ε₃ = 0`.
    ///
    /// # Errors
    /// Rejects non-positive totals or ratios.
    pub fn from_ratio(total_epsilon: f64, ratio: f64) -> Result<Self> {
        crate::error::check_epsilon(total_epsilon)?;
        if !(ratio.is_finite() && ratio > 0.0) {
            return Err(MechanismError::InvalidParameter(
                "budget ratio must be positive and finite",
            ));
        }
        let threshold = total_epsilon / (1.0 + ratio);
        let queries = total_epsilon - threshold;
        Self::new(threshold, queries, 0.0)
    }

    /// Total `ε` consumed by the SVT invocation (`ε₁ + ε₂ + ε₃`,
    /// Theorem 4).
    #[inline]
    pub fn total(&self) -> f64 {
        self.threshold + self.queries + self.numeric
    }

    /// The indicator-phase budget `ε₁ + ε₂` (what the ⊤/⊥ vector costs).
    #[inline]
    pub fn indicator(&self) -> f64 {
        self.threshold + self.queries
    }

    /// Whether the numeric output phase is enabled.
    #[inline]
    pub fn has_numeric_phase(&self) -> bool {
        self.numeric > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accountant_tracks_and_refuses_overdraw() {
        let mut acct = BudgetAccountant::new(1.0).unwrap();
        acct.charge("svt indicator", 0.6).unwrap();
        assert!((acct.spent() - 0.6).abs() < 1e-12);
        assert!((acct.remaining() - 0.4).abs() < 1e-12);
        let err = acct.charge("numeric", 0.5).unwrap_err();
        assert!(matches!(err, MechanismError::BudgetExhausted { .. }));
        // The failed charge must not be recorded.
        assert_eq!(acct.ledger().len(), 1);
        acct.charge("numeric", 0.4).unwrap();
        assert!(acct.remaining() < 1e-9);
    }

    #[test]
    fn accountant_tolerates_floating_point_exact_fill() {
        let mut acct = BudgetAccountant::new(0.3).unwrap();
        // 0.1 * 3 != 0.3 exactly in binary; the tolerance must absorb it.
        for _ in 0..3 {
            acct.charge("third", 0.1).unwrap();
        }
    }

    #[test]
    fn accountant_rejects_invalid_charges() {
        let mut acct = BudgetAccountant::new(1.0).unwrap();
        assert!(acct.charge("zero", 0.0).is_err());
        assert!(acct.charge("nan", f64::NAN).is_err());
        assert!(BudgetAccountant::new(-1.0).is_err());
    }

    #[test]
    fn ledger_preserves_labels_and_order() {
        let mut acct = BudgetAccountant::new(1.0).unwrap();
        acct.charge("a", 0.25).unwrap();
        acct.charge("b", 0.25).unwrap();
        let labels: Vec<&str> = acct.ledger().iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, vec!["a", "b"]);
    }

    #[test]
    fn halves_split_evenly() {
        let b = SvtBudget::halves(0.5).unwrap();
        assert!((b.threshold - 0.25).abs() < 1e-12);
        assert!((b.queries - 0.25).abs() < 1e-12);
        assert_eq!(b.numeric, 0.0);
        assert!(!b.has_numeric_phase());
        assert!((b.total() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ratio_split_matches_definition() {
        // 1:3 split (Alg. 4's choice): ε₁ = ε/4.
        let b = SvtBudget::from_ratio(1.0, 3.0).unwrap();
        assert!((b.threshold - 0.25).abs() < 1e-12);
        assert!((b.queries - 0.75).abs() < 1e-12);
        assert!((b.indicator() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_split_rejects_bad_ratios() {
        assert!(SvtBudget::from_ratio(1.0, 0.0).is_err());
        assert!(SvtBudget::from_ratio(1.0, f64::INFINITY).is_err());
        assert!(SvtBudget::from_ratio(0.0, 1.0).is_err());
    }

    #[test]
    fn numeric_phase_counts_toward_total() {
        let b = SvtBudget::new(0.2, 0.3, 0.5).unwrap();
        assert!(b.has_numeric_phase());
        assert!((b.total() - 1.0).abs() < 1e-12);
        assert!((b.indicator() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_numeric_budget_rejected() {
        assert!(SvtBudget::new(0.2, 0.3, -0.1).is_err());
        assert!(SvtBudget::new(0.2, 0.3, f64::NAN).is_err());
    }
}
