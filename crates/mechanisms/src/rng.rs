//! Seedable, forkable randomness for reproducible experiments.
//!
//! Every mechanism in the workspace draws randomness through [`DpRng`]
//! rather than a thread-local generator. This guarantees that
//!
//! 1. every experiment is reproducible from a single `u64` master seed,
//!    regardless of thread count (parallel runners [`fork`](DpRng::fork)
//!    one child per run), and
//! 2. the statistical tests in `dp-auditor` can re-run a mechanism under
//!    identical conditions.
//!
//! The implementation wraps [`rand::rngs::StdRng`] (a cryptographically
//! strong PRNG), which is more than adequate for simulation; for a
//! *deployed* DP system one would want an OS entropy source, available
//! here through [`DpRng::from_entropy`].

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The 53-bit uniform grid step: draws are `(w >> 11) · 2⁻⁵³`, matching
/// the scalar `f64` path of the `rand` shim bit for bit.
const UNIT_53: f64 = 1.0 / (1u64 << 53) as f64;

/// Stack-chunk size for the batched fills. One chunk is eight ChaCha
/// blocks; bigger buys nothing because the fills already amortize the
/// per-block bounds check.
const FILL_CHUNK: usize = 128;

/// Derives the seed for the `index`-th member of a counter-based
/// family rooted at `base`: a SplitMix64 step (golden-ratio increment,
/// then the finalizer) over `base + (index+1)·φ64`.
///
/// This is how the workspace turns one drawn `u64` into arbitrarily
/// many independent, **order-free** child seeds: the sweep runner keys
/// per-run generators by `(cell seed, run index)`, and
/// [`crate::NoiseBuffer`]'s chunked mode keys per-chunk noise
/// generators by `(run base seed, chunk index)` — so chunk `k` can be
/// filled by any thread, in any order, and the assembled stream is
/// bit-identical to the single-threaded fill.
#[inline]
pub fn counter_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seedable, forkable random source used by all mechanisms.
#[derive(Debug, Clone)]
pub struct DpRng {
    inner: StdRng,
}

impl DpRng {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a generator seeded from operating-system entropy.
    pub fn from_entropy() -> Self {
        Self {
            inner: StdRng::from_os_rng(),
        }
    }

    /// Splits off an independent child generator.
    ///
    /// The child's stream is a deterministic function of the parent's
    /// state, so forking `n` children up front and handing one to each
    /// parallel worker yields results independent of scheduling order.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.inner.random::<u64>())
    }

    /// A uniform draw from `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// A uniform draw from the *open* interval `(0, 1)`.
    ///
    /// Used wherever a logarithm of the draw (or of its complement) is
    /// taken, so that sampling can never produce `±∞`.
    #[inline]
    pub fn open_uniform(&mut self) -> f64 {
        loop {
            let u = self.inner.random::<f64>();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// A uniform index in `0..n`. `n` must be nonzero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "index() requires a nonempty range");
        self.inner.random_range(0..n)
    }

    /// A uniform `u64` in `0..n`. `n` must be nonzero.
    #[inline]
    pub fn index_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "index_u64() requires a nonempty range");
        self.inner.random_range(0..n)
    }

    /// A raw 64-bit draw (used for deriving child seeds and hashing).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random::<u64>()
    }

    /// Fills `out` with raw 64-bit draws — the same sequence repeated
    /// [`next_u64`](Self::next_u64) calls would produce, generated
    /// block-wise (one bounds check per 16-word ChaCha block).
    #[inline]
    pub fn fill_u64s(&mut self, out: &mut [u64]) {
        self.inner.fill_u64s(out);
    }

    /// Fills `out` with uniform draws from `[0, 1)`.
    ///
    /// Bit-identical to `for x in out { *x = rng.uniform() }` for the
    /// same generator state, including the words consumed.
    pub fn fill_uniform(&mut self, out: &mut [f64]) {
        let mut words = [0u64; FILL_CHUNK];
        for part in out.chunks_mut(FILL_CHUNK) {
            let w = &mut words[..part.len()];
            self.inner.fill_u64s(w);
            for (slot, &word) in part.iter_mut().zip(w.iter()) {
                *slot = (word >> 11) as f64 * UNIT_53;
            }
        }
    }

    /// Fills `out` with uniform draws from the *open* interval `(0, 1)`.
    ///
    /// Bit-identical to `for x in out { *x = rng.open_uniform() }`: each
    /// refill fetches exactly as many words as slots remain, and a zero
    /// draw (probability 2⁻⁵³ per word) consumes its word and retries,
    /// exactly as the scalar rejection loop does — so the generator ends
    /// in the same state either way.
    pub fn fill_open_uniform(&mut self, out: &mut [f64]) {
        let mut words = [0u64; FILL_CHUNK];
        let mut filled = 0;
        while filled < out.len() {
            let need = (out.len() - filled).min(FILL_CHUNK);
            let w = &mut words[..need];
            self.inner.fill_u64s(w);
            for &word in w.iter() {
                let u = (word >> 11) as f64 * UNIT_53;
                if u > 0.0 {
                    out[filled] = u;
                    filled += 1;
                }
            }
        }
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// In-place Fisher–Yates shuffle.
    ///
    /// The paper's evaluation (§6) randomizes the order in which items
    /// are examined on every run; this is the shuffle it uses.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Forward ("to-front") Fisher–Yates shuffle.
    ///
    /// Produces a uniformly random permutation like
    /// [`shuffle`](Self::shuffle), but draws front-to-back, so the first
    /// `k` elements are fully determined by the first `k` position
    /// draws. Streaming consumers exploit this to shuffle *lazily* —
    /// advancing one [`shuffle_step`](Self::shuffle_step) per item
    /// examined and stopping at an early abort — with the guarantee that
    /// the lazily generated prefix equals this full shuffle's prefix for
    /// the same generator state.
    pub fn shuffle_forward<T>(&mut self, slice: &mut [T]) {
        for i in 0..slice.len().saturating_sub(1) {
            self.shuffle_step(slice, i);
        }
    }

    /// One step of the forward Fisher–Yates shuffle: places a uniform
    /// choice of `slice[i..]` at position `i` (drawing nothing when `i`
    /// is the last index). After calling this for `i = 0..k`, the first
    /// `k` elements match what [`shuffle_forward`](Self::shuffle_forward)
    /// would have produced from the same state.
    #[inline]
    pub fn shuffle_step<T>(&mut self, slice: &mut [T], i: usize) {
        debug_assert!(i < slice.len(), "shuffle_step index out of range");
        let remaining = slice.len() - i;
        if remaining > 1 {
            let j = i + self.index(remaining);
            slice.swap(i, j);
        }
    }

    /// A standard normal draw via the Box–Muller transform.
    ///
    /// Used only by the large-`n` binomial approximation in
    /// [`crate::samplers`]; DP noise itself is always Laplace or Gumbel.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.open_uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_seed_is_pure_and_disperses() {
        assert_eq!(counter_seed(7, 3), counter_seed(7, 3));
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for idx in 0..128 {
                seen.insert(counter_seed(base, idx));
            }
        }
        // SplitMix64 finalization: no collisions across these families.
        assert_eq!(seen.len(), 4 * 128);
    }

    #[test]
    fn identical_seeds_produce_identical_streams() {
        let mut a = DpRng::seed_from_u64(42);
        let mut b = DpRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DpRng::seed_from_u64(1);
        let mut b = DpRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent_a = DpRng::seed_from_u64(7);
        let mut parent_b = DpRng::seed_from_u64(7);
        let mut child_a = parent_a.fork();
        let mut child_b = parent_b.fork();
        assert_eq!(child_a.uniform().to_bits(), child_b.uniform().to_bits());
        // Forking advances the parent, so parent and child streams differ.
        let mut parent_c = DpRng::seed_from_u64(7);
        let mut child_c = parent_c.fork();
        assert_ne!(parent_c.uniform().to_bits(), child_c.uniform().to_bits());
    }

    #[test]
    fn open_uniform_is_strictly_inside_unit_interval() {
        let mut rng = DpRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.open_uniform();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = DpRng::seed_from_u64(5);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-0.5));
        assert!(rng.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_matches_probability_roughly() {
        let mut rng = DpRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DpRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_moves_elements() {
        let mut rng = DpRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let fixed = v
            .iter()
            .enumerate()
            .filter(|(i, &x)| *i as u32 == x)
            .count();
        assert!(fixed < 20, "too many fixed points: {fixed}");
    }

    #[test]
    fn fill_uniform_matches_scalar_stream() {
        let mut scalar = DpRng::seed_from_u64(31);
        let mut batched = DpRng::seed_from_u64(31);
        for len in [0usize, 1, 7, 127, 128, 129, 1000] {
            let want: Vec<u64> = (0..len).map(|_| scalar.uniform().to_bits()).collect();
            let mut got = vec![0.0f64; len];
            batched.fill_uniform(&mut got);
            let got_bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got_bits, want, "len {len}");
        }
        // Lockstep afterwards: identical words were consumed.
        assert_eq!(scalar.next_u64(), batched.next_u64());
    }

    #[test]
    fn fill_open_uniform_matches_scalar_stream() {
        let mut scalar = DpRng::seed_from_u64(37);
        let mut batched = DpRng::seed_from_u64(37);
        for len in [1usize, 64, 300] {
            let want: Vec<u64> = (0..len).map(|_| scalar.open_uniform().to_bits()).collect();
            let mut got = vec![0.0f64; len];
            batched.fill_open_uniform(&mut got);
            let got_bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got_bits, want, "len {len}");
        }
        assert_eq!(scalar.next_u64(), batched.next_u64());
    }

    #[test]
    fn fill_u64s_matches_next_u64() {
        let mut scalar = DpRng::seed_from_u64(41);
        let mut batched = DpRng::seed_from_u64(41);
        let want: Vec<u64> = (0..500).map(|_| scalar.next_u64()).collect();
        let mut got = vec![0u64; 500];
        batched.fill_u64s(&mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn shuffle_forward_is_a_permutation() {
        let mut rng = DpRng::seed_from_u64(47);
        let mut v: Vec<u32> = (0..200).collect();
        rng.shuffle_forward(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..200).collect::<Vec<_>>());
        let fixed = v
            .iter()
            .enumerate()
            .filter(|(i, &x)| *i as u32 == x)
            .count();
        assert!(fixed < 30, "too many fixed points: {fixed}");
    }

    #[test]
    fn lazy_shuffle_prefix_equals_full_shuffle_prefix() {
        // The property the streaming engines rely on: stepping the
        // forward shuffle k times pins down the same first k elements as
        // running it to completion.
        for k in [0usize, 1, 3, 10, 99, 100] {
            let mut full_rng = DpRng::seed_from_u64(53);
            let mut lazy_rng = DpRng::seed_from_u64(53);
            let mut full: Vec<u32> = (0..100).collect();
            let mut lazy: Vec<u32> = (0..100).collect();
            full_rng.shuffle_forward(&mut full);
            for i in 0..k.min(lazy.len()) {
                lazy_rng.shuffle_step(&mut lazy, i);
            }
            assert_eq!(lazy[..k.min(100)], full[..k.min(100)], "k={k}");
        }
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = DpRng::seed_from_u64(13);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
