//! Seedable, forkable randomness for reproducible experiments.
//!
//! Every mechanism in the workspace draws randomness through [`DpRng`]
//! rather than a thread-local generator. This guarantees that
//!
//! 1. every experiment is reproducible from a single `u64` master seed,
//!    regardless of thread count (parallel runners [`fork`](DpRng::fork)
//!    one child per run), and
//! 2. the statistical tests in `dp-auditor` can re-run a mechanism under
//!    identical conditions.
//!
//! The implementation wraps [`rand::rngs::StdRng`] (a cryptographically
//! strong PRNG), which is more than adequate for simulation; for a
//! *deployed* DP system one would want an OS entropy source, available
//! here through [`DpRng::from_entropy`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable, forkable random source used by all mechanisms.
#[derive(Debug, Clone)]
pub struct DpRng {
    inner: StdRng,
}

impl DpRng {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a generator seeded from operating-system entropy.
    pub fn from_entropy() -> Self {
        Self {
            inner: StdRng::from_os_rng(),
        }
    }

    /// Splits off an independent child generator.
    ///
    /// The child's stream is a deterministic function of the parent's
    /// state, so forking `n` children up front and handing one to each
    /// parallel worker yields results independent of scheduling order.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.inner.random::<u64>())
    }

    /// A uniform draw from `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// A uniform draw from the *open* interval `(0, 1)`.
    ///
    /// Used wherever a logarithm of the draw (or of its complement) is
    /// taken, so that sampling can never produce `±∞`.
    #[inline]
    pub fn open_uniform(&mut self) -> f64 {
        loop {
            let u = self.inner.random::<f64>();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// A uniform index in `0..n`. `n` must be nonzero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "index() requires a nonempty range");
        self.inner.random_range(0..n)
    }

    /// A uniform `u64` in `0..n`. `n` must be nonzero.
    #[inline]
    pub fn index_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "index_u64() requires a nonempty range");
        self.inner.random_range(0..n)
    }

    /// A raw 64-bit draw (used for deriving child seeds and hashing).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random::<u64>()
    }

    /// A Bernoulli draw with success probability `p` (clamped to [0,1]).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// In-place Fisher–Yates shuffle.
    ///
    /// The paper's evaluation (§6) randomizes the order in which items
    /// are examined on every run; this is the shuffle it uses.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// A standard normal draw via the Box–Muller transform.
    ///
    /// Used only by the large-`n` binomial approximation in
    /// [`crate::samplers`]; DP noise itself is always Laplace or Gumbel.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.open_uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_produce_identical_streams() {
        let mut a = DpRng::seed_from_u64(42);
        let mut b = DpRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DpRng::seed_from_u64(1);
        let mut b = DpRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent_a = DpRng::seed_from_u64(7);
        let mut parent_b = DpRng::seed_from_u64(7);
        let mut child_a = parent_a.fork();
        let mut child_b = parent_b.fork();
        assert_eq!(child_a.uniform().to_bits(), child_b.uniform().to_bits());
        // Forking advances the parent, so parent and child streams differ.
        let mut parent_c = DpRng::seed_from_u64(7);
        let mut child_c = parent_c.fork();
        assert_ne!(parent_c.uniform().to_bits(), child_c.uniform().to_bits());
    }

    #[test]
    fn open_uniform_is_strictly_inside_unit_interval() {
        let mut rng = DpRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.open_uniform();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = DpRng::seed_from_u64(5);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-0.5));
        assert!(rng.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_matches_probability_roughly() {
        let mut rng = DpRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DpRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_moves_elements() {
        let mut rng = DpRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let fixed = v
            .iter()
            .enumerate()
            .filter(|(i, &x)| *i as u32 == x)
            .count();
        assert!(fixed < 20, "too many fixed points: {fixed}");
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = DpRng::seed_from_u64(13);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
