//! The one-sided exponential distribution.
//!
//! The accuracy-enhanced SVT of arXiv:2407.20068 replaces the two-sided
//! Laplace perturbations with *one-sided* exponential noise: both the
//! threshold perturbation `ρ` and the per-query perturbation `ν` are
//! drawn from `Exp(b)` supported on `[0, ∞)`. The SVT privacy proof only
//! ever shifts `ρ` and `ν` *upwards* by the sensitivity, and for the
//! exponential density `f(x)/f(x + Δ) = exp(Δ/b)` exactly, so the same
//! scales that make Laplace-SVT `ε`-DP keep exponential-SVT `ε`-DP while
//! halving the noise variance at equal scale.
//!
//! Convention: `Exp(b)` denotes the exponential distribution with *scale*
//! `b` (mean `b`, rate `1/b`), i.e. density `f(x) = exp(-x/b)/b` on
//! `x ≥ 0`.
//!
//! Not to be confused with [`crate::ExponentialMechanism`], the
//! McSherry–Talwar selection mechanism, which shares nothing with this
//! module but the name.

use crate::error::MechanismError;
use crate::fastmath;
use crate::rng::DpRng;
use crate::sample::BatchSample;
use crate::Result;

/// A one-sided exponential distribution with scale `b > 0` on `[0, ∞)`.
///
/// ```
/// use dp_mechanisms::{DpRng, Exponential};
///
/// // Threshold noise for a Δ = 1 counting query under ε₁ = 0.5: Exp(2).
/// let noise = Exponential::for_query(1.0, 0.5)?;
/// assert_eq!(noise.scale(), 2.0);
///
/// // Analytic support:
/// assert_eq!(noise.cdf(0.0), 0.0);
/// assert!((noise.survival(2.0) - (-1.0f64).exp()).abs() < 1e-15);
///
/// // Samples are non-negative and deterministic given a seeded rng.
/// let mut rng = DpRng::seed_from_u64(7);
/// let x = noise.sample(&mut rng);
/// assert!(x.is_finite() && x >= 0.0);
/// # Ok::<(), dp_mechanisms::MechanismError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    scale: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given scale.
    ///
    /// # Errors
    /// Returns [`MechanismError::InvalidScale`] unless `scale` is finite
    /// and strictly positive.
    pub fn new(scale: f64) -> Result<Self> {
        if scale.is_finite() && scale > 0.0 {
            Ok(Self { scale })
        } else {
            Err(MechanismError::InvalidScale(scale))
        }
    }

    /// The exponential noise whose one-sided likelihood ratio matches a
    /// query of the given `sensitivity` under `epsilon`: `Exp(Δ/ε)`, the
    /// same scale [`crate::Laplace::for_query`] would use.
    pub fn for_query(sensitivity: f64, epsilon: f64) -> Result<Self> {
        crate::error::check_sensitivity(sensitivity)?;
        crate::error::check_epsilon(epsilon)?;
        Self::new(sensitivity / epsilon)
    }

    /// The scale parameter `b` (also the mean).
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The mean, `b`.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.scale
    }

    /// The variance, `b²` — half of `Lap(b)`'s `2b²`.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.scale * self.scale
    }

    /// The standard deviation, `b`.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.scale
    }

    /// Density `f(x) = exp(-x/b)/b` for `x ≥ 0`, zero below.
    #[inline]
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            (-x / self.scale).exp() / self.scale
        }
    }

    /// Distribution function `F(x) = P[X ≤ x] = 1 − exp(-x/b)` for
    /// `x ≥ 0`, zero below.
    #[inline]
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            -(-x / self.scale).exp_m1()
        }
    }

    /// Survival function `P[X ≥ x] = exp(-x/b)` for `x ≥ 0`, one below —
    /// exact even in the deep tail (no `1 − F` cancellation).
    #[inline]
    pub fn survival(&self, x: f64) -> f64 {
        if x < 0.0 {
            1.0
        } else {
            (-x / self.scale).exp()
        }
    }

    /// Quantile function: the unique `x ≥ 0` with `F(x) = p`, for
    /// `p ∈ (0,1)`: `-b·ln(1-p)`.
    ///
    /// # Errors
    /// Returns [`MechanismError::InvalidProbability`] when `p` is outside
    /// the open unit interval.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(p > 0.0 && p < 1.0) {
            return Err(MechanismError::InvalidProbability(p));
        }
        Ok(-self.scale * (-p).ln_1p())
    }

    /// Draws one sample by inverse-CDF transform.
    #[inline]
    pub fn sample(&self, rng: &mut DpRng) -> f64 {
        // u uniform on (0,1); x = -b · ln(1 − u). open_uniform() keeps
        // the argument of ln strictly positive, so the sample is always
        // finite and non-negative.
        let u = rng.open_uniform();
        Self::transform(self.scale, u)
    }

    /// The inverse-CDF transform shared by the scalar and batched paths;
    /// `u` is uniform on `(0, 1)`.
    ///
    /// Uses `ln_1p(-u)` rather than `ln(1 - u)` (mirroring
    /// [`Self::quantile`] and the categorical sampler's fix): for the
    /// 53-bit grid uniforms `DpRng` produces, `1 − u` is exactly
    /// representable and the two agree to the last bit, but `ln_1p`
    /// keeps full precision for *any* `u`, including subnormal-adjacent
    /// values where `1.0 - u` would round to `1.0` and collapse the
    /// sample to zero.
    #[inline]
    fn transform(scale: f64, u: f64) -> f64 {
        -scale * (-u).ln_1p()
    }

    /// Fills `out` with independent samples.
    ///
    /// Bit-identical to `for x in out { *x = dist.sample(rng) }` for the
    /// same generator state — the underlying uniforms are drawn through
    /// the block-wise [`DpRng::fill_open_uniform`], which consumes the
    /// identical word sequence — but amortizes the per-draw RNG
    /// bookkeeping (the [`BatchSample`] contract).
    pub fn sample_into(&self, rng: &mut DpRng, out: &mut [f64]) {
        rng.fill_open_uniform(out);
        for x in out.iter_mut() {
            *x = Self::transform(self.scale, *x);
        }
    }

    /// The vectorized fill: same uniforms as
    /// [`sample_into`](Self::sample_into) through the batched
    /// polynomial log. For 53-bit grid uniforms `1 − u` is exactly
    /// representable (no `ln_1p` needed on this path), strictly
    /// positive, and normal, so the whole batch takes
    /// [`fastmath::ln_in_place`]'s fast lane.
    pub fn sample_into_vectorized(&self, rng: &mut DpRng, out: &mut [f64]) {
        rng.fill_open_uniform(out);
        for x in out.iter_mut() {
            *x = 1.0 - *x;
        }
        fastmath::ln_in_place(out);
        let scale = self.scale;
        for x in out.iter_mut() {
            *x *= -scale;
        }
    }
}

impl BatchSample for Exponential {
    #[inline]
    fn sample_one(&self, rng: &mut DpRng) -> f64 {
        self.sample(rng)
    }

    #[inline]
    fn sample_into(&self, rng: &mut DpRng, out: &mut [f64]) {
        Exponential::sample_into(self, rng, out);
    }

    #[inline]
    fn sample_into_vectorized(&self, rng: &mut DpRng, out: &mut [f64]) {
        Exponential::sample_into_vectorized(self, rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplace::NoiseBuffer;

    fn exp(b: f64) -> Exponential {
        Exponential::new(b).unwrap()
    }

    #[test]
    fn construction_rejects_bad_scales() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
        assert!(Exponential::new(1e-12).is_ok());
    }

    #[test]
    fn for_query_divides_sensitivity_by_epsilon() {
        let e = Exponential::for_query(2.0, 0.5).unwrap();
        assert!((e.scale() - 4.0).abs() < 1e-12);
        assert!(Exponential::for_query(0.0, 0.5).is_err());
        assert!(Exponential::for_query(1.0, 0.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let e = exp(1.7);
        // Trapezoid rule over [0, 40b]; the support starts at 0.
        let (lo, hi, steps) = (0.0, 40.0 * 1.7, 400_000);
        let h = (hi - lo) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let x = lo + i as f64 * h;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * e.pdf(x);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-6, "integral {total}");
    }

    #[test]
    fn density_vanishes_below_the_support() {
        let e = exp(2.0);
        assert_eq!(e.pdf(-0.001), 0.0);
        assert_eq!(e.cdf(-0.001), 0.0);
        assert_eq!(e.survival(-0.001), 1.0);
    }

    #[test]
    fn cdf_matches_known_values() {
        let e = exp(2.0);
        assert_eq!(e.cdf(0.0), 0.0);
        // F(b·ln 2) = 1 - exp(-ln 2) = 0.5: the median is b·ln 2.
        assert!((e.cdf(2.0 * std::f64::consts::LN_2) - 0.5).abs() < 1e-12);
        // F(b) = 1 - 1/e.
        assert!((e.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn survival_complements_cdf() {
        let e = exp(0.9);
        for &x in &[-3.0, 0.0, 0.1, 0.9, 3.0, 30.0] {
            assert!((e.cdf(x) + e.survival(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn survival_avoids_cancellation_in_deep_tail() {
        let e = exp(1.0);
        let s = e.survival(400.0);
        assert!(s > 0.0, "deep tail must stay positive, got {s}");
        let expected = (-400.0f64).exp();
        assert!((s / expected - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let e = exp(3.3);
        for &p in &[1e-9, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-9] {
            let x = e.quantile(p).unwrap();
            assert!(x >= 0.0, "p={p}");
            assert!((e.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
        assert!(e.quantile(0.0).is_err());
        assert!(e.quantile(1.0).is_err());
        assert!(e.quantile(-0.2).is_err());
        assert!(e.quantile(f64::NAN).is_err());
    }

    #[test]
    fn samples_are_nonnegative_and_finite() {
        let e = exp(5.0);
        let mut rng = DpRng::seed_from_u64(13);
        let mut xs = vec![0.0; 10_000];
        e.sample_into(&mut rng, &mut xs);
        assert!(xs.iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    #[test]
    fn sample_moments_match_theory() {
        let e = exp(2.5);
        let mut rng = DpRng::seed_from_u64(17);
        let n = 200_000;
        let mut xs = vec![0.0; n];
        e.sample_into(&mut rng, &mut xs);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean / e.mean() - 1.0).abs() < 0.02, "mean {mean}");
        assert!((var / e.variance() - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn sample_empirical_cdf_matches_analytic() {
        let e = exp(1.0);
        let mut rng = DpRng::seed_from_u64(23);
        let n = 100_000;
        let mut xs = vec![0.0; n];
        e.sample_into(&mut rng, &mut xs);
        for &x in &[0.1, 0.5, 1.0, 2.0, 4.0] {
            let emp = xs.iter().filter(|&&v| v <= x).count() as f64 / n as f64;
            assert!((emp - e.cdf(x)).abs() < 0.01, "x={x}: emp {emp}");
        }
    }

    #[test]
    fn sample_into_is_bit_identical_to_scalar_sampling() {
        let e = exp(3.7);
        for len in [1usize, 8, 255, 256, 257, 5000] {
            let mut scalar_rng = DpRng::seed_from_u64(977);
            let mut batched_rng = DpRng::seed_from_u64(977);
            let want: Vec<u64> = (0..len)
                .map(|_| e.sample(&mut scalar_rng).to_bits())
                .collect();
            let mut got = vec![0.0; len];
            e.sample_into(&mut batched_rng, &mut got);
            let got_bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got_bits, want, "len {len}");
            // Both generators must also land in the same state.
            assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64(), "len {len}");
        }
    }

    #[test]
    fn noise_buffer_stream_is_independent_of_batch_size() {
        let e = exp(2.0);
        let draws = 700;
        let reference: Vec<u64> = {
            let mut rng = DpRng::seed_from_u64(991);
            (0..draws).map(|_| e.sample(&mut rng).to_bits()).collect()
        };
        for batch in [1usize, 2, 17, 256, 1024] {
            let mut rng = DpRng::seed_from_u64(991);
            let mut buf = NoiseBuffer::with_batch(batch);
            let got: Vec<u64> = (0..draws)
                .map(|_| buf.next(&e, &mut rng).to_bits())
                .collect();
            assert_eq!(got, reference, "batch {batch}");
        }
    }

    #[test]
    fn noise_buffer_prefetch_preserves_the_stream() {
        let e = exp(2.0);
        let draws = 500;
        let reference: Vec<u64> = {
            let mut rng = DpRng::seed_from_u64(991);
            (0..draws).map(|_| e.sample(&mut rng).to_bits()).collect()
        };
        let mut rng = DpRng::seed_from_u64(991);
        let mut buf = NoiseBuffer::with_batch(16);
        let mut got = Vec::with_capacity(draws);
        let mut i = 0usize;
        for (k, take) in [(0usize, 3usize), (40, 10), (5, 60), (1, 7), (300, 420)] {
            buf.prefetch(&e, &mut rng, k);
            assert!(buf.buffered() >= k);
            for _ in 0..take {
                got.push(buf.next(&e, &mut rng).to_bits());
                i += 1;
            }
        }
        assert_eq!(i, draws);
        assert_eq!(got, reference);
    }

    #[test]
    fn transform_keeps_precision_at_extreme_uniforms() {
        // Regression for the ln(1 - u) → ln_1p(-u) fix: near u = 0 the
        // old expression rounds 1 - u to 1.0 and collapses the sample
        // to exactly zero; ln_1p keeps the leading term u·b.
        for &u in &[1e-20f64, 1e-18, 2.5e-17] {
            let x = Exponential::transform(4.0, u);
            assert!(x > 0.0, "u={u} collapsed to {x}");
            assert!((x / (4.0 * u) - 1.0).abs() < 1e-12, "u={u}: {x}");
            assert_eq!((1.0 - u).ln(), 0.0, "u={u} would collapse under ln(1-u)");
        }
        // And at the other extreme the tail stays finite and huge.
        let near_one = 1.0 - 2f64.powi(-53);
        let x = Exponential::transform(1.0, near_one);
        assert!(x.is_finite() && x > 36.0, "tail sample {x}");
    }

    #[test]
    fn vectorized_fill_consumes_same_words_and_stays_within_bound() {
        let e = exp(3.7);
        for len in [1usize, 8, 64, 1000] {
            let mut ref_rng = DpRng::seed_from_u64(977);
            let mut vec_rng = DpRng::seed_from_u64(977);
            let mut reference = vec![0.0; len];
            let mut fast = vec![0.0; len];
            e.sample_into(&mut ref_rng, &mut reference);
            e.sample_into_vectorized(&mut vec_rng, &mut fast);
            assert_eq!(ref_rng.next_u64(), vec_rng.next_u64(), "len {len}");
            for (i, (r, f)) in reference.iter().zip(&fast).enumerate() {
                assert!(*f >= 0.0, "len {len} i {i}");
                let rel = if *r == 0.0 {
                    (f - r).abs()
                } else {
                    ((f - r) / r).abs()
                };
                assert!(rel <= 1e-12, "len {len} i {i}: ref {r} vec {f}");
            }
        }
    }

    #[test]
    fn one_sided_dp_ratio_is_exact() {
        // The property SVT's proof leans on: for upward shifts the
        // likelihood ratio is *exactly* exp(Δ/b) everywhere on the
        // support (downward shifts are unbounded — the proof never
        // needs them).
        let e = exp(1.0);
        let delta = 1.0;
        let bound = (delta / e.scale()).exp();
        for i in 0..200 {
            let x = i as f64 * 0.25;
            let ratio = e.pdf(x) / e.pdf(x + delta);
            assert!((ratio - bound).abs() < 1e-9, "x={x} ratio={ratio}");
        }
    }

    #[test]
    fn variance_is_half_of_laplace_at_equal_scale() {
        let b = 3.0;
        let e = exp(b);
        let l = crate::Laplace::new(b).unwrap();
        assert!((e.variance() * 2.0 - l.variance()).abs() < 1e-12);
    }
}
