//! Report-noisy-max baselines.
//!
//! These are not used by the paper's headline experiments but serve two
//! purposes in this reproduction:
//!
//! 1. **Ablation baseline** — report-noisy-max with Laplace noise is the
//!    other classic private-selection primitive; the benches compare it
//!    against EM peeling.
//! 2. **Equivalence witness** — report-noisy-max with *Gumbel* noise is
//!    exactly one round of the Exponential Mechanism, and taking the
//!    top-`c` Gumbel-perturbed scores in one shot is distributionally
//!    identical to `c` rounds of EM peeling (each round with the same
//!    exponent factor). The tests in this module and the
//!    `selection` bench exercise that equivalence.

use crate::error::MechanismError;
use crate::gumbel::Gumbel;
use crate::laplace::Laplace;
use crate::rng::DpRng;
use crate::Result;

fn check_scores(scores: &[f64]) -> Result<()> {
    if scores.is_empty() {
        return Err(MechanismError::EmptyCandidates);
    }
    for (index, &score) in scores.iter().enumerate() {
        if !score.is_finite() {
            return Err(MechanismError::NonFiniteScore { index, score });
        }
    }
    Ok(())
}

/// Report-noisy-max with Laplace noise: returns
/// `argmax_i (scores[i] + Lap(2Δ/ε))`.
///
/// Satisfies `ε`-DP for counting-style queries with sensitivity `Δ`.
///
/// # Errors
/// Invalid `ε`/`Δ`, empty candidates, or non-finite scores.
pub fn noisy_argmax_laplace(
    scores: &[f64],
    sensitivity: f64,
    epsilon: f64,
    rng: &mut DpRng,
) -> Result<usize> {
    check_scores(scores)?;
    let noise = Laplace::for_query(2.0 * sensitivity, epsilon)?;
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, &q) in scores.iter().enumerate() {
        let key = q + noise.sample(rng);
        if key > best.1 {
            best = (i, key);
        }
    }
    Ok(best.0)
}

/// One-shot Gumbel top-`c`: perturbs every score with
/// `Gumbel(0, kΔ/ε_round)` noise (`k = 2` general, `k = 1` monotonic) and
/// returns the indices of the `c` largest perturbed scores, in
/// decreasing perturbed order.
///
/// This is distributionally identical to `c` rounds of Exponential
/// Mechanism peeling where each round uses budget `ε_round`, hence it
/// satisfies `c·ε_round`-DP — but it costs a single pass instead of `c`.
///
/// # Errors
/// Invalid `ε`/`Δ`, empty candidates, or non-finite scores.
pub fn gumbel_top_c(
    scores: &[f64],
    sensitivity: f64,
    epsilon_per_round: f64,
    monotonic: bool,
    c: usize,
    rng: &mut DpRng,
) -> Result<Vec<usize>> {
    check_scores(scores)?;
    crate::error::check_epsilon(epsilon_per_round)?;
    crate::error::check_sensitivity(sensitivity)?;
    let k = if monotonic { 1.0 } else { 2.0 };
    let beta = k * sensitivity / epsilon_per_round;
    let gumbel = Gumbel::new(0.0, beta)?;
    let mut keyed: Vec<(f64, usize)> = scores
        .iter()
        .enumerate()
        .map(|(i, &q)| (q + gumbel.sample(rng), i))
        .collect();
    let take = c.min(keyed.len());
    // Partial selection: move the top `take` keys to the front, then sort
    // just that prefix for a deterministic decreasing order.
    let pivot = take.saturating_sub(1);
    keyed.select_nth_unstable_by(pivot, |a, b| {
        b.0.partial_cmp(&a.0).expect("perturbed scores are finite")
    });
    let mut head: Vec<(f64, usize)> = keyed[..take].to_vec();
    head.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    Ok(head.into_iter().map(|(_, i)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::ExponentialMechanism;

    #[test]
    fn noisy_argmax_prefers_the_largest_score() {
        let scores = [0.0, 0.0, 50.0, 0.0];
        let mut rng = DpRng::seed_from_u64(83);
        let hits = (0..2000)
            .filter(|_| noisy_argmax_laplace(&scores, 1.0, 1.0, &mut rng).unwrap() == 2)
            .count();
        assert!(hits > 1900, "hits {hits}");
    }

    #[test]
    fn noisy_argmax_validates_input() {
        let mut rng = DpRng::seed_from_u64(89);
        assert!(noisy_argmax_laplace(&[], 1.0, 1.0, &mut rng).is_err());
        assert!(noisy_argmax_laplace(&[1.0], 0.0, 1.0, &mut rng).is_err());
        assert!(noisy_argmax_laplace(&[1.0], 1.0, -1.0, &mut rng).is_err());
        assert!(noisy_argmax_laplace(&[f64::INFINITY], 1.0, 1.0, &mut rng).is_err());
    }

    #[test]
    fn gumbel_top_c_returns_distinct_indices_in_order() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut rng = DpRng::seed_from_u64(97);
        let picked = gumbel_top_c(&scores, 1.0, 5.0, true, 10, &mut rng).unwrap();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn gumbel_top_c_with_c_beyond_n_returns_all() {
        let scores = [5.0, 1.0];
        let mut rng = DpRng::seed_from_u64(101);
        let picked = gumbel_top_c(&scores, 1.0, 1.0, false, 7, &mut rng).unwrap();
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn first_gumbel_pick_matches_em_selection_distribution() {
        // The first element of gumbel_top_c must follow the EM
        // distribution with the same exponent factor.
        let scores = [0.0, 1.0, 2.0];
        let em = ExponentialMechanism::new_monotonic(1.0, 1.0).unwrap();
        let probs = em.selection_probabilities(&scores).unwrap();
        let mut rng = DpRng::seed_from_u64(103);
        let trials = 60_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            let picked = gumbel_top_c(&scores, 1.0, 1.0, true, 1, &mut rng).unwrap();
            counts[picked[0]] += 1;
        }
        for i in 0..3 {
            let f = counts[i] as f64 / trials as f64;
            assert!((f - probs[i]).abs() < 0.012, "i={i}: {f} vs {}", probs[i]);
        }
    }

    #[test]
    fn gumbel_top_c_matches_em_peeling_in_distribution() {
        // Compare the full selected-set distribution on a small instance:
        // 4 candidates, c = 2 → 12 ordered outcomes. Chi-square-ish check
        // with generous tolerance.
        let scores = [0.0, 0.5, 1.0, 1.5];
        let mut rng = DpRng::seed_from_u64(107);
        let em = ExponentialMechanism::new_monotonic(1.0, 1.0).unwrap();
        let trials = 40_000;
        let key = |v: &[usize]| v[0] * 4 + v[1];
        let mut peel_counts = [0usize; 16];
        let mut shot_counts = [0usize; 16];
        for _ in 0..trials {
            let a = em.select_without_replacement(&scores, 2, &mut rng).unwrap();
            peel_counts[key(&a)] += 1;
            let b = gumbel_top_c(&scores, 1.0, 1.0, true, 2, &mut rng).unwrap();
            shot_counts[key(&b)] += 1;
        }
        for i in 0..16 {
            let p = peel_counts[i] as f64 / trials as f64;
            let s = shot_counts[i] as f64 / trials as f64;
            assert!(
                (p - s).abs() < 0.015,
                "outcome {i}: peel {p} vs one-shot {s}"
            );
        }
    }
}
