//! Batched, auto-vectorizable elementary functions for the noise
//! kernels.
//!
//! The per-item cost of every simulation engine is dominated by the
//! `ln()` inside the Laplace / Gumbel / Exponential inverse-CDF
//! transforms. The libm `ln` is correctly rounded but scalar: one call
//! per draw, opaque to the auto-vectorizer. This module provides a
//! polynomial `ln` whose inner loop is written so LLVM can vectorize it
//! (no branches, no table lookups, no calls — only IEEE `+ − × ÷` on
//! lane-independent data), trading the last two ulps of accuracy for
//! several-fold throughput on batched fills.
//!
//! ## Algorithm
//!
//! The classic atanh-series reduction (fdlibm lineage):
//!
//! ```text
//! x = 2^k · m,  m ∈ [√2/2, √2)        (exponent-field extraction,
//!                                       one conditional halving)
//! s = (m − 1)/(m + 1),  z = s²         (|s| ≤ 0.1716, z ≤ 0.0295)
//! ln m = 2·atanh(s) = 2s·(1 + z/3 + z²/5 + … + z⁷/15)
//! ln x = k·LN2_HI + (ln m + k·LN2_LO)
//! ```
//!
//! `LN2_HI` has 21 trailing zero bits, so `k·LN2_HI` is exact for every
//! exponent a finite `f64` can have; `LN2_LO` restores the discarded
//! low bits of `ln 2`. Truncating the odd series after `z⁷` leaves a
//! relative truncation error below `z⁸/17 ≈ 3.3·10⁻¹⁴`; together with
//! rounding, the **relative error is bounded by 1e-12** over the whole
//! positive range (subnormals included — they are rescaled by `2⁵⁴`
//! first), which the proptest matrix pins against the libm `ln`. In
//! practice the observed error is a few ulps (≲ 1e-15).
//!
//! ## Determinism
//!
//! Every operation is a plain IEEE-754 double operation in a fixed
//! order — no FMA contraction (`mul_add` is never used), no
//! platform-dependent libm call, no lookup table. Rust guarantees
//! strict IEEE semantics for `+ − × ÷`, so the result for a given input
//! is bit-identical on every platform, at every optimization level, and
//! under any vector width the compiler picks: vectorization reorders
//! *lanes*, never the operations within one. That is what lets the
//! [`NoiseKernel::Vectorized`](crate::NoiseKernel) policy promise
//! cross-platform, cross-thread-count reproducibility.
//!
//! Each output element depends only on its own input element (the
//! 8-wide chunking below is purely a dispatch granularity: both the
//! fast chunk body and the scalar fallback compute the identical
//! per-value function), so results are independent of how a buffer is
//! split into batches — pinned by the chunk-boundary proptest.

/// Dispatch width of the batched loops: per 8-element chunk the fills
/// check that every lane is a positive *normal* float and then run the
/// branch-free core, which LLVM unrolls/vectorizes. Non-finite, zero,
/// negative, and subnormal lanes fall back to the total scalar path
/// (same per-value results, handled edge cases).
pub const LANES: usize = 8;

/// High part of `ln 2` (≈ 0.693147180369): 21 trailing zero mantissa
/// bits make `k·LN2_HI` exact for any `f64` exponent `k`.
const LN2_HI: f64 = f64::from_bits(0x3FE6_2E42_FEE0_0000);
/// Low part of `ln 2` (≈ 1.9082149293e-10): `LN2_HI + LN2_LO` is
/// `ln 2` to ~107 bits.
const LN2_LO: f64 = f64::from_bits(0x3DEA_39EF_3579_3C76);

/// `2⁵⁴`, the subnormal rescale factor (exact).
const TWO_54: f64 = 18_014_398_509_481_984.0;

const MANT_MASK: u64 = 0x000F_FFFF_FFFF_FFFF;
const ONE_BITS: u64 = 0x3FF0_0000_0000_0000;

/// Is `x` eligible for the branch-free core? Positive normal finite —
/// the comparison is false for NaN, `±0`, negatives, subnormals and
/// `+∞`, exactly the inputs that need special handling.
#[inline(always)]
fn is_core(x: f64) -> bool {
    (f64::MIN_POSITIVE..=f64::MAX).contains(&x)
}

/// The branch-free core: natural log of a positive normal `x`.
/// `e_adjust` shifts the extracted exponent (used by the subnormal
/// rescale); pass 0 for normal inputs.
#[inline(always)]
fn ln_core(x: f64, e_adjust: i64) -> f64 {
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7FF) as i64 - 1023 + e_adjust;
    let mut m = f64::from_bits((bits & MANT_MASK) | ONE_BITS);
    // Reduce m from [1, 2) to [√2/2, √2) so |ln m| ≤ ½·ln 2 — both
    // arms are selects, not branches.
    let high = m > std::f64::consts::SQRT_2;
    m = if high { 0.5 * m } else { m };
    e += high as i64;
    let s = (m - 1.0) / (m + 1.0);
    let z = s * s;
    // Odd atanh series in Horner form; coefficients 2/(2i+1).
    let poly = 2.0 / 3.0
        + z * (2.0 / 5.0
            + z * (2.0 / 7.0
                + z * (2.0 / 9.0 + z * (2.0 / 11.0 + z * (2.0 / 13.0 + z * (2.0 / 15.0))))));
    let ln_m = 2.0 * s + s * z * poly;
    let k = e as f64;
    k * LN2_HI + (ln_m + k * LN2_LO)
}

/// Natural logarithm, scalar entry point. Identical per-value results
/// to the batched fills (they dispatch to the same core), with the
/// full IEEE edge-case surface:
///
/// * `ln(+∞) = +∞`, `ln(NaN) = NaN`
/// * `ln(±0) = −∞`, `ln(x<0) = NaN`
/// * subnormal `x` is rescaled by `2⁵⁴` and the exponent re-based,
///   so the deep range loses no accuracy.
#[inline]
pub fn ln(x: f64) -> f64 {
    if is_core(x) {
        ln_core(x, 0)
    } else if x > 0.0 {
        if x == f64::INFINITY {
            f64::INFINITY
        } else {
            // Positive subnormal: rescale into the normal range.
            ln_core(x * TWO_54, -54)
        }
    } else if x == 0.0 {
        f64::NEG_INFINITY
    } else {
        // Negative or NaN.
        f64::NAN
    }
}

/// `ln(1 + x)` without cancellation for small `|x|`, via the
/// high-precision correction trick: with `w = fl(1 + x)`,
/// `ln(1+x) ≈ ln(w) · (x / (w − 1))` — the factor cancels the rounding
/// committed by `1 + x` to first order. For `w == 1` (i.e. `|x|`
/// below half an ulp of 1) the answer is `x` itself.
///
/// Matches the accuracy contract of [`ln`]; used by the vectorized
/// one-sided exponential transform where the reference path calls the
/// libm `ln_1p`.
#[inline]
pub fn ln_1p(x: f64) -> f64 {
    let w = 1.0 + x;
    if w == 1.0 {
        // |x| < 2⁻⁵³ (or x == 0): ln(1+x) = x to double precision.
        x
    } else {
        ln(w) * (x / (w - 1.0))
    }
}

/// Fills `out[i] = ln(xs[i])` for every `i`.
///
/// Results are a pure per-element function of the input — bit-identical
/// to calling [`ln`] element-wise, and therefore independent of chunk
/// boundaries, buffer length, or how a larger fill was split.
///
/// # Panics
/// If the slices differ in length.
pub fn ln_into(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "ln_into: length mismatch");
    let mut x_chunks = xs.chunks_exact(LANES);
    let mut o_chunks = out.chunks_exact_mut(LANES);
    for (xc, oc) in (&mut x_chunks).zip(&mut o_chunks) {
        if xc.iter().all(|&x| is_core(x)) {
            for j in 0..LANES {
                oc[j] = ln_core(xc[j], 0);
            }
        } else {
            for j in 0..LANES {
                oc[j] = ln(xc[j]);
            }
        }
    }
    for (x, o) in x_chunks
        .remainder()
        .iter()
        .zip(o_chunks.into_remainder().iter_mut())
    {
        *o = ln(*x);
    }
}

/// In-place variant of [`ln_into`]: `buf[i] = ln(buf[i])`.
pub fn ln_in_place(buf: &mut [f64]) {
    let mut chunks = buf.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        if chunk.iter().all(|&x| is_core(x)) {
            for x in chunk.iter_mut() {
                *x = ln_core(*x, 0);
            }
        } else {
            for x in chunk.iter_mut() {
                *x = ln(*x);
            }
        }
    }
    for x in chunks.into_remainder() {
        *x = ln(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The documented relative-error bound.
    const REL_BOUND: f64 = 1e-12;

    fn rel_err(fast: f64, exact: f64) -> f64 {
        if exact == 0.0 {
            fast.abs()
        } else {
            ((fast - exact) / exact).abs()
        }
    }

    #[test]
    fn split_ln2_constants_have_the_pinned_bit_patterns() {
        // The exactness argument for k·LN2_HI depends on these exact
        // bits (21 trailing zeros in the HI mantissa).
        assert_eq!(LN2_HI.to_bits(), 0x3FE6_2E42_FEE0_0000);
        assert_eq!(LN2_LO.to_bits(), 0x3DEA_39EF_3579_3C76);
        assert_eq!(
            (LN2_HI + LN2_LO).to_bits(),
            std::f64::consts::LN_2.to_bits()
        );
    }

    #[test]
    fn matches_libm_within_bound_at_fixed_points() {
        for &x in &[
            1e-300,
            2.2e-308,
            1e-10,
            0.1,
            0.5,
            std::f64::consts::FRAC_1_SQRT_2,
            0.99999999,
            1.0,
            1.00000001,
            1.5,
            2.0,
            std::f64::consts::E,
            10.0,
            1e5,
            1e10,
            1e300,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let fast = ln(x);
            let exact = x.ln();
            assert!(
                rel_err(fast, exact) <= REL_BOUND,
                "x={x:e}: fast={fast:e} libm={exact:e}"
            );
        }
        assert_eq!(ln(1.0), 0.0);
    }

    #[test]
    fn edge_cases_match_ieee() {
        assert_eq!(ln(f64::INFINITY), f64::INFINITY);
        assert_eq!(ln(0.0), f64::NEG_INFINITY);
        assert_eq!(ln(-0.0), f64::NEG_INFINITY);
        assert!(ln(-1.0).is_nan());
        assert!(ln(f64::NEG_INFINITY).is_nan());
        assert!(ln(f64::NAN).is_nan());
        // Smallest subnormal: rescale path, still within bound.
        let tiny = f64::from_bits(1);
        assert!(
            rel_err(ln(tiny), tiny.ln()) <= REL_BOUND,
            "ln(min subnormal)"
        );
    }

    #[test]
    fn ln_1p_is_accurate_for_tiny_and_moderate_arguments() {
        for &x in &[
            -0.999999, -0.5, -1e-8, -1e-17, -2.5e-300, 0.0, 3.0e-300, 1e-17, 1e-8, 0.5, 3.0,
        ] {
            let fast = ln_1p(x);
            let exact = x.ln_1p();
            assert!(
                rel_err(fast, exact) <= REL_BOUND,
                "x={x:e}: fast={fast:e} libm={exact:e}"
            );
        }
        // x = −1 → ln 0 = −∞; below → NaN.
        assert_eq!(ln_1p(-1.0), f64::NEG_INFINITY);
        assert!(ln_1p(-1.5).is_nan());
    }

    #[test]
    fn batched_fill_handles_mixed_special_chunks() {
        // A chunk holding specials takes the fallback lane-by-lane but
        // must still produce the identical per-value results.
        let xs = [
            1.0,
            0.0,
            -3.0,
            f64::INFINITY,
            f64::NAN,
            f64::from_bits(7), // subnormal
            2.5,
            1e-320,
            0.3,
            9.9,
        ];
        let mut out = [0.0; 10];
        ln_into(&xs, &mut out);
        for (i, (&x, &o)) in xs.iter().zip(out.iter()).enumerate() {
            let want = ln(x);
            assert!(
                o.to_bits() == want.to_bits(),
                "lane {i}: batched {o:?} != scalar {want:?}"
            );
        }
    }

    #[test]
    fn in_place_matches_out_of_place() {
        let xs: Vec<f64> = (1..200).map(|i| i as f64 * 0.37).collect();
        let mut a = vec![0.0; xs.len()];
        ln_into(&xs, &mut a);
        let mut b = xs.clone();
        ln_in_place(&mut b);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ln_into_rejects_mismatched_lengths() {
        let mut out = [0.0; 3];
        ln_into(&[1.0, 2.0], &mut out);
    }
}
