//! Error type shared by every mechanism in the substrate.
//!
//! Mechanisms never panic on bad user input: invalid privacy parameters,
//! empty candidate sets, and exhausted budgets are all surfaced as
//! [`MechanismError`] values so callers (interactive sessions in
//! particular) can react gracefully.

use std::fmt;

/// Errors produced by differential-privacy mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub enum MechanismError {
    /// A privacy parameter `ε` was not strictly positive and finite.
    InvalidEpsilon(f64),
    /// A noise scale was not strictly positive and finite.
    InvalidScale(f64),
    /// A sensitivity `Δ` was not strictly positive and finite.
    InvalidSensitivity(f64),
    /// A probability argument fell outside `[0, 1]`.
    InvalidProbability(f64),
    /// A selection mechanism was invoked on an empty candidate set.
    EmptyCandidates,
    /// A scored candidate was not a finite number.
    NonFiniteScore {
        /// Index of the offending candidate.
        index: usize,
        /// The non-finite score value.
        score: f64,
    },
    /// A budget charge exceeded the remaining privacy budget.
    BudgetExhausted {
        /// The `ε` that was requested.
        requested: f64,
        /// The `ε` still available.
        remaining: f64,
    },
    /// A structurally invalid parameter with a human-readable reason.
    InvalidParameter(&'static str),
}

impl fmt::Display for MechanismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidEpsilon(e) => {
                write!(f, "epsilon must be positive and finite, got {e}")
            }
            Self::InvalidScale(s) => {
                write!(f, "noise scale must be positive and finite, got {s}")
            }
            Self::InvalidSensitivity(s) => {
                write!(f, "sensitivity must be positive and finite, got {s}")
            }
            Self::InvalidProbability(p) => {
                write!(f, "probability must lie in [0, 1], got {p}")
            }
            Self::EmptyCandidates => {
                write!(f, "selection mechanism invoked on an empty candidate set")
            }
            Self::NonFiniteScore { index, score } => {
                write!(f, "candidate {index} has non-finite score {score}")
            }
            Self::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
            Self::InvalidParameter(reason) => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl std::error::Error for MechanismError {}

/// Validates that `epsilon` is a usable privacy parameter (finite and
/// strictly positive).
///
/// # Errors
/// [`MechanismError::InvalidEpsilon`] otherwise.
pub fn check_epsilon(epsilon: f64) -> Result<(), MechanismError> {
    if epsilon.is_finite() && epsilon > 0.0 {
        Ok(())
    } else {
        Err(MechanismError::InvalidEpsilon(epsilon))
    }
}

/// Validates that `sensitivity` is a usable global sensitivity (finite
/// and strictly positive).
///
/// # Errors
/// [`MechanismError::InvalidSensitivity`] otherwise.
pub fn check_sensitivity(sensitivity: f64) -> Result<(), MechanismError> {
    if sensitivity.is_finite() && sensitivity > 0.0 {
        Ok(())
    } else {
        Err(MechanismError::InvalidSensitivity(sensitivity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offending_values() {
        let msg = MechanismError::InvalidEpsilon(-1.0).to_string();
        assert!(msg.contains("-1"));
        let msg = MechanismError::BudgetExhausted {
            requested: 0.5,
            remaining: 0.25,
        }
        .to_string();
        assert!(msg.contains("0.5") && msg.contains("0.25"));
    }

    #[test]
    fn epsilon_validation_rejects_bad_values() {
        assert!(check_epsilon(0.1).is_ok());
        assert!(check_epsilon(0.0).is_err());
        assert!(check_epsilon(-3.0).is_err());
        assert!(check_epsilon(f64::NAN).is_err());
        assert!(check_epsilon(f64::INFINITY).is_err());
    }

    #[test]
    fn sensitivity_validation_rejects_bad_values() {
        assert!(check_sensitivity(1.0).is_ok());
        assert!(check_sensitivity(0.0).is_err());
        assert!(check_sensitivity(f64::NEG_INFINITY).is_err());
    }
}
