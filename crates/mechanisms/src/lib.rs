//! # dp-mechanisms
//!
//! Differential-privacy primitive substrate for the `sparse-vector`
//! workspace, which reproduces *Understanding the Sparse Vector Technique
//! for Differential Privacy* (Lyu, Su, Li; VLDB 2017).
//!
//! This crate provides everything the Sparse Vector Technique and the
//! Exponential Mechanism are built from:
//!
//! - [`Laplace`] — the Laplace distribution with exact sampling, density,
//!   distribution function, survival function and quantiles, plus the
//!   classic [`laplace_mechanism`] for releasing numeric query answers.
//! - [`Gumbel`] — the Gumbel distribution, used for the Gumbel-max trick
//!   that samples the Exponential Mechanism in one pass, and
//!   [`GumbelMax`] — lazy descending order statistics of `m` i.i.d.
//!   Gumbel keys (the max in `O(1)` via the `ln m` location shift),
//!   which makes EM selection over tied-score groups `O(#groups + c)`.
//! - [`Exponential`] — the one-sided exponential distribution on
//!   `[0, ∞)` used by the accuracy-enhanced exponential-noise SVT
//!   (arXiv:2407.20068): same batched `sample_into` contract as
//!   [`Laplace`], half the variance at equal scale.
//! - [`ExponentialMechanism`] — McSherry–Talwar selection with both the
//!   general `exp(εq/2Δ)` and the one-sided/monotonic `exp(εq/Δ)` scoring
//!   described in Section 2 of the paper.
//! - [`noisy_max`] — report-noisy-max baselines and the one-shot Gumbel
//!   top-`c` selection that is distributionally equivalent to peeling EM.
//! - [`BudgetAccountant`] and [`SvtBudget`] — sequential-composition
//!   bookkeeping and the `ε₁/ε₂/ε₃` split used by the standard SVT.
//! - [`BudgetLedger`] — the accountant grown into an auditable,
//!   append-only chain of hash-linked [`ChargeReceipt`]s with a
//!   `verify_chain()` entry point for regulators (serving layer).
//! - [`LedgerWal`] — the ledger's durability story: an append-only
//!   binary write-ahead log of receipts (fixed-width CRC'd records,
//!   pluggable fsync policy) whose [`wal::replay_records`] rebuilds and
//!   re-verifies every tenant's chain after a crash, treating a torn
//!   tail as a clean end of log and any mid-log damage as a hard,
//!   attributable error. [`fault`] provides the deterministic
//!   seed-driven crash/torn-write injection harness the recovery tests
//!   are built on.
//! - [`DpRng`] — a seedable, forkable random source so every experiment
//!   in the workspace is reproducible from a single `u64` seed, with
//!   block-wise batched fills (`fill_u64s`/`fill_uniform`/
//!   `fill_open_uniform`) that are bit-identical to the scalar draws.
//! - [`NoiseBuffer`] — reusable prefetched-noise scratch feeding the
//!   simulation engines from any [`BatchSample`] distribution
//!   ([`Laplace::sample_into`], [`Gumbel::sample_into`]), with an
//!   optional counter-derived chunked mode whose noise stream is
//!   bit-identical across prefill thread counts.
//! - [`fastmath`] + [`NoiseKernel`] — the vectorized noise-kernel
//!   layer: a batched polynomial `ln` (relative error ≤ 1e-12,
//!   platform- and thread-count-deterministic) and the two-kernel
//!   policy (`Reference` = libm, bit-identical to scalar;
//!   `Vectorized` = fast path, same uniforms and distribution).
//! - [`samplers`] — discrete samplers (binomial, hypergeometric,
//!   categorical-in-log-space) used by the grouped traversal simulator.
//! - [`TwoSidedGeometric`] — the discrete companion of the Laplace
//!   mechanism for integer counting queries (extension; `DESIGN.md` §6).
//! - [`composition`] — basic and advanced (`(ε, δ)`, §3.4) composition
//!   bounds, with the inverse "per-instance budget" solver.
//!
//! All mechanisms are deterministic functions of their inputs and the
//! supplied [`DpRng`]; nothing reads ambient randomness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod composition;
pub mod error;
pub mod exp_noise;
pub mod exponential;
pub mod fastmath;
pub mod fault;
pub mod geometric;
pub mod gumbel;
pub mod laplace;
pub mod ledger;
pub mod noisy_max;
pub mod rng;
pub mod sample;
pub mod samplers;
pub mod wal;

pub use budget::{BudgetAccountant, BudgetCharge, SvtBudget};
pub use composition::ApproxDp;
pub use error::MechanismError;
pub use exp_noise::Exponential;
pub use exponential::ExponentialMechanism;
pub use fault::{FaultMode, FaultPlan, FaultySink};
pub use geometric::{geometric_mechanism, TwoSidedGeometric};
pub use gumbel::{Gumbel, GumbelMax};
pub use laplace::{laplace_mechanism, Laplace, NoiseBuffer};
pub use ledger::{BudgetLedger, ChargeReceipt, LedgerError};
pub use rng::{counter_seed, DpRng};
pub use sample::{BatchSample, NoiseKernel};
pub use wal::{FsyncPolicy, LedgerWal, MemSink, WalError, WalReplay, WalSink};

/// Result alias used across the mechanism substrate.
pub type Result<T> = std::result::Result<T, MechanismError>;
