//! Discrete samplers for the grouped traversal simulator.
//!
//! The paper's AOL workload has 2,290,685 items; simulating one SVT
//! traversal per run with per-item Laplace draws is wasteful when
//! millions of items share the same integer support. The grouped
//! simulator (`svt-experiments::simulate::grouped`) instead samples,
//! per score-group,
//!
//! * how many of the group's `n` items would cross the noisy threshold —
//!   a [`sample_binomial`] draw with the exact crossing probability, and
//! * how many of an accepted subset belong to the true top-`c` — a
//!   [`sample_hypergeometric`] draw.
//!
//! `sample_binomial` is exact (geometric skipping) whenever
//! `n·min(p,1−p) ≤ 30` and uses a clamped normal approximation above
//! that cutoff, where the approximation error is far below the
//! Monte-Carlo noise of a 100-run experiment; `sample_binomial_exact`
//! provides the all-Bernoulli reference used by the agreement tests.

use crate::error::MechanismError;
use crate::rng::DpRng;
use crate::Result;

/// Threshold on `n·min(p, 1−p)` below which binomial sampling is exact.
const EXACT_BINOMIAL_MEAN_CUTOFF: f64 = 30.0;

fn check_probability(p: f64) -> Result<()> {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        Err(MechanismError::InvalidProbability(p))
    } else {
        Ok(())
    }
}

/// Samples `Binomial(n, p)`.
///
/// Exact for small expected counts (geometric skipping over failures);
/// normal approximation with continuity correction and clamping for
/// large ones. See the module docs for the accuracy argument.
///
/// # Errors
/// [`MechanismError::InvalidProbability`] when `p ∉ [0, 1]`.
pub fn sample_binomial(n: u64, p: f64, rng: &mut DpRng) -> Result<u64> {
    check_probability(p)?;
    if n == 0 || p == 0.0 {
        return Ok(0);
    }
    if p == 1.0 {
        return Ok(n);
    }
    // Work with the rarer outcome for numerical stability.
    let flipped = p > 0.5;
    let q = if flipped { 1.0 - p } else { p };
    let mean = n as f64 * q;
    let count = if mean <= EXACT_BINOMIAL_MEAN_CUTOFF {
        sample_binomial_small(n, q, rng)
    } else {
        sample_binomial_normal(n, q, rng)
    };
    Ok(if flipped { n - count } else { count })
}

/// Exact sampling via geometric gaps between successes.
///
/// The index of the next success after position `i` is
/// `i + 1 + Geometric(q)`; we walk those gaps until they pass `n`.
/// Runs in `O(np)` expected time, which is why it is reserved for small
/// expected counts.
fn sample_binomial_small(n: u64, q: f64, rng: &mut DpRng) -> u64 {
    // ln(1−q) via ln_1p: the naive `(1.0 - q).ln()` collapses to exactly
    // 0.0 once q < 2⁻⁵³ (1 − q rounds to 1.0), which turns the gap below
    // into −∞ and the loop into an infinite one. ln_1p(−q) ≈ −q keeps
    // full precision for arbitrarily small q.
    let log_fail = (-q).ln_1p(); // < 0 because 0 < q <= 0.5
    let mut successes = 0u64;
    let mut position = 0.0f64; // counts trials consumed, as f64 to avoid overflow
    let n_f = n as f64;
    loop {
        // Gap ~ 1 + floor(ln U / ln(1-q)) trials until (and including)
        // the next success.
        let u = rng.open_uniform();
        let gap = (u.ln() / log_fail).floor() + 1.0;
        position += gap;
        if position > n_f || position.is_nan() {
            // NaN-safety: any non-finite arithmetic must terminate
            // rather than spin.
            return successes;
        }
        successes += 1;
    }
}

/// Normal approximation with continuity correction, clamped to `[0, n]`.
fn sample_binomial_normal(n: u64, q: f64, rng: &mut DpRng) -> u64 {
    let mean = n as f64 * q;
    let sd = (n as f64 * q * (1.0 - q)).sqrt();
    let draw = mean + sd * rng.standard_normal() + 0.5;
    if draw <= 0.0 {
        0
    } else if draw >= n as f64 {
        n
    } else {
        draw.floor() as u64
    }
}

/// Reference implementation: `n` explicit Bernoulli trials. `O(n)`; used
/// by tests and available for callers who need exactness at any size.
///
/// # Errors
/// [`MechanismError::InvalidProbability`] when `p ∉ [0, 1]`.
pub fn sample_binomial_exact(n: u64, p: f64, rng: &mut DpRng) -> Result<u64> {
    check_probability(p)?;
    Ok((0..n).filter(|_| rng.bernoulli(p)).count() as u64)
}

/// Samples `Hypergeometric(total, successes, draws)`: the number of
/// marked elements in a uniform `draws`-subset of a population of size
/// `total` containing `successes` marked elements.
///
/// Sequential exact sampling in `O(draws)` — our callers always have
/// `draws ≤ c ≤ a few hundred`.
///
/// # Errors
/// [`MechanismError::InvalidParameter`] when `successes > total` or
/// `draws > total`.
pub fn sample_hypergeometric(
    total: u64,
    successes: u64,
    draws: u64,
    rng: &mut DpRng,
) -> Result<u64> {
    if successes > total {
        return Err(MechanismError::InvalidParameter(
            "hypergeometric: successes exceed population",
        ));
    }
    if draws > total {
        return Err(MechanismError::InvalidParameter(
            "hypergeometric: draws exceed population",
        ));
    }
    let mut remaining_total = total;
    let mut remaining_successes = successes;
    let mut hit = 0u64;
    for _ in 0..draws {
        // P[next draw is marked] = remaining_successes / remaining_total.
        if rng.index_u64(remaining_total) < remaining_successes {
            hit += 1;
            remaining_successes -= 1;
        }
        remaining_total -= 1;
    }
    Ok(hit)
}

/// Splits `draws` uniform-without-replacement selections across groups
/// of sizes `group_sizes` (multivariate hypergeometric): returns how
/// many selections land in each group.
///
/// # Errors
/// [`MechanismError::InvalidParameter`] when `draws` exceeds the
/// population size.
pub fn sample_multivariate_hypergeometric(
    group_sizes: &[u64],
    draws: u64,
    rng: &mut DpRng,
) -> Result<Vec<u64>> {
    let total: u64 = group_sizes.iter().sum();
    if draws > total {
        return Err(MechanismError::InvalidParameter(
            "multivariate hypergeometric: draws exceed population",
        ));
    }
    let mut remaining_total = total;
    let mut remaining_draws = draws;
    let mut out = Vec::with_capacity(group_sizes.len());
    for &size in group_sizes {
        if remaining_draws == 0 {
            out.push(0);
            continue;
        }
        // Conditional on what's left, the count in this group is
        // hypergeometric with the group as the marked set.
        let take = sample_hypergeometric(remaining_total, size, remaining_draws, rng)?;
        out.push(take);
        remaining_total -= size;
        remaining_draws -= take;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_and_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = DpRng::seed_from_u64(109);
        assert_eq!(sample_binomial(0, 0.5, &mut rng).unwrap(), 0);
        assert_eq!(sample_binomial(10, 0.0, &mut rng).unwrap(), 0);
        assert_eq!(sample_binomial(10, 1.0, &mut rng).unwrap(), 10);
        assert!(sample_binomial(10, 1.5, &mut rng).is_err());
        assert!(sample_binomial(10, -0.5, &mut rng).is_err());
        assert!(sample_binomial(10, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn binomial_terminates_for_underflowing_probabilities() {
        // Regression: q < 2⁻⁵³ used to make ln(1−q) = 0 and the
        // geometric-skip loop spin forever. Seen in the wild via SVT
        // crossing probabilities at large ε (deep Laplace tails).
        let mut rng = DpRng::seed_from_u64(163);
        for &q in &[1e-30f64, 1e-120, 1e-300, f64::MIN_POSITIVE] {
            for _ in 0..50 {
                assert_eq!(sample_binomial(1_000_000, q, &mut rng).unwrap(), 0);
            }
        }
        // And the flipped side: p overwhelmingly close to 1.
        assert_eq!(
            sample_binomial(1_000, 1.0 - 1e-120, &mut rng).unwrap(),
            1_000
        );
    }

    #[test]
    fn binomial_small_regime_matches_moments() {
        let mut rng = DpRng::seed_from_u64(113);
        let (n, p, trials) = (1000u64, 0.01, 20_000);
        let xs: Vec<f64> = (0..trials)
            .map(|_| sample_binomial(n, p, &mut rng).unwrap() as f64)
            .collect();
        let (mean, var) = mean_and_var(&xs);
        let (tm, tv) = (n as f64 * p, n as f64 * p * (1.0 - p));
        assert!((mean - tm).abs() < 0.1, "mean {mean} vs {tm}");
        assert!((var / tv - 1.0).abs() < 0.1, "var {var} vs {tv}");
    }

    #[test]
    fn binomial_large_regime_matches_moments() {
        let mut rng = DpRng::seed_from_u64(127);
        let (n, p, trials) = (100_000u64, 0.3, 20_000);
        let xs: Vec<f64> = (0..trials)
            .map(|_| sample_binomial(n, p, &mut rng).unwrap() as f64)
            .collect();
        let (mean, var) = mean_and_var(&xs);
        let (tm, tv) = (n as f64 * p, n as f64 * p * (1.0 - p));
        assert!((mean / tm - 1.0).abs() < 0.005, "mean {mean} vs {tm}");
        assert!((var / tv - 1.0).abs() < 0.05, "var {var} vs {tv}");
    }

    #[test]
    fn binomial_high_p_uses_flip_correctly() {
        let mut rng = DpRng::seed_from_u64(131);
        let (n, p, trials) = (500u64, 0.99, 20_000);
        let xs: Vec<f64> = (0..trials)
            .map(|_| sample_binomial(n, p, &mut rng).unwrap() as f64)
            .collect();
        let (mean, _) = mean_and_var(&xs);
        assert!((mean - 495.0).abs() < 0.3, "mean {mean}");
        assert!(xs.iter().all(|&x| x <= n as f64));
    }

    #[test]
    fn binomial_fast_agrees_with_exact_reference() {
        // Same (n, p) in the exact-skipping regime; compare full
        // empirical distributions coarsely.
        let mut rng = DpRng::seed_from_u64(137);
        let (n, p, trials) = (200u64, 0.05, 30_000usize);
        let mut fast_hist = [0usize; 40];
        let mut exact_hist = [0usize; 40];
        for _ in 0..trials {
            let a = sample_binomial(n, p, &mut rng).unwrap() as usize;
            let b = sample_binomial_exact(n, p, &mut rng).unwrap() as usize;
            fast_hist[a.min(39)] += 1;
            exact_hist[b.min(39)] += 1;
        }
        for k in 0..25 {
            let fa = fast_hist[k] as f64 / trials as f64;
            let fb = exact_hist[k] as f64 / trials as f64;
            assert!((fa - fb).abs() < 0.015, "k={k}: {fa} vs {fb}");
        }
    }

    #[test]
    fn hypergeometric_validates_and_bounds() {
        let mut rng = DpRng::seed_from_u64(139);
        assert!(sample_hypergeometric(10, 11, 5, &mut rng).is_err());
        assert!(sample_hypergeometric(10, 5, 11, &mut rng).is_err());
        for _ in 0..200 {
            let h = sample_hypergeometric(20, 7, 10, &mut rng).unwrap();
            // Bounded by successes (7); the draw bound (10) is looser.
            assert!(h <= 7);
        }
        // Degenerate cases.
        assert_eq!(sample_hypergeometric(10, 0, 5, &mut rng).unwrap(), 0);
        assert_eq!(sample_hypergeometric(10, 10, 5, &mut rng).unwrap(), 5);
        assert_eq!(sample_hypergeometric(10, 4, 0, &mut rng).unwrap(), 0);
    }

    #[test]
    fn hypergeometric_mean_matches_theory() {
        let mut rng = DpRng::seed_from_u64(149);
        let (total, succ, draws, trials) = (1000u64, 300u64, 50u64, 30_000);
        let mean = (0..trials)
            .map(|_| sample_hypergeometric(total, succ, draws, &mut rng).unwrap() as f64)
            .sum::<f64>()
            / trials as f64;
        let expected = draws as f64 * succ as f64 / total as f64; // 15
        assert!((mean - expected).abs() < 0.1, "mean {mean} vs {expected}");
    }

    #[test]
    fn multivariate_hypergeometric_totals_and_means() {
        let mut rng = DpRng::seed_from_u64(151);
        let sizes = [100u64, 300, 600];
        let draws = 50u64;
        let trials = 20_000;
        let mut sums = [0f64; 3];
        for _ in 0..trials {
            let alloc = sample_multivariate_hypergeometric(&sizes, draws, &mut rng).unwrap();
            assert_eq!(alloc.iter().sum::<u64>(), draws);
            for (s, a) in sums.iter_mut().zip(alloc) {
                *s += a as f64;
            }
        }
        for (i, &size) in sizes.iter().enumerate() {
            let mean = sums[i] / trials as f64;
            let expected = draws as f64 * size as f64 / 1000.0;
            assert!(
                (mean - expected).abs() < 0.2,
                "group {i}: {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn multivariate_hypergeometric_rejects_overdraw() {
        let mut rng = DpRng::seed_from_u64(157);
        assert!(sample_multivariate_hypergeometric(&[2, 3], 6, &mut rng).is_err());
        let all = sample_multivariate_hypergeometric(&[2, 3], 5, &mut rng).unwrap();
        assert_eq!(all, vec![2, 3]);
    }
}
