//! The Gumbel distribution and the Gumbel-max trick.
//!
//! Sampling the Exponential Mechanism naively requires normalizing
//! `exp(ε·q_i / kΔ)` over all candidates, which overflows for the large
//! scores in the paper's workloads (e.g. the Zipf head score ≈ 10⁵ with
//! `ε/c ≈ 4·10⁻³` gives `exp(400)`). The Gumbel-max trick sidesteps
//! normalization entirely: if `G_i` are i.i.d. standard Gumbel draws then
//!
//! ```text
//! argmax_i (φ_i + G_i)   ~   Categorical(softmax(φ))
//! ```
//!
//! so EM selection is a single pass of `argmax` in log-space. The same
//! trick grouped over tied scores drives the fast simulator: the maximum
//! of `n` i.i.d. standard Gumbels is `Gumbel(ln n, 1)`.

use crate::error::MechanismError;
use crate::rng::DpRng;
use crate::sample::BatchSample;
use crate::Result;

/// A Gumbel distribution with location `mu` and scale `beta > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gumbel {
    mu: f64,
    beta: f64,
}

impl Gumbel {
    /// The standard Gumbel distribution (`mu = 0`, `beta = 1`).
    pub fn standard() -> Self {
        Self { mu: 0.0, beta: 1.0 }
    }

    /// Creates a Gumbel distribution with the given location and scale.
    ///
    /// # Errors
    /// Returns [`MechanismError::InvalidScale`] unless `beta` is finite
    /// and strictly positive, or [`MechanismError::InvalidParameter`] if
    /// `mu` is not finite.
    pub fn new(mu: f64, beta: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(MechanismError::InvalidParameter(
                "Gumbel location must be finite",
            ));
        }
        if beta.is_finite() && beta > 0.0 {
            Ok(Self { mu, beta })
        } else {
            Err(MechanismError::InvalidScale(beta))
        }
    }

    /// The location parameter.
    #[inline]
    pub fn location(&self) -> f64 {
        self.mu
    }

    /// The scale parameter.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.beta
    }

    /// The mean, `mu + γ·beta` (γ is the Euler–Mascheroni constant).
    #[inline]
    pub fn mean(&self) -> f64 {
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        self.mu + EULER_GAMMA * self.beta
    }

    /// Distribution function `F(x) = exp(-exp(-(x-mu)/beta))`.
    #[inline]
    pub fn cdf(&self, x: f64) -> f64 {
        (-(-(x - self.mu) / self.beta).exp()).exp()
    }

    /// Draws one sample: `mu − beta · ln(−ln U)` with `U ~ (0,1)`.
    #[inline]
    pub fn sample(&self, rng: &mut DpRng) -> f64 {
        self.transform(rng.open_uniform())
    }

    /// The inverse-CDF transform shared by the scalar and batched
    /// paths; `u` is uniform on `(0, 1)`.
    #[inline]
    fn transform(&self, u: f64) -> f64 {
        self.mu - self.beta * (-(u.ln())).ln()
    }

    /// Fills `out` with independent samples.
    ///
    /// Bit-identical to `for x in out { *x = dist.sample(rng) }` for the
    /// same generator state — the underlying uniforms come from the
    /// block-wise [`DpRng::fill_open_uniform`], which consumes the
    /// identical word sequence — mirroring
    /// [`Laplace::sample_into`](crate::Laplace::sample_into). This is
    /// what the scratch-buffered EM top-`c` path draws its keys from.
    pub fn sample_into(&self, rng: &mut DpRng, out: &mut [f64]) {
        rng.fill_open_uniform(out);
        for x in out.iter_mut() {
            *x = self.transform(*x);
        }
    }

    /// The distribution of `max(G_1, …, G_n)` for `n` i.i.d. copies of
    /// this distribution: a Gumbel shifted by `beta·ln n`.
    ///
    /// # Errors
    /// Returns [`MechanismError::InvalidParameter`] when `n == 0`.
    pub fn max_of(&self, n: u64) -> Result<Self> {
        if n == 0 {
            return Err(MechanismError::InvalidParameter(
                "max_of() requires at least one draw",
            ));
        }
        Gumbel::new(self.mu + self.beta * (n as f64).ln(), self.beta)
    }
}

impl BatchSample for Gumbel {
    #[inline]
    fn sample_one(&self, rng: &mut DpRng) -> f64 {
        self.sample(rng)
    }

    #[inline]
    fn sample_into(&self, rng: &mut DpRng, out: &mut [f64]) {
        Gumbel::sample_into(self, rng, out);
    }
}

/// Samples `argmax_i (log_weights[i] + G_i)` with i.i.d. standard Gumbel
/// `G_i` — i.e. a categorical draw with probabilities
/// `softmax(log_weights)` — without ever exponentiating.
///
/// Entries equal to `f64::NEG_INFINITY` are treated as weight zero
/// (never selected).
///
/// # Errors
/// [`MechanismError::EmptyCandidates`] on an empty slice, or
/// [`MechanismError::InvalidParameter`] if every weight is `-∞`.
pub fn gumbel_argmax(log_weights: &[f64], rng: &mut DpRng) -> Result<usize> {
    if log_weights.is_empty() {
        return Err(MechanismError::EmptyCandidates);
    }
    let g = Gumbel::standard();
    let mut best: Option<(usize, f64)> = None;
    for (i, &lw) in log_weights.iter().enumerate() {
        if lw == f64::NEG_INFINITY {
            continue;
        }
        let key = lw + g.sample(rng);
        match best {
            Some((_, b)) if key <= b => {}
            _ => best = Some((i, key)),
        }
    }
    best.map(|(i, _)| i).ok_or(MechanismError::InvalidParameter(
        "all candidates have zero weight",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(Gumbel::new(0.0, 1.0).is_ok());
        assert!(Gumbel::new(0.0, 0.0).is_err());
        assert!(Gumbel::new(0.0, -2.0).is_err());
        assert!(Gumbel::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn sample_mean_matches_theory() {
        let g = Gumbel::new(2.0, 1.5).unwrap();
        let mut rng = DpRng::seed_from_u64(31);
        let n = 200_000;
        let mean = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - g.mean()).abs() < 0.02,
            "mean {mean} vs {}",
            g.mean()
        );
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        let g = Gumbel::standard();
        let mut rng = DpRng::seed_from_u64(37);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        for &x in &[-1.0, 0.0, 1.0, 2.0] {
            let emp = xs.iter().filter(|&&v| v <= x).count() as f64 / n as f64;
            assert!((emp - g.cdf(x)).abs() < 0.01, "x={x}");
        }
    }

    #[test]
    fn max_of_matches_explicit_maximum() {
        // max of n standard Gumbels ~ Gumbel(ln n, 1): compare means.
        let g = Gumbel::standard();
        let shifted = g.max_of(64).unwrap();
        let mut rng = DpRng::seed_from_u64(41);
        let trials = 40_000;
        let mut explicit = 0.0;
        for _ in 0..trials {
            let m = (0..64)
                .map(|_| g.sample(&mut rng))
                .fold(f64::NEG_INFINITY, f64::max);
            explicit += m;
        }
        explicit /= trials as f64;
        assert!(
            (explicit - shifted.mean()).abs() < 0.03,
            "explicit {explicit} vs analytic {}",
            shifted.mean()
        );
        assert!(g.max_of(0).is_err());
    }

    #[test]
    fn sample_into_is_bit_identical_to_scalar_sampling() {
        let g = Gumbel::new(1.2, 0.7).unwrap();
        for len in [1usize, 8, 255, 256, 257, 5000] {
            let mut scalar_rng = DpRng::seed_from_u64(1877);
            let mut batched_rng = DpRng::seed_from_u64(1877);
            let want: Vec<u64> = (0..len)
                .map(|_| g.sample(&mut scalar_rng).to_bits())
                .collect();
            let mut got = vec![0.0; len];
            g.sample_into(&mut batched_rng, &mut got);
            let got_bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got_bits, want, "len {len}");
            // Both generators must also land in the same state.
            assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64(), "len {len}");
        }
    }

    #[test]
    fn noise_buffer_serves_gumbel_batch_size_invariantly() {
        // The generic NoiseBuffer path must uphold the same contract for
        // Gumbel that it does for Laplace.
        let g = Gumbel::standard();
        let draws = 700;
        let reference: Vec<u64> = {
            let mut rng = DpRng::seed_from_u64(1879);
            (0..draws).map(|_| g.sample(&mut rng).to_bits()).collect()
        };
        for batch in [1usize, 2, 17, 256, 1024] {
            let mut rng = DpRng::seed_from_u64(1879);
            let mut buf = crate::NoiseBuffer::with_batch(batch);
            let got: Vec<u64> = (0..draws)
                .map(|_| buf.next(&g, &mut rng).to_bits())
                .collect();
            assert_eq!(got, reference, "batch {batch}");
        }
    }

    #[test]
    fn gumbel_argmax_matches_softmax_frequencies() {
        let lw = [0.0f64, 1.0, 2.0];
        let z: f64 = lw.iter().map(|w| w.exp()).sum();
        let probs: Vec<f64> = lw.iter().map(|w| w.exp() / z).collect();
        let mut rng = DpRng::seed_from_u64(43);
        let trials = 60_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            counts[gumbel_argmax(&lw, &mut rng).unwrap()] += 1;
        }
        for i in 0..3 {
            let f = counts[i] as f64 / trials as f64;
            assert!((f - probs[i]).abs() < 0.01, "i={i}: {f} vs {}", probs[i]);
        }
    }

    #[test]
    fn gumbel_argmax_ignores_neg_infinity() {
        let lw = [f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY];
        let mut rng = DpRng::seed_from_u64(47);
        for _ in 0..100 {
            assert_eq!(gumbel_argmax(&lw, &mut rng).unwrap(), 1);
        }
    }

    #[test]
    fn gumbel_argmax_handles_huge_log_weights_without_overflow() {
        // exp(1e6) overflows, but log-space selection must still work.
        let lw = [1e6, 1e6 - 1.0];
        let mut rng = DpRng::seed_from_u64(53);
        let picks_first = (0..10_000)
            .filter(|_| gumbel_argmax(&lw, &mut rng).unwrap() == 0)
            .count() as f64
            / 10_000.0;
        let expected = 1.0 / (1.0 + (-1.0f64).exp());
        assert!((picks_first - expected).abs() < 0.02, "{picks_first}");
    }

    #[test]
    fn gumbel_argmax_error_cases() {
        let mut rng = DpRng::seed_from_u64(59);
        assert_eq!(
            gumbel_argmax(&[], &mut rng),
            Err(MechanismError::EmptyCandidates)
        );
        assert!(gumbel_argmax(&[f64::NEG_INFINITY], &mut rng).is_err());
    }
}
