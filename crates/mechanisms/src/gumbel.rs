//! The Gumbel distribution and the Gumbel-max trick.
//!
//! Sampling the Exponential Mechanism naively requires normalizing
//! `exp(ε·q_i / kΔ)` over all candidates, which overflows for the large
//! scores in the paper's workloads (e.g. the Zipf head score ≈ 10⁵ with
//! `ε/c ≈ 4·10⁻³` gives `exp(400)`). The Gumbel-max trick sidesteps
//! normalization entirely: if `G_i` are i.i.d. standard Gumbel draws then
//!
//! ```text
//! argmax_i (φ_i + G_i)   ~   Categorical(softmax(φ))
//! ```
//!
//! so EM selection is a single pass of `argmax` in log-space. The same
//! trick grouped over tied scores drives the fast simulators: the
//! maximum of `n` i.i.d. standard Gumbels is `Gumbel(ln n, 1)`
//! ([`Gumbel::max_of`]), and [`GumbelMax`] generates the *descending
//! order statistics* of `n` i.i.d. keys lazily — the maximum in `O(1)`,
//! each subsequent order statistic in `O(1)` — so a group of millions of
//! tied candidates costs one draw per key actually consumed, never one
//! per member.

use crate::error::MechanismError;
use crate::fastmath;
use crate::rng::DpRng;
use crate::sample::{BatchSample, NoiseKernel};
use crate::Result;

/// A Gumbel distribution with location `mu` and scale `beta > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gumbel {
    mu: f64,
    beta: f64,
}

impl Gumbel {
    /// The standard Gumbel distribution (`mu = 0`, `beta = 1`).
    pub fn standard() -> Self {
        Self { mu: 0.0, beta: 1.0 }
    }

    /// Creates a Gumbel distribution with the given location and scale.
    ///
    /// # Errors
    /// Returns [`MechanismError::InvalidScale`] unless `beta` is finite
    /// and strictly positive, or [`MechanismError::InvalidParameter`] if
    /// `mu` is not finite.
    pub fn new(mu: f64, beta: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(MechanismError::InvalidParameter(
                "Gumbel location must be finite",
            ));
        }
        if beta.is_finite() && beta > 0.0 {
            Ok(Self { mu, beta })
        } else {
            Err(MechanismError::InvalidScale(beta))
        }
    }

    /// The location parameter.
    #[inline]
    pub fn location(&self) -> f64 {
        self.mu
    }

    /// The scale parameter.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.beta
    }

    /// The mean, `mu + γ·beta` (γ is the Euler–Mascheroni constant).
    #[inline]
    pub fn mean(&self) -> f64 {
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        self.mu + EULER_GAMMA * self.beta
    }

    /// Distribution function `F(x) = exp(-exp(-(x-mu)/beta))`.
    #[inline]
    pub fn cdf(&self, x: f64) -> f64 {
        (-(-(x - self.mu) / self.beta).exp()).exp()
    }

    /// Draws one sample: `mu − beta · ln(−ln U)` with `U ~ (0,1)`.
    #[inline]
    pub fn sample(&self, rng: &mut DpRng) -> f64 {
        self.transform(rng.open_uniform())
    }

    /// The inverse-CDF transform shared by the scalar and batched
    /// paths; `u` is uniform on `(0, 1)`.
    #[inline]
    fn transform(&self, u: f64) -> f64 {
        self.mu - self.beta * (-(u.ln())).ln()
    }

    /// Fills `out` with independent samples.
    ///
    /// Bit-identical to `for x in out { *x = dist.sample(rng) }` for the
    /// same generator state — the underlying uniforms come from the
    /// block-wise [`DpRng::fill_open_uniform`], which consumes the
    /// identical word sequence — mirroring
    /// [`Laplace::sample_into`](crate::Laplace::sample_into). This is
    /// what the scratch-buffered EM top-`c` path draws its keys from.
    pub fn sample_into(&self, rng: &mut DpRng, out: &mut [f64]) {
        rng.fill_open_uniform(out);
        for x in out.iter_mut() {
            *x = self.transform(*x);
        }
    }

    /// The vectorized fill: same uniforms as
    /// [`sample_into`](Self::sample_into), with both logarithms of the
    /// double-log transform routed through the batched
    /// [`fastmath::ln_in_place`]. Each value stays within a small
    /// multiple of the `1e-12` relative bound of the reference value
    /// (two polynomial logs compose).
    ///
    /// The inner argument `−ln u` is always a positive normal for grid
    /// uniforms (`u ≤ 1 − 2⁻⁵³` gives `−ln u ≥ 1.1e-16`), so no special
    /// cases arise between the two passes.
    pub fn sample_into_vectorized(&self, rng: &mut DpRng, out: &mut [f64]) {
        rng.fill_open_uniform(out);
        fastmath::ln_in_place(out);
        for x in out.iter_mut() {
            *x = -*x;
        }
        fastmath::ln_in_place(out);
        for x in out.iter_mut() {
            *x = self.mu - self.beta * *x;
        }
    }

    /// The distribution of `max(G_1, …, G_n)` for `n` i.i.d. copies of
    /// this distribution: a Gumbel shifted by `beta·ln n`.
    ///
    /// # Errors
    /// Returns [`MechanismError::InvalidParameter`] when `n == 0`.
    pub fn max_of(&self, n: u64) -> Result<Self> {
        if n == 0 {
            return Err(MechanismError::InvalidParameter(
                "max_of() requires at least one draw",
            ));
        }
        Gumbel::new(self.mu + self.beta * (n as f64).ln(), self.beta)
    }
}

/// Lazy descending order statistics of `m` i.i.d. draws from one
/// [`Gumbel`] distribution.
///
/// The first key returned by [`next_key`](Self::next_key) is the
/// *maximum* of the `m` conceptual draws, produced from a **single**
/// uniform — by max-stability, `max(G_1, …, G_m) ~ Gumbel(mu + beta·ln m,
/// beta)`, and inverting that CDF with uniform `U` is algebraically
/// identical to inverting the base CDF with `U^{1/m}`. Subsequent calls
/// peel the 2nd, 3rd, … largest keys via the descending-uniform-order-
/// statistics recurrence (the exponential-spacings / truncated-Gumbel
/// identity in log-space):
///
/// ```text
/// ln U_(m)   = ln V_1 / m              (V_k i.i.d. uniform)
/// ln U_(k-1) = ln U_(k) + ln V / (k-1)
/// key_(k)    = mu − beta · ln(−ln U_(k))
/// ```
///
/// so drawing the top `j` keys of a group of `m` costs `O(j)` uniforms
/// — independent of `m`. This is what makes an Exponential-Mechanism
/// top-`c` over grouped (tied) scores `O(#groups + c)` instead of
/// `O(#items)`: see `EmTopC::select_grouped_into` in `svt-core` and the
/// grouped simulation engine in `svt-experiments`.
///
/// The joint law of the emitted sequence is exactly that of sorting `m`
/// independent [`Gumbel::sample`] draws in decreasing order. For
/// `m == 1` the single emitted key is **bit-identical** to
/// [`Gumbel::sample`] from the same generator state (property-tested).
///
/// ```
/// use dp_mechanisms::{DpRng, Gumbel, GumbelMax};
///
/// let mut rng = DpRng::seed_from_u64(7);
/// let mut top = GumbelMax::new(Gumbel::standard(), 1000)?;
/// let first = top.next_key(&mut rng).unwrap();
/// let second = top.next_key(&mut rng).unwrap();
/// assert!(first > second); // order statistics descend
/// # Ok::<(), dp_mechanisms::MechanismError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GumbelMax {
    dist: Gumbel,
    /// `ln` of the most recently emitted uniform order statistic
    /// (`0.0` before the first draw, standing in for `ln 1`).
    ln_u: f64,
    /// Order-statistic rank of the *next* draw, counting down from `m`;
    /// `0` means exhausted.
    next_rank: u64,
}

impl GumbelMax {
    /// Creates the sampler for the maximum (and successors) of `m`
    /// i.i.d. draws from `dist`.
    ///
    /// # Errors
    /// [`MechanismError::InvalidParameter`] when `m == 0`.
    pub fn new(dist: Gumbel, m: u64) -> Result<Self> {
        if m == 0 {
            return Err(MechanismError::InvalidParameter(
                "GumbelMax requires at least one draw",
            ));
        }
        Ok(Self {
            dist,
            ln_u: 0.0,
            next_rank: m,
        })
    }

    /// How many order statistics are still available.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.next_rank
    }

    /// Emits the next (largest remaining) order statistic, or `None`
    /// once all `m` keys have been peeled. Each call consumes exactly
    /// one uniform from `rng`.
    #[inline]
    pub fn next_key(&mut self, rng: &mut DpRng) -> Option<f64> {
        self.next_key_with(rng, NoiseKernel::Reference)
    }

    /// [`next_key`](Self::next_key) with an explicit transform kernel:
    /// under [`NoiseKernel::Vectorized`] both logarithms go through the
    /// polynomial [`fastmath::ln`], so grouped-EM key peeling agrees
    /// bit-for-bit with any other consumer running the same kernel.
    /// Either kernel consumes exactly one uniform per call.
    ///
    /// The internal `ln_u` accumulator is kernel-specific state: peel a
    /// given `GumbelMax` under one kernel, not a mix.
    #[inline]
    pub fn next_key_with(&mut self, rng: &mut DpRng, kernel: NoiseKernel) -> Option<f64> {
        if self.next_rank == 0 {
            return None;
        }
        let u = rng.open_uniform();
        let (ln_u, ln_neg) = match kernel {
            NoiseKernel::Reference => {
                self.ln_u += u.ln() / self.next_rank as f64;
                (self.ln_u, (-self.ln_u).ln())
            }
            NoiseKernel::Vectorized => {
                self.ln_u += fastmath::ln(u) / self.next_rank as f64;
                (self.ln_u, fastmath::ln(-self.ln_u))
            }
        };
        debug_assert!(ln_u < 0.0, "uniform order statistic must stay in (0,1)");
        self.next_rank -= 1;
        Some(self.dist.mu - self.dist.beta * ln_neg)
    }
}

impl BatchSample for Gumbel {
    #[inline]
    fn sample_one(&self, rng: &mut DpRng) -> f64 {
        self.sample(rng)
    }

    #[inline]
    fn sample_into(&self, rng: &mut DpRng, out: &mut [f64]) {
        Gumbel::sample_into(self, rng, out);
    }

    #[inline]
    fn sample_into_vectorized(&self, rng: &mut DpRng, out: &mut [f64]) {
        Gumbel::sample_into_vectorized(self, rng, out);
    }
}

/// Samples `argmax_i (log_weights[i] + G_i)` with i.i.d. standard Gumbel
/// `G_i` — i.e. a categorical draw with probabilities
/// `softmax(log_weights)` — without ever exponentiating.
///
/// Entries equal to `f64::NEG_INFINITY` are treated as weight zero
/// (never selected).
///
/// # Errors
/// [`MechanismError::EmptyCandidates`] on an empty slice, or
/// [`MechanismError::InvalidParameter`] if every weight is `-∞`.
pub fn gumbel_argmax(log_weights: &[f64], rng: &mut DpRng) -> Result<usize> {
    if log_weights.is_empty() {
        return Err(MechanismError::EmptyCandidates);
    }
    let g = Gumbel::standard();
    let mut best: Option<(usize, f64)> = None;
    for (i, &lw) in log_weights.iter().enumerate() {
        if lw == f64::NEG_INFINITY {
            continue;
        }
        let key = lw + g.sample(rng);
        match best {
            Some((_, b)) if key <= b => {}
            _ => best = Some((i, key)),
        }
    }
    best.map(|(i, _)| i).ok_or(MechanismError::InvalidParameter(
        "all candidates have zero weight",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(Gumbel::new(0.0, 1.0).is_ok());
        assert!(Gumbel::new(0.0, 0.0).is_err());
        assert!(Gumbel::new(0.0, -2.0).is_err());
        assert!(Gumbel::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn sample_mean_matches_theory() {
        let g = Gumbel::new(2.0, 1.5).unwrap();
        let mut rng = DpRng::seed_from_u64(31);
        let n = 200_000;
        let mean = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - g.mean()).abs() < 0.02,
            "mean {mean} vs {}",
            g.mean()
        );
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        let g = Gumbel::standard();
        let mut rng = DpRng::seed_from_u64(37);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        for &x in &[-1.0, 0.0, 1.0, 2.0] {
            let emp = xs.iter().filter(|&&v| v <= x).count() as f64 / n as f64;
            assert!((emp - g.cdf(x)).abs() < 0.01, "x={x}");
        }
    }

    #[test]
    fn max_of_matches_explicit_maximum() {
        // max of n standard Gumbels ~ Gumbel(ln n, 1): compare means.
        let g = Gumbel::standard();
        let shifted = g.max_of(64).unwrap();
        let mut rng = DpRng::seed_from_u64(41);
        let trials = 40_000;
        let mut explicit = 0.0;
        for _ in 0..trials {
            let m = (0..64)
                .map(|_| g.sample(&mut rng))
                .fold(f64::NEG_INFINITY, f64::max);
            explicit += m;
        }
        explicit /= trials as f64;
        assert!(
            (explicit - shifted.mean()).abs() < 0.03,
            "explicit {explicit} vs analytic {}",
            shifted.mean()
        );
        assert!(g.max_of(0).is_err());
    }

    #[test]
    fn sample_into_is_bit_identical_to_scalar_sampling() {
        let g = Gumbel::new(1.2, 0.7).unwrap();
        for len in [1usize, 8, 255, 256, 257, 5000] {
            let mut scalar_rng = DpRng::seed_from_u64(1877);
            let mut batched_rng = DpRng::seed_from_u64(1877);
            let want: Vec<u64> = (0..len)
                .map(|_| g.sample(&mut scalar_rng).to_bits())
                .collect();
            let mut got = vec![0.0; len];
            g.sample_into(&mut batched_rng, &mut got);
            let got_bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got_bits, want, "len {len}");
            // Both generators must also land in the same state.
            assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64(), "len {len}");
        }
    }

    #[test]
    fn noise_buffer_serves_gumbel_batch_size_invariantly() {
        // The generic NoiseBuffer path must uphold the same contract for
        // Gumbel that it does for Laplace.
        let g = Gumbel::standard();
        let draws = 700;
        let reference: Vec<u64> = {
            let mut rng = DpRng::seed_from_u64(1879);
            (0..draws).map(|_| g.sample(&mut rng).to_bits()).collect()
        };
        for batch in [1usize, 2, 17, 256, 1024] {
            let mut rng = DpRng::seed_from_u64(1879);
            let mut buf = crate::NoiseBuffer::with_batch(batch);
            let got: Vec<u64> = (0..draws)
                .map(|_| buf.next(&g, &mut rng).to_bits())
                .collect();
            assert_eq!(got, reference, "batch {batch}");
        }
    }

    #[test]
    fn vectorized_fill_consumes_same_words_and_stays_close() {
        let g = Gumbel::new(1.2, 0.7).unwrap();
        for len in [1usize, 8, 64, 1000] {
            let mut ref_rng = DpRng::seed_from_u64(1877);
            let mut vec_rng = DpRng::seed_from_u64(1877);
            let mut reference = vec![0.0; len];
            let mut fast = vec![0.0; len];
            g.sample_into(&mut ref_rng, &mut reference);
            g.sample_into_vectorized(&mut vec_rng, &mut fast);
            assert_eq!(ref_rng.next_u64(), vec_rng.next_u64(), "len {len}");
            for (i, (r, f)) in reference.iter().zip(&fast).enumerate() {
                // Two composed polynomial logs: allow a few ulps of
                // headroom over the single-log 1e-12 bound, in absolute
                // terms near the transform's zero crossing.
                let tol = 1e-11 * r.abs().max(1.0);
                assert!((f - r).abs() <= tol, "len {len} i {i}: {r} vs {f}");
            }
        }
    }

    #[test]
    fn next_key_with_reference_matches_next_key_and_vectorized_stays_close() {
        let g = Gumbel::new(3.0, 0.5).unwrap();
        let mut rng_a = DpRng::seed_from_u64(881);
        let mut rng_b = DpRng::seed_from_u64(881);
        let mut rng_c = DpRng::seed_from_u64(881);
        let mut plain = GumbelMax::new(g, 1_000_000).unwrap();
        let mut refk = GumbelMax::new(g, 1_000_000).unwrap();
        let mut veck = GumbelMax::new(g, 1_000_000).unwrap();
        let mut prev = f64::INFINITY;
        for _ in 0..50 {
            let a = plain.next_key(&mut rng_a).unwrap();
            let b = refk
                .next_key_with(&mut rng_b, NoiseKernel::Reference)
                .unwrap();
            let c = veck
                .next_key_with(&mut rng_c, NoiseKernel::Vectorized)
                .unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
            let tol = 1e-11 * a.abs().max(1.0);
            assert!((c - a).abs() <= tol, "{a} vs {c}");
            // The vectorized peel must also descend strictly.
            assert!(c < prev);
            prev = c;
        }
        // All three consumed one uniform per key.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        let mut rng_d = DpRng::seed_from_u64(881);
        for _ in 0..50 {
            rng_d.open_uniform();
        }
        assert_eq!(rng_c.next_u64(), rng_d.next_u64());
    }

    #[test]
    fn gumbel_max_validates_and_exhausts() {
        assert!(GumbelMax::new(Gumbel::standard(), 0).is_err());
        let mut top = GumbelMax::new(Gumbel::standard(), 3).unwrap();
        let mut rng = DpRng::seed_from_u64(61);
        assert_eq!(top.remaining(), 3);
        for k in (0..3u64).rev() {
            assert!(top.next_key(&mut rng).is_some());
            assert_eq!(top.remaining(), k);
        }
        assert_eq!(top.next_key(&mut rng), None);
        assert_eq!(top.next_key(&mut rng), None);
    }

    #[test]
    fn gumbel_max_keys_strictly_descend() {
        let mut rng = DpRng::seed_from_u64(67);
        for m in [2u64, 5, 100, 1_000_000] {
            let mut top = GumbelMax::new(Gumbel::new(3.0, 0.5).unwrap(), m).unwrap();
            let take = m.min(50);
            let mut prev = f64::INFINITY;
            for _ in 0..take {
                let key = top.next_key(&mut rng).unwrap();
                assert!(key < prev, "m={m}: {key} !< {prev}");
                prev = key;
            }
        }
    }

    #[test]
    fn gumbel_max_of_one_is_bit_identical_to_sample() {
        // The m = 1 degenerate case must collapse to a plain draw — the
        // identity the all-scores-distinct EM fast path leans on.
        let g = Gumbel::new(-2.5, 1.7).unwrap();
        for seed in [1u64, 71, 8_191] {
            let mut a = DpRng::seed_from_u64(seed);
            let mut b = DpRng::seed_from_u64(seed);
            let plain = g.sample(&mut a);
            let peeled = GumbelMax::new(g, 1).unwrap().next_key(&mut b).unwrap();
            assert_eq!(plain.to_bits(), peeled.to_bits());
            assert_eq!(a.next_u64(), b.next_u64(), "same words consumed");
        }
    }

    #[test]
    fn gumbel_max_first_key_matches_location_shifted_mean() {
        // max of m iid Gumbel(mu, beta) ~ Gumbel(mu + beta ln m, beta):
        // the first emitted key's empirical mean must match.
        let base = Gumbel::new(1.0, 0.8).unwrap();
        let m = 4096;
        let shifted = base.max_of(m).unwrap();
        let mut rng = DpRng::seed_from_u64(73);
        let trials = 60_000;
        let mean = (0..trials)
            .map(|_| GumbelMax::new(base, m).unwrap().next_key(&mut rng).unwrap())
            .sum::<f64>()
            / trials as f64;
        assert!(
            (mean - shifted.mean()).abs() < 0.02,
            "mean {mean} vs analytic {}",
            shifted.mean()
        );
    }

    #[test]
    fn gumbel_max_peeled_sequence_matches_sorted_iid_draws() {
        // The joint law: peeling all m order statistics must match
        // sorting m iid draws descending — compare per-rank means.
        let g = Gumbel::standard();
        let m = 8usize;
        let trials = 40_000;
        let mut rng = DpRng::seed_from_u64(79);
        let mut peeled_mean = vec![0.0f64; m];
        let mut sorted_mean = vec![0.0f64; m];
        for _ in 0..trials {
            let mut top = GumbelMax::new(g, m as u64).unwrap();
            for mean in peeled_mean.iter_mut() {
                *mean += top.next_key(&mut rng).unwrap();
            }
            let mut draws: Vec<f64> = (0..m).map(|_| g.sample(&mut rng)).collect();
            draws.sort_unstable_by(|a, b| b.total_cmp(a));
            for (mean, d) in sorted_mean.iter_mut().zip(&draws) {
                *mean += d;
            }
        }
        for rank in 0..m {
            let p = peeled_mean[rank] / trials as f64;
            let s = sorted_mean[rank] / trials as f64;
            assert!(
                (p - s).abs() < 0.03,
                "rank {rank}: peeled {p} vs sorted {s}"
            );
        }
    }

    #[test]
    fn gumbel_argmax_matches_softmax_frequencies() {
        let lw = [0.0f64, 1.0, 2.0];
        let z: f64 = lw.iter().map(|w| w.exp()).sum();
        let probs: Vec<f64> = lw.iter().map(|w| w.exp() / z).collect();
        let mut rng = DpRng::seed_from_u64(43);
        let trials = 60_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            counts[gumbel_argmax(&lw, &mut rng).unwrap()] += 1;
        }
        for i in 0..3 {
            let f = counts[i] as f64 / trials as f64;
            assert!((f - probs[i]).abs() < 0.01, "i={i}: {f} vs {}", probs[i]);
        }
    }

    #[test]
    fn gumbel_argmax_ignores_neg_infinity() {
        let lw = [f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY];
        let mut rng = DpRng::seed_from_u64(47);
        for _ in 0..100 {
            assert_eq!(gumbel_argmax(&lw, &mut rng).unwrap(), 1);
        }
    }

    #[test]
    fn gumbel_argmax_handles_huge_log_weights_without_overflow() {
        // exp(1e6) overflows, but log-space selection must still work.
        let lw = [1e6, 1e6 - 1.0];
        let mut rng = DpRng::seed_from_u64(53);
        let picks_first = (0..10_000)
            .filter(|_| gumbel_argmax(&lw, &mut rng).unwrap() == 0)
            .count() as f64
            / 10_000.0;
        let expected = 1.0 / (1.0 + (-1.0f64).exp());
        assert!((picks_first - expected).abs() < 0.02, "{picks_first}");
    }

    #[test]
    fn gumbel_argmax_error_cases() {
        let mut rng = DpRng::seed_from_u64(59);
        assert_eq!(
            gumbel_argmax(&[], &mut rng),
            Err(MechanismError::EmptyCandidates)
        );
        assert!(gumbel_argmax(&[f64::NEG_INFINITY], &mut rng).is_err());
    }
}
