//! The Exponential Mechanism (McSherry–Talwar).
//!
//! Section 5 of the paper argues that in the *non-interactive* setting —
//! where all queries are known up front and the goal is to select the
//! `c` queries with the highest answers — SVT should be replaced by `c`
//! rounds of the Exponential Mechanism, each with budget `ε/c`, removing
//! the winner from the candidate pool after every round ("peeling").
//!
//! Two scoring regimes from Section 2 are supported:
//!
//! * **general** — `Pr[r] ∝ exp(ε·q(D,r) / 2Δ)`, valid for any quality
//!   function with sensitivity `Δ`;
//! * **monotonic** — `Pr[r] ∝ exp(ε·q(D,r) / Δ)`, valid when a
//!   neighboring-dataset change moves all quality values in the same
//!   direction (e.g. counting queries under add/remove-one neighbors),
//!   which doubles the effective budget.
//!
//! Selection is performed with the Gumbel-max trick (no normalization,
//! no overflow); a direct inverse-CDF sampler over the exact
//! probabilities is also provided and cross-validated in tests.

use crate::error::MechanismError;
use crate::gumbel::gumbel_argmax;
use crate::rng::DpRng;
use crate::Result;

/// The Exponential Mechanism for selecting one candidate from a scored
/// set under `ε`-DP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialMechanism {
    epsilon: f64,
    sensitivity: f64,
    monotonic: bool,
}

impl ExponentialMechanism {
    /// Creates a mechanism with the general `exp(εq/2Δ)` scoring.
    ///
    /// # Errors
    /// Rejects non-positive or non-finite `epsilon` / `sensitivity`.
    pub fn new(epsilon: f64, sensitivity: f64) -> Result<Self> {
        crate::error::check_epsilon(epsilon)?;
        crate::error::check_sensitivity(sensitivity)?;
        Ok(Self {
            epsilon,
            sensitivity,
            monotonic: false,
        })
    }

    /// Creates a mechanism with the monotonic `exp(εq/Δ)` scoring.
    ///
    /// Only sound when the quality function is monotonic (all quality
    /// values move in the same direction between neighbors), as is the
    /// case for the paper's counting-query workloads.
    ///
    /// # Errors
    /// Rejects non-positive or non-finite `epsilon` / `sensitivity`.
    pub fn new_monotonic(epsilon: f64, sensitivity: f64) -> Result<Self> {
        let mut m = Self::new(epsilon, sensitivity)?;
        m.monotonic = true;
        Ok(m)
    }

    /// The privacy parameter `ε` consumed by one selection.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The quality-function sensitivity `Δ`.
    #[inline]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Whether monotonic (one-sided) scoring is in effect.
    #[inline]
    pub fn is_monotonic(&self) -> bool {
        self.monotonic
    }

    /// The exponent multiplier `ε/(kΔ)` with `k = 2` (general) or
    /// `k = 1` (monotonic).
    #[inline]
    pub fn log_weight_factor(&self) -> f64 {
        let k = if self.monotonic { 1.0 } else { 2.0 };
        self.epsilon / (k * self.sensitivity)
    }

    fn check_scores(scores: &[f64]) -> Result<()> {
        if scores.is_empty() {
            return Err(MechanismError::EmptyCandidates);
        }
        for (index, &score) in scores.iter().enumerate() {
            if !score.is_finite() {
                return Err(MechanismError::NonFiniteScore { index, score });
            }
        }
        Ok(())
    }

    /// Selects one index with probability proportional to
    /// `exp(factor · scores[i])`, via the Gumbel-max trick.
    ///
    /// # Errors
    /// [`MechanismError::EmptyCandidates`] /
    /// [`MechanismError::NonFiniteScore`] on invalid input.
    pub fn select(&self, scores: &[f64], rng: &mut DpRng) -> Result<usize> {
        Self::check_scores(scores)?;
        let f = self.log_weight_factor();
        let log_weights: Vec<f64> = scores.iter().map(|&q| f * q).collect();
        gumbel_argmax(&log_weights, rng)
    }

    /// Selects one index by inverse-CDF sampling over the exact
    /// normalized probabilities (log-sum-exp stabilized).
    ///
    /// Functionally identical in distribution to [`select`]; kept as an
    /// independent implementation so the two can cross-validate each
    /// other in statistical tests.
    ///
    /// [`select`]: ExponentialMechanism::select
    ///
    /// # Errors
    /// Same as [`ExponentialMechanism::select`].
    pub fn select_direct(&self, scores: &[f64], rng: &mut DpRng) -> Result<usize> {
        let probs = self.selection_probabilities(scores)?;
        let u = rng.uniform();
        let mut acc = 0.0;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return Ok(i);
            }
        }
        // Floating-point slack: fall back to the final candidate.
        Ok(probs.len() - 1)
    }

    /// The exact selection probability of every candidate, computed with
    /// the log-sum-exp trick so arbitrarily large scores are safe.
    ///
    /// # Errors
    /// Same as [`ExponentialMechanism::select`].
    pub fn selection_probabilities(&self, scores: &[f64]) -> Result<Vec<f64>> {
        Self::check_scores(scores)?;
        let f = self.log_weight_factor();
        let max = scores
            .iter()
            .map(|&q| f * q)
            .fold(f64::NEG_INFINITY, f64::max);
        let unnorm: Vec<f64> = scores.iter().map(|&q| (f * q - max).exp()).collect();
        let z: f64 = unnorm.iter().sum();
        Ok(unnorm.into_iter().map(|w| w / z).collect())
    }

    /// Selects `c` distinct indices by peeling: `c` independent rounds,
    /// each removing its winner from the pool. **Each round consumes this
    /// mechanism's full `ε`**, so the whole call satisfies `c·ε`-DP by
    /// sequential composition; callers wanting total budget `ε` should
    /// construct the mechanism with `ε/c` (as `svt-core::em_select` does).
    ///
    /// If `c ≥ scores.len()`, every index is returned in selection order.
    ///
    /// # Errors
    /// Same as [`ExponentialMechanism::select`].
    pub fn select_without_replacement(
        &self,
        scores: &[f64],
        c: usize,
        rng: &mut DpRng,
    ) -> Result<Vec<usize>> {
        Self::check_scores(scores)?;
        let f = self.log_weight_factor();
        let mut log_weights: Vec<f64> = scores.iter().map(|&q| f * q).collect();
        let rounds = c.min(scores.len());
        let mut picked = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let winner = gumbel_argmax(&log_weights, rng)?;
            log_weights[winner] = f64::NEG_INFINITY;
            picked.push(winner);
        }
        Ok(picked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(ExponentialMechanism::new(0.1, 1.0).is_ok());
        assert!(ExponentialMechanism::new(0.0, 1.0).is_err());
        assert!(ExponentialMechanism::new(0.1, 0.0).is_err());
        assert!(ExponentialMechanism::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn monotonic_doubles_the_exponent() {
        let general = ExponentialMechanism::new(0.2, 1.0).unwrap();
        let mono = ExponentialMechanism::new_monotonic(0.2, 1.0).unwrap();
        assert!((mono.log_weight_factor() / general.log_weight_factor() - 2.0).abs() < 1e-12);
        assert!(mono.is_monotonic());
        assert!(!general.is_monotonic());
    }

    #[test]
    fn probabilities_sum_to_one_and_order_by_score() {
        let em = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let scores = [3.0, 1.0, 4.0, 1.0, 5.0];
        let p = em.selection_probabilities(&scores).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Higher score ⇒ strictly higher probability.
        assert!(p[4] > p[2] && p[2] > p[0] && p[0] > p[1]);
        // Ties get equal probability.
        assert!((p[1] - p[3]).abs() < 1e-15);
    }

    #[test]
    fn probabilities_are_stable_for_huge_scores() {
        let em = ExponentialMechanism::new(0.1, 1.0).unwrap();
        let scores = [100_000.0, 99_000.0, 0.0];
        let p = em.selection_probabilities(&scores).unwrap();
        assert!(p.iter().all(|q| q.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > 0.99);
    }

    #[test]
    fn gumbel_and_direct_samplers_agree() {
        let em = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let scores = [0.0, 1.0, 2.0, 3.0];
        let probs = em.selection_probabilities(&scores).unwrap();
        let mut rng = DpRng::seed_from_u64(61);
        let trials = 60_000;
        let mut gumbel_counts = [0usize; 4];
        let mut direct_counts = [0usize; 4];
        for _ in 0..trials {
            gumbel_counts[em.select(&scores, &mut rng).unwrap()] += 1;
            direct_counts[em.select_direct(&scores, &mut rng).unwrap()] += 1;
        }
        for i in 0..4 {
            let g = gumbel_counts[i] as f64 / trials as f64;
            let d = direct_counts[i] as f64 / trials as f64;
            assert!(
                (g - probs[i]).abs() < 0.012,
                "gumbel i={i}: {g} vs {}",
                probs[i]
            );
            assert!(
                (d - probs[i]).abs() < 0.012,
                "direct i={i}: {d} vs {}",
                probs[i]
            );
        }
    }

    #[test]
    fn select_rejects_bad_input() {
        let em = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let mut rng = DpRng::seed_from_u64(67);
        assert_eq!(
            em.select(&[], &mut rng),
            Err(MechanismError::EmptyCandidates)
        );
        let err = em.select(&[1.0, f64::NAN], &mut rng).unwrap_err();
        assert!(matches!(
            err,
            MechanismError::NonFiniteScore { index: 1, .. }
        ));
    }

    #[test]
    fn peeling_returns_distinct_indices() {
        let em = ExponentialMechanism::new(0.5, 1.0).unwrap();
        let scores: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut rng = DpRng::seed_from_u64(71);
        let picked = em
            .select_without_replacement(&scores, 10, &mut rng)
            .unwrap();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "peeling must not repeat candidates");
    }

    #[test]
    fn peeling_with_c_at_least_n_returns_everything() {
        let em = ExponentialMechanism::new(0.5, 1.0).unwrap();
        let scores = [1.0, 2.0, 3.0];
        let mut rng = DpRng::seed_from_u64(73);
        let picked = em
            .select_without_replacement(&scores, 10, &mut rng)
            .unwrap();
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn strong_epsilon_concentrates_on_argmax() {
        // With a large budget the mechanism is almost deterministic.
        let em = ExponentialMechanism::new(50.0, 1.0).unwrap();
        let scores = [1.0, 2.0, 10.0];
        let mut rng = DpRng::seed_from_u64(79);
        let hits = (0..1000)
            .filter(|_| em.select(&scores, &mut rng).unwrap() == 2)
            .count();
        assert!(hits > 990, "hits {hits}");
    }

    #[test]
    fn em_satisfies_dp_ratio_on_probabilities() {
        // Exact check of the ε-DP bound for one selection: moving every
        // score by at most Δ in arbitrary directions changes each
        // selection probability by a factor ≤ exp(ε) (general scoring).
        let em = ExponentialMechanism::new(0.7, 1.0).unwrap();
        let d: Vec<f64> = vec![5.0, 3.0, 8.0, 1.0];
        let d_prime: Vec<f64> = vec![4.0, 4.0, 7.0, 2.0]; // each moved by Δ=1
        let p = em.selection_probabilities(&d).unwrap();
        let q = em.selection_probabilities(&d_prime).unwrap();
        let bound = 0.7f64.exp();
        for i in 0..4 {
            let ratio = p[i] / q[i];
            assert!(
                ratio <= bound + 1e-9 && ratio >= 1.0 / bound - 1e-9,
                "i={i} ratio={ratio}"
            );
        }
    }

    #[test]
    fn monotonic_em_satisfies_dp_ratio_for_one_directional_change() {
        // Monotonic scoring is ε-DP when all scores move the same way.
        let em = ExponentialMechanism::new_monotonic(0.7, 1.0).unwrap();
        let d: Vec<f64> = vec![5.0, 3.0, 8.0, 1.0];
        let d_prime: Vec<f64> = d.iter().map(|q| q + 1.0).collect();
        let p = em.selection_probabilities(&d).unwrap();
        let q = em.selection_probabilities(&d_prime).unwrap();
        let bound = 0.7f64.exp();
        for i in 0..4 {
            let ratio = p[i] / q[i];
            assert!(
                ratio <= bound + 1e-9 && ratio >= 1.0 / bound - 1e-9,
                "i={i} ratio={ratio}"
            );
        }
    }
}
