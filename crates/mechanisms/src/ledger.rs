//! Auditable, hash-chained privacy-budget ledger.
//!
//! [`BudgetAccountant`](crate::BudgetAccountant) answers "does this
//! charge fit?"; a multi-tenant server additionally has to answer "prove
//! to an auditor that what was spent is exactly what was recorded".
//! [`BudgetLedger`] grows the accountant into that role: every accepted
//! charge appends a [`ChargeReceipt`] carrying the tenant id, session
//! id, the `ε` charged, a monotonically increasing sequence number, and
//! a hash chained to the previous receipt. The chain starts from a
//! genesis hash bound to the tenant id and total budget, so a receipt
//! run cannot be transplanted between tenants or replayed against a
//! different total.
//!
//! [`BudgetLedger::verify_chain`] (and the free function
//! [`audit_receipts`] for externally supplied receipt runs) re-derives
//! every hash and rejects tampering with a *distinct* error per failure
//! mode — replayed receipts, out-of-order sequence numbers, edited
//! fields, and broken chain links are all distinguishable, which is what
//! lets an auditor report *what* went wrong rather than just "invalid".
//!
//! The hash is a 128-bit FNV-1a over a canonical field encoding. It is
//! **not cryptographic** — the workspace is dependency-free by design —
//! so the chain is tamper-*evident* against accidental corruption and
//! honest-but-buggy writers, not against an adversary who can recompute
//! hashes. Swapping in a keyed cryptographic hash only changes
//! [`chain_hash`]; the chain layout and audit logic are hash-agnostic.

use std::fmt;

use crate::budget::charge_fits;
use crate::error::MechanismError;

/// One append-only entry in a [`BudgetLedger`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChargeReceipt {
    /// Tenant whose budget was charged.
    pub tenant: u64,
    /// Session (within the tenant) that triggered the charge.
    pub session: u64,
    /// Monotonic sequence number: the genesis charge is `0`, each
    /// accepted charge increments by exactly one.
    pub seq: u64,
    /// Human-readable description of what consumed the budget.
    pub label: String,
    /// The `ε` consumed.
    pub epsilon: f64,
    /// Hash of the previous receipt (the genesis hash for `seq == 0`).
    pub prev_hash: u128,
    /// Chain hash over this receipt's fields and `prev_hash`.
    pub hash: u128,
}

/// Why a ledger charge or audit was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// A charge parameter was invalid (non-positive `ε`, bad total).
    InvalidCharge(MechanismError),
    /// The charge does not fit in the tenant's remaining budget.
    BudgetExhausted {
        /// The `ε` that was requested.
        requested: f64,
        /// The `ε` still available.
        remaining: f64,
    },
    /// A receipt's sequence number was already seen — the receipt was
    /// replayed into the run.
    ReplayedReceipt {
        /// The repeated sequence number.
        seq: u64,
    },
    /// A receipt's sequence number skips ahead of the expected value —
    /// receipts were dropped or reordered.
    OutOfOrderSequence {
        /// The sequence number the chain required next.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
    /// A receipt's stored hash does not match its re-derived hash — a
    /// field (tenant, session, label, `ε`, …) was edited after the fact.
    TamperedReceipt {
        /// Sequence number of the offending receipt.
        seq: u64,
    },
    /// A receipt's `prev_hash` does not match its predecessor's hash —
    /// the chain linkage was severed (e.g. a consistently re-hashed
    /// forgery was spliced in without rewriting the rest of the run).
    BrokenChain {
        /// Sequence number of the receipt whose back-link is wrong.
        seq: u64,
    },
    /// A receipt names a tenant other than the ledger's tenant.
    WrongTenant {
        /// The tenant the ledger belongs to.
        expected: u64,
        /// The tenant named by the receipt.
        found: u64,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidCharge(e) => write!(f, "invalid ledger charge: {e}"),
            Self::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "tenant budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
            Self::ReplayedReceipt { seq } => {
                write!(f, "replayed receipt: sequence number {seq} repeated")
            }
            Self::OutOfOrderSequence { expected, found } => write!(
                f,
                "out-of-order receipt: expected sequence {expected}, found {found}"
            ),
            Self::TamperedReceipt { seq } => {
                write!(f, "tampered receipt at sequence {seq}: hash mismatch")
            }
            Self::BrokenChain { seq } => write!(
                f,
                "broken chain at sequence {seq}: prev_hash does not match predecessor"
            ),
            Self::WrongTenant { expected, found } => write!(
                f,
                "receipt names tenant {found}, ledger belongs to tenant {expected}"
            ),
        }
    }
}

impl std::error::Error for LedgerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidCharge(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MechanismError> for LedgerError {
    fn from(e: MechanismError) -> Self {
        match e {
            MechanismError::BudgetExhausted {
                requested,
                remaining,
            } => Self::BudgetExhausted {
                requested,
                remaining,
            },
            other => Self::InvalidCharge(other),
        }
    }
}

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental 128-bit FNV-1a hasher over a canonical byte stream.
#[derive(Debug, Clone, Copy)]
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    /// Length-prefixed so `("ab", "c")` and `("a", "bc")` differ.
    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    fn finish(self) -> u128 {
        self.0
    }
}

/// The genesis hash a tenant's chain is anchored to.
///
/// Binding the tenant id and the total budget into the anchor means a
/// receipt run verified against one tenant/total cannot be replayed
/// against another.
#[must_use]
pub fn genesis_hash(tenant: u64, total_epsilon: f64) -> u128 {
    let mut h = Fnv128::new();
    h.write_str("svt-ledger-genesis-v1");
    h.write_u64(tenant);
    h.write_u64(total_epsilon.to_bits());
    h.finish()
}

/// The chain hash of one receipt given its predecessor's hash.
///
/// Covers every receipt field; `ε` is hashed via its IEEE-754 bit
/// pattern so audit equality is exact, not tolerance-based.
#[must_use]
pub fn chain_hash(
    prev_hash: u128,
    tenant: u64,
    session: u64,
    seq: u64,
    label: &str,
    epsilon: f64,
) -> u128 {
    let mut h = Fnv128::new();
    h.write_str("svt-ledger-receipt-v1");
    h.write_u128(prev_hash);
    h.write_u64(tenant);
    h.write_u64(session);
    h.write_u64(seq);
    h.write_str(label);
    h.write_u64(epsilon.to_bits());
    h.finish()
}

/// Append-only, hash-chained budget ledger for one tenant.
///
/// Functionally a [`BudgetAccountant`](crate::BudgetAccountant) (same
/// overdraw rule, same floating-point tolerance) whose history is a
/// verifiable receipt chain instead of a plain `Vec`.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    tenant: u64,
    total: f64,
    spent: f64,
    receipts: Vec<ChargeReceipt>,
}

impl BudgetLedger {
    /// Creates an empty ledger for `tenant` with the given total budget.
    ///
    /// # Errors
    /// Rejects non-positive or non-finite totals.
    pub fn new(tenant: u64, total_epsilon: f64) -> Result<Self, LedgerError> {
        crate::error::check_epsilon(total_epsilon).map_err(LedgerError::InvalidCharge)?;
        Ok(Self {
            tenant,
            total: total_epsilon,
            spent: 0.0,
            receipts: Vec::new(),
        })
    }

    /// The tenant this ledger belongs to.
    #[inline]
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// The configured total budget.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The budget consumed so far.
    #[inline]
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// The budget still available (never negative).
    #[inline]
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// The full receipt chain, in sequence order.
    pub fn receipts(&self) -> &[ChargeReceipt] {
        &self.receipts
    }

    /// Derives the receipt the next [`charge`](Self::charge) with these
    /// arguments would append, **without** appending it.
    ///
    /// This is the first half of the write-ahead protocol: a durable
    /// caller prepares the receipt, persists it (e.g. through a
    /// [`LedgerWal`](crate::wal::LedgerWal)), and only then commits it
    /// in memory via [`apply_prepared`](Self::apply_prepared) — so an
    /// I/O failure between the two leaves the in-memory ledger exactly
    /// where the durable log says it is.
    ///
    /// # Errors
    /// [`LedgerError::BudgetExhausted`] if the charge does not fit
    /// (within the accountant's floating-point tolerance);
    /// [`LedgerError::InvalidCharge`] on a non-positive `ε`.
    pub fn prepare_charge(
        &self,
        session: u64,
        label: &str,
        epsilon: f64,
    ) -> Result<ChargeReceipt, LedgerError> {
        crate::error::check_epsilon(epsilon).map_err(LedgerError::InvalidCharge)?;
        if !charge_fits(self.total, self.spent, epsilon) {
            return Err(LedgerError::BudgetExhausted {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        let seq = self.receipts.len() as u64;
        let prev_hash = match self.receipts.last() {
            Some(prev) => prev.hash,
            None => genesis_hash(self.tenant, self.total),
        };
        let hash = chain_hash(prev_hash, self.tenant, session, seq, label, epsilon);
        Ok(ChargeReceipt {
            tenant: self.tenant,
            session,
            seq,
            label: label.to_owned(),
            epsilon,
            prev_hash,
            hash,
        })
    }

    /// Appends a receipt previously produced by
    /// [`prepare_charge`](Self::prepare_charge) (or replayed from a
    /// durable log), re-validating it against the current chain head.
    ///
    /// # Errors
    /// The usual audit taxonomy: [`LedgerError::WrongTenant`],
    /// [`LedgerError::ReplayedReceipt`] / [`LedgerError::OutOfOrderSequence`]
    /// on a sequence mismatch, [`LedgerError::BrokenChain`] on a stale
    /// `prev_hash`, [`LedgerError::TamperedReceipt`] when the stored
    /// hash does not re-derive, and [`LedgerError::BudgetExhausted`]
    /// when the charge no longer fits.
    pub fn apply_prepared(
        &mut self,
        receipt: ChargeReceipt,
    ) -> Result<&ChargeReceipt, LedgerError> {
        if receipt.tenant != self.tenant {
            return Err(LedgerError::WrongTenant {
                expected: self.tenant,
                found: receipt.tenant,
            });
        }
        let expected_seq = self.receipts.len() as u64;
        if receipt.seq < expected_seq {
            return Err(LedgerError::ReplayedReceipt { seq: receipt.seq });
        }
        if receipt.seq > expected_seq {
            return Err(LedgerError::OutOfOrderSequence {
                expected: expected_seq,
                found: receipt.seq,
            });
        }
        let expected_prev = match self.receipts.last() {
            Some(prev) => prev.hash,
            None => genesis_hash(self.tenant, self.total),
        };
        if receipt.prev_hash != expected_prev {
            return Err(LedgerError::BrokenChain { seq: receipt.seq });
        }
        let derived = chain_hash(
            receipt.prev_hash,
            receipt.tenant,
            receipt.session,
            receipt.seq,
            &receipt.label,
            receipt.epsilon,
        );
        if derived != receipt.hash {
            return Err(LedgerError::TamperedReceipt { seq: receipt.seq });
        }
        crate::error::check_epsilon(receipt.epsilon).map_err(LedgerError::InvalidCharge)?;
        if !charge_fits(self.total, self.spent, receipt.epsilon) {
            return Err(LedgerError::BudgetExhausted {
                requested: receipt.epsilon,
                remaining: self.remaining(),
            });
        }
        self.spent += receipt.epsilon;
        self.receipts.push(receipt);
        Ok(self.receipts.last().expect("receipt just pushed"))
    }

    /// Charges `epsilon` against the tenant's budget on behalf of
    /// `session`, appending a chained receipt.
    ///
    /// # Errors
    /// [`LedgerError::BudgetExhausted`] if the charge does not fit
    /// (within the accountant's floating-point tolerance);
    /// [`LedgerError::InvalidCharge`] on a non-positive `ε`. A rejected
    /// charge appends nothing.
    pub fn charge(
        &mut self,
        session: u64,
        label: &str,
        epsilon: f64,
    ) -> Result<&ChargeReceipt, LedgerError> {
        let receipt = self.prepare_charge(session, label, epsilon)?;
        self.apply_prepared(receipt)
    }

    /// Re-derives the whole chain and checks it against the tenant id,
    /// the total budget, and the recorded spend.
    ///
    /// # Errors
    /// The first [`LedgerError`] encountered walking the chain; see
    /// [`audit_receipts`] for the failure taxonomy.
    pub fn verify_chain(&self) -> Result<(), LedgerError> {
        let audited = audit_receipts(self.tenant, self.total, &self.receipts)?;
        // The in-memory running total must agree with the chain's sum.
        if (audited - self.spent).abs() > 1e-9 {
            return Err(LedgerError::TamperedReceipt {
                seq: self.receipts.len().saturating_sub(1) as u64,
            });
        }
        Ok(())
    }
}

/// Audits an externally supplied receipt run against a tenant and total
/// budget, returning the total `ε` the chain accounts for.
///
/// This is the regulator's entry point: it takes the receipts alone (no
/// live ledger required) and re-derives every link from the genesis
/// hash.
///
/// # Errors
/// - [`LedgerError::WrongTenant`] — a receipt names another tenant.
/// - [`LedgerError::ReplayedReceipt`] — a sequence number repeats or
///   goes backwards (a receipt was injected twice).
/// - [`LedgerError::OutOfOrderSequence`] — a sequence number skips
///   ahead (receipts dropped or reordered).
/// - [`LedgerError::TamperedReceipt`] — a receipt's stored hash does
///   not match the hash re-derived from its fields.
/// - [`LedgerError::BrokenChain`] — a receipt's `prev_hash` does not
///   match its predecessor's hash.
/// - [`LedgerError::BudgetExhausted`] — the chain sums past the total.
pub fn audit_receipts(
    tenant: u64,
    total_epsilon: f64,
    receipts: &[ChargeReceipt],
) -> Result<f64, LedgerError> {
    let mut expected_prev = genesis_hash(tenant, total_epsilon);
    let mut spent = 0.0_f64;
    for (i, r) in receipts.iter().enumerate() {
        let expected_seq = i as u64;
        if r.tenant != tenant {
            return Err(LedgerError::WrongTenant {
                expected: tenant,
                found: r.tenant,
            });
        }
        if r.seq < expected_seq {
            return Err(LedgerError::ReplayedReceipt { seq: r.seq });
        }
        if r.seq > expected_seq {
            return Err(LedgerError::OutOfOrderSequence {
                expected: expected_seq,
                found: r.seq,
            });
        }
        let derived = chain_hash(r.prev_hash, r.tenant, r.session, r.seq, &r.label, r.epsilon);
        if derived != r.hash {
            return Err(LedgerError::TamperedReceipt { seq: r.seq });
        }
        if r.prev_hash != expected_prev {
            return Err(LedgerError::BrokenChain { seq: r.seq });
        }
        if !charge_fits(total_epsilon, spent, r.epsilon) {
            return Err(LedgerError::BudgetExhausted {
                requested: r.epsilon,
                remaining: (total_epsilon - spent).max(0.0),
            });
        }
        spent += r.epsilon;
        expected_prev = r.hash;
    }
    Ok(spent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger_with_charges() -> BudgetLedger {
        let mut ledger = BudgetLedger::new(7, 1.0).unwrap();
        ledger.charge(100, "svt session open", 0.3).unwrap();
        ledger.charge(101, "svt session open", 0.2).unwrap();
        ledger.charge(100, "numeric refresh", 0.1).unwrap();
        ledger
    }

    #[test]
    fn honest_chain_verifies() {
        let ledger = ledger_with_charges();
        ledger.verify_chain().unwrap();
        assert_eq!(ledger.receipts().len(), 3);
        assert!((ledger.spent() - 0.6).abs() < 1e-12);
        let spent = audit_receipts(7, 1.0, ledger.receipts()).unwrap();
        assert!((spent - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_chain_verifies() {
        let ledger = BudgetLedger::new(1, 0.5).unwrap();
        ledger.verify_chain().unwrap();
        assert_eq!(audit_receipts(1, 0.5, &[]).unwrap(), 0.0);
    }

    #[test]
    fn receipts_carry_monotonic_sequence_and_chain() {
        let ledger = ledger_with_charges();
        let receipts = ledger.receipts();
        assert_eq!(receipts[0].prev_hash, genesis_hash(7, 1.0));
        for (i, r) in receipts.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            if i > 0 {
                assert_eq!(r.prev_hash, receipts[i - 1].hash);
            }
        }
    }

    // --- Adversarial matrix (SNIPPETS.md snippet 2 style): each attack
    // is rejected with its own distinct error. ---

    #[test]
    fn replayed_receipt_rejected() {
        let ledger = ledger_with_charges();
        let mut run = ledger.receipts().to_vec();
        // Inject a copy of receipt 1 after itself: a replay attack to
        // double-collect an already-spent charge.
        let replay = run[1].clone();
        run.insert(2, replay);
        let err = audit_receipts(7, 1.0, &run).unwrap_err();
        assert_eq!(err, LedgerError::ReplayedReceipt { seq: 1 });
    }

    #[test]
    fn tampered_epsilon_mid_chain_rejected() {
        let ledger = ledger_with_charges();
        let mut run = ledger.receipts().to_vec();
        // Understate the spend of the middle receipt without re-hashing.
        run[1].epsilon = 0.01;
        let err = audit_receipts(7, 1.0, &run).unwrap_err();
        assert_eq!(err, LedgerError::TamperedReceipt { seq: 1 });
    }

    #[test]
    fn rehash_after_tamper_breaks_the_chain_instead() {
        let ledger = ledger_with_charges();
        let mut run = ledger.receipts().to_vec();
        // A smarter forger re-derives the tampered receipt's hash too —
        // then the *next* receipt's back-link exposes the splice.
        run[1].epsilon = 0.01;
        run[1].hash = chain_hash(run[1].prev_hash, 7, run[1].session, 1, &run[1].label, 0.01);
        let err = audit_receipts(7, 1.0, &run).unwrap_err();
        assert_eq!(err, LedgerError::BrokenChain { seq: 2 });
    }

    #[test]
    fn out_of_order_sequence_rejected() {
        let ledger = ledger_with_charges();
        let mut run = ledger.receipts().to_vec();
        // Drop receipt 1: the run jumps 0 → 2.
        run.remove(1);
        let err = audit_receipts(7, 1.0, &run).unwrap_err();
        assert_eq!(
            err,
            LedgerError::OutOfOrderSequence {
                expected: 1,
                found: 2
            }
        );
    }

    #[test]
    fn charging_an_exhausted_ledger_rejected() {
        let mut ledger = BudgetLedger::new(3, 0.5).unwrap();
        ledger.charge(1, "svt session open", 0.5).unwrap();
        let err = ledger.charge(2, "svt session open", 0.25).unwrap_err();
        assert!(matches!(err, LedgerError::BudgetExhausted { .. }));
        // The rejected charge must leave no receipt behind.
        assert_eq!(ledger.receipts().len(), 1);
        ledger.verify_chain().unwrap();
    }

    #[test]
    fn wrong_tenant_rejected() {
        let ledger = ledger_with_charges();
        let err = audit_receipts(8, 1.0, ledger.receipts()).unwrap_err();
        // Receipt 0 names tenant 7, the auditor expected tenant 8.
        assert_eq!(
            err,
            LedgerError::WrongTenant {
                expected: 8,
                found: 7
            }
        );
    }

    #[test]
    fn chain_is_anchored_to_total_budget() {
        // Same tenant, same charges, different total: the genesis anchor
        // differs, so the run cannot be replayed against another total.
        let ledger = ledger_with_charges();
        let err = audit_receipts(7, 2.0, ledger.receipts()).unwrap_err();
        assert_eq!(err, LedgerError::BrokenChain { seq: 0 });
    }

    #[test]
    fn invalid_charges_rejected() {
        let mut ledger = BudgetLedger::new(0, 1.0).unwrap();
        assert!(matches!(
            ledger.charge(0, "zero", 0.0),
            Err(LedgerError::InvalidCharge(_))
        ));
        assert!(matches!(
            ledger.charge(0, "nan", f64::NAN),
            Err(LedgerError::InvalidCharge(_))
        ));
        assert!(BudgetLedger::new(0, -1.0).is_err());
    }

    #[test]
    fn ledger_tolerates_floating_point_exact_fill() {
        // Same tolerance discipline as BudgetAccountant.
        let mut ledger = BudgetLedger::new(0, 0.3).unwrap();
        for s in 0..3 {
            ledger.charge(s, "third", 0.1).unwrap();
        }
        ledger.verify_chain().unwrap();
    }

    #[test]
    fn prepare_without_apply_changes_nothing() {
        let mut ledger = BudgetLedger::new(5, 1.0).unwrap();
        let prepared = ledger.prepare_charge(9, "svt session open", 0.4).unwrap();
        assert_eq!(ledger.receipts().len(), 0);
        assert_eq!(ledger.spent(), 0.0);
        // Committing the prepared receipt is exactly `charge`.
        ledger.apply_prepared(prepared.clone()).unwrap();
        let mut reference = BudgetLedger::new(5, 1.0).unwrap();
        let charged = reference.charge(9, "svt session open", 0.4).unwrap();
        assert_eq!(&prepared, charged);
        ledger.verify_chain().unwrap();
    }

    #[test]
    fn stale_prepared_receipt_is_rejected() {
        let mut ledger = BudgetLedger::new(5, 1.0).unwrap();
        let stale = ledger.prepare_charge(1, "svt session open", 0.1).unwrap();
        ledger.charge(2, "svt session open", 0.2).unwrap();
        // The chain head moved: the stale receipt's seq now replays.
        assert_eq!(
            ledger.apply_prepared(stale).unwrap_err(),
            LedgerError::ReplayedReceipt { seq: 0 }
        );
        // A receipt with the right seq but a stale back-link breaks the
        // chain instead of silently forking it.
        let fork = BudgetLedger::new(5, 1.0).unwrap();
        let wrong_prev = fork.prepare_charge(1, "svt session open", 0.1).unwrap();
        let mut forged = wrong_prev;
        forged.seq = 1;
        assert_eq!(
            ledger.apply_prepared(forged).unwrap_err(),
            LedgerError::BrokenChain { seq: 1 }
        );
        ledger.verify_chain().unwrap();
    }

    #[test]
    fn labels_are_length_prefixed_in_the_hash() {
        // ("ab" then "c") vs ("a" then "bc") must not collide.
        let h1 = chain_hash(0, 0, 0, 0, "ab", 0.1);
        let h2 = chain_hash(0, 0, 0, 0, "a", 0.1);
        assert_ne!(h1, h2);
    }
}
