//! The Laplace distribution and the Laplace mechanism.
//!
//! Everything in the Sparse Vector Technique is built out of Laplace
//! noise: the threshold perturbation `ρ = Lap(Δ/ε₁)`, the per-query
//! perturbation `ν = Lap(2cΔ/ε₂)`, and the optional numeric release
//! `Lap(cΔ/ε₃)` of Algorithm 7. This module provides the distribution
//! with full analytic support (density, CDF, survival, quantile) because
//! the grouped traversal simulator in `svt-experiments` needs exact
//! crossing probabilities, and the budget-allocation optimizer needs
//! variances.
//!
//! Convention: `Lap(b)` denotes the zero-centred Laplace distribution
//! with *scale* `b`, i.e. density `f(x) = exp(-|x|/b) / (2b)`, exactly as
//! in Section 2 of the paper.

use crate::error::MechanismError;
use crate::rng::DpRng;
use crate::Result;

/// A zero-centred Laplace distribution with scale `b > 0`.
///
/// ```
/// use dp_mechanisms::{DpRng, Laplace};
///
/// // Noise for a Δ = 1 counting query under ε = 0.5: Lap(2).
/// let noise = Laplace::for_query(1.0, 0.5)?;
/// assert_eq!(noise.scale(), 2.0);
///
/// // Analytic support used throughout the workspace:
/// assert!((noise.cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((noise.survival(2.0) - 0.5 * (-1.0f64).exp()).abs() < 1e-15);
///
/// // Sampling is deterministic given a seeded generator.
/// let mut rng = DpRng::seed_from_u64(7);
/// let x = noise.sample(&mut rng);
/// assert!(x.is_finite());
/// # Ok::<(), dp_mechanisms::MechanismError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with the given scale.
    ///
    /// # Errors
    /// Returns [`MechanismError::InvalidScale`] unless `scale` is finite
    /// and strictly positive.
    pub fn new(scale: f64) -> Result<Self> {
        if scale.is_finite() && scale > 0.0 {
            Ok(Self { scale })
        } else {
            Err(MechanismError::InvalidScale(scale))
        }
    }

    /// The Laplace noise calibrated for a query of the given
    /// `sensitivity` released under `epsilon`-DP: `Lap(Δ/ε)`.
    pub fn for_query(sensitivity: f64, epsilon: f64) -> Result<Self> {
        crate::error::check_sensitivity(sensitivity)?;
        crate::error::check_epsilon(epsilon)?;
        Self::new(sensitivity / epsilon)
    }

    /// The scale parameter `b`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The variance, `2b²`.
    #[inline]
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// The standard deviation, `√2·b`.
    ///
    /// The paper's SVT-ReTr experiments raise the threshold by multiples
    /// of "one standard deviation of the added noises"; this is that
    /// quantity.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        std::f64::consts::SQRT_2 * self.scale
    }

    /// Density `f(x) = exp(-|x|/b)/(2b)`.
    #[inline]
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x.abs()) / self.scale).exp() / (2.0 * self.scale)
    }

    /// Distribution function `F(x) = P[X ≤ x]`.
    #[inline]
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }

    /// Survival function `P[X ≥ x] = 1 − F(x)` computed without
    /// catastrophic cancellation for large `x`.
    ///
    /// (For a continuous distribution `P[X ≥ x] = P[X > x]`.)
    #[inline]
    pub fn survival(&self, x: f64) -> f64 {
        if x < 0.0 {
            1.0 - 0.5 * (x / self.scale).exp()
        } else {
            0.5 * (-x / self.scale).exp()
        }
    }

    /// Quantile function: the unique `x` with `F(x) = p`, for `p ∈ (0,1)`.
    ///
    /// # Errors
    /// Returns [`MechanismError::InvalidProbability`] when `p` is outside
    /// the open unit interval.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(p > 0.0 && p < 1.0) {
            return Err(MechanismError::InvalidProbability(p));
        }
        Ok(if p < 0.5 {
            self.scale * (2.0 * p).ln()
        } else {
            -self.scale * (2.0 * (1.0 - p)).ln()
        })
    }

    /// Draws one sample by inverse-CDF transform.
    #[inline]
    pub fn sample(&self, rng: &mut DpRng) -> f64 {
        // u uniform on (-1/2, 1/2]; x = -b · sgn(u) · ln(1 − 2|u|).
        // open_uniform() ∈ (0,1) keeps the argument of ln strictly
        // positive, so the sample is always finite.
        let u = rng.open_uniform() - 0.5;
        if u < 0.0 {
            self.scale * (1.0 + 2.0 * u).ln()
        } else {
            -self.scale * (1.0 - 2.0 * u).ln()
        }
    }

    /// Draws `n` samples into a fresh vector.
    pub fn sample_n(&self, n: usize, rng: &mut DpRng) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// The Laplace mechanism: releases `value + Lap(Δ/ε)`.
///
/// This is the primitive invoked by Algorithm 7's numeric output phase
/// (`a_i = q_i(D) + Lap(cΔ/ε₃)`) and by the interactive mediator when a
/// query's derived answer is rejected.
///
/// # Errors
/// Propagates parameter validation from [`Laplace::for_query`].
pub fn laplace_mechanism(
    value: f64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut DpRng,
) -> Result<f64> {
    Ok(value + Laplace::for_query(sensitivity, epsilon)?.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lap(b: f64) -> Laplace {
        Laplace::new(b).unwrap()
    }

    #[test]
    fn construction_rejects_bad_scales() {
        assert!(Laplace::new(0.0).is_err());
        assert!(Laplace::new(-1.0).is_err());
        assert!(Laplace::new(f64::NAN).is_err());
        assert!(Laplace::new(f64::INFINITY).is_err());
        assert!(Laplace::new(1e-12).is_ok());
    }

    #[test]
    fn for_query_divides_sensitivity_by_epsilon() {
        let l = Laplace::for_query(2.0, 0.5).unwrap();
        assert!((l.scale() - 4.0).abs() < 1e-12);
        assert!(Laplace::for_query(0.0, 0.5).is_err());
        assert!(Laplace::for_query(1.0, 0.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let l = lap(1.7);
        // Trapezoid rule over [-40b, 40b].
        let (lo, hi, steps) = (-40.0 * 1.7, 40.0 * 1.7, 400_000);
        let h = (hi - lo) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let x = lo + i as f64 * h;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * l.pdf(x);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-6, "integral {total}");
    }

    #[test]
    fn cdf_matches_known_values() {
        let l = lap(2.0);
        assert!((l.cdf(0.0) - 0.5).abs() < 1e-15);
        // F(b·ln 2) at positive side: 1 - 0.5·exp(-ln 2) = 0.75
        assert!((l.cdf(2.0 * std::f64::consts::LN_2) - 0.75).abs() < 1e-12);
        assert!((l.cdf(-2.0 * std::f64::consts::LN_2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn survival_complements_cdf() {
        let l = lap(0.9);
        for &x in &[-30.0, -3.0, -0.1, 0.0, 0.1, 3.0, 30.0] {
            assert!((l.cdf(x) + l.survival(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn survival_avoids_cancellation_in_deep_tail() {
        let l = lap(1.0);
        let s = l.survival(400.0);
        assert!(s > 0.0, "deep tail must stay positive, got {s}");
        let expected = 0.5 * (-400.0f64).exp();
        assert!((s / expected - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let l = lap(3.3);
        for &p in &[1e-9, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-9] {
            let x = l.quantile(p).unwrap();
            assert!((l.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
        assert!(l.quantile(0.0).is_err());
        assert!(l.quantile(1.0).is_err());
        assert!(l.quantile(-0.2).is_err());
        assert!(l.quantile(f64::NAN).is_err());
    }

    #[test]
    fn quantile_is_antisymmetric() {
        let l = lap(1.0);
        for &p in &[0.05, 0.2, 0.4] {
            let lo = l.quantile(p).unwrap();
            let hi = l.quantile(1.0 - p).unwrap();
            assert!((lo + hi).abs() < 1e-12, "p={p}: {lo} vs {hi}");
        }
    }

    #[test]
    fn sample_moments_match_theory() {
        let l = lap(2.5);
        let mut rng = DpRng::seed_from_u64(17);
        let n = 200_000;
        let xs = l.sample_n(n, &mut rng);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var / l.variance() - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn sample_empirical_cdf_matches_analytic() {
        let l = lap(1.0);
        let mut rng = DpRng::seed_from_u64(23);
        let n = 100_000;
        let xs = l.sample_n(n, &mut rng);
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            let emp = xs.iter().filter(|&&v| v <= x).count() as f64 / n as f64;
            assert!((emp - l.cdf(x)).abs() < 0.01, "x={x}: emp {emp}");
        }
    }

    #[test]
    fn dp_ratio_bound_holds_pointwise() {
        // The defining property: pdf(x)/pdf(x+Δ) ≤ exp(Δ/b).
        let l = lap(1.0);
        let delta = 1.0;
        let bound = (delta / l.scale()).exp();
        for i in -50..50 {
            let x = i as f64 * 0.25;
            let ratio = l.pdf(x) / l.pdf(x + delta);
            assert!(ratio <= bound + 1e-12, "x={x} ratio={ratio}");
        }
    }

    #[test]
    fn std_dev_is_sqrt_two_times_scale() {
        let l = lap(4.0);
        assert!((l.std_dev() - 4.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!((l.std_dev().powi(2) - l.variance()).abs() < 1e-9);
    }

    #[test]
    fn laplace_mechanism_adds_bounded_expected_noise() {
        let mut rng = DpRng::seed_from_u64(29);
        let n = 50_000;
        let sum: f64 = (0..n)
            .map(|_| laplace_mechanism(10.0, 1.0, 0.5, &mut rng).unwrap())
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }
}
