//! The Laplace distribution and the Laplace mechanism.
//!
//! Everything in the Sparse Vector Technique is built out of Laplace
//! noise: the threshold perturbation `ρ = Lap(Δ/ε₁)`, the per-query
//! perturbation `ν = Lap(2cΔ/ε₂)`, and the optional numeric release
//! `Lap(cΔ/ε₃)` of Algorithm 7. This module provides the distribution
//! with full analytic support (density, CDF, survival, quantile) because
//! the grouped traversal simulator in `svt-experiments` needs exact
//! crossing probabilities, and the budget-allocation optimizer needs
//! variances.
//!
//! Convention: `Lap(b)` denotes the zero-centred Laplace distribution
//! with *scale* `b`, i.e. density `f(x) = exp(-|x|/b) / (2b)`, exactly as
//! in Section 2 of the paper.

use crate::error::MechanismError;
use crate::rng::DpRng;
use crate::sample::BatchSample;
use crate::Result;

/// A zero-centred Laplace distribution with scale `b > 0`.
///
/// ```
/// use dp_mechanisms::{DpRng, Laplace};
///
/// // Noise for a Δ = 1 counting query under ε = 0.5: Lap(2).
/// let noise = Laplace::for_query(1.0, 0.5)?;
/// assert_eq!(noise.scale(), 2.0);
///
/// // Analytic support used throughout the workspace:
/// assert!((noise.cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((noise.survival(2.0) - 0.5 * (-1.0f64).exp()).abs() < 1e-15);
///
/// // Sampling is deterministic given a seeded generator.
/// let mut rng = DpRng::seed_from_u64(7);
/// let x = noise.sample(&mut rng);
/// assert!(x.is_finite());
/// # Ok::<(), dp_mechanisms::MechanismError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with the given scale.
    ///
    /// # Errors
    /// Returns [`MechanismError::InvalidScale`] unless `scale` is finite
    /// and strictly positive.
    pub fn new(scale: f64) -> Result<Self> {
        if scale.is_finite() && scale > 0.0 {
            Ok(Self { scale })
        } else {
            Err(MechanismError::InvalidScale(scale))
        }
    }

    /// The Laplace noise calibrated for a query of the given
    /// `sensitivity` released under `epsilon`-DP: `Lap(Δ/ε)`.
    pub fn for_query(sensitivity: f64, epsilon: f64) -> Result<Self> {
        crate::error::check_sensitivity(sensitivity)?;
        crate::error::check_epsilon(epsilon)?;
        Self::new(sensitivity / epsilon)
    }

    /// The scale parameter `b`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The variance, `2b²`.
    #[inline]
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// The standard deviation, `√2·b`.
    ///
    /// The paper's SVT-ReTr experiments raise the threshold by multiples
    /// of "one standard deviation of the added noises"; this is that
    /// quantity.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        std::f64::consts::SQRT_2 * self.scale
    }

    /// Density `f(x) = exp(-|x|/b)/(2b)`.
    #[inline]
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x.abs()) / self.scale).exp() / (2.0 * self.scale)
    }

    /// Distribution function `F(x) = P[X ≤ x]`.
    #[inline]
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }

    /// Survival function `P[X ≥ x] = 1 − F(x)` computed without
    /// catastrophic cancellation for large `x`.
    ///
    /// (For a continuous distribution `P[X ≥ x] = P[X > x]`.)
    #[inline]
    pub fn survival(&self, x: f64) -> f64 {
        if x < 0.0 {
            1.0 - 0.5 * (x / self.scale).exp()
        } else {
            0.5 * (-x / self.scale).exp()
        }
    }

    /// Quantile function: the unique `x` with `F(x) = p`, for `p ∈ (0,1)`.
    ///
    /// # Errors
    /// Returns [`MechanismError::InvalidProbability`] when `p` is outside
    /// the open unit interval.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(p > 0.0 && p < 1.0) {
            return Err(MechanismError::InvalidProbability(p));
        }
        Ok(if p < 0.5 {
            self.scale * (2.0 * p).ln()
        } else {
            -self.scale * (2.0 * (1.0 - p)).ln()
        })
    }

    /// Draws one sample by inverse-CDF transform.
    #[inline]
    pub fn sample(&self, rng: &mut DpRng) -> f64 {
        // u uniform on (-1/2, 1/2]; x = -b · sgn(u) · ln(1 − 2|u|).
        // open_uniform() ∈ (0,1) keeps the argument of ln strictly
        // positive, so the sample is always finite.
        let u = rng.open_uniform() - 0.5;
        Self::transform(self.scale, u)
    }

    /// The inverse-CDF transform shared by the scalar and batched paths;
    /// `u` is uniform on `(-1/2, 1/2)`.
    #[inline]
    fn transform(scale: f64, u: f64) -> f64 {
        if u < 0.0 {
            scale * (1.0 + 2.0 * u).ln()
        } else {
            -scale * (1.0 - 2.0 * u).ln()
        }
    }

    /// Fills `out` with independent samples.
    ///
    /// Bit-identical to `for x in out { *x = dist.sample(rng) }` for the
    /// same generator state — the underlying uniforms are drawn through
    /// the block-wise [`DpRng::fill_open_uniform`], which consumes the
    /// identical word sequence — but validates parameters once per batch
    /// (at construction) and amortizes the per-draw RNG bookkeeping.
    pub fn sample_into(&self, rng: &mut DpRng, out: &mut [f64]) {
        rng.fill_open_uniform(out);
        for x in out.iter_mut() {
            *x = Self::transform(self.scale, *x - 0.5);
        }
    }
}

impl BatchSample for Laplace {
    #[inline]
    fn sample_one(&self, rng: &mut DpRng) -> f64 {
        self.sample(rng)
    }

    #[inline]
    fn sample_into(&self, rng: &mut DpRng, out: &mut [f64]) {
        Laplace::sample_into(self, rng, out);
    }
}

/// A reusable scratch buffer of prefetched noise from any
/// [`BatchSample`] distribution.
///
/// The simulation engines draw one noise value per examined item; doing
/// that a block at a time through `sample_into` (e.g.
/// [`Laplace::sample_into`] or [`Gumbel::sample_into`](crate::Gumbel::sample_into))
/// keeps the RNG on its bulk path. Because `sample_into` is
/// stream-equivalent to scalar sampling (the [`BatchSample`] contract),
/// the sequence of values handed out by [`next`](NoiseBuffer::next) is
/// independent of the batch size — only how far ahead of the consumer
/// the generator has run differs, so a dedicated (forked) noise
/// generator sees no observable difference.
///
/// The buffer caches raw samples of *one* distribution drawn from *one*
/// generator; call [`reset`](NoiseBuffer::reset) before switching either.
#[derive(Debug, Clone)]
pub struct NoiseBuffer {
    buf: Vec<f64>,
    cursor: usize,
    batch: usize,
}

impl NoiseBuffer {
    /// Default batch size: big enough to amortize per-call overhead,
    /// small enough that a typical early-aborting SVT run wastes little
    /// prefetched noise.
    pub const DEFAULT_BATCH: usize = 256;

    /// Creates an empty buffer with the default batch size.
    pub fn new() -> Self {
        Self::with_batch(Self::DEFAULT_BATCH)
    }

    /// Creates an empty buffer that refills `batch` samples at a time
    /// (clamped to at least 1).
    pub fn with_batch(batch: usize) -> Self {
        Self {
            buf: Vec::new(),
            cursor: 0,
            batch: batch.max(1),
        }
    }

    /// Discards any prefetched noise; the next [`next`](Self::next)
    /// refills from the generator it is handed.
    #[inline]
    pub fn reset(&mut self) {
        self.cursor = self.buf.len();
    }

    /// The next prefetched sample of `dist`, refilling from `rng` when
    /// the buffer is exhausted.
    #[inline]
    pub fn next<D: BatchSample>(&mut self, dist: &D, rng: &mut DpRng) -> f64 {
        if self.cursor >= self.buf.len() {
            self.buf.resize(self.batch, 0.0);
            dist.sample_into(rng, &mut self.buf);
            self.cursor = 0;
        }
        let v = self.buf[self.cursor];
        self.cursor += 1;
        v
    }

    /// Ensures at least `n` unconsumed samples of `dist` are buffered,
    /// topping up the shortfall with **one** batched fill from `rng`.
    ///
    /// This is how a batch of `n` queries against one session costs one
    /// generator fill instead of up to `n`: prefetch `n`, then call
    /// [`next`](Self::next) per query. Because batched fills are
    /// stream-equivalent to scalar draws (the [`BatchSample`] contract),
    /// prefetching changes only how far ahead of the consumer the
    /// generator runs — never the values handed out — so prefetching
    /// more than is ultimately consumed (e.g. a session halts mid-batch)
    /// is harmless: the surplus is served to later calls unchanged.
    pub fn prefetch<D: BatchSample>(&mut self, dist: &D, rng: &mut DpRng, n: usize) {
        let available = self.buf.len() - self.cursor;
        if available >= n {
            return;
        }
        let deficit = n - available;
        // Compact the unconsumed tail to the front, then append the
        // shortfall in a single fill.
        self.buf.drain(..self.cursor);
        self.cursor = 0;
        let old_len = self.buf.len();
        self.buf.resize(old_len + deficit, 0.0);
        dist.sample_into(rng, &mut self.buf[old_len..]);
    }

    /// How many prefetched samples are currently buffered and unconsumed.
    #[inline]
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.cursor
    }
}

impl Default for NoiseBuffer {
    fn default() -> Self {
        Self::new()
    }
}

/// The Laplace mechanism: releases `value + Lap(Δ/ε)`.
///
/// This is the primitive invoked by Algorithm 7's numeric output phase
/// (`a_i = q_i(D) + Lap(cΔ/ε₃)`) and by the interactive mediator when a
/// query's derived answer is rejected.
///
/// # Errors
/// Propagates parameter validation from [`Laplace::for_query`].
pub fn laplace_mechanism(
    value: f64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut DpRng,
) -> Result<f64> {
    Ok(value + Laplace::for_query(sensitivity, epsilon)?.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lap(b: f64) -> Laplace {
        Laplace::new(b).unwrap()
    }

    #[test]
    fn construction_rejects_bad_scales() {
        assert!(Laplace::new(0.0).is_err());
        assert!(Laplace::new(-1.0).is_err());
        assert!(Laplace::new(f64::NAN).is_err());
        assert!(Laplace::new(f64::INFINITY).is_err());
        assert!(Laplace::new(1e-12).is_ok());
    }

    #[test]
    fn for_query_divides_sensitivity_by_epsilon() {
        let l = Laplace::for_query(2.0, 0.5).unwrap();
        assert!((l.scale() - 4.0).abs() < 1e-12);
        assert!(Laplace::for_query(0.0, 0.5).is_err());
        assert!(Laplace::for_query(1.0, 0.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let l = lap(1.7);
        // Trapezoid rule over [-40b, 40b].
        let (lo, hi, steps) = (-40.0 * 1.7, 40.0 * 1.7, 400_000);
        let h = (hi - lo) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let x = lo + i as f64 * h;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * l.pdf(x);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-6, "integral {total}");
    }

    #[test]
    fn cdf_matches_known_values() {
        let l = lap(2.0);
        assert!((l.cdf(0.0) - 0.5).abs() < 1e-15);
        // F(b·ln 2) at positive side: 1 - 0.5·exp(-ln 2) = 0.75
        assert!((l.cdf(2.0 * std::f64::consts::LN_2) - 0.75).abs() < 1e-12);
        assert!((l.cdf(-2.0 * std::f64::consts::LN_2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn survival_complements_cdf() {
        let l = lap(0.9);
        for &x in &[-30.0, -3.0, -0.1, 0.0, 0.1, 3.0, 30.0] {
            assert!((l.cdf(x) + l.survival(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn survival_avoids_cancellation_in_deep_tail() {
        let l = lap(1.0);
        let s = l.survival(400.0);
        assert!(s > 0.0, "deep tail must stay positive, got {s}");
        let expected = 0.5 * (-400.0f64).exp();
        assert!((s / expected - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let l = lap(3.3);
        for &p in &[1e-9, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-9] {
            let x = l.quantile(p).unwrap();
            assert!((l.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
        assert!(l.quantile(0.0).is_err());
        assert!(l.quantile(1.0).is_err());
        assert!(l.quantile(-0.2).is_err());
        assert!(l.quantile(f64::NAN).is_err());
    }

    #[test]
    fn quantile_is_antisymmetric() {
        let l = lap(1.0);
        for &p in &[0.05, 0.2, 0.4] {
            let lo = l.quantile(p).unwrap();
            let hi = l.quantile(1.0 - p).unwrap();
            assert!((lo + hi).abs() < 1e-12, "p={p}: {lo} vs {hi}");
        }
    }

    #[test]
    fn sample_moments_match_theory() {
        let l = lap(2.5);
        let mut rng = DpRng::seed_from_u64(17);
        let n = 200_000;
        let mut xs = vec![0.0; n];
        l.sample_into(&mut rng, &mut xs);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var / l.variance() - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn sample_empirical_cdf_matches_analytic() {
        let l = lap(1.0);
        let mut rng = DpRng::seed_from_u64(23);
        let n = 100_000;
        let mut xs = vec![0.0; n];
        l.sample_into(&mut rng, &mut xs);
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            let emp = xs.iter().filter(|&&v| v <= x).count() as f64 / n as f64;
            assert!((emp - l.cdf(x)).abs() < 0.01, "x={x}: emp {emp}");
        }
    }

    #[test]
    fn sample_into_is_bit_identical_to_scalar_sampling() {
        let l = lap(3.7);
        for len in [1usize, 8, 255, 256, 257, 5000] {
            let mut scalar_rng = DpRng::seed_from_u64(977);
            let mut batched_rng = DpRng::seed_from_u64(977);
            let want: Vec<u64> = (0..len)
                .map(|_| l.sample(&mut scalar_rng).to_bits())
                .collect();
            let mut got = vec![0.0; len];
            l.sample_into(&mut batched_rng, &mut got);
            let got_bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got_bits, want, "len {len}");
            // Both generators must also land in the same state.
            assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64(), "len {len}");
        }
    }

    #[test]
    fn noise_buffer_stream_is_independent_of_batch_size() {
        let l = lap(2.0);
        let draws = 700;
        let reference: Vec<u64> = {
            let mut rng = DpRng::seed_from_u64(991);
            (0..draws).map(|_| l.sample(&mut rng).to_bits()).collect()
        };
        for batch in [1usize, 2, 17, 256, 1024] {
            let mut rng = DpRng::seed_from_u64(991);
            let mut buf = NoiseBuffer::with_batch(batch);
            let got: Vec<u64> = (0..draws)
                .map(|_| buf.next(&l, &mut rng).to_bits())
                .collect();
            assert_eq!(got, reference, "batch {batch}");
        }
    }

    #[test]
    fn noise_buffer_prefetch_preserves_the_stream() {
        let l = lap(2.0);
        let draws = 500;
        let reference: Vec<u64> = {
            let mut rng = DpRng::seed_from_u64(991);
            (0..draws).map(|_| l.sample(&mut rng).to_bits()).collect()
        };
        // Interleave prefetches of varying sizes (including ones smaller
        // than what is already buffered) with consumption; the handed-out
        // stream must be untouched.
        let mut rng = DpRng::seed_from_u64(991);
        let mut buf = NoiseBuffer::with_batch(16);
        let mut got = Vec::with_capacity(draws);
        let mut i = 0usize;
        for (k, take) in [(0usize, 3usize), (40, 10), (5, 60), (1, 7), (300, 420)] {
            buf.prefetch(&l, &mut rng, k);
            assert!(buf.buffered() >= k);
            for _ in 0..take {
                got.push(buf.next(&l, &mut rng).to_bits());
                i += 1;
            }
        }
        assert_eq!(i, draws);
        assert_eq!(got, reference);
    }

    #[test]
    fn noise_buffer_reset_discards_prefetched_noise() {
        let l = lap(1.0);
        let mut rng = DpRng::seed_from_u64(997);
        let mut buf = NoiseBuffer::new();
        let first = buf.next(&l, &mut rng);
        buf.reset();
        // After a reset the buffer refills from the (advanced) rng; the
        // draw must differ from replaying the prefetched value.
        let second = buf.next(&l, &mut rng);
        assert!(first.is_finite() && second.is_finite());
        assert_ne!(first.to_bits(), second.to_bits());
    }

    #[test]
    fn dp_ratio_bound_holds_pointwise() {
        // The defining property: pdf(x)/pdf(x+Δ) ≤ exp(Δ/b).
        let l = lap(1.0);
        let delta = 1.0;
        let bound = (delta / l.scale()).exp();
        for i in -50..50 {
            let x = i as f64 * 0.25;
            let ratio = l.pdf(x) / l.pdf(x + delta);
            assert!(ratio <= bound + 1e-12, "x={x} ratio={ratio}");
        }
    }

    #[test]
    fn std_dev_is_sqrt_two_times_scale() {
        let l = lap(4.0);
        assert!((l.std_dev() - 4.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!((l.std_dev().powi(2) - l.variance()).abs() < 1e-9);
    }

    #[test]
    fn laplace_mechanism_adds_bounded_expected_noise() {
        let mut rng = DpRng::seed_from_u64(29);
        let n = 50_000;
        let sum: f64 = (0..n)
            .map(|_| laplace_mechanism(10.0, 1.0, 0.5, &mut rng).unwrap())
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }
}
