//! The Laplace distribution and the Laplace mechanism.
//!
//! Everything in the Sparse Vector Technique is built out of Laplace
//! noise: the threshold perturbation `ρ = Lap(Δ/ε₁)`, the per-query
//! perturbation `ν = Lap(2cΔ/ε₂)`, and the optional numeric release
//! `Lap(cΔ/ε₃)` of Algorithm 7. This module provides the distribution
//! with full analytic support (density, CDF, survival, quantile) because
//! the grouped traversal simulator in `svt-experiments` needs exact
//! crossing probabilities, and the budget-allocation optimizer needs
//! variances.
//!
//! Convention: `Lap(b)` denotes the zero-centred Laplace distribution
//! with *scale* `b`, i.e. density `f(x) = exp(-|x|/b) / (2b)`, exactly as
//! in Section 2 of the paper.

use crate::error::MechanismError;
use crate::fastmath;
use crate::rng::{counter_seed, DpRng};
use crate::sample::{BatchSample, NoiseKernel};
use crate::Result;

/// A zero-centred Laplace distribution with scale `b > 0`.
///
/// ```
/// use dp_mechanisms::{DpRng, Laplace};
///
/// // Noise for a Δ = 1 counting query under ε = 0.5: Lap(2).
/// let noise = Laplace::for_query(1.0, 0.5)?;
/// assert_eq!(noise.scale(), 2.0);
///
/// // Analytic support used throughout the workspace:
/// assert!((noise.cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((noise.survival(2.0) - 0.5 * (-1.0f64).exp()).abs() < 1e-15);
///
/// // Sampling is deterministic given a seeded generator.
/// let mut rng = DpRng::seed_from_u64(7);
/// let x = noise.sample(&mut rng);
/// assert!(x.is_finite());
/// # Ok::<(), dp_mechanisms::MechanismError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with the given scale.
    ///
    /// # Errors
    /// Returns [`MechanismError::InvalidScale`] unless `scale` is finite
    /// and strictly positive.
    pub fn new(scale: f64) -> Result<Self> {
        if scale.is_finite() && scale > 0.0 {
            Ok(Self { scale })
        } else {
            Err(MechanismError::InvalidScale(scale))
        }
    }

    /// The Laplace noise calibrated for a query of the given
    /// `sensitivity` released under `epsilon`-DP: `Lap(Δ/ε)`.
    pub fn for_query(sensitivity: f64, epsilon: f64) -> Result<Self> {
        crate::error::check_sensitivity(sensitivity)?;
        crate::error::check_epsilon(epsilon)?;
        Self::new(sensitivity / epsilon)
    }

    /// The scale parameter `b`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The variance, `2b²`.
    #[inline]
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// The standard deviation, `√2·b`.
    ///
    /// The paper's SVT-ReTr experiments raise the threshold by multiples
    /// of "one standard deviation of the added noises"; this is that
    /// quantity.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        std::f64::consts::SQRT_2 * self.scale
    }

    /// Density `f(x) = exp(-|x|/b)/(2b)`.
    #[inline]
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x.abs()) / self.scale).exp() / (2.0 * self.scale)
    }

    /// Distribution function `F(x) = P[X ≤ x]`.
    #[inline]
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }

    /// Survival function `P[X ≥ x] = 1 − F(x)` computed without
    /// catastrophic cancellation for large `x`.
    ///
    /// (For a continuous distribution `P[X ≥ x] = P[X > x]`.)
    #[inline]
    pub fn survival(&self, x: f64) -> f64 {
        if x < 0.0 {
            1.0 - 0.5 * (x / self.scale).exp()
        } else {
            0.5 * (-x / self.scale).exp()
        }
    }

    /// Quantile function: the unique `x` with `F(x) = p`, for `p ∈ (0,1)`.
    ///
    /// # Errors
    /// Returns [`MechanismError::InvalidProbability`] when `p` is outside
    /// the open unit interval.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(p > 0.0 && p < 1.0) {
            return Err(MechanismError::InvalidProbability(p));
        }
        Ok(if p < 0.5 {
            self.scale * (2.0 * p).ln()
        } else {
            -self.scale * (2.0 * (1.0 - p)).ln()
        })
    }

    /// Draws one sample by inverse-CDF transform.
    #[inline]
    pub fn sample(&self, rng: &mut DpRng) -> f64 {
        // u uniform on (-1/2, 1/2]; x = -b · sgn(u) · ln(1 − 2|u|).
        // open_uniform() ∈ (0,1) keeps the argument of ln strictly
        // positive, so the sample is always finite.
        let u = rng.open_uniform() - 0.5;
        Self::transform(self.scale, u)
    }

    /// The inverse-CDF transform shared by the scalar and batched paths;
    /// `u` is uniform on `(-1/2, 1/2)`.
    #[inline]
    fn transform(scale: f64, u: f64) -> f64 {
        if u < 0.0 {
            scale * (1.0 + 2.0 * u).ln()
        } else {
            -scale * (1.0 - 2.0 * u).ln()
        }
    }

    /// Fills `out` with independent samples.
    ///
    /// Bit-identical to `for x in out { *x = dist.sample(rng) }` for the
    /// same generator state — the underlying uniforms are drawn through
    /// the block-wise [`DpRng::fill_open_uniform`], which consumes the
    /// identical word sequence — but validates parameters once per batch
    /// (at construction) and amortizes the per-draw RNG bookkeeping.
    pub fn sample_into(&self, rng: &mut DpRng, out: &mut [f64]) {
        rng.fill_open_uniform(out);
        for x in out.iter_mut() {
            *x = Self::transform(self.scale, *x - 0.5);
        }
    }

    /// The [`NoiseKernel::Vectorized`] fill: identical uniforms (same
    /// words consumed as [`sample_into`](Self::sample_into)), with the
    /// inverse CDF rewritten branch-free over the [`fastmath`] log so
    /// the whole transform auto-vectorizes:
    ///
    /// ```text
    /// d = u − ½ ∈ (−½, ½)       (exact on the 53-bit uniform grid)
    /// arg = 1 − 2|d| ∈ [2⁻⁵², 1] (exact, always a positive normal)
    /// x = copysign(−b · ln(arg), d)
    /// ```
    ///
    /// Values agree with the reference transform to the `fastmath`
    /// relative-error bound (the sign and the argument of the log are
    /// computed exactly, so the only divergence is the log itself).
    pub fn sample_into_vectorized(&self, rng: &mut DpRng, out: &mut [f64]) {
        const L: usize = fastmath::LANES;
        rng.fill_open_uniform(out);
        let scale = self.scale;
        let mut chunks = out.chunks_exact_mut(L);
        for chunk in &mut chunks {
            let mut signs = [0.0f64; L];
            let mut args = [0.0f64; L];
            for j in 0..L {
                let d = chunk[j] - 0.5;
                signs[j] = d;
                args[j] = 1.0 - 2.0 * d.abs();
            }
            let mut lns = [0.0f64; L];
            fastmath::ln_into(&args, &mut lns);
            for j in 0..L {
                chunk[j] = (-scale * lns[j]).copysign(signs[j]);
            }
        }
        for x in chunks.into_remainder() {
            let d = *x - 0.5;
            *x = (-scale * fastmath::ln(1.0 - 2.0 * d.abs())).copysign(d);
        }
    }
}

impl BatchSample for Laplace {
    #[inline]
    fn sample_one(&self, rng: &mut DpRng) -> f64 {
        self.sample(rng)
    }

    #[inline]
    fn sample_into(&self, rng: &mut DpRng, out: &mut [f64]) {
        Laplace::sample_into(self, rng, out);
    }

    #[inline]
    fn sample_into_vectorized(&self, rng: &mut DpRng, out: &mut [f64]) {
        Laplace::sample_into_vectorized(self, rng, out);
    }
}

/// A reusable scratch buffer of prefetched noise from any
/// [`BatchSample`] distribution.
///
/// The simulation engines draw one noise value per examined item; doing
/// that a block at a time through `sample_into` (e.g.
/// [`Laplace::sample_into`] or [`Gumbel::sample_into`](crate::Gumbel::sample_into))
/// keeps the RNG on its bulk path. Because `sample_into` is
/// stream-equivalent to scalar sampling (the [`BatchSample`] contract),
/// the sequence of values handed out by [`next`](NoiseBuffer::next) is
/// independent of the batch size — only how far ahead of the consumer
/// the generator has run differs, so a dedicated (forked) noise
/// generator sees no observable difference.
///
/// The buffer caches raw samples of *one* distribution drawn from *one*
/// generator; call [`reset`](NoiseBuffer::reset) before switching either.
///
/// ## Kernel policy
///
/// Every refill is dispatched through the buffer's [`NoiseKernel`]
/// (default [`NoiseKernel::Reference`], preserving the historical
/// bit-identical-to-scalar contract). Switching to
/// [`NoiseKernel::Vectorized`] changes only the transform applied to
/// the batched uniforms — the generator consumes the identical word
/// sequence either way.
///
/// ## Chunked mode (intra-run parallelism)
///
/// [`enable_chunked`](Self::enable_chunked) switches refills to a
/// *counter-derived* noise stream: the first refill draws one `u64`
/// base seed from the caller's generator, and chunk `k` (a fixed
/// [`CHUNK_LEN`](Self::CHUNK_LEN) samples) is then filled from a fresh
/// generator seeded with [`counter_seed`]`(base, k)`. The assembled
/// stream is a pure function of the base seed — independent of the
/// consumer's read pattern **and of the prefill thread count**, so a
/// multi-threaded prefill (thread `t` of `T` fills chunk `k·T + t`) is
/// bit-identical to the single-threaded one. This is what lets a
/// single large-`c` run parallelize its own noise generation without
/// changing its output.
#[derive(Debug, Clone)]
pub struct NoiseBuffer {
    buf: Vec<f64>,
    cursor: usize,
    batch: usize,
    kernel: NoiseKernel,
    /// `Some(threads)` while chunked mode is on.
    chunked: Option<usize>,
    /// Root of the counter-derived chunk family; drawn lazily at the
    /// first chunked refill.
    base_seed: Option<u64>,
    /// Index of the next chunk to generate.
    next_chunk: u64,
}

impl NoiseBuffer {
    /// Default batch size: big enough to amortize per-call overhead,
    /// small enough that a typical early-aborting SVT run wastes little
    /// prefetched noise.
    pub const DEFAULT_BATCH: usize = 256;

    /// Samples per counter-derived chunk in chunked mode. Fixed so the
    /// chunk → seed mapping (and hence the stream) never depends on
    /// thread count or batch configuration.
    pub const CHUNK_LEN: usize = 4_096;

    /// Creates an empty buffer with the default batch size.
    pub fn new() -> Self {
        Self::with_batch(Self::DEFAULT_BATCH)
    }

    /// Creates an empty buffer that refills `batch` samples at a time
    /// (clamped to at least 1).
    pub fn with_batch(batch: usize) -> Self {
        Self::with_kernel(batch, NoiseKernel::Reference)
    }

    /// Creates an empty buffer with an explicit refill batch size and
    /// transform kernel.
    pub fn with_kernel(batch: usize, kernel: NoiseKernel) -> Self {
        Self {
            buf: Vec::new(),
            cursor: 0,
            batch: batch.max(1),
            kernel,
            chunked: None,
            base_seed: None,
            next_chunk: 0,
        }
    }

    /// The transform kernel refills use.
    #[inline]
    pub fn kernel(&self) -> NoiseKernel {
        self.kernel
    }

    /// Sets the transform kernel for subsequent refills (already
    /// buffered samples are served unchanged).
    #[inline]
    pub fn set_kernel(&mut self, kernel: NoiseKernel) {
        self.kernel = kernel;
    }

    /// Discards any prefetched noise and leaves chunked mode; the next
    /// [`next`](Self::next) refills from the generator it is handed.
    #[inline]
    pub fn reset(&mut self) {
        self.cursor = self.buf.len();
        self.chunked = None;
        self.base_seed = None;
        self.next_chunk = 0;
    }

    /// Switches refills to the counter-derived chunked stream (see the
    /// type docs), prefilled by `threads` threads (clamped to ≥ 1; `1`
    /// generates inline with no thread spawn). Discards any buffered
    /// noise; the base seed is drawn from the generator passed to the
    /// first refilling call.
    pub fn enable_chunked(&mut self, threads: usize) {
        self.cursor = self.buf.len();
        self.chunked = Some(threads.max(1));
        self.base_seed = None;
        self.next_chunk = 0;
    }

    /// Whether chunked mode is active.
    #[inline]
    pub fn is_chunked(&self) -> bool {
        self.chunked.is_some()
    }

    /// The next prefetched sample of `dist`, refilling from `rng` when
    /// the buffer is exhausted.
    #[inline]
    pub fn next<D: BatchSample + Sync>(&mut self, dist: &D, rng: &mut DpRng) -> f64 {
        if self.cursor >= self.buf.len() {
            self.refill(dist, rng);
        }
        let v = self.buf[self.cursor];
        self.cursor += 1;
        v
    }

    fn refill<D: BatchSample + Sync>(&mut self, dist: &D, rng: &mut DpRng) {
        match self.chunked {
            None => {
                self.buf.resize(self.batch, 0.0);
                dist.sample_into_kernel(rng, &mut self.buf, self.kernel);
                self.cursor = 0;
            }
            Some(threads) => self.refill_chunked(dist, rng, threads),
        }
    }

    /// One chunked refill: generates `threads` whole chunks — chunk
    /// indices `next_chunk .. next_chunk + threads` — in parallel when
    /// `threads > 1`. Chunk `k`'s samples depend only on
    /// `(base_seed, k, kernel)`, so the stream is identical for every
    /// thread count.
    fn refill_chunked<D: BatchSample + Sync>(&mut self, dist: &D, rng: &mut DpRng, threads: usize) {
        let base = *self.base_seed.get_or_insert_with(|| rng.next_u64());
        let first = self.next_chunk;
        let kernel = self.kernel;
        self.buf.resize(threads * Self::CHUNK_LEN, 0.0);
        if threads == 1 {
            let mut chunk_rng = DpRng::seed_from_u64(counter_seed(base, first));
            dist.sample_into_kernel(&mut chunk_rng, &mut self.buf, kernel);
        } else {
            std::thread::scope(|scope| {
                for (k, part) in self.buf.chunks_mut(Self::CHUNK_LEN).enumerate() {
                    let seed = counter_seed(base, first + k as u64);
                    scope.spawn(move || {
                        let mut chunk_rng = DpRng::seed_from_u64(seed);
                        dist.sample_into_kernel(&mut chunk_rng, part, kernel);
                    });
                }
            });
        }
        self.next_chunk = first + threads as u64;
        self.cursor = 0;
    }

    /// Copies the next `out.len()` samples of `dist` into `out` —
    /// exactly the values that many successive [`next`](Self::next)
    /// calls would return, consuming the same generator draws — with
    /// the per-draw cursor check and bounds bookkeeping hoisted out to
    /// one `memcpy` per buffered span. Works in both plain and chunked
    /// mode (refills are whole batches/chunks either way).
    pub fn take_into<D: BatchSample + Sync>(&mut self, dist: &D, rng: &mut DpRng, out: &mut [f64]) {
        let mut filled = 0;
        while filled < out.len() {
            if self.cursor >= self.buf.len() {
                self.refill(dist, rng);
            }
            let take = (out.len() - filled).min(self.buf.len() - self.cursor);
            out[filled..filled + take].copy_from_slice(&self.buf[self.cursor..self.cursor + take]);
            self.cursor += take;
            filled += take;
        }
    }

    /// Ensures at least `n` unconsumed samples of `dist` are buffered,
    /// topping up the shortfall with **one** batched fill from `rng`.
    ///
    /// This is how a batch of `n` queries against one session costs one
    /// generator fill instead of up to `n`: prefetch `n`, then call
    /// [`next`](Self::next) per query. Because batched fills are
    /// stream-equivalent to scalar draws (the [`BatchSample`] contract),
    /// prefetching changes only how far ahead of the consumer the
    /// generator runs — never the values handed out — so prefetching
    /// more than is ultimately consumed (e.g. a session halts mid-batch)
    /// is harmless: the surplus is served to later calls unchanged.
    ///
    /// # Panics
    /// In chunked mode — chunked refills are whole fixed-size chunks,
    /// so `prefetch`'s partial top-up would break the counter-derived
    /// stream layout. Chunked consumers just call [`next`](Self::next).
    pub fn prefetch<D: BatchSample>(&mut self, dist: &D, rng: &mut DpRng, n: usize) {
        assert!(
            self.chunked.is_none(),
            "NoiseBuffer::prefetch is not supported in chunked mode"
        );
        let available = self.buf.len() - self.cursor;
        if available >= n {
            return;
        }
        let deficit = n - available;
        // Compact the unconsumed tail to the front, then append the
        // shortfall in a single fill.
        self.buf.drain(..self.cursor);
        self.cursor = 0;
        let old_len = self.buf.len();
        self.buf.resize(old_len + deficit, 0.0);
        dist.sample_into_kernel(rng, &mut self.buf[old_len..], self.kernel);
    }

    /// How many prefetched samples are currently buffered and unconsumed.
    #[inline]
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.cursor
    }
}

impl Default for NoiseBuffer {
    fn default() -> Self {
        Self::new()
    }
}

/// The Laplace mechanism: releases `value + Lap(Δ/ε)`.
///
/// This is the primitive invoked by Algorithm 7's numeric output phase
/// (`a_i = q_i(D) + Lap(cΔ/ε₃)`) and by the interactive mediator when a
/// query's derived answer is rejected.
///
/// # Errors
/// Propagates parameter validation from [`Laplace::for_query`].
pub fn laplace_mechanism(
    value: f64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut DpRng,
) -> Result<f64> {
    Ok(value + Laplace::for_query(sensitivity, epsilon)?.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lap(b: f64) -> Laplace {
        Laplace::new(b).unwrap()
    }

    #[test]
    fn construction_rejects_bad_scales() {
        assert!(Laplace::new(0.0).is_err());
        assert!(Laplace::new(-1.0).is_err());
        assert!(Laplace::new(f64::NAN).is_err());
        assert!(Laplace::new(f64::INFINITY).is_err());
        assert!(Laplace::new(1e-12).is_ok());
    }

    #[test]
    fn for_query_divides_sensitivity_by_epsilon() {
        let l = Laplace::for_query(2.0, 0.5).unwrap();
        assert!((l.scale() - 4.0).abs() < 1e-12);
        assert!(Laplace::for_query(0.0, 0.5).is_err());
        assert!(Laplace::for_query(1.0, 0.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let l = lap(1.7);
        // Trapezoid rule over [-40b, 40b].
        let (lo, hi, steps) = (-40.0 * 1.7, 40.0 * 1.7, 400_000);
        let h = (hi - lo) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let x = lo + i as f64 * h;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * l.pdf(x);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-6, "integral {total}");
    }

    #[test]
    fn cdf_matches_known_values() {
        let l = lap(2.0);
        assert!((l.cdf(0.0) - 0.5).abs() < 1e-15);
        // F(b·ln 2) at positive side: 1 - 0.5·exp(-ln 2) = 0.75
        assert!((l.cdf(2.0 * std::f64::consts::LN_2) - 0.75).abs() < 1e-12);
        assert!((l.cdf(-2.0 * std::f64::consts::LN_2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn survival_complements_cdf() {
        let l = lap(0.9);
        for &x in &[-30.0, -3.0, -0.1, 0.0, 0.1, 3.0, 30.0] {
            assert!((l.cdf(x) + l.survival(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn survival_avoids_cancellation_in_deep_tail() {
        let l = lap(1.0);
        let s = l.survival(400.0);
        assert!(s > 0.0, "deep tail must stay positive, got {s}");
        let expected = 0.5 * (-400.0f64).exp();
        assert!((s / expected - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let l = lap(3.3);
        for &p in &[1e-9, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-9] {
            let x = l.quantile(p).unwrap();
            assert!((l.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
        assert!(l.quantile(0.0).is_err());
        assert!(l.quantile(1.0).is_err());
        assert!(l.quantile(-0.2).is_err());
        assert!(l.quantile(f64::NAN).is_err());
    }

    #[test]
    fn quantile_is_antisymmetric() {
        let l = lap(1.0);
        for &p in &[0.05, 0.2, 0.4] {
            let lo = l.quantile(p).unwrap();
            let hi = l.quantile(1.0 - p).unwrap();
            assert!((lo + hi).abs() < 1e-12, "p={p}: {lo} vs {hi}");
        }
    }

    #[test]
    fn sample_moments_match_theory() {
        let l = lap(2.5);
        let mut rng = DpRng::seed_from_u64(17);
        let n = 200_000;
        let mut xs = vec![0.0; n];
        l.sample_into(&mut rng, &mut xs);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var / l.variance() - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn sample_empirical_cdf_matches_analytic() {
        let l = lap(1.0);
        let mut rng = DpRng::seed_from_u64(23);
        let n = 100_000;
        let mut xs = vec![0.0; n];
        l.sample_into(&mut rng, &mut xs);
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            let emp = xs.iter().filter(|&&v| v <= x).count() as f64 / n as f64;
            assert!((emp - l.cdf(x)).abs() < 0.01, "x={x}: emp {emp}");
        }
    }

    #[test]
    fn sample_into_is_bit_identical_to_scalar_sampling() {
        let l = lap(3.7);
        for len in [1usize, 8, 255, 256, 257, 5000] {
            let mut scalar_rng = DpRng::seed_from_u64(977);
            let mut batched_rng = DpRng::seed_from_u64(977);
            let want: Vec<u64> = (0..len)
                .map(|_| l.sample(&mut scalar_rng).to_bits())
                .collect();
            let mut got = vec![0.0; len];
            l.sample_into(&mut batched_rng, &mut got);
            let got_bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got_bits, want, "len {len}");
            // Both generators must also land in the same state.
            assert_eq!(scalar_rng.next_u64(), batched_rng.next_u64(), "len {len}");
        }
    }

    #[test]
    fn noise_buffer_stream_is_independent_of_batch_size() {
        let l = lap(2.0);
        let draws = 700;
        let reference: Vec<u64> = {
            let mut rng = DpRng::seed_from_u64(991);
            (0..draws).map(|_| l.sample(&mut rng).to_bits()).collect()
        };
        for batch in [1usize, 2, 17, 256, 1024] {
            let mut rng = DpRng::seed_from_u64(991);
            let mut buf = NoiseBuffer::with_batch(batch);
            let got: Vec<u64> = (0..draws)
                .map(|_| buf.next(&l, &mut rng).to_bits())
                .collect();
            assert_eq!(got, reference, "batch {batch}");
        }
    }

    #[test]
    fn noise_buffer_prefetch_preserves_the_stream() {
        let l = lap(2.0);
        let draws = 500;
        let reference: Vec<u64> = {
            let mut rng = DpRng::seed_from_u64(991);
            (0..draws).map(|_| l.sample(&mut rng).to_bits()).collect()
        };
        // Interleave prefetches of varying sizes (including ones smaller
        // than what is already buffered) with consumption; the handed-out
        // stream must be untouched.
        let mut rng = DpRng::seed_from_u64(991);
        let mut buf = NoiseBuffer::with_batch(16);
        let mut got = Vec::with_capacity(draws);
        let mut i = 0usize;
        for (k, take) in [(0usize, 3usize), (40, 10), (5, 60), (1, 7), (300, 420)] {
            buf.prefetch(&l, &mut rng, k);
            assert!(buf.buffered() >= k);
            for _ in 0..take {
                got.push(buf.next(&l, &mut rng).to_bits());
                i += 1;
            }
        }
        assert_eq!(i, draws);
        assert_eq!(got, reference);
    }

    #[test]
    fn noise_buffer_reset_discards_prefetched_noise() {
        let l = lap(1.0);
        let mut rng = DpRng::seed_from_u64(997);
        let mut buf = NoiseBuffer::new();
        let first = buf.next(&l, &mut rng);
        buf.reset();
        // After a reset the buffer refills from the (advanced) rng; the
        // draw must differ from replaying the prefetched value.
        let second = buf.next(&l, &mut rng);
        assert!(first.is_finite() && second.is_finite());
        assert_ne!(first.to_bits(), second.to_bits());
    }

    #[test]
    fn vectorized_fill_consumes_same_words_and_stays_within_bound() {
        let l = lap(3.7);
        for len in [1usize, 7, 8, 64, 1000] {
            let mut ref_rng = DpRng::seed_from_u64(4242);
            let mut vec_rng = DpRng::seed_from_u64(4242);
            let mut reference = vec![0.0; len];
            let mut fast = vec![0.0; len];
            l.sample_into(&mut ref_rng, &mut reference);
            l.sample_into_vectorized(&mut vec_rng, &mut fast);
            // Identical word consumption: generators stay in lockstep.
            assert_eq!(ref_rng.next_u64(), vec_rng.next_u64(), "len {len}");
            for (i, (r, f)) in reference.iter().zip(&fast).enumerate() {
                assert_eq!(r.signum(), f.signum(), "len {len} i {i}");
                let rel = if *r == 0.0 {
                    (f - r).abs()
                } else {
                    ((f - r) / r).abs()
                };
                assert!(rel <= 1e-12, "len {len} i {i}: ref {r} vec {f}");
            }
        }
    }

    #[test]
    fn kernel_dispatch_selects_the_requested_transform() {
        let l = lap(1.3);
        let mut a = DpRng::seed_from_u64(55);
        let mut b = DpRng::seed_from_u64(55);
        let mut reference = vec![0.0; 64];
        let mut via_kernel = vec![0.0; 64];
        l.sample_into(&mut a, &mut reference);
        l.sample_into_kernel(&mut b, &mut via_kernel, NoiseKernel::Reference);
        assert_eq!(
            reference.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            via_kernel.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
        let mut c = DpRng::seed_from_u64(55);
        l.sample_into_kernel(&mut c, &mut via_kernel, NoiseKernel::Vectorized);
        // Vectorized diverges in the last bits somewhere over 64 draws
        // (not bit-pinned to reference), while staying within 1e-12.
        for (r, v) in reference.iter().zip(&via_kernel) {
            assert!(((v - r) / r).abs() <= 1e-12);
        }
    }

    #[test]
    fn chunked_stream_is_bit_identical_across_thread_counts() {
        let l = lap(2.0);
        let draws = NoiseBuffer::CHUNK_LEN + NoiseBuffer::CHUNK_LEN / 2;
        let reference: Vec<u64> = {
            let mut rng = DpRng::seed_from_u64(31_337);
            let mut buf = NoiseBuffer::new();
            buf.enable_chunked(1);
            (0..draws)
                .map(|_| buf.next(&l, &mut rng).to_bits())
                .collect()
        };
        for threads in [2usize, 3, 4] {
            let mut rng = DpRng::seed_from_u64(31_337);
            let mut buf = NoiseBuffer::new();
            buf.enable_chunked(threads);
            let got: Vec<u64> = (0..draws)
                .map(|_| buf.next(&l, &mut rng).to_bits())
                .collect();
            assert_eq!(got, reference, "threads {threads}");
        }
    }

    #[test]
    fn chunked_stream_depends_only_on_the_base_seed_draw() {
        // Two buffers fed by generators in the same state produce the
        // same chunked stream regardless of kernel-independent details
        // like how much was consumed before comparing, and the caller's
        // generator is advanced by exactly one word (the base seed).
        let l = lap(0.7);
        let mut rng_a = DpRng::seed_from_u64(9);
        let mut rng_b = DpRng::seed_from_u64(9);
        let mut buf_a = NoiseBuffer::new();
        let mut buf_b = NoiseBuffer::new();
        buf_a.enable_chunked(1);
        buf_b.enable_chunked(4);
        let a = buf_a.next(&l, &mut rng_a);
        let b = buf_b.next(&l, &mut rng_b);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn reset_leaves_chunked_mode() {
        let l = lap(1.0);
        let mut rng = DpRng::seed_from_u64(77);
        let mut buf = NoiseBuffer::new();
        buf.enable_chunked(2);
        assert!(buf.is_chunked());
        let _ = buf.next(&l, &mut rng);
        buf.reset();
        assert!(!buf.is_chunked());
        // Back on the plain path: prefetch is allowed again.
        buf.prefetch(&l, &mut rng, 4);
        assert!(buf.buffered() >= 4);
    }

    #[test]
    #[should_panic(expected = "chunked mode")]
    fn prefetch_panics_in_chunked_mode() {
        let l = lap(1.0);
        let mut rng = DpRng::seed_from_u64(1);
        let mut buf = NoiseBuffer::new();
        buf.enable_chunked(2);
        buf.prefetch(&l, &mut rng, 4);
    }

    #[test]
    fn dp_ratio_bound_holds_pointwise() {
        // The defining property: pdf(x)/pdf(x+Δ) ≤ exp(Δ/b).
        let l = lap(1.0);
        let delta = 1.0;
        let bound = (delta / l.scale()).exp();
        for i in -50..50 {
            let x = i as f64 * 0.25;
            let ratio = l.pdf(x) / l.pdf(x + delta);
            assert!(ratio <= bound + 1e-12, "x={x} ratio={ratio}");
        }
    }

    #[test]
    fn std_dev_is_sqrt_two_times_scale() {
        let l = lap(4.0);
        assert!((l.std_dev() - 4.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!((l.std_dev().powi(2) - l.variance()).abs() < 1e-9);
    }

    #[test]
    fn laplace_mechanism_adds_bounded_expected_noise() {
        let mut rng = DpRng::seed_from_u64(29);
        let n = 50_000;
        let sum: f64 = (0..n)
            .map(|_| laplace_mechanism(10.0, 1.0, 0.5, &mut rng).unwrap())
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }
}
