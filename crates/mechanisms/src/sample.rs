//! The batched-sampling contract shared by the noise distributions.
//!
//! The simulation engines draw noise through reusable buffers
//! ([`crate::NoiseBuffer`]) or chunked fills so the RNG stays on its
//! block-wise path. [`BatchSample`] is the contract that makes this
//! safe: a distribution's batched fill must be **bit-identical** to the
//! equivalent sequence of scalar draws, including the RNG words
//! consumed, so prefetching more or less noise can never change an
//! experiment's output. [`Laplace`](crate::Laplace) and
//! [`Gumbel`](crate::Gumbel) both implement it, each backed by
//! [`DpRng::fill_open_uniform`] (which upholds the same contract at the
//! uniform level) and property-tested for stream equivalence.

use crate::rng::DpRng;

/// A distribution whose batched sampling is stream-equivalent to scalar
/// sampling.
///
/// # Contract
///
/// For any generator state and any split of `n` draws into batches,
/// [`sample_into`](Self::sample_into) must produce the same `n` values
/// (bit for bit) and leave the generator in the same state as `n` calls
/// to [`sample_one`](Self::sample_one). This is what lets
/// [`NoiseBuffer`](crate::NoiseBuffer) hand out prefetched noise whose
/// stream is independent of the batch size.
pub trait BatchSample {
    /// Draws one sample.
    fn sample_one(&self, rng: &mut DpRng) -> f64;

    /// Fills `out` with independent samples, bit-identical to repeated
    /// [`sample_one`](Self::sample_one) calls on the same generator.
    fn sample_into(&self, rng: &mut DpRng, out: &mut [f64]);
}
