//! The batched-sampling contract shared by the noise distributions,
//! and the two-kernel policy that picks how a batch is transformed.
//!
//! The simulation engines draw noise through reusable buffers
//! ([`crate::NoiseBuffer`]) or chunked fills so the RNG stays on its
//! block-wise path. [`BatchSample`] is the contract that makes this
//! safe: a distribution's batched fill must be **bit-identical** to the
//! equivalent sequence of scalar draws, including the RNG words
//! consumed, so prefetching more or less noise can never change an
//! experiment's output. [`Laplace`](crate::Laplace),
//! [`Gumbel`](crate::Gumbel) and [`Exponential`](crate::Exponential)
//! all implement it, each backed by [`DpRng::fill_open_uniform`] (which
//! upholds the same contract at the uniform level) and property-tested
//! for stream equivalence.
//!
//! [`NoiseKernel`] selects *which transform* maps the batched uniforms
//! to noise: `Reference` keeps the libm-backed scalar-identical path;
//! `Vectorized` routes the same uniforms through the polynomial
//! [`crate::fastmath`] log. Both kernels consume the identical RNG
//! word sequence, so a consumer can switch kernels without perturbing
//! anything downstream of the generator.

use crate::rng::DpRng;

/// Which transform a batched fill uses to turn uniforms into noise.
///
/// * [`Reference`](NoiseKernel::Reference) — the libm-backed transform,
///   **bit-identical to scalar sampling** ([`BatchSample::sample_one`]
///   in a loop). This is the pinned contract every bitwise test builds
///   on, and the default everywhere correctness is compared against
///   scalar history (serving sessions, batch-size-invariance pins).
/// * [`Vectorized`](NoiseKernel::Vectorized) — the auto-vectorizable
///   [`crate::fastmath`] polynomial transform: same uniforms, same
///   words consumed, same distribution, values within the documented
///   `1e-12` relative bound of the reference — but *not* bit-identical
///   to it. Deterministic across platforms and thread counts (see the
///   `fastmath` module docs), so any two consumers running the
///   vectorized kernel still agree bit-for-bit *with each other*.
///
/// Both mirror simulation engines default to `Vectorized` (they are
/// compared against each other, never bitwise against scalar history);
/// everything else defaults to `Reference`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NoiseKernel {
    /// Libm-backed transform, bit-identical to scalar draws.
    #[default]
    Reference,
    /// Polynomial fast-log transform; same distribution and RNG stream,
    /// ≤ 1e-12 relative from the reference values.
    Vectorized,
}

/// A distribution whose batched sampling is stream-equivalent to scalar
/// sampling.
///
/// # Contract
///
/// For any generator state and any split of `n` draws into batches,
/// [`sample_into`](Self::sample_into) must produce the same `n` values
/// (bit for bit) and leave the generator in the same state as `n` calls
/// to [`sample_one`](Self::sample_one). This is what lets
/// [`NoiseBuffer`](crate::NoiseBuffer) hand out prefetched noise whose
/// stream is independent of the batch size.
///
/// [`sample_into_vectorized`](Self::sample_into_vectorized) relaxes
/// only the bit-identity: it must consume the identical word sequence
/// and sample the identical distribution, with each value within the
/// `fastmath` relative-error bound of the reference value for the same
/// uniform. The default implementation falls back to the reference
/// fill, so implementing the fast path is strictly optional.
pub trait BatchSample {
    /// Draws one sample.
    fn sample_one(&self, rng: &mut DpRng) -> f64;

    /// Fills `out` with independent samples, bit-identical to repeated
    /// [`sample_one`](Self::sample_one) calls on the same generator.
    fn sample_into(&self, rng: &mut DpRng, out: &mut [f64]);

    /// Fills `out` through the vectorized transform: same uniforms and
    /// distribution as [`sample_into`](Self::sample_into), values
    /// within the documented relative bound of the reference values.
    ///
    /// Defaults to the reference fill.
    fn sample_into_vectorized(&self, rng: &mut DpRng, out: &mut [f64]) {
        self.sample_into(rng, out);
    }

    /// Kernel-dispatched fill: [`sample_into`](Self::sample_into) under
    /// [`NoiseKernel::Reference`],
    /// [`sample_into_vectorized`](Self::sample_into_vectorized) under
    /// [`NoiseKernel::Vectorized`].
    fn sample_into_kernel(&self, rng: &mut DpRng, out: &mut [f64], kernel: NoiseKernel) {
        match kernel {
            NoiseKernel::Reference => self.sample_into(rng, out),
            NoiseKernel::Vectorized => self.sample_into_vectorized(rng, out),
        }
    }
}
