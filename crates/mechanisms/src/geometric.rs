//! The two-sided geometric mechanism for integer-valued queries.
//!
//! The Laplace mechanism releases real numbers even when the underlying
//! query is a count. For counting queries (the paper's evaluation
//! workloads are item supports) the natural discrete analogue adds
//! **two-sided geometric** noise:
//!
//! ```text
//! Pr[X = k] = (1 − α)/(1 + α) · α^|k|,   k ∈ ℤ,   α = e^(−ε/Δ)
//! ```
//!
//! Adding `X` to an integer query of sensitivity `Δ` satisfies `ε`-DP,
//! by the same telescoping argument as the Laplace mechanism — the
//! distribution is the Laplace density restricted to the integers and
//! renormalized. This module is the discrete companion of
//! [`crate::laplace`] flagged as an extension in `DESIGN.md` §6: it is
//! not used by the paper's experiments (which follow the paper in using
//! Laplace noise on counts) but is provided for downstream users who
//! want integer-valued releases, and it is exercised by the ablation
//! benches.
//!
//! Sampling is exact (no floating-point truncation of the support): a
//! draw is `0` with probability `(1−α)/(1+α)`, otherwise a uniform sign
//! is attached to a geometric magnitude.

use crate::error::MechanismError;
use crate::rng::DpRng;
use crate::Result;

/// The symmetric (two-sided) geometric distribution over the integers.
///
/// Parametrized by `α ∈ (0, 1)`; smaller `α` concentrates more mass at
/// zero. For a DP release use [`TwoSidedGeometric::from_epsilon`], which
/// sets `α = e^(−ε/Δ)`.
///
/// ```
/// use dp_mechanisms::{geometric_mechanism, DpRng, TwoSidedGeometric};
///
/// let mut rng = DpRng::seed_from_u64(42);
/// // Release an integer support count under ε = 1 (Δ = 1):
/// let released = geometric_mechanism(1_000, 1.0, 1.0, &mut rng)?;
/// assert!((released - 1_000).abs() < 30);
///
/// // The distribution itself is fully analytic:
/// let d = TwoSidedGeometric::from_epsilon(1.0, 1.0)?;
/// assert!((d.pmf(0) + d.pmf(1) + d.pmf(-1)).is_finite());
/// assert!((d.cdf(0) + d.survival(0) - 1.0).abs() < 1e-12);
/// # Ok::<(), dp_mechanisms::MechanismError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoSidedGeometric {
    alpha: f64,
}

impl TwoSidedGeometric {
    /// Creates the distribution with decay parameter `alpha`.
    ///
    /// # Errors
    /// `alpha` must lie strictly inside `(0, 1)`.
    pub fn new(alpha: f64) -> Result<Self> {
        if alpha.is_finite() && alpha > 0.0 && alpha < 1.0 {
            Ok(Self { alpha })
        } else {
            Err(MechanismError::InvalidParameter(
                "two-sided geometric decay must lie strictly in (0, 1)",
            ))
        }
    }

    /// The calibration used for an `ε`-DP release of a sensitivity-`Δ`
    /// integer query: `α = e^(−ε/Δ)`.
    ///
    /// # Errors
    /// Rejects non-positive or non-finite `epsilon` / `sensitivity`.
    pub fn from_epsilon(epsilon: f64, sensitivity: f64) -> Result<Self> {
        crate::error::check_epsilon(epsilon)?;
        crate::error::check_sensitivity(sensitivity)?;
        Self::new((-epsilon / sensitivity).exp())
    }

    /// The decay parameter `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability mass at integer `k`.
    pub fn pmf(&self, k: i64) -> f64 {
        let a = self.alpha;
        (1.0 - a) / (1.0 + a) * a.powi(k.unsigned_abs().min(i32::MAX as u64) as i32)
    }

    /// Distribution function `Pr[X ≤ k]`.
    ///
    /// Closed forms: `α^(−k)/(1+α)` for `k < 0` and
    /// `1 − α^(k+1)/(1+α)` for `k ≥ 0`.
    pub fn cdf(&self, k: i64) -> f64 {
        let a = self.alpha;
        if k < 0 {
            a.powi((-k).min(i64::from(i32::MAX)) as i32) / (1.0 + a)
        } else {
            1.0 - a.powi((k + 1).min(i64::from(i32::MAX)) as i32) / (1.0 + a)
        }
    }

    /// Survival function `Pr[X > k]`; computed directly (not as
    /// `1 − cdf`) so deep-tail probabilities keep full precision.
    pub fn survival(&self, k: i64) -> f64 {
        let a = self.alpha;
        if k < 0 {
            1.0 - a.powi((-k).min(i64::from(i32::MAX)) as i32) / (1.0 + a)
        } else {
            a.powi((k + 1).min(i64::from(i32::MAX)) as i32) / (1.0 + a)
        }
    }

    /// The distribution's variance, `2α/(1−α)²`.
    pub fn variance(&self) -> f64 {
        let a = self.alpha;
        2.0 * a / ((1.0 - a) * (1.0 - a))
    }

    /// Draws one exact sample.
    ///
    /// With probability `(1−α)/(1+α)` the draw is `0`; otherwise a
    /// uniform sign is attached to a magnitude `M ≥ 1` with
    /// `Pr[M = m] = (1−α)α^(m−1)`, giving the stated two-sided mass
    /// function exactly.
    pub fn sample(&self, rng: &mut DpRng) -> i64 {
        let a = self.alpha;
        if rng.uniform() < (1.0 - a) / (1.0 + a) {
            return 0;
        }
        let sign = if rng.bernoulli(0.5) { 1 } else { -1 };
        // Geometric on {1, 2, …} by inversion: m = ⌈ln(u)/ln(α)⌉ for
        // u ∈ (0, 1) — equivalently 1 + ⌊ln(u)/ln(α)⌋ a.s.
        let u = rng.open_uniform();
        let m = (u.ln() / a.ln()).floor() as i64 + 1;
        sign * m.max(1)
    }
}

/// Releases an integer query answer under `ε`-DP by adding two-sided
/// geometric noise calibrated to `sensitivity`.
///
/// The discrete analogue of [`crate::laplace::laplace_mechanism`], with
/// the same argument order (`value, sensitivity, epsilon`).
///
/// # Errors
/// Rejects non-positive or non-finite `epsilon` / `sensitivity`.
pub fn geometric_mechanism(
    true_answer: i64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut DpRng,
) -> Result<i64> {
    let dist = TwoSidedGeometric::from_epsilon(epsilon, sensitivity)?;
    Ok(true_answer.saturating_add(dist.sample(rng)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_alpha() {
        assert!(TwoSidedGeometric::new(0.5).is_ok());
        assert!(TwoSidedGeometric::new(0.0).is_err());
        assert!(TwoSidedGeometric::new(1.0).is_err());
        assert!(TwoSidedGeometric::new(-0.3).is_err());
        assert!(TwoSidedGeometric::new(f64::NAN).is_err());
    }

    #[test]
    fn epsilon_calibration_sets_alpha() {
        let d = TwoSidedGeometric::from_epsilon(1.0, 1.0).unwrap();
        assert!((d.alpha() - (-1.0f64).exp()).abs() < 1e-15);
        let d = TwoSidedGeometric::from_epsilon(0.5, 2.0).unwrap();
        assert!((d.alpha() - (-0.25f64).exp()).abs() < 1e-15);
        assert!(TwoSidedGeometric::from_epsilon(0.0, 1.0).is_err());
        assert!(TwoSidedGeometric::from_epsilon(1.0, 0.0).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = TwoSidedGeometric::new(0.7).unwrap();
        let total: f64 = (-300..=300).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn pmf_is_symmetric_and_decaying() {
        let d = TwoSidedGeometric::new(0.6).unwrap();
        for k in 0..20 {
            assert!((d.pmf(k) - d.pmf(-k)).abs() < 1e-15);
            assert!(d.pmf(k + 1) < d.pmf(k));
        }
    }

    #[test]
    fn cdf_matches_pmf_partial_sums() {
        let d = TwoSidedGeometric::new(0.8).unwrap();
        let mut acc = 0.0;
        for k in -200..=200 {
            acc += d.pmf(k);
            assert!(
                (d.cdf(k) - acc).abs() < 1e-10,
                "cdf({k}) = {} vs partial sum {acc}",
                d.cdf(k)
            );
        }
    }

    #[test]
    fn survival_complements_cdf() {
        let d = TwoSidedGeometric::new(0.4).unwrap();
        for k in [-50, -3, -1, 0, 1, 3, 50] {
            assert!((d.cdf(k) + d.survival(k) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_ratio_respects_epsilon() {
        // Shifting the true answer by Δ = 1 changes any output's
        // probability by at most e^ε — the DP guarantee, checked on the
        // mass function directly.
        let eps = 0.7;
        let d = TwoSidedGeometric::from_epsilon(eps, 1.0).unwrap();
        for k in -30..=30 {
            let ratio = d.pmf(k) / d.pmf(k + 1);
            assert!(
                ratio <= eps.exp() + 1e-12 && ratio >= (-eps).exp() - 1e-12,
                "k={k} ratio={ratio}"
            );
        }
    }

    #[test]
    fn sample_frequencies_match_pmf() {
        let d = TwoSidedGeometric::new(0.5).unwrap();
        let mut rng = DpRng::seed_from_u64(97);
        let n = 200_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(d.sample(&mut rng)).or_insert(0usize) += 1;
        }
        for k in -4..=4 {
            let expected = d.pmf(k);
            let observed = *counts.get(&k).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.005,
                "k={k}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn sample_mean_is_near_zero_and_variance_matches() {
        let d = TwoSidedGeometric::new(0.6).unwrap();
        let mut rng = DpRng::seed_from_u64(101);
        let n = 100_000;
        let draws: Vec<i64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = draws.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = draws
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(
            (var - d.variance()).abs() / d.variance() < 0.05,
            "var {var} vs {}",
            d.variance()
        );
    }

    #[test]
    fn mechanism_perturbs_around_truth() {
        let mut rng = DpRng::seed_from_u64(103);
        let released = geometric_mechanism(1_000, 1.0, 1.0, &mut rng).unwrap();
        assert!((released - 1_000).abs() < 50, "released {released}");
        assert!(geometric_mechanism(0, 1.0, -1.0, &mut rng).is_err());
        assert!(geometric_mechanism(0, -1.0, 1.0, &mut rng).is_err());
    }

    #[test]
    fn variance_grows_as_epsilon_shrinks() {
        let tight = TwoSidedGeometric::from_epsilon(1.0, 1.0).unwrap();
        let loose = TwoSidedGeometric::from_epsilon(0.1, 1.0).unwrap();
        assert!(loose.variance() > tight.variance());
    }
}
