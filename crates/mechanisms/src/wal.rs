//! Write-ahead log for [`BudgetLedger`] receipt chains.
//!
//! The privacy guarantee of every mechanism in this workspace reduces
//! to one bookkeeping invariant: the cumulative `ε` a tenant has been
//! charged is never forgotten. An in-memory ledger loses that history
//! the moment the process dies, and a server that recovers with a
//! smaller `spent` than it acknowledged silently over-spends the budget
//! — the classic way "SVT variants" degrade into non-private
//! algorithms. [`LedgerWal`] closes that hole: every tenant
//! registration and every accepted charge is appended to an append-only
//! binary log **before** the caller acknowledges it, and
//! [`replay`](replay_records) reconstructs the per-tenant
//! [`BudgetLedger`]s from the log alone.
//!
//! ## Record format
//!
//! Fixed-width little-endian records of [`RECORD_SIZE`] bytes:
//!
//! ```text
//! offset  size  field
//!      0     1  record tag (1 = tenant registration, 2 = charge)
//!      1     1  label length (0 for tenant records)
//!      2     6  reserved, must be zero
//!      8     8  tenant id                (u64 LE)
//!     16     8  session id               (u64 LE, 0 for tenant records)
//!     24     8  sequence number          (u64 LE, 0 for tenant records)
//!     32     8  ε charged / total budget (f64 bits LE)
//!     40    16  prev_hash                (u128 LE)
//!     56    16  chain hash               (u128 LE)
//!     72    40  label bytes, zero padded
//!    112     4  CRC-32 (IEEE) over bytes [0, 112)
//! ```
//!
//! Fixed width makes the torn-write story trivial: a record boundary is
//! `offset % RECORD_SIZE == 0`, so after a crash the log is a run of
//! whole records followed by at most one partial (or CRC-failing) tail
//! record. Replay treats exactly that tail as a clean end of log — a
//! torn write is what an interrupted append *looks like* — while any
//! corruption **before** the tail (a CRC-failing record with complete
//! records after it, an un-decodable field, a chain that does not
//! re-derive) is a hard, attributable [`WalError`]: it cannot be
//! produced by a crash, only by bit rot or tampering, and silently
//! skipping it would under-count spent `ε`.
//!
//! ## Fsync policy and the acknowledgement invariant
//!
//! [`FsyncPolicy`] decides when an append reaches stable storage:
//! [`FsyncPolicy::Always`] syncs inside every append (the durable
//! server's choice — an `Ok` append *is* the persistence guarantee, so
//! "acknowledged ⇒ persisted" holds by construction), [`EveryN`]
//! batches syncs for throughput (callers must defer acknowledgement to
//! the next [`LedgerWal::sync`]), and [`Manual`] leaves syncing
//! entirely to the caller.
//!
//! [`EveryN`]: FsyncPolicy::EveryN
//! [`Manual`]: FsyncPolicy::Manual

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

use crate::ledger::{BudgetLedger, ChargeReceipt, LedgerError};

/// Width of every WAL record, in bytes.
pub const RECORD_SIZE: usize = 116;
/// Longest label a charge record can carry.
pub const MAX_LABEL: usize = 40;

const TAG_TENANT: u8 = 1;
const TAG_CHARGE: u8 = 2;
const CRC_OFFSET: usize = RECORD_SIZE - 4;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected). Table-free bitwise form: the log is
// written once per charge, not per query, so simplicity wins over a
// lookup table.
// ---------------------------------------------------------------------

/// CRC-32 (IEEE) of `bytes`, as stored in each record's trailer.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a WAL record mid-log could not be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// The stored CRC does not match the record bytes.
    BadCrc,
    /// The record tag names no known record type.
    UnknownTag(u8),
    /// The label length exceeds [`MAX_LABEL`] or the label bytes are
    /// not valid UTF-8 / not zero padded.
    BadLabel,
    /// A reserved field holds a nonzero value.
    NonCanonical,
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadCrc => write!(f, "CRC mismatch"),
            Self::UnknownTag(t) => write!(f, "unknown record tag {t}"),
            Self::BadLabel => write!(f, "invalid label encoding"),
            Self::NonCanonical => write!(f, "nonzero reserved bytes"),
        }
    }
}

/// Why a WAL operation failed. Every variant is attributable: it names
/// the record index (and tenant where known), so an operator can say
/// *which* entry of *whose* chain is bad, not just "log corrupt".
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// An I/O operation failed. The message carries the OS error; the
    /// `op` names which WAL step was executing.
    Io {
        /// The WAL step that failed (`"append"`, `"sync"`, …).
        op: &'static str,
        /// Stringified OS error.
        message: String,
    },
    /// A record **before** the log tail failed validation — bit rot or
    /// tampering, never a torn write (those only reach the tail).
    CorruptRecord {
        /// Zero-based record index.
        index: usize,
        /// Byte offset of the record.
        offset: u64,
        /// What failed.
        kind: CorruptKind,
    },
    /// A charge label exceeds [`MAX_LABEL`] bytes and cannot be encoded.
    LabelTooLong {
        /// The label's length in bytes.
        len: usize,
    },
    /// A tenant-registration record repeats a tenant already registered
    /// earlier in the log.
    DuplicateTenant {
        /// The repeated tenant.
        tenant: u64,
        /// Record index of the duplicate.
        index: usize,
    },
    /// A charge record names a tenant with no prior registration record.
    UnknownTenant {
        /// The unregistered tenant.
        tenant: u64,
        /// Record index of the orphan charge.
        index: usize,
    },
    /// A CRC-valid charge record disagrees with the chain re-derived
    /// from the records before it (wrong seq, prev_hash, or hash).
    ChainMismatch {
        /// The tenant whose chain broke.
        tenant: u64,
        /// The sequence number the record claims.
        seq: u64,
        /// Record index of the mismatch.
        index: usize,
    },
    /// Replaying a record was rejected by the ledger itself (e.g. the
    /// chain's charges overflow the registered total budget).
    Ledger {
        /// The tenant whose ledger rejected the record.
        tenant: u64,
        /// Record index of the rejected charge.
        index: usize,
        /// The ledger's verdict.
        error: LedgerError,
    },
    /// The WAL saw an earlier append/sync failure; to preserve
    /// "acknowledged ⇒ persisted" it refuses all further writes until
    /// the log is recovered.
    Poisoned,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { op, message } => write!(f, "wal {op} failed: {message}"),
            Self::CorruptRecord {
                index,
                offset,
                kind,
            } => write!(
                f,
                "corrupt wal record {index} at byte {offset}: {kind} (mid-log, not a torn tail)"
            ),
            Self::LabelTooLong { len } => {
                write!(f, "charge label of {len} bytes exceeds the {MAX_LABEL}-byte record field")
            }
            Self::DuplicateTenant { tenant, index } => {
                write!(f, "wal record {index} re-registers tenant {tenant}")
            }
            Self::UnknownTenant { tenant, index } => write!(
                f,
                "wal record {index} charges tenant {tenant} with no registration record"
            ),
            Self::ChainMismatch { tenant, seq, index } => write!(
                f,
                "wal record {index} (tenant {tenant}, seq {seq}) disagrees with the re-derived receipt chain"
            ),
            Self::Ledger {
                tenant,
                index,
                error,
            } => write!(f, "wal record {index} rejected by tenant {tenant}'s ledger: {error}"),
            Self::Poisoned => write!(
                f,
                "wal is poisoned by an earlier write failure; recover from the log before writing"
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Ledger { error, .. } => Some(error),
            _ => None,
        }
    }
}

fn io_err(op: &'static str, e: &std::io::Error) -> WalError {
    WalError::Io {
        op,
        message: e.to_string(),
    }
}

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A tenant registration: opens an empty ledger with this total.
    RegisterTenant {
        /// The tenant registered.
        tenant: u64,
        /// The tenant's total `ε` budget.
        total_epsilon: f64,
    },
    /// One accepted charge, exactly as receipted.
    Charge(ChargeReceipt),
}

/// Encodes a tenant-registration record.
#[must_use]
pub fn encode_tenant(tenant: u64, total_epsilon: f64) -> [u8; RECORD_SIZE] {
    let mut rec = [0u8; RECORD_SIZE];
    rec[0] = TAG_TENANT;
    rec[8..16].copy_from_slice(&tenant.to_le_bytes());
    rec[32..40].copy_from_slice(&total_epsilon.to_bits().to_le_bytes());
    seal(&mut rec);
    rec
}

/// Encodes a charge receipt.
///
/// # Errors
/// [`WalError::LabelTooLong`] when the label exceeds [`MAX_LABEL`]
/// bytes (receipts are produced by this workspace with short static
/// labels; a long label is a caller bug, not a runtime condition).
pub fn encode_charge(receipt: &ChargeReceipt) -> Result<[u8; RECORD_SIZE], WalError> {
    let label = receipt.label.as_bytes();
    if label.len() > MAX_LABEL {
        return Err(WalError::LabelTooLong { len: label.len() });
    }
    let mut rec = [0u8; RECORD_SIZE];
    rec[0] = TAG_CHARGE;
    rec[1] = label.len() as u8;
    rec[8..16].copy_from_slice(&receipt.tenant.to_le_bytes());
    rec[16..24].copy_from_slice(&receipt.session.to_le_bytes());
    rec[24..32].copy_from_slice(&receipt.seq.to_le_bytes());
    rec[32..40].copy_from_slice(&receipt.epsilon.to_bits().to_le_bytes());
    rec[40..56].copy_from_slice(&receipt.prev_hash.to_le_bytes());
    rec[56..72].copy_from_slice(&receipt.hash.to_le_bytes());
    rec[72..72 + label.len()].copy_from_slice(label);
    seal(&mut rec);
    Ok(rec)
}

fn seal(rec: &mut [u8; RECORD_SIZE]) {
    let crc = crc32(&rec[..CRC_OFFSET]);
    rec[CRC_OFFSET..].copy_from_slice(&crc.to_le_bytes());
}

fn read_u64(rec: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(rec[at..at + 8].try_into().expect("8-byte slice"))
}

fn read_u128(rec: &[u8], at: usize) -> u128 {
    u128::from_le_bytes(rec[at..at + 16].try_into().expect("16-byte slice"))
}

/// Decodes one full-width record. `Err` carries only the [`CorruptKind`]
/// — the caller supplies index/offset context.
fn decode(rec: &[u8]) -> Result<WalRecord, CorruptKind> {
    debug_assert_eq!(rec.len(), RECORD_SIZE);
    let stored = u32::from_le_bytes(rec[CRC_OFFSET..].try_into().expect("4-byte slice"));
    if crc32(&rec[..CRC_OFFSET]) != stored {
        return Err(CorruptKind::BadCrc);
    }
    if rec[2..8].iter().any(|&b| b != 0) {
        return Err(CorruptKind::NonCanonical);
    }
    let label_len = rec[1] as usize;
    if label_len > MAX_LABEL || rec[72 + label_len..CRC_OFFSET].iter().any(|&b| b != 0) {
        return Err(CorruptKind::BadLabel);
    }
    let tenant = read_u64(rec, 8);
    let epsilon = f64::from_bits(read_u64(rec, 32));
    match rec[0] {
        TAG_TENANT => {
            if label_len != 0 || rec[16..32].iter().any(|&b| b != 0) {
                return Err(CorruptKind::NonCanonical);
            }
            Ok(WalRecord::RegisterTenant {
                tenant,
                total_epsilon: epsilon,
            })
        }
        TAG_CHARGE => {
            let label = std::str::from_utf8(&rec[72..72 + label_len])
                .map_err(|_| CorruptKind::BadLabel)?
                .to_owned();
            Ok(WalRecord::Charge(ChargeReceipt {
                tenant,
                session: read_u64(rec, 16),
                seq: read_u64(rec, 24),
                label,
                epsilon,
                prev_hash: read_u128(rec, 40),
                hash: read_u128(rec, 56),
            }))
        }
        tag => Err(CorruptKind::UnknownTag(tag)),
    }
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// Where WAL bytes go. The production sink is a [`FileSink`];
/// [`MemSink`] backs tests and the fault-injection harness
/// ([`crate::fault`]), which wraps any sink to inject torn writes and
/// crash points.
pub trait WalSink: fmt::Debug + Send {
    /// Appends one encoded record. An `Err` may leave a *prefix* of the
    /// record persisted (a torn write) — replay handles that tail.
    fn append(&mut self, record: &[u8]) -> Result<(), WalError>;
    /// Flushes everything appended so far to stable storage.
    fn sync(&mut self) -> Result<(), WalError>;
}

/// File-backed sink (append mode).
#[derive(Debug)]
pub struct FileSink {
    file: File,
}

impl FileSink {
    /// Opens (creating if absent) `path` for appending.
    ///
    /// # Errors
    /// [`WalError::Io`] on open failure.
    pub fn open(path: &Path) -> Result<Self, WalError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err("open", &e))?;
        Ok(Self { file })
    }

    /// Opens `path`, first truncating it to `valid_len` bytes — the
    /// recovery step that drops a torn tail before appending resumes.
    ///
    /// # Errors
    /// [`WalError::Io`] on open/truncate failure.
    pub fn open_truncated(path: &Path, valid_len: u64) -> Result<Self, WalError> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            // Not truncate(true): the valid prefix must survive; only
            // the torn tail is dropped, via the explicit set_len below.
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("open", &e))?;
        file.set_len(valid_len)
            .map_err(|e| io_err("truncate", &e))?;
        let mut sink = Self { file };
        // Position at the new end for subsequent appends.
        use std::io::Seek as _;
        sink.file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err("seek", &e))?;
        Ok(sink)
    }
}

impl WalSink for FileSink {
    fn append(&mut self, record: &[u8]) -> Result<(), WalError> {
        self.file
            .write_all(record)
            .map_err(|e| io_err("append", &e))
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data().map_err(|e| io_err("sync", &e))
    }
}

/// In-memory sink over a shared buffer, so a test can "crash" a writer
/// and hand the surviving bytes to [`replay_records`].
#[derive(Debug, Clone, Default)]
pub struct MemSink {
    buf: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
}

impl MemSink {
    /// A fresh, empty shared buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the bytes persisted so far.
    #[must_use]
    pub fn bytes(&self) -> Vec<u8> {
        self.buf.lock().expect("mem sink lock").clone()
    }
}

impl WalSink for MemSink {
    fn append(&mut self, record: &[u8]) -> Result<(), WalError> {
        self.buf
            .lock()
            .expect("mem sink lock")
            .extend_from_slice(record);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The WAL writer
// ---------------------------------------------------------------------

/// When appends reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync inside every append: an `Ok` append is durable, so the
    /// caller may acknowledge immediately ("acknowledged ⇒ persisted").
    Always,
    /// Sync after every `n` appends. Throughput-friendly, but an `Ok`
    /// append is only durable after the next sync — callers must defer
    /// acknowledgement accordingly.
    EveryN(usize),
    /// Never sync implicitly; the caller drives [`LedgerWal::sync`].
    Manual,
}

/// Append-only writer of ledger records. See the module docs for the
/// format and the durability contract.
#[derive(Debug)]
pub struct LedgerWal {
    sink: Box<dyn WalSink>,
    policy: FsyncPolicy,
    appended_since_sync: usize,
    poisoned: bool,
}

impl LedgerWal {
    /// Wraps an arbitrary sink (tests, fault injection).
    #[must_use]
    pub fn with_sink(sink: Box<dyn WalSink>, policy: FsyncPolicy) -> Self {
        Self {
            sink,
            policy,
            appended_since_sync: 0,
            poisoned: false,
        }
    }

    /// Opens (creating if absent) a file-backed WAL for appending.
    ///
    /// # Errors
    /// [`WalError::Io`] on open failure.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<Self, WalError> {
        Ok(Self::with_sink(Box::new(FileSink::open(path)?), policy))
    }

    /// Opens a file-backed WAL after recovery, truncating the torn tail
    /// reported by replay so appends resume at a record boundary.
    ///
    /// # Errors
    /// [`WalError::Io`] on open/truncate failure.
    pub fn open_truncated(
        path: &Path,
        valid_len: u64,
        policy: FsyncPolicy,
    ) -> Result<Self, WalError> {
        Ok(Self::with_sink(
            Box::new(FileSink::open_truncated(path, valid_len)?),
            policy,
        ))
    }

    /// Whether an earlier write failure has poisoned this WAL.
    #[inline]
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Appends a tenant-registration record.
    ///
    /// # Errors
    /// [`WalError::Io`] from the sink, [`WalError::Poisoned`] after any
    /// earlier failure. On failure the WAL poisons itself: the on-disk
    /// state is unknown (possibly a torn record), so further appends
    /// would risk an inconsistent log.
    pub fn append_tenant(&mut self, tenant: u64, total_epsilon: f64) -> Result<(), WalError> {
        let rec = encode_tenant(tenant, total_epsilon);
        self.append_record(&rec)
    }

    /// Appends a charge record.
    ///
    /// # Errors
    /// [`WalError::LabelTooLong`] (nothing written);  [`WalError::Io`]
    /// / [`WalError::Poisoned`] as for
    /// [`append_tenant`](Self::append_tenant).
    pub fn append_charge(&mut self, receipt: &ChargeReceipt) -> Result<(), WalError> {
        let rec = encode_charge(receipt)?;
        self.append_record(&rec)
    }

    fn append_record(&mut self, rec: &[u8; RECORD_SIZE]) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        if let Err(e) = self.sink.append(rec) {
            self.poisoned = true;
            return Err(e);
        }
        self.appended_since_sync += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync(),
            FsyncPolicy::EveryN(n) => {
                if self.appended_since_sync >= n.max(1) {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Manual => Ok(()),
        }
    }

    /// Flushes appended records to stable storage.
    ///
    /// # Errors
    /// [`WalError::Io`] from the sink (the WAL poisons itself),
    /// [`WalError::Poisoned`] after any earlier failure.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        if let Err(e) = self.sink.sync() {
            self.poisoned = true;
            return Err(e);
        }
        self.appended_since_sync = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// What [`replay_records`] reconstructed.
#[derive(Debug)]
pub struct WalReplay {
    /// Every tenant's rebuilt, chain-verified ledger.
    pub ledgers: BTreeMap<u64, BudgetLedger>,
    /// Whole records accepted.
    pub records: usize,
    /// Byte length of the valid log prefix — reopen the file truncated
    /// to this length to resume appending.
    pub valid_len: u64,
    /// Bytes of torn tail dropped (0 for a cleanly closed log).
    pub torn_tail_bytes: usize,
}

/// Replays an encoded log, rebuilding every tenant's [`BudgetLedger`].
///
/// Each charge record is re-charged through
/// [`BudgetLedger::prepare_charge`] and the *re-derived* receipt is
/// compared field-for-field with the logged one, so a log that
/// replays is by construction a log whose chains re-derive; a final
/// [`BudgetLedger::verify_chain`] over every ledger re-checks the
/// invariant end-to-end. A torn tail — a trailing partial record, or a
/// trailing CRC-failing region shorter than two records — is dropped
/// and reported, not an error (see the module docs for why this is the
/// crash-safe reading).
///
/// # Errors
/// [`WalError::CorruptRecord`] (mid-log damage, with the exact record
/// index and byte offset), [`WalError::DuplicateTenant`],
/// [`WalError::UnknownTenant`], [`WalError::ChainMismatch`],
/// [`WalError::Ledger`] — all hard: recovery must not guess around
/// them, because every guess risks under-counting spent `ε`.
pub fn replay_records(bytes: &[u8]) -> Result<WalReplay, WalError> {
    let mut ledgers: BTreeMap<u64, BudgetLedger> = BTreeMap::new();
    let mut index = 0usize;
    let mut offset = 0usize;
    let mut torn_tail_bytes = 0usize;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < RECORD_SIZE {
            // Partial trailing record: a torn write, clean end of log.
            torn_tail_bytes = remaining;
            break;
        }
        let rec = &bytes[offset..offset + RECORD_SIZE];
        let decoded = match decode(rec) {
            Ok(d) => d,
            Err(kind) => {
                // A damaged record is a torn tail only if no complete
                // record begins after it; otherwise the log has mid-log
                // corruption a crash cannot explain.
                if remaining < 2 * RECORD_SIZE {
                    torn_tail_bytes = remaining;
                    break;
                }
                return Err(WalError::CorruptRecord {
                    index,
                    offset: offset as u64,
                    kind,
                });
            }
        };
        match decoded {
            WalRecord::RegisterTenant {
                tenant,
                total_epsilon,
            } => {
                if ledgers.contains_key(&tenant) {
                    return Err(WalError::DuplicateTenant { tenant, index });
                }
                let ledger =
                    BudgetLedger::new(tenant, total_epsilon).map_err(|error| WalError::Ledger {
                        tenant,
                        index,
                        error,
                    })?;
                ledgers.insert(tenant, ledger);
            }
            WalRecord::Charge(logged) => {
                let tenant = logged.tenant;
                let Some(ledger) = ledgers.get_mut(&tenant) else {
                    return Err(WalError::UnknownTenant { tenant, index });
                };
                let derived = ledger
                    .prepare_charge(logged.session, &logged.label, logged.epsilon)
                    .map_err(|error| WalError::Ledger {
                        tenant,
                        index,
                        error,
                    })?;
                if derived != logged {
                    return Err(WalError::ChainMismatch {
                        tenant,
                        seq: logged.seq,
                        index,
                    });
                }
                ledger
                    .apply_prepared(derived)
                    .map_err(|error| WalError::Ledger {
                        tenant,
                        index,
                        error,
                    })?;
            }
        }
        index += 1;
        offset += RECORD_SIZE;
    }
    // Belt and braces: re-verify every reconstructed chain end-to-end.
    for (tenant, ledger) in &ledgers {
        ledger.verify_chain().map_err(|error| WalError::Ledger {
            tenant: *tenant,
            index,
            error,
        })?;
    }
    Ok(WalReplay {
        ledgers,
        records: index,
        valid_len: (index * RECORD_SIZE) as u64,
        torn_tail_bytes,
    })
}

/// Replays a file-backed log; see [`replay_records`].
///
/// # Errors
/// [`WalError::Io`] on read failure, plus everything
/// [`replay_records`] reports.
pub fn replay_file(path: &Path) -> Result<WalReplay, WalError> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read", &e))?;
    replay_records(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_log(charges: &[(u64, u64, f64)]) -> (Vec<u8>, BTreeMap<u64, BudgetLedger>) {
        let sink = MemSink::new();
        let mut wal = LedgerWal::with_sink(Box::new(sink.clone()), FsyncPolicy::Manual);
        let mut ledgers: BTreeMap<u64, BudgetLedger> = BTreeMap::new();
        for &(tenant, session, eps) in charges {
            let ledger = ledgers.entry(tenant).or_insert_with(|| {
                wal.append_tenant(tenant, 100.0).unwrap();
                BudgetLedger::new(tenant, 100.0).unwrap()
            });
            let receipt = ledger.charge(session, "svt session open", eps).unwrap();
            wal.append_charge(receipt).unwrap();
        }
        wal.sync().unwrap();
        (sink.bytes(), ledgers)
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_reconstructs_ledgers_exactly() {
        let charges = [(7, 0, 0.5), (7, 1, 0.25), (3, 0, 1.0), (7, 2, 0.125)];
        let (bytes, live) = build_log(&charges);
        assert_eq!(bytes.len(), 6 * RECORD_SIZE); // 2 tenants + 4 charges
        let replay = replay_records(&bytes).unwrap();
        assert_eq!(replay.records, 6);
        assert_eq!(replay.torn_tail_bytes, 0);
        assert_eq!(replay.valid_len, bytes.len() as u64);
        assert_eq!(replay.ledgers.len(), 2);
        for (tenant, ledger) in &replay.ledgers {
            let want = &live[tenant];
            assert_eq!(ledger.receipts(), want.receipts());
            assert_eq!(ledger.spent().to_bits(), want.spent().to_bits());
            ledger.verify_chain().unwrap();
        }
    }

    #[test]
    fn torn_tail_is_a_clean_end() {
        let (bytes, _) = build_log(&[(1, 0, 0.5), (1, 1, 0.25)]);
        // Cut mid-way through the final record.
        for cut in [1, RECORD_SIZE / 2, RECORD_SIZE - 1] {
            let torn = &bytes[..bytes.len() - cut];
            let replay = replay_records(torn).unwrap();
            assert_eq!(replay.records, 2);
            assert_eq!(replay.torn_tail_bytes, RECORD_SIZE - cut);
            assert_eq!(replay.valid_len, (2 * RECORD_SIZE) as u64);
        }
    }

    #[test]
    fn trailing_garbage_shorter_than_a_record_is_a_torn_tail() {
        let (mut bytes, _) = build_log(&[(1, 0, 0.5)]);
        bytes.extend_from_slice(&[0xab; 17]);
        let replay = replay_records(&bytes).unwrap();
        assert_eq!(replay.records, 2);
        assert_eq!(replay.torn_tail_bytes, 17);
    }

    #[test]
    fn corrupt_final_record_is_a_torn_tail() {
        let (mut bytes, _) = build_log(&[(1, 0, 0.5), (1, 1, 0.25)]);
        let last = bytes.len() - RECORD_SIZE / 2;
        bytes[last] ^= 0xff;
        let replay = replay_records(&bytes).unwrap();
        // The damaged final record is dropped; the prefix survives.
        assert_eq!(replay.records, 2);
        assert_eq!(replay.torn_tail_bytes, RECORD_SIZE);
        assert!((replay.ledgers[&1].spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mid_log_corruption_is_a_hard_attributable_error() {
        let (mut bytes, _) = build_log(&[(1, 0, 0.5), (1, 1, 0.25), (1, 2, 0.125)]);
        // Damage record 2 (the first charge); records 3 and 4 follow.
        bytes[2 * RECORD_SIZE + 20] ^= 0x01;
        let err = replay_records(&bytes).unwrap_err();
        assert_eq!(
            err,
            WalError::CorruptRecord {
                index: 2,
                offset: (2 * RECORD_SIZE) as u64,
                kind: CorruptKind::BadCrc,
            }
        );
    }

    #[test]
    fn consistently_rehashed_forgery_is_a_chain_mismatch() {
        // Forge a record that passes CRC but was never on the chain:
        // re-encode a receipt with a smaller ε and a re-derived hash.
        let sink = MemSink::new();
        let mut wal = LedgerWal::with_sink(Box::new(sink.clone()), FsyncPolicy::Manual);
        let mut ledger = BudgetLedger::new(9, 10.0).unwrap();
        wal.append_tenant(9, 10.0).unwrap();
        let r0 = ledger.charge(0, "svt session open", 1.0).unwrap().clone();
        wal.append_charge(&r0).unwrap();
        let mut forged = ledger.charge(1, "svt session open", 2.0).unwrap().clone();
        forged.epsilon = 0.5; // understate the spend
        forged.hash = crate::ledger::chain_hash(
            forged.prev_hash,
            forged.tenant,
            forged.session,
            forged.seq,
            &forged.label,
            forged.epsilon,
        );
        wal.append_charge(&forged).unwrap();
        // Another *honest* record after it: its back-link still points
        // at the original receipt's hash, so the splice surfaces there
        // (the same one-record-late detection as the in-memory audit).
        let r2 = ledger.charge(2, "svt session open", 0.25).unwrap().clone();
        wal.append_charge(&r2).unwrap();
        let err = replay_records(&sink.bytes()).unwrap_err();
        assert_eq!(
            err,
            WalError::ChainMismatch {
                tenant: 9,
                seq: 2,
                index: 3,
            }
        );
    }

    #[test]
    fn orphan_charge_and_duplicate_tenant_are_attributable() {
        let mut ledger = BudgetLedger::new(4, 1.0).unwrap();
        let receipt = ledger.charge(0, "svt session open", 0.5).unwrap().clone();
        let sink = MemSink::new();
        let mut wal = LedgerWal::with_sink(Box::new(sink.clone()), FsyncPolicy::Manual);
        wal.append_charge(&receipt).unwrap();
        assert_eq!(
            replay_records(&sink.bytes()).unwrap_err(),
            WalError::UnknownTenant {
                tenant: 4,
                index: 0
            }
        );

        let sink = MemSink::new();
        let mut wal = LedgerWal::with_sink(Box::new(sink.clone()), FsyncPolicy::Manual);
        wal.append_tenant(4, 1.0).unwrap();
        wal.append_tenant(4, 2.0).unwrap();
        assert_eq!(
            replay_records(&sink.bytes()).unwrap_err(),
            WalError::DuplicateTenant {
                tenant: 4,
                index: 1
            }
        );
    }

    #[test]
    fn overdrawn_log_is_rejected() {
        // Hand-build a log whose chain is internally consistent but
        // sums past the registered total.
        let sink = MemSink::new();
        let mut wal = LedgerWal::with_sink(Box::new(sink.clone()), FsyncPolicy::Manual);
        wal.append_tenant(2, 10.0).unwrap();
        let mut ledger = BudgetLedger::new(2, 10.0).unwrap();
        for s in 0..2 {
            let r = ledger.charge(s, "svt session open", 4.0).unwrap().clone();
            wal.append_charge(&r).unwrap();
        }
        // 3 × 4.0 > 10.0: the in-memory ledger refuses a third charge,
        // so forge it onto the chain manually.
        let bytes = sink.bytes();
        assert_eq!(bytes.len(), 3 * RECORD_SIZE); // tenant + 2 charges
        assert!(ledger.charge(3, "svt session open", 4.0).is_err());
        // Splice a consistent-but-overdrawn receipt after the chain head.
        let head = ledger.receipts().last().unwrap();
        let over = ChargeReceipt {
            tenant: 2,
            session: 3,
            seq: head.seq + 1,
            label: "svt session open".to_owned(),
            epsilon: 4.0,
            prev_hash: head.hash,
            hash: crate::ledger::chain_hash(head.hash, 2, 3, head.seq + 1, "svt session open", 4.0),
        };
        let mut bytes = bytes;
        bytes.extend_from_slice(&encode_charge(&over).unwrap());
        // Pad with one more valid-looking copy so the forgery is
        // mid-log (otherwise a lone bad tail record could be read as
        // torn — it is not, because its CRC is valid, but keep the
        // stronger case).
        bytes.extend_from_slice(&encode_tenant(99, 1.0));
        let err = replay_records(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                WalError::Ledger {
                    tenant: 2,
                    index: 3,
                    error: LedgerError::BudgetExhausted { .. },
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn label_too_long_rejected_before_writing() {
        let mut ledger = BudgetLedger::new(1, 1.0).unwrap();
        let long = "x".repeat(MAX_LABEL + 1);
        let receipt = ledger.charge(0, &long, 0.5).unwrap().clone();
        let sink = MemSink::new();
        let mut wal = LedgerWal::with_sink(Box::new(sink.clone()), FsyncPolicy::Manual);
        assert_eq!(
            wal.append_charge(&receipt).unwrap_err(),
            WalError::LabelTooLong { len: MAX_LABEL + 1 }
        );
        assert!(sink.bytes().is_empty());
        assert!(!wal.is_poisoned(), "a rejected encode is not an I/O fault");
    }

    #[test]
    fn file_wal_round_trips_and_truncates() {
        let dir = std::env::temp_dir().join(format!("svt-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = LedgerWal::open(&path, FsyncPolicy::Always).unwrap();
            let mut ledger = BudgetLedger::new(11, 5.0).unwrap();
            wal.append_tenant(11, 5.0).unwrap();
            for s in 0..4 {
                let r = ledger.charge(s, "svt session open", 0.5).unwrap().clone();
                wal.append_charge(&r).unwrap();
            }
        }
        // Simulate a torn write.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x77; 31]).unwrap();
        }
        let replay = replay_file(&path).unwrap();
        assert_eq!(replay.records, 5);
        assert_eq!(replay.torn_tail_bytes, 31);
        assert!((replay.ledgers[&11].spent() - 2.0).abs() < 1e-12);
        // Recovery reopen: truncate the tail, append one more charge,
        // replay again — the log is whole.
        {
            let mut wal =
                LedgerWal::open_truncated(&path, replay.valid_len, FsyncPolicy::Always).unwrap();
            let mut ledger = replay.ledgers.into_iter().next().unwrap().1;
            let r = ledger.charge(9, "svt session open", 0.5).unwrap().clone();
            wal.append_charge(&r).unwrap();
        }
        let replay = replay_file(&path).unwrap();
        assert_eq!(replay.records, 6);
        assert_eq!(replay.torn_tail_bytes, 0);
        assert!((replay.ledgers[&11].spent() - 2.5).abs() < 1e-12);
        let _ = std::fs::remove_file(&path);
    }
}
