//! Deterministic fault injection for the ledger WAL.
//!
//! The durability claims in [`crate::wal`] are only worth what the
//! kill-and-recover tests behind them can show, and those tests need
//! crashes that are *reproducible*: the same seed must tear the same
//! write at the same byte on every run. [`FaultySink`] wraps any
//! [`WalSink`] and executes a [`FaultPlan`] — a single injected fault
//! at a chosen append, in one of four modes spanning the interesting
//! crash points of the append-then-acknowledge protocol:
//!
//! - [`FaultMode::WriteError`] — the append fails with nothing
//!   persisted (a full write rejection);
//! - [`FaultMode::TornWrite`] — a strict prefix of the record reaches
//!   the log before the failure (the classic torn write; recovery must
//!   drop exactly this tail);
//! - [`FaultMode::CrashAfterWrite`] — the record is fully persisted
//!   but the writer dies before it can report success (so the caller
//!   never acknowledges a charge that *is* on disk);
//! - [`FaultMode::CrashAfterSync`] — the record is persisted *and*
//!   synced, and the crash lands between the sync and the
//!   acknowledgement — the tightest window of "acknowledged ⇒
//!   persisted".
//!
//! All four modes leave the durable state carrying **at least** every
//! acknowledged charge and **at most** one unacknowledged one — the
//! privacy-safe direction (recovered spent `ε` can exceed, never
//! undercut, what clients were told). After the fault fires the sink
//! stays dead: every later operation fails, exactly like a crashed
//! process that stops accepting work.
//!
//! Plans are derived from a seed via SplitMix64, so a test matrix is
//! just a seed range — and distinct seeds land on distinct
//! `(append index, mode, torn byte)` injection points.

use std::fmt;

use crate::wal::{WalError, WalSink, RECORD_SIZE};

/// What the injected fault does at the chosen append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail the append outright; no bytes reach the log.
    WriteError,
    /// Persist exactly `keep` bytes of the record, then fail.
    TornWrite {
        /// Bytes of the record that survive (`< RECORD_SIZE`).
        keep: usize,
    },
    /// Persist the whole record, then fail the append call.
    CrashAfterWrite,
    /// Persist and sync the whole record, then fail the sync call —
    /// the crash sits between durability and acknowledgement.
    CrashAfterSync,
}

/// One deterministic fault: `mode` fires on append number `fail_op`
/// (zero-based), after which the sink is dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Zero-based index of the append the fault hits.
    pub fail_op: u64,
    /// What happens at that append.
    pub mode: FaultMode,
}

/// SplitMix64 step — the workspace's standard seed-expansion hash.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// Derives a plan from `seed`: the fault hits one of the first
    /// `max_op` appends, in a mode (and torn byte) chosen by the seed.
    #[must_use]
    pub fn from_seed(seed: u64, max_op: u64) -> Self {
        let mut s = seed;
        splitmix64(&mut s);
        let fail_op = mix(s) % max_op.max(1);
        splitmix64(&mut s);
        let mode = match mix(s) % 4 {
            0 => FaultMode::WriteError,
            1 => {
                splitmix64(&mut s);
                FaultMode::TornWrite {
                    // A strict, nonempty prefix: 1..RECORD_SIZE.
                    keep: 1 + (mix(s) as usize % (RECORD_SIZE - 1)),
                }
            }
            2 => FaultMode::CrashAfterWrite,
            _ => FaultMode::CrashAfterSync,
        };
        Self { fail_op, mode }
    }
}

/// The error every faulted operation reports. A distinct message keeps
/// injected failures distinguishable from real I/O errors in test
/// output.
fn crash_error() -> WalError {
    WalError::Io {
        op: "append",
        message: "injected fault: writer crashed".to_owned(),
    }
}

/// A [`WalSink`] that executes a [`FaultPlan`] over an inner sink.
#[derive(Debug)]
pub struct FaultySink<S> {
    inner: S,
    plan: FaultPlan,
    appends: u64,
    /// Once the fault has fired, everything fails.
    dead: bool,
    /// Set when the plan is `CrashAfterSync` and the fatal sync is next.
    sync_bomb: bool,
}

impl<S: WalSink> FaultySink<S> {
    /// Arms `plan` over `inner`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            appends: 0,
            dead: false,
            sync_bomb: false,
        }
    }

    /// Whether the fault has fired yet.
    pub fn crashed(&self) -> bool {
        self.dead
    }
}

impl<S: WalSink> fmt::Display for FaultySink<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "faulty sink (plan {:?})", self.plan)
    }
}

impl<S: WalSink> WalSink for FaultySink<S> {
    fn append(&mut self, record: &[u8]) -> Result<(), WalError> {
        if self.dead {
            return Err(crash_error());
        }
        let op = self.appends;
        self.appends += 1;
        if op != self.plan.fail_op {
            return self.inner.append(record);
        }
        match self.plan.mode {
            FaultMode::WriteError => {
                self.dead = true;
                Err(crash_error())
            }
            FaultMode::TornWrite { keep } => {
                let keep = keep.min(record.len().saturating_sub(1));
                self.inner.append(&record[..keep])?;
                self.dead = true;
                Err(crash_error())
            }
            FaultMode::CrashAfterWrite => {
                self.inner.append(record)?;
                self.dead = true;
                Err(crash_error())
            }
            FaultMode::CrashAfterSync => {
                self.inner.append(record)?;
                self.sync_bomb = true;
                Ok(())
            }
        }
    }

    fn sync(&mut self) -> Result<(), WalError> {
        if self.dead {
            return Err(crash_error());
        }
        if self.sync_bomb {
            // The data *is* durable — sync through, then die before
            // success can be reported.
            self.inner.sync()?;
            self.dead = true;
            return Err(crash_error());
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::BudgetLedger;
    use crate::wal::{replay_records, FsyncPolicy, LedgerWal, MemSink};

    /// Drives a WAL through `FaultySink` until the crash, tracking what
    /// was acknowledged; returns (bytes on disk, acked ε).
    fn run_until_crash(plan: FaultPlan) -> (Vec<u8>, f64) {
        let mem = MemSink::new();
        let sink = FaultySink::new(mem.clone(), plan);
        let mut wal = LedgerWal::with_sink(Box::new(sink), FsyncPolicy::Always);
        let mut ledger = BudgetLedger::new(1, 100.0).unwrap();
        let mut acked = 0.0;
        if wal.append_tenant(1, 100.0).is_err() {
            return (mem.bytes(), acked);
        }
        for s in 0..12u64 {
            let prepared = ledger.prepare_charge(s, "svt session open", 0.5).unwrap();
            if wal.append_charge(&prepared).is_err() {
                break; // not acknowledged
            }
            ledger.apply_prepared(prepared).unwrap();
            acked += 0.5;
        }
        (mem.bytes(), acked)
    }

    #[test]
    fn every_mode_preserves_acknowledged_implies_persisted() {
        for seed in 0..64u64 {
            let plan = FaultPlan::from_seed(seed, 10);
            let (bytes, acked) = run_until_crash(plan);
            let replay = replay_records(&bytes)
                .unwrap_or_else(|e| panic!("seed {seed} plan {plan:?}: replay failed: {e}"));
            let recovered = replay.ledgers.get(&1).map_or(0.0, BudgetLedger::spent);
            assert!(
                recovered >= acked - 1e-12,
                "seed {seed} plan {plan:?}: recovered {recovered} < acked {acked}"
            );
            // And the overshoot is at most the single in-flight charge.
            assert!(
                recovered <= acked + 0.5 + 1e-12,
                "seed {seed} plan {plan:?}: recovered {recovered} overshoots acked {acked}"
            );
        }
    }

    #[test]
    fn plans_cover_distinct_injection_points() {
        let mut points = std::collections::BTreeSet::new();
        for seed in 0..64u64 {
            let plan = FaultPlan::from_seed(seed, 10);
            let (tag, keep) = match plan.mode {
                FaultMode::WriteError => (0, 0),
                FaultMode::TornWrite { keep } => (1, keep),
                FaultMode::CrashAfterWrite => (2, 0),
                FaultMode::CrashAfterSync => (3, 0),
            };
            points.insert((plan.fail_op, tag, keep));
        }
        assert!(points.len() >= 25, "only {} distinct plans", points.len());
    }

    #[test]
    fn sink_stays_dead_after_the_fault() {
        let plan = FaultPlan {
            fail_op: 0,
            mode: FaultMode::WriteError,
        };
        let mem = MemSink::new();
        let mut sink = FaultySink::new(mem.clone(), plan);
        assert!(sink.append(&[0u8; RECORD_SIZE]).is_err());
        assert!(sink.crashed());
        assert!(sink.append(&[0u8; RECORD_SIZE]).is_err());
        assert!(sink.sync().is_err());
        assert!(mem.bytes().is_empty());
    }
}
