//! Composition theorems for differential privacy, including the
//! advanced composition bound the paper cites in §3.4.
//!
//! The workspace's SVT variants are pure `ε`-DP and compose
//! *sequentially* (`Σεᵢ`; tracked by [`crate::BudgetAccountant`]). But
//! §3.4 of the paper notes that some SVT usages instead target
//! `(ε, δ)`-DP by exploiting the **advanced composition theorem**
//! (Dwork–Rothblum–Vadhan, FOCS 2010):
//!
//! > applying `k` instances of `ε`-DP algorithms satisfies
//! > `(ε′, δ′)`-DP, where `ε′ = √(2k ln(1/δ′))·ε + k·ε·(e^ε − 1)`.
//!
//! This module makes that bound (and its inverse — "what per-instance
//! `ε` may I spend to hit a target `(ε′, δ′)` over `k` runs?")
//! available, so an interactive deployment can trade a small `δ` for
//! substantially less per-query noise when `c` is large. The paper
//! itself confines its analysis to pure `ε`-DP ("we limit our attention
//! to SVT variants satisfying ε-DP"); this module is the flagged
//! extension that covers the other regime.

use crate::error::MechanismError;
use crate::Result;

/// An `(ε, δ)` approximate-DP guarantee.
///
/// ```
/// use dp_mechanisms::composition::{per_instance_epsilon, ApproxDp};
///
/// // How much may each of 256 composed mechanisms spend to keep the
/// // whole session (1.0, 1e-6)-DP?
/// let target = ApproxDp::new(1.0, 1e-6)?;
/// let per = per_instance_epsilon(target, 256)?;
/// // Advanced composition beats the naive 1.0/256 split here:
/// assert!(per > 1.0 / 256.0);
/// # Ok::<(), dp_mechanisms::MechanismError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxDp {
    /// The privacy-loss bound `ε`.
    pub epsilon: f64,
    /// The failure probability `δ` (zero means pure `ε`-DP).
    pub delta: f64,
}

impl ApproxDp {
    /// Creates a guarantee, validating both parameters.
    ///
    /// # Errors
    /// `epsilon` must be positive and finite; `delta` must lie in
    /// `[0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self> {
        crate::error::check_epsilon(epsilon)?;
        if !(delta.is_finite() && (0.0..1.0).contains(&delta)) {
            return Err(MechanismError::InvalidProbability(delta));
        }
        Ok(Self { epsilon, delta })
    }

    /// A pure `ε`-DP guarantee (`δ = 0`).
    ///
    /// # Errors
    /// Rejects non-positive or non-finite `epsilon`.
    pub fn pure(epsilon: f64) -> Result<Self> {
        Self::new(epsilon, 0.0)
    }

    /// Whether this is a pure (δ = 0) guarantee.
    #[inline]
    pub fn is_pure(&self) -> bool {
        self.delta == 0.0
    }
}

/// Basic (sequential) composition: `k` runs of an `ε`-DP mechanism are
/// `(k·ε)`-DP. Exact, with no `δ` cost.
///
/// # Errors
/// Rejects non-positive or non-finite `epsilon`, or `k == 0`.
pub fn basic_composition(epsilon: f64, k: usize) -> Result<f64> {
    crate::error::check_epsilon(epsilon)?;
    check_k(k)?;
    Ok(k as f64 * epsilon)
}

/// Advanced composition (§3.4): `k` runs of an `ε`-DP mechanism are
/// `(ε′, δ)`-DP with `ε′ = √(2k ln(1/δ))·ε + k·ε·(e^ε − 1)`.
///
/// For small `ε` and large `k` this scales as `√k·ε` instead of `k·ε`,
/// which is where the savings over [`basic_composition`] come from.
///
/// # Errors
/// Rejects invalid `epsilon`, `k == 0`, or `delta` outside `(0, 1)`
/// (advanced composition needs a strictly positive `δ`).
pub fn advanced_composition(epsilon: f64, k: usize, delta: f64) -> Result<f64> {
    crate::error::check_epsilon(epsilon)?;
    check_k(k)?;
    check_open_delta(delta)?;
    let kf = k as f64;
    Ok((2.0 * kf * (1.0 / delta).ln()).sqrt() * epsilon + kf * epsilon * (epsilon.exp() - 1.0))
}

/// The tighter of basic and advanced composition for the same inputs.
///
/// Advanced composition is *worse* than basic for small `k` or large
/// `ε` (its √-term constant dominates); a careful accountant always
/// takes the minimum, which is itself a valid `(ε′, δ)` guarantee.
///
/// # Errors
/// As [`advanced_composition`].
pub fn best_composition(epsilon: f64, k: usize, delta: f64) -> Result<f64> {
    Ok(advanced_composition(epsilon, k, delta)?.min(basic_composition(epsilon, k)?))
}

/// Inverts [`advanced_composition`]: the largest per-instance `ε` such
/// that `k` runs stay within `target.epsilon` at failure probability
/// `target.delta`.
///
/// Uses bisection (the forward map is strictly increasing in `ε`);
/// the result is exact to within `1e-12` relative tolerance. Also
/// considers plain sequential composition (`target.epsilon / k`) and
/// returns whichever per-instance budget is larger, since both bounds
/// are valid.
///
/// # Errors
/// Rejects `k == 0` or a target with `δ` outside `(0, 1)`.
pub fn per_instance_epsilon(target: ApproxDp, k: usize) -> Result<f64> {
    check_k(k)?;
    check_open_delta(target.delta)?;
    crate::error::check_epsilon(target.epsilon)?;
    let basic = target.epsilon / k as f64;
    // Bisection bracket: the advanced bound at ε = basic is ≥ target
    // exactly when advanced is no better than basic, so [0, hi] with
    // hi = target.epsilon always brackets the root.
    let mut lo = 0.0f64;
    let mut hi = target.epsilon;
    // The forward map at hi: k·hi·(e^hi − 1) alone already exceeds the
    // target for k ≥ 1 and hi = target (since e^x − 1 > x·… for x > 0
    // when k ≥ 1 — verified below by construction of the loop).
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= 0.0 {
            break;
        }
        match advanced_composition(mid, k, target.delta) {
            Ok(v) if v <= target.epsilon => lo = mid,
            _ => hi = mid,
        }
        if (hi - lo) <= 1e-12 * hi.max(1.0) {
            break;
        }
    }
    Ok(lo.max(basic))
}

/// How much per-instance budget advanced composition buys relative to
/// basic composition: `per_instance_epsilon(target, k) / (target.ε / k)`.
///
/// Values above `1` mean advanced composition lets each instance spend
/// more (add less noise); the factor grows like `√k` for small targets.
///
/// # Errors
/// As [`per_instance_epsilon`].
pub fn composition_advantage(target: ApproxDp, k: usize) -> Result<f64> {
    let adv = per_instance_epsilon(target, k)?;
    Ok(adv / (target.epsilon / k as f64))
}

fn check_k(k: usize) -> Result<()> {
    if k == 0 {
        Err(MechanismError::InvalidParameter(
            "composition requires at least one mechanism (k ≥ 1)",
        ))
    } else {
        Ok(())
    }
}

fn check_open_delta(delta: f64) -> Result<()> {
    if delta.is_finite() && delta > 0.0 && delta < 1.0 {
        Ok(())
    } else {
        Err(MechanismError::InvalidProbability(delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_dp_validation() {
        assert!(ApproxDp::new(1.0, 1e-6).is_ok());
        assert!(ApproxDp::pure(0.5).unwrap().is_pure());
        assert!(ApproxDp::new(0.0, 0.1).is_err());
        assert!(ApproxDp::new(1.0, 1.0).is_err());
        assert!(ApproxDp::new(1.0, -0.1).is_err());
        assert!(ApproxDp::new(1.0, f64::NAN).is_err());
    }

    #[test]
    fn basic_composition_is_linear() {
        assert!((basic_composition(0.1, 10).unwrap() - 1.0).abs() < 1e-12);
        assert!(basic_composition(0.1, 0).is_err());
        assert!(basic_composition(-0.1, 3).is_err());
    }

    #[test]
    fn advanced_composition_matches_formula() {
        // Hand-evaluate ε′ = √(2k ln(1/δ))ε + kε(e^ε − 1).
        let (eps, k, delta) = (0.1, 100usize, 1e-5);
        let expected =
            (2.0 * 100.0 * (1e5f64).ln()).sqrt() * 0.1 + 100.0 * 0.1 * (0.1f64.exp() - 1.0);
        let got = advanced_composition(eps, k, delta).unwrap();
        assert!((got - expected).abs() < 1e-12, "got {got}");
    }

    #[test]
    fn advanced_composition_rejects_zero_delta() {
        assert!(advanced_composition(0.1, 10, 0.0).is_err());
        assert!(advanced_composition(0.1, 10, 1.0).is_err());
    }

    #[test]
    fn advanced_beats_basic_for_large_k_small_epsilon() {
        let eps = 0.01;
        let delta = 1e-6;
        let basic = basic_composition(eps, 10_000).unwrap();
        let advanced = advanced_composition(eps, 10_000, delta).unwrap();
        assert!(
            advanced < basic,
            "advanced {advanced} should beat basic {basic}"
        );
    }

    #[test]
    fn basic_beats_advanced_for_small_k() {
        // For k = 1 the √-term alone exceeds ε, so basic wins.
        let eps = 0.5;
        let delta = 1e-6;
        let basic = basic_composition(eps, 1).unwrap();
        let advanced = advanced_composition(eps, 1, delta).unwrap();
        assert!(advanced > basic);
        assert!((best_composition(eps, 1, delta).unwrap() - basic).abs() < 1e-12);
    }

    #[test]
    fn forward_map_is_monotone_in_epsilon() {
        let mut prev = 0.0;
        for i in 1..=50 {
            let eps = i as f64 * 0.02;
            let v = advanced_composition(eps, 64, 1e-5).unwrap();
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn inverse_recovers_forward() {
        let target = ApproxDp::new(1.0, 1e-5).unwrap();
        for &k in &[2usize, 16, 128, 1024] {
            let per = per_instance_epsilon(target, k).unwrap();
            let achieved = best_composition(per, k, target.delta).unwrap();
            assert!(
                achieved <= target.epsilon * (1.0 + 1e-9),
                "k={k}: achieved {achieved}"
            );
            // And it is not needlessly conservative: spending 1% more
            // per instance would blow the target.
            let bumped = best_composition(per * 1.01, k, target.delta).unwrap();
            assert!(bumped > target.epsilon, "k={k}: bumped {bumped}");
        }
    }

    #[test]
    fn inverse_falls_back_to_basic_when_advanced_is_worse() {
        // k = 1: the best per-instance budget is the whole target.
        let target = ApproxDp::new(0.5, 1e-6).unwrap();
        let per = per_instance_epsilon(target, 1).unwrap();
        assert!((per - 0.5).abs() < 1e-9, "per {per}");
    }

    #[test]
    fn advantage_grows_with_k() {
        let target = ApproxDp::new(1.0, 1e-5).unwrap();
        let a16 = composition_advantage(target, 16).unwrap();
        let a1024 = composition_advantage(target, 1024).unwrap();
        assert!(a1024 > a16, "a16={a16} a1024={a1024}");
        assert!(a16 >= 1.0 - 1e-12);
        // √k scaling: at k = 1024 the advantage should be well above 5×.
        assert!(a1024 > 5.0, "a1024={a1024}");
    }

    #[test]
    fn zero_k_is_rejected_everywhere() {
        let target = ApproxDp::new(1.0, 1e-5).unwrap();
        assert!(per_instance_epsilon(target, 0).is_err());
        assert!(advanced_composition(0.1, 0, 1e-5).is_err());
        assert!(composition_advantage(target, 0).is_err());
    }
}
