//! Integration tests for the serving layer: the batched submit path's
//! bit-identity contract and the concurrent multi-tenant audit story.

use dp_mechanisms::{DpRng, SvtBudget};
use svt_core::alg::StandardSvtConfig;
use svt_core::session::SessionDriver;
use svt_core::SvtAnswer;
use svt_server::{BatchQuery, ServerConfig, ServerError, SessionStore, TenantId};

fn config(c: usize, numeric: f64) -> StandardSvtConfig {
    StandardSvtConfig {
        budget: SvtBudget::new(0.2, 0.2, numeric).unwrap(),
        sensitivity: 1.0,
        c,
        monotonic: false,
    }
}

/// A deterministic pseudo-workload: mostly-below answers with
/// occasional spikes, distinct per (session, query index).
fn query_answer(session: usize, q: usize) -> f64 {
    if (session * 31 + q * 7) % 23 == 0 {
        1e9
    } else {
        -1e9 + (session * 100 + q) as f64
    }
}

/// Acceptance criterion: `submit_batch` is bit-identical to sequential
/// per-session `ask` calls for the same per-session RNG streams —
/// including numeric-phase sessions, mixed tenants, and batches that
/// interleave sessions arbitrarily.
#[test]
fn submit_batch_is_bit_identical_to_sequential_asks() {
    let store = SessionStore::new(ServerConfig {
        shards: 4,
        ..Default::default()
    });
    let n_sessions = 6;
    let queries_per_session = 400;

    // Three tenants, two sessions each; session k gets seed 1000 + k
    // and alternates plain/numeric configs.
    let mut sessions = Vec::new();
    let mut references = Vec::new();
    for k in 0..n_sessions {
        let tenant = TenantId((k % 3) as u64);
        if k < 3 {
            store.register_tenant(tenant, 10.0).unwrap();
        }
        let cfg = config(25, if k % 2 == 0 { 0.0 } else { 0.1 });
        let seed = 1000 + k as u64;
        sessions.push(store.open_session(tenant, cfg, seed).unwrap());
        // Reference: a standalone driver on the same (config, seed),
        // asked sequentially.
        let mut rng = DpRng::seed_from_u64(seed);
        let mut driver = SessionDriver::open(cfg, &mut rng).unwrap();
        let answers: Vec<Result<SvtAnswer, _>> = (0..queries_per_session)
            .map(|q| driver.ask(query_answer(k, q), 0.0))
            .collect();
        references.push(answers);
    }

    // Drive the store in interleaved batches: batch b carries query b
    // of every session, in rotating session order, so shard visits mix
    // tenants and sessions.
    let mut got: Vec<Vec<Result<SvtAnswer, ServerError>>> = vec![Vec::new(); n_sessions];
    for q in 0..queries_per_session {
        let batch: Vec<BatchQuery> = (0..n_sessions)
            .map(|i| {
                let k = (i + q) % n_sessions; // rotate composition
                BatchQuery {
                    session: sessions[k],
                    query_answer: query_answer(k, q),
                    threshold: 0.0,
                }
            })
            .collect();
        let results = store.submit_batch(&batch);
        for (i, result) in results.into_iter().enumerate() {
            got[(i + q) % n_sessions].push(result);
        }
    }

    for k in 0..n_sessions {
        assert_eq!(got[k].len(), references[k].len());
        for (q, (have, want)) in got[k].iter().zip(&references[k]).enumerate() {
            match (have, want) {
                (Ok(a), Ok(b)) => {
                    // Bit-identity, including numeric payloads.
                    match (a, b) {
                        (SvtAnswer::Numeric(x), SvtAnswer::Numeric(y)) => {
                            assert_eq!(x.to_bits(), y.to_bits(), "session {k} query {q}");
                        }
                        _ => assert_eq!(a, b, "session {k} query {q}"),
                    }
                }
                (Err(ServerError::Svt(e)), Err(f)) => assert_eq!(e, f, "session {k} query {q}"),
                other => panic!("session {k} query {q}: mismatched results {other:?}"),
            }
        }
    }
    store.verify_all().unwrap();
}

/// Acceptance criterion: an 8-thread × 32-tenant run completes with
/// `verify_chain()` passing on every tenant's ledger — and, because
/// each thread owns its tenants outright, deterministically matches
/// the sequential reference.
#[test]
fn concurrent_tenants_stay_deterministic_and_auditable() {
    let threads = 8;
    let tenants_per_thread = 4; // 32 tenants total
    let sessions_per_tenant = 2;
    let queries_per_session = 300;
    let store = SessionStore::new(ServerConfig {
        shards: 16,
        ..Default::default()
    });

    for t in 0..threads * tenants_per_thread {
        store.register_tenant(TenantId(t as u64), 4.0).unwrap();
    }

    let positives: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let store = &store;
                scope.spawn(move || {
                    let mut positives = 0usize;
                    for t in 0..tenants_per_thread {
                        let tenant = TenantId((w * tenants_per_thread + t) as u64);
                        for s in 0..sessions_per_tenant {
                            let seed = (tenant.0 << 8) | s as u64;
                            let cfg = config(50, 0.0);
                            let session = store.open_session(tenant, cfg, seed).unwrap();
                            // Submit in small batches to exercise the
                            // prefetch path under contention.
                            for chunk in 0..queries_per_session / 50 {
                                let batch: Vec<BatchQuery> = (0..50)
                                    .map(|j| BatchQuery {
                                        session,
                                        query_answer: query_answer(
                                            tenant.0 as usize * 8 + s,
                                            chunk * 50 + j,
                                        ),
                                        threshold: 0.0,
                                    })
                                    .collect();
                                for a in store.submit_batch(&batch).into_iter().flatten() {
                                    positives += usize::from(a.is_positive());
                                }
                            }
                        }
                    }
                    positives
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every tenant's receipt chain must audit clean.
    assert_eq!(store.verify_all().unwrap(), threads * tenants_per_thread);
    for t in 0..threads * tenants_per_thread {
        let tenant = TenantId(t as u64);
        store.verify_tenant(tenant).unwrap();
        let view = store.ledger_view(tenant).unwrap();
        assert_eq!(view.receipts.len(), sessions_per_tenant);
        assert!((view.spent - 0.4 * sessions_per_tenant as f64).abs() < 1e-9);
    }

    // Thread interleaving must not have touched any session's answers:
    // replay one tenant's workload sequentially and compare totals.
    let total_concurrent: usize = positives.iter().sum();
    let mut total_sequential = 0usize;
    for tenant in 0..threads * tenants_per_thread {
        for s in 0..sessions_per_tenant {
            let seed = ((tenant as u64) << 8) | s as u64;
            let mut rng = DpRng::seed_from_u64(seed);
            let mut driver = SessionDriver::open(config(50, 0.0), &mut rng).unwrap();
            for q in 0..queries_per_session {
                if let Ok(a) = driver.ask(query_answer(tenant * 8 + s, q), 0.0) {
                    total_sequential += usize::from(a.is_positive());
                }
            }
        }
    }
    assert_eq!(total_concurrent, total_sequential);
}

/// Tenants are isolated: one tenant exhausting its budget or sessions
/// does not disturb another tenant on the same shard.
#[test]
fn tenant_isolation_under_exhaustion() {
    let store = SessionStore::new(ServerConfig {
        shards: 1,
        ..Default::default()
    }); // force colocation
    let rich = TenantId(1);
    let poor = TenantId(2);
    store.register_tenant(rich, 10.0).unwrap();
    store.register_tenant(poor, 0.4).unwrap();

    let poor_session = store.open_session(poor, config(1, 0.0), 5).unwrap();
    // Poor tenant is now out of budget.
    assert!(matches!(
        store.open_session(poor, config(1, 0.0), 6).unwrap_err(),
        ServerError::Ledger(_)
    ));
    // Spend the single positive; the session halts.
    store.submit(poor_session, 1e9, 0.0).unwrap();
    assert!(matches!(
        store.submit(poor_session, 1e9, 0.0).unwrap_err(),
        ServerError::Svt(svt_core::SvtError::Halted)
    ));

    // The rich tenant on the same shard is unaffected.
    let rich_session = store.open_session(rich, config(3, 0.0), 7).unwrap();
    assert!(store.submit(rich_session, -1e9, 0.0).is_ok());
    store.verify_all().unwrap();
}
