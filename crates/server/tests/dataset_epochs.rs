//! Integration tests for the epoch-snapshot dataset path: sessions pin
//! the dataset snapshot current at open time, `update_scores` publishes
//! new epochs without disturbing pinned sessions, and — the acceptance
//! criterion — a session opened *before* an update answers item-level
//! queries bit-identical to a sequential reference driver fed the
//! *pre-update* scores, even while updates and queries race on threads.

use dp_mechanisms::{DpRng, SvtBudget};
use svt_core::alg::StandardSvtConfig;
use svt_core::session::SessionDriver;
use svt_core::SvtAnswer;
use svt_server::{ScoreUpdate, ServerConfig, ServerError, SessionStore, TenantId};

fn config(c: usize) -> StandardSvtConfig {
    StandardSvtConfig {
        budget: SvtBudget::new(0.2, 0.2, 0.1).unwrap(),
        sensitivity: 1.0,
        c,
        monotonic: false,
    }
}

/// The deterministic item stream session `k` asks, cycling the dataset.
fn item_stream(k: usize, len: usize, queries: usize) -> Vec<usize> {
    (0..queries).map(|q| (k * 13 + q * 7) % len).collect()
}

/// Sequential reference: a standalone driver on the same
/// `(config, seed)` fed `scores[item]` directly, outside the store.
fn reference_answers(
    cfg: StandardSvtConfig,
    seed: u64,
    scores: &[f64],
    items: &[usize],
    threshold: f64,
) -> Vec<Result<SvtAnswer, ServerError>> {
    let mut rng = DpRng::seed_from_u64(seed);
    let mut driver = SessionDriver::open(cfg, &mut rng).unwrap();
    items
        .iter()
        .map(|&item| {
            driver
                .ask(scores[item], threshold)
                .map_err(ServerError::from)
        })
        .collect()
}

#[test]
fn lifecycle_errors_are_precise() {
    let store = SessionStore::new(ServerConfig::default());
    let tenant = TenantId(1);
    // No tenant yet: registration is refused.
    assert_eq!(
        store.register_dataset(tenant, &[1.0]).unwrap_err(),
        ServerError::UnknownTenant(tenant)
    );
    store.register_tenant(tenant, 10.0).unwrap();
    // No dataset yet: epoch queries and item submits are refused.
    assert_eq!(
        store.dataset_epoch(tenant).unwrap_err(),
        ServerError::NoDataset(tenant)
    );
    let early = store.open_session(tenant, config(2), 1).unwrap();
    assert_eq!(
        store.submit_item(early, 0, 0.0).unwrap_err(),
        ServerError::NoDataset(tenant)
    );
    assert_eq!(
        store.session_dataset_epoch(early).unwrap_err(),
        ServerError::NoDataset(tenant)
    );
    // Registration publishes epoch 0; a second registration is refused.
    assert_eq!(store.register_dataset(tenant, &[3.0, 1.0]).unwrap(), 0);
    assert_eq!(
        store.register_dataset(tenant, &[5.0]).unwrap_err(),
        ServerError::DatasetAlreadyRegistered(tenant)
    );
    // The pre-registration session stays pinned to "no dataset"...
    assert_eq!(
        store.submit_item(early, 0, 0.0).unwrap_err(),
        ServerError::NoDataset(tenant)
    );
    // ...while a fresh session pins epoch 0 and range-checks items.
    let session = store.open_session(tenant, config(2), 2).unwrap();
    assert_eq!(store.session_dataset_epoch(session).unwrap(), 0);
    assert_eq!(
        store.submit_item(session, 9, 0.0).unwrap_err(),
        ServerError::ItemOutOfRange { item: 9, len: 2 }
    );
    // None of the dataset errors are retryable.
    assert!(!ServerError::NoDataset(tenant).is_retryable());
    assert!(!ServerError::ItemOutOfRange { item: 9, len: 2 }.is_retryable());
}

#[test]
fn sessions_pin_the_epoch_current_at_open_time() {
    let store = SessionStore::new(ServerConfig::default());
    let tenant = TenantId(7);
    store.register_tenant(tenant, 100.0).unwrap();
    let scores_v0 = vec![5.0, -3.0, 8.0, 0.0];
    store.register_dataset(tenant, &scores_v0).unwrap();

    let threshold = 1.0;
    let queries = 64;
    let seed = 42;
    let items = item_stream(0, scores_v0.len(), queries);
    let old = store.open_session(tenant, config(8), seed).unwrap();

    // Publish a new epoch that flips every item's side of the
    // threshold.
    let scores_v1: Vec<f64> = scores_v0.iter().map(|s| -s + 2.0).collect();
    let updates: Vec<ScoreUpdate> = scores_v1
        .iter()
        .enumerate()
        .map(|(item, &score)| ScoreUpdate::Set { item, score })
        .collect();
    assert_eq!(store.update_scores(tenant, &updates).unwrap(), 1);
    assert_eq!(store.dataset_epoch(tenant).unwrap(), 1);

    // The pre-update session still answers against epoch 0,
    // bit-identical to the sequential reference on the old scores.
    assert_eq!(store.session_dataset_epoch(old).unwrap(), 0);
    let expected = reference_answers(config(8), seed, &scores_v0, &items, threshold);
    for (&item, want) in items.iter().zip(&expected) {
        assert_eq!(&store.submit_item(old, item, threshold), want);
    }

    // A post-update session pins epoch 1 and matches the reference on
    // the new scores.
    let new = store.open_session(tenant, config(8), seed + 1).unwrap();
    assert_eq!(store.session_dataset_epoch(new).unwrap(), 1);
    let expected = reference_answers(config(8), seed + 1, &scores_v1, &items, threshold);
    for (&item, want) in items.iter().zip(&expected) {
        assert_eq!(&store.submit_item(new, item, threshold), want);
    }
    assert_eq!(store.verify_all().unwrap(), 1);
}

/// Acceptance criterion: under a concurrent update storm, sessions
/// opened before any update answer **bit-identical** to the sequential
/// reference on the pre-update scores — epoch pinning makes dataset
/// churn observationally irrelevant to a running session.
#[test]
fn pinned_sessions_are_bit_identical_under_a_concurrent_update_storm() {
    let store = SessionStore::new(ServerConfig {
        shards: 4,
        ..Default::default()
    });
    let n_tenants = 3;
    let sessions_per_tenant = 2;
    let queries = 200;
    let threshold = 0.0;
    let len = 32;

    let scores_v0: Vec<f64> = (0..len).map(|i| ((i * 17) % 23) as f64 - 11.0).collect();
    let mut sessions = Vec::new();
    for t in 0..n_tenants {
        let tenant = TenantId(t as u64);
        store.register_tenant(tenant, 100.0).unwrap();
        store.register_dataset(tenant, &scores_v0).unwrap();
        for s in 0..sessions_per_tenant {
            let k = t * sessions_per_tenant + s;
            let seed = 9000 + k as u64;
            let session = store.open_session(tenant, config(40), seed).unwrap();
            let items = item_stream(k, len, queries);
            let expected = reference_answers(config(40), seed, &scores_v0, &items, threshold);
            sessions.push((session, seed, items, expected));
        }
    }

    std::thread::scope(|scope| {
        // Updater threads: one per tenant, hammering single-item
        // batches that keep relocating items across groups.
        for t in 0..n_tenants {
            let store = &store;
            scope.spawn(move || {
                let tenant = TenantId(t as u64);
                for round in 0..300u64 {
                    let item = (round as usize * 5 + t) % len;
                    let updates = [
                        ScoreUpdate::Increment {
                            item,
                            delta: if round % 2 == 0 { 40.0 } else { -40.0 },
                        },
                        ScoreUpdate::Set {
                            item: (item + 1) % len,
                            score: (round % 13) as f64 - 6.0,
                        },
                    ];
                    store.update_scores(tenant, &updates).unwrap();
                }
            });
        }
        // Query threads: one per pinned session, checking every answer
        // against the pre-computed sequential reference.
        for (session, _, items, expected) in &sessions {
            let store = &store;
            scope.spawn(move || {
                assert_eq!(store.session_dataset_epoch(*session).unwrap(), 0);
                for (&item, want) in items.iter().zip(expected) {
                    assert_eq!(&store.submit_item(*session, item, threshold), want);
                }
                // Still pinned to epoch 0 after the storm.
                assert_eq!(store.session_dataset_epoch(*session).unwrap(), 0);
            });
        }
    });

    // The published epochs advanced (updates really happened), every
    // ledger chain still audits clean, and a fresh session sees the
    // final epoch.
    for t in 0..n_tenants {
        let tenant = TenantId(t as u64);
        assert!(store.dataset_epoch(tenant).unwrap() > 0);
        let fresh = store.open_session(tenant, config(1), 1).unwrap();
        assert_eq!(
            store.session_dataset_epoch(fresh).unwrap(),
            store.dataset_epoch(tenant).unwrap()
        );
    }
    assert_eq!(store.verify_all().unwrap(), n_tenants);
}

/// `submit_item` and `submit` draw from the same per-session noise
/// stream: an item query is exactly a value query for the pinned
/// snapshot's score, so mixing the two APIs stays on the reference
/// stream.
#[test]
fn item_and_value_queries_share_one_noise_stream() {
    let store = SessionStore::new(ServerConfig::default());
    let tenant = TenantId(11);
    store.register_tenant(tenant, 10.0).unwrap();
    let scores = vec![4.0, -2.0, 7.5];
    store.register_dataset(tenant, &scores).unwrap();
    let seed = 77;
    let session = store.open_session(tenant, config(6), seed).unwrap();

    let mut rng = DpRng::seed_from_u64(seed);
    let mut reference = SessionDriver::open(config(6), &mut rng).unwrap();
    for q in 0..30 {
        let item = q % scores.len();
        let got = if q % 2 == 0 {
            store.submit_item(session, item, 0.5)
        } else {
            store.submit(session, scores[item], 0.5)
        };
        // Identical answers — and, once the session spends its `c`
        // positives, identical halt errors.
        let want = reference.ask(scores[item], 0.5).map_err(ServerError::from);
        assert_eq!(got, want);
    }
}
