//! Kill-and-recover matrix for the durable session store.
//!
//! Each seed derives a deterministic [`FaultPlan`] — which WAL append
//! dies, and how (rejected write, torn write, crash before the ack,
//! crash between fsync and ack) — and drives a multi-tenant workload
//! into it. After every crash the store is rebuilt from the surviving
//! log bytes and must uphold the serving layer's two recovery
//! invariants:
//!
//! 1. every tenant chain re-verifies (`verify_all` passes), and
//! 2. recovered spent `ε` ≥ acknowledged spent `ε` per tenant — a crash
//!    may strand at most one *unacknowledged* charge on disk (an
//!    overcount), never lose an acknowledged one (an undercount).

use dp_mechanisms::wal::{FsyncPolicy, MemSink, WalSink};
use dp_mechanisms::{FaultMode, FaultPlan, FaultySink, SvtBudget};
use svt_core::alg::StandardSvtConfig;
use svt_server::{ServerConfig, ServerError, SessionStore, TenantId};

const SESSION_EPSILON: f64 = 0.5;
const TENANTS: u64 = 3;

fn svt_config() -> StandardSvtConfig {
    StandardSvtConfig {
        budget: SvtBudget::halves(SESSION_EPSILON).unwrap(),
        sensitivity: 1.0,
        c: 4,
        monotonic: true,
    }
}

fn server_config() -> ServerConfig {
    ServerConfig {
        shards: 1,
        ..Default::default()
    }
}

/// Runs registrations, opens, and queries against a store whose single
/// shard writes through `plan`, until the injected crash surfaces (or
/// the workload completes, when the plan's append never happens).
/// Returns the surviving log bytes and the per-tenant acknowledged `ε`.
fn run_until_crash(plan: FaultPlan) -> (Vec<u8>, Vec<f64>) {
    let mem = MemSink::new();
    let faulty = FaultySink::new(mem.clone(), plan);
    let store =
        SessionStore::with_wal_sinks(server_config(), vec![Box::new(faulty)], FsyncPolicy::Always);
    let mut acked = vec![0.0f64; TENANTS as usize];
    let mut crashed = false;
    for t in 0..TENANTS {
        if store.register_tenant(TenantId(t), 100.0).is_err() {
            crashed = true;
            break;
        }
    }
    if !crashed {
        'outer: for round in 0..4u64 {
            for t in 0..TENANTS {
                match store.open_session(TenantId(t), svt_config(), round * TENANTS + t) {
                    Ok(session) => {
                        acked[t as usize] += SESSION_EPSILON;
                        // Queries never touch the WAL; they keep
                        // working right through a poisoned log.
                        store.submit(session, -1e9, 0.0).unwrap();
                    }
                    Err(ServerError::Durability(_)) => break 'outer,
                    Err(other) => panic!("unexpected workload error: {other}"),
                }
            }
        }
    }
    // Whatever happened, the in-memory view must itself still audit —
    // the store never let memory advance past a failed write.
    store.verify_all().unwrap();
    for (t, &acked_eps) in acked.iter().enumerate() {
        if let Ok(view) = store.ledger_view(TenantId(t as u64)) {
            assert!((view.spent - acked_eps).abs() < 1e-12, "memory/ack drift");
        } else {
            assert_eq!(acked_eps, 0.0, "acked charges on an unregistered tenant");
        }
    }
    (mem.bytes(), acked)
}

fn recover(bytes: &[u8]) -> (SessionStore, svt_server::RecoveryReport) {
    SessionStore::recover_with_sinks(
        server_config(),
        &[bytes.to_vec()],
        vec![Box::new(MemSink::new())],
        FsyncPolicy::Always,
    )
    .expect("an honest writer's surviving log must replay")
}

fn assert_recovery_invariants(bytes: &[u8], acked: &[f64], context: &str) {
    let (recovered, _) = recover(bytes);
    recovered.verify_all().unwrap();
    let mut overshoot = 0.0;
    for (t, &acked_eps) in acked.iter().enumerate() {
        let spent = recovered
            .ledger_view(TenantId(t as u64))
            .map(|v| v.spent)
            .unwrap_or(0.0);
        assert!(
            spent >= acked_eps - 1e-12,
            "{context}: tenant {t} recovered {spent} < acked {acked_eps}"
        );
        overshoot += spent - acked_eps;
    }
    assert!(
        overshoot <= SESSION_EPSILON + 1e-12,
        "{context}: total overshoot {overshoot} exceeds one in-flight charge"
    );
}

#[test]
fn seeded_fault_matrix_never_undercounts_spent_budget() {
    for seed in 0..96u64 {
        // The workload performs 3 registrations + up to 12 opens.
        let plan = FaultPlan::from_seed(seed, 15);
        let (bytes, acked) = run_until_crash(plan);
        assert_recovery_invariants(&bytes, &acked, &format!("seed {seed} ({plan:?})"));
    }
}

#[test]
fn the_matrix_spans_at_least_twenty_five_distinct_injection_points() {
    let mut points = std::collections::BTreeSet::new();
    for seed in 0..96u64 {
        let plan = FaultPlan::from_seed(seed, 15);
        let (tag, keep) = match plan.mode {
            FaultMode::WriteError => (0, 0),
            FaultMode::TornWrite { keep } => (1, keep),
            FaultMode::CrashAfterWrite => (2, 0),
            FaultMode::CrashAfterSync => (3, 0),
        };
        points.insert((plan.fail_op, tag, keep));
    }
    assert!(
        points.len() >= 25,
        "only {} distinct injection points",
        points.len()
    );
}

#[test]
fn recovery_survives_a_second_crash() {
    // Crash once...
    let plan = FaultPlan {
        fail_op: 5,
        mode: FaultMode::TornWrite { keep: 60 },
    };
    let (bytes, acked) = run_until_crash(plan);
    // ...recover onto a sink armed with a *second* fault...
    let mem2 = MemSink::new();
    let faulty2 = FaultySink::new(
        mem2.clone(),
        FaultPlan {
            fail_op: 2,
            mode: FaultMode::CrashAfterSync,
        },
    );
    let (store2, _) = SessionStore::recover_with_sinks(
        server_config(),
        &[bytes],
        vec![Box::new(faulty2) as Box<dyn WalSink>],
        FsyncPolicy::Always,
    )
    .unwrap();
    let mut acked2 = acked.clone();
    'outer: for round in 10..14u64 {
        for t in 0..TENANTS {
            match store2.open_session(TenantId(t), svt_config(), round * TENANTS + t) {
                Ok(_) => acked2[t as usize] += SESSION_EPSILON,
                Err(ServerError::Durability(_)) => break 'outer,
                Err(other) => panic!("unexpected error after recovery: {other}"),
            }
        }
    }
    assert!(store2.durability_poisoned());
    // ...and recover again from the second generation's bytes. The
    // chain is contiguous across both crashes because recovery re-seats
    // the verified prefix before appending.
    assert_recovery_invariants(&mem2.bytes(), &acked2, "second generation");
}

#[test]
fn a_clean_shutdown_recovers_exactly() {
    // A plan whose append never happens is a clean shutdown.
    let plan = FaultPlan {
        fail_op: u64::MAX,
        mode: FaultMode::WriteError,
    };
    let (bytes, acked) = run_until_crash(plan);
    let (recovered, report) = recover(&bytes);
    assert_eq!(report.torn_tail_bytes, 0);
    assert_eq!(report.tenants, TENANTS as usize);
    for (t, &eps) in acked.iter().enumerate() {
        let spent = recovered.ledger_view(TenantId(t as u64)).unwrap().spent;
        assert!((spent - eps).abs() < 1e-12);
    }
}
