//! Error surface of the serving layer.
//!
//! The server distinguishes routing failures (unknown tenant/session),
//! ledger failures (budget, chain integrity), and protocol failures
//! (the SVT session itself rejecting a query), so callers can map each
//! to the right client-facing status.

use std::fmt;

use crate::store::{SessionId, TenantId};
use dp_mechanisms::LedgerError;
use svt_core::SvtError;

/// Errors produced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The tenant was never registered on this store.
    UnknownTenant(TenantId),
    /// The tenant is already registered; budgets cannot be silently
    /// replaced.
    TenantAlreadyRegistered(TenantId),
    /// No live session with this id (never opened, or already closed).
    UnknownSession(SessionId),
    /// The tenant's budget ledger rejected the operation (exhausted
    /// budget, invalid charge, or a failed chain audit).
    Ledger(LedgerError),
    /// The SVT session rejected the query (halted, non-finite input, or
    /// an invalid configuration at open).
    Svt(SvtError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTenant(t) => write!(f, "unknown tenant {}", t.0),
            Self::TenantAlreadyRegistered(t) => {
                write!(f, "tenant {} is already registered", t.0)
            }
            Self::UnknownSession(s) => {
                write!(f, "unknown session {} of tenant {}", s.nonce, s.tenant.0)
            }
            Self::Ledger(e) => write!(f, "ledger: {e}"),
            Self::Svt(e) => write!(f, "session: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Ledger(e) => Some(e),
            Self::Svt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LedgerError> for ServerError {
    fn from(e: LedgerError) -> Self {
        Self::Ledger(e)
    }
}

impl From<SvtError> for ServerError {
    fn from(e: SvtError) -> Self {
        Self::Svt(e)
    }
}
