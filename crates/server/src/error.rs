//! Error surface of the serving layer.
//!
//! The server distinguishes routing failures (unknown tenant/session),
//! ledger failures (budget, chain integrity), protocol failures (the
//! SVT session itself rejecting a query), lifecycle failures (the store
//! evicted the session), admission failures (the store refused the
//! work), and durability failures (the write-ahead log could not
//! persist a charge), so callers can map each to the right
//! client-facing status.
//!
//! The one classification clients actually branch on is
//! [`ServerError::is_retryable`]: **only** [`ServerError::Overloaded`]
//! is retryable. Everything else is either a permanent fact about the
//! request (unknown ids, exhausted budget, halted session), a permanent
//! fact about the session's lifecycle ([`ServerError::SessionEvicted`]
//! — the noise state is gone; retrying the same id can never succeed;
//! open a new session), or a stop-the-world fault
//! ([`ServerError::Durability`] — the store refuses to acknowledge
//! charges it cannot persist).

use std::fmt;

use crate::store::{SessionId, TenantId};
use dp_data::DataError;
use dp_mechanisms::{LedgerError, WalError};
use svt_core::SvtError;

/// Why the store removed a session before the client closed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionReason {
    /// The session sat idle past the shard's logical-clock TTL.
    Expired,
    /// The shard hit its live-session cap and reclaimed the
    /// least-recently-used session.
    Capacity,
}

impl fmt::Display for EvictionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Expired => write!(f, "idle past TTL"),
            Self::Capacity => write!(f, "LRU-reclaimed at the session cap"),
        }
    }
}

/// Why the store refused to admit work right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadCause {
    /// The tenant drained its token bucket; tokens refill on the
    /// shard's logical clock.
    TenantRateLimited(TenantId),
    /// The shard's in-flight operation count crossed its shed
    /// threshold.
    ShardSaturated {
        /// The saturated shard's index.
        shard: usize,
    },
}

impl fmt::Display for OverloadCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TenantRateLimited(t) => write!(f, "tenant {} is rate-limited", t.0),
            Self::ShardSaturated { shard } => write!(f, "shard {shard} is saturated"),
        }
    }
}

/// Errors produced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The tenant was never registered on this store.
    UnknownTenant(TenantId),
    /// The tenant is already registered; budgets cannot be silently
    /// replaced.
    TenantAlreadyRegistered(TenantId),
    /// No live session with this id (never opened, or already closed).
    UnknownSession(SessionId),
    /// The store evicted this session (TTL or capacity). Its noise
    /// state is gone; the id will keep reporting this error. Not
    /// retryable — open a new session.
    SessionEvicted {
        /// The evicted session.
        session: SessionId,
        /// Why the store removed it.
        reason: EvictionReason,
    },
    /// The store refused to admit the work right now. Retryable: the
    /// request was not processed and nothing was charged.
    Overloaded(OverloadCause),
    /// The tenant's budget ledger rejected the operation (exhausted
    /// budget, invalid charge, or a failed chain audit).
    Ledger(LedgerError),
    /// The SVT session rejected the query (halted, non-finite input, or
    /// an invalid configuration at open).
    Svt(SvtError),
    /// The write-ahead log could not persist the operation. The charge
    /// was **not** acknowledged and the WAL is poisoned: the store
    /// stops accepting budget-bearing work until recovered from the
    /// log.
    Durability(WalError),
    /// The tenant has no registered dataset, so item-level queries
    /// cannot resolve scores.
    NoDataset(TenantId),
    /// The tenant already has a dataset; datasets evolve through
    /// `update_scores`, never by silent replacement.
    DatasetAlreadyRegistered(TenantId),
    /// The queried item does not exist in the session's pinned dataset
    /// snapshot.
    ItemOutOfRange {
        /// The offending item.
        item: usize,
        /// Items in the pinned snapshot.
        len: usize,
    },
    /// A dataset registration or score update was rejected by the data
    /// layer (non-finite score, unknown item).
    Dataset(DataError),
}

impl ServerError {
    /// Whether retrying the same request can succeed. `true` only for
    /// [`ServerError::Overloaded`]: the request was shed before any
    /// state changed, and admission pressure is transient. Every other
    /// variant is deterministic for the same request — retrying
    /// reproduces it.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, Self::Overloaded(_))
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTenant(t) => write!(f, "unknown tenant {}", t.0),
            Self::TenantAlreadyRegistered(t) => {
                write!(f, "tenant {} is already registered", t.0)
            }
            Self::UnknownSession(s) => {
                write!(f, "unknown session {} of tenant {}", s.nonce, s.tenant.0)
            }
            Self::SessionEvicted { session, reason } => write!(
                f,
                "session {} of tenant {} was evicted ({reason})",
                session.nonce, session.tenant.0
            ),
            Self::Overloaded(cause) => write!(f, "overloaded: {cause}; retry later"),
            Self::Ledger(e) => write!(f, "ledger: {e}"),
            Self::Svt(e) => write!(f, "session: {e}"),
            Self::Durability(e) => write!(f, "durability: {e}"),
            Self::NoDataset(t) => write!(f, "tenant {} has no registered dataset", t.0),
            Self::DatasetAlreadyRegistered(t) => {
                write!(f, "tenant {} already has a dataset", t.0)
            }
            Self::ItemOutOfRange { item, len } => {
                write!(f, "item {item} out of range for dataset of {len} items")
            }
            Self::Dataset(e) => write!(f, "dataset: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Ledger(e) => Some(e),
            Self::Svt(e) => Some(e),
            Self::Durability(e) => Some(e),
            Self::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LedgerError> for ServerError {
    fn from(e: LedgerError) -> Self {
        Self::Ledger(e)
    }
}

impl From<SvtError> for ServerError {
    fn from(e: SvtError) -> Self {
        Self::Svt(e)
    }
}

impl From<WalError> for ServerError {
    fn from(e: WalError) -> Self {
        Self::Durability(e)
    }
}

impl From<DataError> for ServerError {
    fn from(e: DataError) -> Self {
        Self::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid() -> SessionId {
        SessionId {
            tenant: TenantId(7),
            nonce: 3,
        }
    }

    /// The full retry-classification matrix: one arm per variant, so
    /// adding a variant without classifying it fails to compile here.
    #[test]
    fn retry_classification_covers_every_variant() {
        let cases: Vec<(ServerError, bool)> = vec![
            (ServerError::UnknownTenant(TenantId(1)), false),
            (ServerError::TenantAlreadyRegistered(TenantId(1)), false),
            (ServerError::UnknownSession(sid()), false),
            (
                ServerError::SessionEvicted {
                    session: sid(),
                    reason: EvictionReason::Expired,
                },
                false,
            ),
            (
                ServerError::SessionEvicted {
                    session: sid(),
                    reason: EvictionReason::Capacity,
                },
                false,
            ),
            (
                ServerError::Overloaded(OverloadCause::TenantRateLimited(TenantId(1))),
                true,
            ),
            (
                ServerError::Overloaded(OverloadCause::ShardSaturated { shard: 4 }),
                true,
            ),
            (
                ServerError::Ledger(LedgerError::BudgetExhausted {
                    requested: 1.0,
                    remaining: 0.0,
                }),
                false,
            ),
            (ServerError::Svt(svt_core::SvtError::Halted), false),
            (ServerError::Durability(WalError::Poisoned), false),
            (ServerError::NoDataset(TenantId(1)), false),
            (ServerError::DatasetAlreadyRegistered(TenantId(1)), false),
            (ServerError::ItemOutOfRange { item: 9, len: 4 }, false),
            (
                ServerError::Dataset(DataError::NonFiniteScore {
                    index: 0,
                    value: f64::NAN,
                }),
                false,
            ),
        ];
        for (err, want) in cases {
            // Exhaustiveness guard: every variant must appear above.
            match &err {
                ServerError::UnknownTenant(_)
                | ServerError::TenantAlreadyRegistered(_)
                | ServerError::UnknownSession(_)
                | ServerError::SessionEvicted { .. }
                | ServerError::Overloaded(_)
                | ServerError::Ledger(_)
                | ServerError::Svt(_)
                | ServerError::Durability(_)
                | ServerError::NoDataset(_)
                | ServerError::DatasetAlreadyRegistered(_)
                | ServerError::ItemOutOfRange { .. }
                | ServerError::Dataset(_) => {}
            }
            assert_eq!(err.is_retryable(), want, "{err}");
        }
    }

    #[test]
    fn displays_are_informative() {
        let evicted = ServerError::SessionEvicted {
            session: sid(),
            reason: EvictionReason::Capacity,
        };
        assert!(evicted.to_string().contains("evicted"));
        assert!(evicted.to_string().contains("cap"));
        let shed = ServerError::Overloaded(OverloadCause::ShardSaturated { shard: 2 });
        assert!(shed.to_string().contains("retry"));
        let wal = ServerError::Durability(WalError::Poisoned);
        assert!(wal.to_string().contains("durability"));
    }
}
