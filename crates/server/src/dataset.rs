//! Per-tenant live datasets behind epoch-swapped snapshots.
//!
//! The serving layer's dataset story mirrors `dp-data`'s split between
//! [`LiveScores`] (the single mutable owner) and [`GroupedSnapshot`]
//! (immutable, epoch-stamped views):
//!
//! - Each tenant owns one [`LiveScores`] guarded by a mutex that only
//!   [`DatasetRegistry::update`] takes, so score churn never contends
//!   with the query path.
//! - The *published* snapshot lives behind an `RwLock<Arc<_>>` that is
//!   swapped — never mutated — when an update batch commits. Readers
//!   clone the `Arc` and are done with the lock in nanoseconds.
//! - `open_session` pins the snapshot current at open time into the
//!   session entry. A session therefore answers every query against
//!   one immutable epoch, bit-identical to a sequential run against
//!   those scores, no matter how many updates land concurrently.
//!
//! Update batches are validated in full before anything is applied:
//! a batch with an out-of-range item or a non-finite resulting score
//! changes nothing and publishes nothing.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use dp_data::{DataError, GroupedSnapshot, LiveScores};

use crate::error::ServerError;
use crate::store::{Result, TenantId};

/// One mutation of a tenant's live dataset, applied in batch order by
/// [`SessionStore::update_scores`](crate::store::SessionStore::update_scores).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreUpdate {
    /// Overwrite `item`'s score with an absolute value.
    Set {
        /// The item to rewrite.
        item: usize,
        /// Its new score (must be finite).
        score: f64,
    },
    /// Add `delta` to `item`'s current score.
    Increment {
        /// The item to adjust.
        item: usize,
        /// The adjustment (the resulting score must be finite).
        delta: f64,
    },
}

/// One tenant's dataset: the mutable owner plus the published snapshot.
#[derive(Debug)]
struct TenantDataset {
    /// The single mutable owner; only `update` locks it, and never
    /// while holding `published`'s write lock.
    live: Mutex<LiveScores>,
    /// What `open_session` pins. Swapped whole; existing clones keep
    /// their epoch.
    published: RwLock<Arc<GroupedSnapshot>>,
}

/// tenant → dataset. The outer map is read-mostly (registrations are
/// rare); per-tenant state is behind its own locks so two tenants'
/// updates never contend.
#[derive(Debug, Default)]
pub(crate) struct DatasetRegistry {
    tenants: RwLock<HashMap<TenantId, Arc<TenantDataset>>>,
}

impl DatasetRegistry {
    /// Builds and publishes `tenant`'s initial dataset (epoch 0).
    pub(crate) fn register(&self, tenant: TenantId, scores: &[f64]) -> Result<u64> {
        let mut live = LiveScores::from_scores(scores)?;
        let snapshot = live.snapshot();
        let epoch = snapshot.epoch();
        let dataset = Arc::new(TenantDataset {
            live: Mutex::new(live),
            published: RwLock::new(snapshot),
        });
        let mut tenants = self.tenants.write().expect("dataset registry poisoned");
        if tenants.contains_key(&tenant) {
            return Err(ServerError::DatasetAlreadyRegistered(tenant));
        }
        tenants.insert(tenant, dataset);
        Ok(epoch)
    }

    /// The tenant's dataset handle, if one is registered.
    fn get(&self, tenant: TenantId) -> Result<Arc<TenantDataset>> {
        self.tenants
            .read()
            .expect("dataset registry poisoned")
            .get(&tenant)
            .cloned()
            .ok_or(ServerError::NoDataset(tenant))
    }

    /// The currently published snapshot — what a session opened right
    /// now would pin. `None` when the tenant has no dataset.
    pub(crate) fn snapshot(&self, tenant: TenantId) -> Option<Arc<GroupedSnapshot>> {
        let dataset = self
            .tenants
            .read()
            .expect("dataset registry poisoned")
            .get(&tenant)
            .cloned()?;
        let published = dataset.published.read().expect("published lock poisoned");
        Some(Arc::clone(&published))
    }

    /// Applies `updates` as one atomic batch and publishes the
    /// resulting snapshot, returning its epoch. The whole batch is
    /// validated against a staged simulation first, so a rejected batch
    /// applies nothing and the published snapshot does not move.
    pub(crate) fn update(&self, tenant: TenantId, updates: &[ScoreUpdate]) -> Result<u64> {
        let dataset = self.get(tenant)?;
        let mut live = dataset.live.lock().expect("live scores lock poisoned");
        // Stage: fold the batch over the affected items only, checking
        // every intermediate state, before touching `live`.
        let mut staged: HashMap<usize, f64> = HashMap::new();
        for update in updates {
            let (item, next) = match *update {
                ScoreUpdate::Set { item, score } => (item, score),
                ScoreUpdate::Increment { item, delta } => {
                    if item >= live.len() {
                        return Err(ServerError::ItemOutOfRange {
                            item,
                            len: live.len(),
                        });
                    }
                    let current = match staged.get(&item) {
                        Some(&v) => v,
                        None => live.score(item).expect("range checked above"),
                    };
                    (item, current + delta)
                }
            };
            if item >= live.len() {
                return Err(ServerError::ItemOutOfRange {
                    item,
                    len: live.len(),
                });
            }
            if !next.is_finite() {
                return Err(ServerError::Dataset(DataError::NonFiniteScore {
                    index: item,
                    value: next,
                }));
            }
            staged.insert(item, next);
        }
        // Commit: only the batch's *final* score per item matters for
        // the published structure, so apply the staged values directly.
        for (&item, &score) in &staged {
            live.set_score(item, score).expect("validated above");
        }
        let snapshot = live.snapshot();
        let epoch = snapshot.epoch();
        *dataset.published.write().expect("published lock poisoned") = snapshot;
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_then_snapshot_pins_epoch_zero() {
        let registry = DatasetRegistry::default();
        let tenant = TenantId(1);
        assert_eq!(registry.register(tenant, &[3.0, 1.0, 2.0]).unwrap(), 0);
        let snap = registry.snapshot(tenant).unwrap();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.top_c(1), vec![0]);
        assert!(registry.snapshot(TenantId(2)).is_none());
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let registry = DatasetRegistry::default();
        let tenant = TenantId(3);
        registry.register(tenant, &[1.0]).unwrap();
        assert_eq!(
            registry.register(tenant, &[2.0]).unwrap_err(),
            ServerError::DatasetAlreadyRegistered(tenant)
        );
    }

    #[test]
    fn update_swaps_the_published_snapshot_but_not_pinned_clones() {
        let registry = DatasetRegistry::default();
        let tenant = TenantId(4);
        registry.register(tenant, &[3.0, 1.0, 2.0]).unwrap();
        let pinned = registry.snapshot(tenant).unwrap();
        let epoch = registry
            .update(
                tenant,
                &[ScoreUpdate::Set {
                    item: 1,
                    score: 9.0,
                }],
            )
            .unwrap();
        assert_eq!(epoch, 1);
        // The old pin is untouched; the new publish sees the update.
        assert_eq!(pinned.top_c(1), vec![0]);
        let fresh = registry.snapshot(tenant).unwrap();
        assert_eq!(fresh.epoch(), 1);
        assert_eq!(fresh.top_c(1), vec![1]);
    }

    #[test]
    fn a_rejected_batch_applies_nothing() {
        let registry = DatasetRegistry::default();
        let tenant = TenantId(5);
        registry.register(tenant, &[3.0, 1.0]).unwrap();
        // The first update is fine; the second is out of range. The
        // whole batch must be discarded.
        let err = registry
            .update(
                tenant,
                &[
                    ScoreUpdate::Set {
                        item: 0,
                        score: 99.0,
                    },
                    ScoreUpdate::Increment {
                        item: 7,
                        delta: 1.0,
                    },
                ],
            )
            .unwrap_err();
        assert_eq!(err, ServerError::ItemOutOfRange { item: 7, len: 2 });
        let snap = registry.snapshot(tenant).unwrap();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.score_of_item(0).to_bits(), 3.0f64.to_bits());

        // A batch whose *intermediate* state is fine but whose result
        // overflows is rejected too.
        let err = registry
            .update(
                tenant,
                &[ScoreUpdate::Increment {
                    item: 0,
                    delta: f64::INFINITY,
                }],
            )
            .unwrap_err();
        assert!(matches!(err, ServerError::Dataset(_)), "{err}");
        assert_eq!(registry.snapshot(tenant).unwrap().epoch(), 0);
        assert_eq!(registry.update(tenant, &[]).unwrap(), 0);
    }

    #[test]
    fn batch_order_matters_for_increments() {
        let registry = DatasetRegistry::default();
        let tenant = TenantId(6);
        registry.register(tenant, &[1.0, 0.0]).unwrap();
        registry
            .update(
                tenant,
                &[
                    ScoreUpdate::Set {
                        item: 0,
                        score: 10.0,
                    },
                    ScoreUpdate::Increment {
                        item: 0,
                        delta: 2.0,
                    },
                ],
            )
            .unwrap();
        let snap = registry.snapshot(tenant).unwrap();
        assert_eq!(snap.score_of_item(0).to_bits(), 12.0f64.to_bits());
    }
}
