//! # svt-server
//!
//! Multi-tenant serving layer over the interactive Sparse Vector
//! Technique of *Understanding the Sparse Vector Technique for
//! Differential Privacy* (Lyu, Su, Li; VLDB 2017).
//!
//! The paper's interactive setting is exactly a serving problem: many
//! analysts (tenants) stream queries against shared data, ⊥ answers
//! are free, and each tenant's ⊤ allowance is bounded by a privacy
//! budget. This crate provides the store that makes that concurrent:
//!
//! - [`SessionStore`] — a fixed array of mutex-guarded shards, each
//!   owning the sessions *and* the budget ledger of the tenants hashed
//!   to it. Sessions are `svt-core`'s pure
//!   [`SessionState`](svt_core::session::SessionState) machines wrapped
//!   in their noise [`SessionDriver`](svt_core::session::SessionDriver),
//!   so parking them in shared maps is safe by construction.
//! - [`SessionStore::submit_batch`] — answers a mixed-tenant batch with
//!   one lock acquisition per shard and one batched noise fill per
//!   session per visit, bit-identical to sequential per-session
//!   submission (the `BatchSample` stream-equivalence contract, pinned
//!   by test).
//! - Per-tenant [`BudgetLedger`](dp_mechanisms::BudgetLedger)s — every
//!   session open appends a hash-chained charge receipt;
//!   [`SessionStore::verify_tenant`] / [`SessionStore::verify_all`]
//!   re-derive the chains, and [`SessionStore::ledger_view`] hands an
//!   auditor a self-contained copy.
//!
//! The `serve_smoke` driver in `svt-experiments` exercises this crate
//! under N tenants × M worker threads and reports qps / p99 latency
//! into the benchmark schema.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod store;

pub use error::ServerError;
pub use store::{
    BatchQuery, LedgerView, Result, ServerConfig, SessionId, SessionStatus, SessionStore, TenantId,
};
