//! # svt-server
//!
//! Multi-tenant serving layer over the interactive Sparse Vector
//! Technique of *Understanding the Sparse Vector Technique for
//! Differential Privacy* (Lyu, Su, Li; VLDB 2017).
//!
//! The paper's interactive setting is exactly a serving problem: many
//! analysts (tenants) stream queries against shared data, ⊥ answers
//! are free, and each tenant's ⊤ allowance is bounded by a privacy
//! budget. This crate provides the store that makes that concurrent:
//!
//! - [`SessionStore`] — a fixed array of mutex-guarded shards, each
//!   owning the sessions *and* the budget ledger of the tenants hashed
//!   to it. Sessions are `svt-core`'s pure
//!   [`SessionState`](svt_core::session::SessionState) machines wrapped
//!   in their noise [`SessionDriver`](svt_core::session::SessionDriver),
//!   so parking them in shared maps is safe by construction.
//! - [`SessionStore::submit_batch`] — answers a mixed-tenant batch with
//!   one lock acquisition per shard and one batched noise fill per
//!   session per visit, bit-identical to sequential per-session
//!   submission (the `BatchSample` stream-equivalence contract, pinned
//!   by test).
//! - Per-tenant [`BudgetLedger`](dp_mechanisms::BudgetLedger)s — every
//!   session open appends a hash-chained charge receipt;
//!   [`SessionStore::verify_tenant`] / [`SessionStore::verify_all`]
//!   re-derive the chains, and [`SessionStore::ledger_view`] hands an
//!   auditor a self-contained copy.
//!
//! The store is also **durable** and **self-defending**:
//!
//! - [`SessionStore::with_wal_dir`] writes every budget-bearing
//!   operation through a per-shard
//!   [`LedgerWal`](dp_mechanisms::LedgerWal) *before* acknowledging it
//!   (acknowledged ⇒ persisted under `FsyncPolicy::Always`), and
//!   [`SessionStore::recover_wal_dir`] rebuilds every tenant's
//!   chain-verified ledger after a crash — recovered spent `ε` is never
//!   an undercount of what clients were told.
//! - [`ServerConfig`] carries optional session expiry (logical-clock
//!   TTL), a per-shard LRU session cap, per-tenant token-bucket rate
//!   limits, and per-shard load shedding. Shed requests report the
//!   retryable [`ServerError::Overloaded`]; reclaimed sessions report
//!   [`ServerError::SessionEvicted`] (see
//!   [`ServerError::is_retryable`]).
//!
//! **Datasets are served too.** [`SessionStore::register_dataset`]
//! gives a tenant a live score table ([`dp_data::LiveScores`]) behind
//! an epoch-swapped [`dp_data::GroupedSnapshot`];
//! [`SessionStore::update_scores`] applies atomic batches of
//! incremental score changes (no re-sort) and publishes a new epoch;
//! [`SessionStore::open_session`] pins the snapshot current at open
//! time, so every session answers item-level queries
//! ([`SessionStore::submit_item`]) against one immutable epoch,
//! bit-identical to a sequential run over those scores, regardless of
//! concurrent updates.
//!
//! The `serve_smoke` driver in `svt-experiments` exercises this crate
//! under N tenants × M worker threads — including a kill-and-recover
//! phase — and reports qps / p99 latency / shed / evicted /
//! recovery-time into the benchmark schema.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod error;
pub mod store;

pub use dataset::ScoreUpdate;
pub use error::{EvictionReason, OverloadCause, ServerError};
pub use store::{
    BatchQuery, LedgerView, RateLimit, RecoveryReport, Result, ServerConfig, SessionId,
    SessionStatus, SessionStore, TenantId,
};
