//! The sharded session store: tenants, sessions, and the batched
//! submit path.
//!
//! ## Ownership
//!
//! Every tenant lives on exactly one shard, chosen by hashing the
//! tenant id, and the shard owns **both** the tenant's
//! [`BudgetLedger`] and all of the tenant's session
//! [`SessionDriver`]s under one mutex:
//!
//! ```text
//! SessionStore
//! ├── Shard 0 ─ Mutex ─┬─ sessions: SessionId → SessionDriver
//! │                    └─ ledgers:  TenantId  → BudgetLedger
//! ├── Shard 1 ─ Mutex ─┬─ sessions …
//! │                    └─ ledgers  …
//! ⋮
//! ```
//!
//! Colocating a tenant's ledger with its sessions makes
//! `open_session`'s charge-then-insert atomic under a single lock — no
//! cross-shard transaction, no window where a session exists without
//! its receipt — and means any two tenants on different shards never
//! contend.
//!
//! ## Determinism
//!
//! A session's answers are a pure function of `(config, seed)`: the
//! driver is opened from `DpRng::seed_from_u64(seed)` and owns its
//! forked noise generators thereafter. The batched
//! [`submit_batch`](SessionStore::submit_batch) path prefetches each
//! session's noise with one buffered fill per shard visit, which by the
//! `BatchSample` stream-equivalence contract cannot change any answer —
//! so batching, batch composition, and thread interleaving across
//! *different* sessions are all observationally irrelevant. Only the
//! per-session order of queries matters, exactly as in the
//! single-session API.

use std::collections::HashMap;
use std::sync::Mutex;

use dp_mechanisms::{BudgetLedger, ChargeReceipt, DpRng};
use svt_core::alg::StandardSvtConfig;
use svt_core::session::SessionDriver;
use svt_core::SvtAnswer;

use crate::error::ServerError;

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, ServerError>;

/// Identifies a tenant (an isolated budget domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

/// Identifies one session of one tenant. Nonces are store-assigned and
/// never reused, so a closed session's id stays dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId {
    /// The owning tenant.
    pub tenant: TenantId,
    /// Store-assigned per-shard nonce.
    pub nonce: u64,
}

/// One query of a [`SessionStore::submit_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchQuery {
    /// The session to ask.
    pub session: SessionId,
    /// The true query answer `q(D)`.
    pub query_answer: f64,
    /// The threshold `T` to test against.
    pub threshold: f64,
}

/// A point-in-time snapshot of one session's protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStatus {
    /// Queries successfully answered.
    pub queries_asked: usize,
    /// Positive (`⊤`) answers so far.
    pub positives: usize,
    /// Whether the session has spent its `c` positives.
    pub exhausted: bool,
}

/// A point-in-time copy of one tenant's budget standing and receipt
/// chain — what an auditor is handed.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerView {
    /// The tenant audited.
    pub tenant: TenantId,
    /// Configured total budget.
    pub total: f64,
    /// Budget consumed so far.
    pub spent: f64,
    /// Budget still available.
    pub remaining: f64,
    /// The full hash-chained receipt run (verifiable offline via
    /// [`dp_mechanisms::ledger::audit_receipts`]).
    pub receipts: Vec<ChargeReceipt>,
}

/// Tuning knobs for a [`SessionStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Number of shards; rounded up to a power of two, minimum 1.
    /// More shards mean less lock contention and more resident memory.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { shards: 16 }
    }
}

#[derive(Debug, Default)]
struct ShardState {
    sessions: HashMap<SessionId, SessionDriver>,
    ledgers: HashMap<TenantId, BudgetLedger>,
    next_nonce: u64,
}

#[derive(Debug, Default)]
struct Shard {
    state: Mutex<ShardState>,
}

/// SplitMix64 finalizer: tenant ids are often small sequential
/// integers, so the raw id would pile every tenant onto shard 0.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The multi-tenant session store. See the module docs for the
/// ownership and determinism story.
///
/// ```
/// use dp_mechanisms::SvtBudget;
/// use svt_core::alg::StandardSvtConfig;
/// use svt_server::{ServerConfig, SessionStore, TenantId};
///
/// let store = SessionStore::new(ServerConfig::default());
/// let tenant = TenantId(1);
/// store.register_tenant(tenant, 2.0)?;
/// let config = StandardSvtConfig {
///     budget: SvtBudget::halves(0.5).expect("valid budget"),
///     sensitivity: 1.0,
///     c: 3,
///     monotonic: true,
/// };
/// let session = store.open_session(tenant, config, 42)?;
/// let answer = store.submit(session, -1e6, 0.0)?;
/// assert!(!answer.is_positive());
/// store.verify_tenant(tenant)?; // receipt chain is intact
/// # Ok::<(), svt_server::ServerError>(())
/// ```
#[derive(Debug)]
pub struct SessionStore {
    shards: Box<[Shard]>,
    mask: u64,
}

impl SessionStore {
    /// Creates a store with `config.shards` (rounded up to a power of
    /// two) empty shards.
    pub fn new(config: ServerConfig) -> Self {
        let n = config.shards.max(1).next_power_of_two();
        let shards: Vec<Shard> = (0..n).map(|_| Shard::default()).collect();
        Self {
            shards: shards.into_boxed_slice(),
            mask: n as u64 - 1,
        }
    }

    /// Number of shards (always a power of two).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a tenant (and all its sessions) lives on.
    #[inline]
    fn shard_of(&self, tenant: TenantId) -> usize {
        (mix64(tenant.0) & self.mask) as usize
    }

    fn lock_shard(&self, index: usize) -> std::sync::MutexGuard<'_, ShardState> {
        self.shards[index]
            .state
            .lock()
            .expect("shard mutex poisoned: a holder panicked")
    }

    /// Registers a tenant with a total privacy budget, creating its
    /// empty receipt chain.
    ///
    /// # Errors
    /// [`ServerError::TenantAlreadyRegistered`] on a duplicate;
    /// [`ServerError::Ledger`] on an invalid budget.
    pub fn register_tenant(&self, tenant: TenantId, total_epsilon: f64) -> Result<()> {
        let mut shard = self.lock_shard(self.shard_of(tenant));
        if shard.ledgers.contains_key(&tenant) {
            return Err(ServerError::TenantAlreadyRegistered(tenant));
        }
        let ledger = BudgetLedger::new(tenant.0, total_epsilon)?;
        shard.ledgers.insert(tenant, ledger);
        Ok(())
    }

    /// Opens a session for `tenant`, charging the session's full SVT
    /// budget (`ε₁ + ε₂ + ε₃` — the whole run's cost, per Theorem 4;
    /// every ⊥ thereafter is free) against the tenant's ledger and
    /// recording the receipt. Charge and session insertion happen under
    /// one shard lock, so a session never exists without its receipt.
    ///
    /// The session's answers are a pure function of `(config, seed)`.
    ///
    /// # Errors
    /// [`ServerError::UnknownTenant`]; [`ServerError::Svt`] on an
    /// invalid configuration; [`ServerError::Ledger`] when the budget
    /// does not fit (the session is not created).
    pub fn open_session(
        &self,
        tenant: TenantId,
        config: StandardSvtConfig,
        seed: u64,
    ) -> Result<SessionId> {
        let mut shard = self.lock_shard(self.shard_of(tenant));
        if !shard.ledgers.contains_key(&tenant) {
            return Err(ServerError::UnknownTenant(tenant));
        }
        // Validate the config (and perform the session's draws) before
        // touching the ledger: a rejected config must charge nothing.
        let mut rng = DpRng::seed_from_u64(seed);
        let driver = SessionDriver::open(config, &mut rng)?;
        let nonce = shard.next_nonce;
        shard
            .ledgers
            .get_mut(&tenant)
            .expect("presence checked above")
            .charge(nonce, "svt session open", config.budget.total())?;
        shard.next_nonce += 1;
        let id = SessionId { tenant, nonce };
        shard.sessions.insert(id, driver);
        Ok(id)
    }

    /// Asks one query against one session.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`]; [`ServerError::Svt`] when the
    /// session rejects the query (halted, non-finite input).
    pub fn submit(
        &self,
        session: SessionId,
        query_answer: f64,
        threshold: f64,
    ) -> Result<SvtAnswer> {
        let mut shard = self.lock_shard(self.shard_of(session.tenant));
        let driver = shard
            .sessions
            .get_mut(&session)
            .ok_or(ServerError::UnknownSession(session))?;
        Ok(driver.ask(query_answer, threshold)?)
    }

    /// Answers a batch of queries, possibly spanning many sessions and
    /// tenants. Results are returned in input order, one per query.
    ///
    /// Queries are grouped by shard so each shard is locked once, and
    /// within a shard visit each session's noise is prefetched with a
    /// single buffered fill — the serving-layer payoff of the
    /// `BatchSample` stream-equivalence contract. Answers are
    /// bit-identical to issuing the same per-session query sequences
    /// through [`submit`](Self::submit) one at a time (pinned by test).
    ///
    /// Per-query failures (unknown session, halted session, bad input)
    /// land in that query's result slot; they do not disturb the rest
    /// of the batch.
    pub fn submit_batch(&self, queries: &[BatchQuery]) -> Vec<Result<SvtAnswer>> {
        let mut results: Vec<Option<Result<SvtAnswer>>> = vec![None; queries.len()];
        // Group query indices per shard, preserving input order within
        // each shard (per-session order is the determinism contract).
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, q) in queries.iter().enumerate() {
            by_shard[self.shard_of(q.session.tenant)].push(i);
        }
        let mut pending: HashMap<SessionId, usize> = HashMap::new();
        for (shard_index, indices) in by_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let mut shard = self.lock_shard(shard_index);
            // One batched noise fill per session per shard visit.
            pending.clear();
            for &i in indices {
                *pending.entry(queries[i].session).or_insert(0) += 1;
            }
            for (&session, &count) in pending.iter() {
                if let Some(driver) = shard.sessions.get_mut(&session) {
                    driver.prefetch_noise(count);
                }
            }
            for &i in indices {
                let q = &queries[i];
                results[i] = Some(match shard.sessions.get_mut(&q.session) {
                    Some(driver) => driver
                        .ask(q.query_answer, q.threshold)
                        .map_err(ServerError::from),
                    None => Err(ServerError::UnknownSession(q.session)),
                });
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every query routed to exactly one shard"))
            .collect()
    }

    /// A snapshot of one session's protocol state.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`].
    pub fn session_status(&self, session: SessionId) -> Result<SessionStatus> {
        let shard = self.lock_shard(self.shard_of(session.tenant));
        let driver = shard
            .sessions
            .get(&session)
            .ok_or(ServerError::UnknownSession(session))?;
        Ok(SessionStatus {
            queries_asked: driver.queries_asked(),
            positives: driver.state().positives(),
            exhausted: driver.is_exhausted(),
        })
    }

    /// Removes a session, returning its final status. The budget it
    /// charged at open stays spent — SVT's cost is per run, not per
    /// answer — and its receipts remain on the tenant's chain.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`].
    pub fn close_session(&self, session: SessionId) -> Result<SessionStatus> {
        let mut shard = self.lock_shard(self.shard_of(session.tenant));
        let driver = shard
            .sessions
            .remove(&session)
            .ok_or(ServerError::UnknownSession(session))?;
        Ok(SessionStatus {
            queries_asked: driver.queries_asked(),
            positives: driver.state().positives(),
            exhausted: driver.is_exhausted(),
        })
    }

    /// A copy of the tenant's budget standing and full receipt chain.
    ///
    /// # Errors
    /// [`ServerError::UnknownTenant`].
    pub fn ledger_view(&self, tenant: TenantId) -> Result<LedgerView> {
        let shard = self.lock_shard(self.shard_of(tenant));
        let ledger = shard
            .ledgers
            .get(&tenant)
            .ok_or(ServerError::UnknownTenant(tenant))?;
        Ok(LedgerView {
            tenant,
            total: ledger.total(),
            spent: ledger.spent(),
            remaining: ledger.remaining(),
            receipts: ledger.receipts().to_vec(),
        })
    }

    /// Audits one tenant's receipt chain in place.
    ///
    /// # Errors
    /// [`ServerError::UnknownTenant`]; [`ServerError::Ledger`] with the
    /// distinct chain-failure variant on a corrupt chain.
    pub fn verify_tenant(&self, tenant: TenantId) -> Result<()> {
        let shard = self.lock_shard(self.shard_of(tenant));
        let ledger = shard
            .ledgers
            .get(&tenant)
            .ok_or(ServerError::UnknownTenant(tenant))?;
        Ok(ledger.verify_chain()?)
    }

    /// Audits every tenant's chain on every shard; returns how many
    /// tenants were verified.
    ///
    /// # Errors
    /// The first [`ServerError::Ledger`] encountered.
    pub fn verify_all(&self) -> Result<usize> {
        let mut verified = 0;
        for index in 0..self.shards.len() {
            let shard = self.lock_shard(index);
            for ledger in shard.ledgers.values() {
                ledger.verify_chain()?;
                verified += 1;
            }
        }
        Ok(verified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_mechanisms::SvtBudget;

    fn config(c: usize) -> StandardSvtConfig {
        StandardSvtConfig {
            budget: SvtBudget::halves(0.5).unwrap(),
            sensitivity: 1.0,
            c,
            monotonic: true,
        }
    }

    #[test]
    fn store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SessionStore>();
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(
            SessionStore::new(ServerConfig { shards: 0 }).num_shards(),
            1
        );
        assert_eq!(
            SessionStore::new(ServerConfig { shards: 5 }).num_shards(),
            8
        );
        assert_eq!(
            SessionStore::new(ServerConfig { shards: 16 }).num_shards(),
            16
        );
    }

    #[test]
    fn tenants_spread_across_shards() {
        let store = SessionStore::new(ServerConfig { shards: 8 });
        let mut seen = std::collections::HashSet::new();
        for t in 0..64 {
            seen.insert(store.shard_of(TenantId(t)));
        }
        // Sequential ids must not pile onto one shard.
        assert!(seen.len() >= 4, "only {} shards used", seen.len());
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let store = SessionStore::new(ServerConfig::default());
        let tenant = TenantId(9);
        assert_eq!(
            store.open_session(tenant, config(1), 0).unwrap_err(),
            ServerError::UnknownTenant(tenant)
        );
        assert_eq!(
            store.ledger_view(tenant).unwrap_err(),
            ServerError::UnknownTenant(tenant)
        );
        let ghost = SessionId { tenant, nonce: 0 };
        assert_eq!(
            store.submit(ghost, 0.0, 0.0).unwrap_err(),
            ServerError::UnknownSession(ghost)
        );
    }

    #[test]
    fn duplicate_registration_rejected() {
        let store = SessionStore::new(ServerConfig::default());
        store.register_tenant(TenantId(1), 1.0).unwrap();
        assert_eq!(
            store.register_tenant(TenantId(1), 5.0).unwrap_err(),
            ServerError::TenantAlreadyRegistered(TenantId(1))
        );
    }

    #[test]
    fn open_session_charges_and_receipts() {
        let store = SessionStore::new(ServerConfig::default());
        let tenant = TenantId(2);
        store.register_tenant(tenant, 1.0).unwrap();
        let s1 = store.open_session(tenant, config(2), 7).unwrap();
        let view = store.ledger_view(tenant).unwrap();
        assert_eq!(view.receipts.len(), 1);
        assert_eq!(view.receipts[0].session, s1.nonce);
        assert!((view.spent - 0.5).abs() < 1e-12);
        // Second session fits exactly; third does not.
        store.open_session(tenant, config(2), 8).unwrap();
        let err = store.open_session(tenant, config(2), 9).unwrap_err();
        assert!(matches!(err, ServerError::Ledger(_)));
        // The failed open leaves no receipt and no session.
        let view = store.ledger_view(tenant).unwrap();
        assert_eq!(view.receipts.len(), 2);
        assert!(view.remaining < 1e-9);
        store.verify_tenant(tenant).unwrap();
    }

    #[test]
    fn invalid_config_charges_nothing() {
        let store = SessionStore::new(ServerConfig::default());
        let tenant = TenantId(3);
        store.register_tenant(tenant, 1.0).unwrap();
        let mut bad = config(1);
        bad.sensitivity = -1.0;
        assert!(matches!(
            store.open_session(tenant, bad, 0).unwrap_err(),
            ServerError::Svt(_)
        ));
        assert!(store.ledger_view(tenant).unwrap().receipts.is_empty());
    }

    #[test]
    fn close_session_reports_final_state_and_frees_the_slot() {
        let store = SessionStore::new(ServerConfig::default());
        let tenant = TenantId(4);
        store.register_tenant(tenant, 1.0).unwrap();
        let session = store.open_session(tenant, config(2), 11).unwrap();
        store.submit(session, 1e9, 0.0).unwrap();
        let status = store.close_session(session).unwrap();
        assert_eq!(status.queries_asked, 1);
        assert_eq!(status.positives, 1);
        assert!(!status.exhausted);
        assert_eq!(
            store.submit(session, 0.0, 0.0).unwrap_err(),
            ServerError::UnknownSession(session)
        );
        // The spend survives the close.
        assert!((store.ledger_view(tenant).unwrap().spent - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_mixes_errors_and_answers_in_input_order() {
        let store = SessionStore::new(ServerConfig { shards: 2 });
        let tenant = TenantId(5);
        store.register_tenant(tenant, 1.0).unwrap();
        let session = store.open_session(tenant, config(10), 13).unwrap();
        let ghost = SessionId { tenant, nonce: 999 };
        let batch = vec![
            BatchQuery {
                session,
                query_answer: -1e9,
                threshold: 0.0,
            },
            BatchQuery {
                session: ghost,
                query_answer: 0.0,
                threshold: 0.0,
            },
            BatchQuery {
                session,
                query_answer: f64::NAN,
                threshold: 0.0,
            },
            BatchQuery {
                session,
                query_answer: 1e9,
                threshold: 0.0,
            },
        ];
        let results = store.submit_batch(&batch);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].as_ref().unwrap(), &SvtAnswer::Below);
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &ServerError::UnknownSession(ghost)
        );
        assert!(matches!(results[2], Err(ServerError::Svt(_))));
        assert_eq!(results[3].as_ref().unwrap(), &SvtAnswer::Above);
        // Only the two valid queries were counted.
        assert_eq!(store.session_status(session).unwrap().queries_asked, 2);
    }
}
